"""Unit and property tests for the BGZF block-compression layer."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BgzfError
from repro.formats.bgzf import EOF_MARKER, MAX_BLOCK_DATA, BgzfReader, \
    BgzfWriter, compress_block, compress_bytes, decompress_block, \
    decompress_bytes, is_bgzf, make_virtual_offset, split_virtual_offset


def test_block_roundtrip():
    data = b"hello bgzf" * 100
    assert decompress_block(compress_block(data)) == data


def test_block_header_layout():
    block = compress_block(b"x")
    assert block[:4] == b"\x1f\x8b\x08\x04"   # gzip magic + FEXTRA
    assert block[12:14] == b"BC"              # subfield id
    bsize = int.from_bytes(block[16:18], "little")
    assert bsize + 1 == len(block)


def test_block_size_limit():
    with pytest.raises(BgzfError):
        compress_block(b"x" * (MAX_BLOCK_DATA + 1))


def test_eof_marker_is_valid_empty_block():
    assert decompress_block(EOF_MARKER) == b""


def test_corrupt_crc_detected():
    block = bytearray(compress_block(b"payload"))
    block[-6] ^= 0xFF  # flip a CRC byte
    with pytest.raises(BgzfError):
        decompress_block(bytes(block))


def test_bad_magic_detected():
    with pytest.raises(BgzfError):
        decompress_block(b"\x00" * 30)


def test_stream_roundtrip_multi_block():
    data = bytes(range(256)) * 1024  # 256 KiB -> several blocks
    assert decompress_bytes(compress_bytes(data)) == data


def test_writer_reader_file_roundtrip(tmp_path):
    path = tmp_path / "t.bgzf"
    payload = b"0123456789abcdef" * 20_000  # ~320 KiB
    writer = BgzfWriter(path)
    writer.write(payload)
    writer.close()
    raw = path.read_bytes()
    assert raw.endswith(EOF_MARKER)
    reader = BgzfReader(path)
    assert reader.read(-1) == payload
    assert reader.at_eof()
    reader.close()


def test_virtual_offsets_allow_seek(tmp_path):
    path = tmp_path / "t.bgzf"
    writer = BgzfWriter(path)
    offsets = {}
    for i in range(50):
        chunk = f"chunk-{i:03d}:".encode() + bytes([i]) * 3000
        offsets[i] = (writer.tell(), len(chunk))
        writer.write(chunk)
    writer.close()
    reader = BgzfReader(path)
    for i in (49, 0, 25, 7):
        voffset, length = offsets[i]
        reader.seek_virtual(voffset)
        assert reader.read(10) == f"chunk-{i:03d}:".encode()
    reader.close()


def test_tell_matches_written_layout(tmp_path):
    path = tmp_path / "t.bgzf"
    writer = BgzfWriter(path)
    assert writer.tell() == 0
    writer.write(b"abc")
    coffset, uoffset = split_virtual_offset(writer.tell())
    assert (coffset, uoffset) == (0, 3)
    writer.flush_block()
    coffset, uoffset = split_virtual_offset(writer.tell())
    assert coffset > 0 and uoffset == 0
    writer.close()


def test_virtual_offset_packing():
    v = make_virtual_offset(123456, 789)
    assert split_virtual_offset(v) == (123456, 789)
    with pytest.raises(ValueError):
        make_virtual_offset(0, 1 << 16)
    with pytest.raises(ValueError):
        make_virtual_offset(1 << 48, 0)


def test_is_bgzf(tmp_path):
    good = tmp_path / "good.bgzf"
    writer = BgzfWriter(good)
    writer.write(b"data")
    writer.close()
    assert is_bgzf(good)
    bad = tmp_path / "bad.txt"
    bad.write_bytes(b"plain text file")
    assert not is_bgzf(bad)


def test_truncated_stream_detected(tmp_path):
    path = tmp_path / "t.bgzf"
    writer = BgzfWriter(path)
    writer.write(b"x" * 100_000)
    writer.close()
    truncated = path.read_bytes()[:-40]
    path.write_bytes(truncated)
    reader = BgzfReader(path)
    with pytest.raises(BgzfError):
        reader.read(-1)


def test_read_exactly():
    stream = io.BytesIO(compress_bytes(b"abcdef"))
    reader = BgzfReader(stream)
    assert reader.read_exactly(3) == b"abc"
    with pytest.raises(BgzfError):
        reader.read_exactly(10)


@given(st.binary(min_size=0, max_size=300_000))
@settings(max_examples=20, deadline=None)
def test_bytes_roundtrip_property(data):
    assert decompress_bytes(compress_bytes(data)) == data
