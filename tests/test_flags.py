"""Unit tests for the SAM FLAG bitfield helpers."""

import pytest

from repro.formats.flags import Flag, describe, is_mapped, is_paired, \
    is_primary, is_read1, is_read2, is_reverse, is_unmapped, mate_number, \
    validate_flag


def test_flag_values_match_sam_spec():
    assert Flag.PAIRED == 0x1
    assert Flag.PROPER_PAIR == 0x2
    assert Flag.UNMAPPED == 0x4
    assert Flag.MATE_UNMAPPED == 0x8
    assert Flag.REVERSE == 0x10
    assert Flag.MATE_REVERSE == 0x20
    assert Flag.READ1 == 0x40
    assert Flag.READ2 == 0x80
    assert Flag.SECONDARY == 0x100
    assert Flag.QC_FAIL == 0x200
    assert Flag.DUPLICATE == 0x400
    assert Flag.SUPPLEMENTARY == 0x800


def test_predicates_on_typical_proper_pair_flags():
    # 99 = paired, proper, mate reverse, read1; 147 = its mate.
    assert is_paired(99) and is_mapped(99) and not is_reverse(99)
    assert is_read1(99) and not is_read2(99)
    assert is_paired(147) and is_reverse(147) and is_read2(147)


def test_unmapped_and_mapped_are_complements():
    for flag in (0, 4, 99, 147, 77, 141):
        assert is_unmapped(flag) != is_mapped(flag)


def test_primary_excludes_secondary_and_supplementary():
    assert is_primary(99)
    assert not is_primary(99 | int(Flag.SECONDARY))
    assert not is_primary(99 | int(Flag.SUPPLEMENTARY))


def test_mate_number():
    assert mate_number(int(Flag.PAIRED | Flag.READ1)) == 1
    assert mate_number(int(Flag.PAIRED | Flag.READ2)) == 2
    assert mate_number(0) == 0
    # Both set (linear mid-segment) -> 0 by convention.
    assert mate_number(int(Flag.READ1 | Flag.READ2)) == 0


def test_validate_flag_accepts_defined_range():
    assert validate_flag(0) == 0
    assert validate_flag(0xFFF) == 0xFFF


@pytest.mark.parametrize("bad", [-1, 0x1000, 1 << 20])
def test_validate_flag_rejects_out_of_range(bad):
    with pytest.raises(ValueError):
        validate_flag(bad)


def test_describe_lists_set_bits():
    names = describe(int(Flag.PAIRED | Flag.REVERSE))
    assert "PAIRED" in names and "REVERSE" in names
    assert "UNMAPPED" not in names
    assert describe(0) == []
