"""Cross-module integration tests: the full pipeline end to end, and the
cross-converter equivalences the paper's design promises."""

import numpy as np
import pytest

from repro.baselines import sam_to_fastq
from repro.core import BamConverter, PreprocSamConverter, SamConverter, \
    convert_bam_direct
from repro.formats.bam import write_bam
from repro.formats.sam import read_sam
from repro.simdata import build_sam_dataset, \
    build_simulations
from repro.stats import fdr_parallel, fdr_vectorized, \
    histogram_from_records, nlmeans, nlmeans_parallel


def cat(paths):
    return b"".join(open(p, "rb").read() for p in paths)


def body(paths):
    out = []
    for p in paths:
        for line in open(p, "rb"):
            if not line.startswith(b"@"):
                out.append(line)
    return b"".join(out)


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """One dataset shared by the integration tests below."""
    d = tmp_path_factory.mktemp("pipeline")
    wl = build_sam_dataset(d / "p.sam", 150, seed=77)
    bam = d / "p.bam"
    write_bam(bam, wl.header, wl.records)
    return d, wl, str(d / "p.sam"), str(bam)


def test_all_three_converters_agree(pipeline, tmp_path):
    """The paper's core claim of interchangeable converter instances:
    SAM converter, BAM converter (with preprocessing), and the
    preprocessing-optimized SAM converter must all produce the same
    target data for the same input."""
    d, wl, sam_path, bam_path = pipeline
    for target in ("bed", "fastq"):
        a = SamConverter().convert(sam_path, target,
                                   tmp_path / f"a_{target}", nprocs=3)
        bamx, baix, _ = BamConverter().preprocess(
            bam_path, tmp_path / f"w_{target}")
        b = BamConverter().convert(bamx, target, tmp_path / f"b_{target}",
                                   nprocs=4)
        paths, _ = PreprocSamConverter().preprocess(
            sam_path, tmp_path / f"w2_{target}", nprocs=2)
        c = PreprocSamConverter().convert(paths, target,
                                          tmp_path / f"c_{target}",
                                          nprocs=2)
        assert cat(a.outputs) == cat(b.outputs) == cat(c.outputs), target


def test_direct_bam_equals_baseline(pipeline, tmp_path):
    d, wl, sam_path, bam_path = pipeline
    direct = convert_bam_direct(bam_path, "fastq", tmp_path / "d.fastq")
    baseline = sam_to_fastq(sam_path, tmp_path / "b.fastq")
    assert cat(direct.outputs) == open(baseline.output, "rb").read()


def test_partial_conversion_union_covers_full(pipeline, tmp_path):
    """Converting chr1 and chr2 regions separately yields every placed
    record exactly once."""
    d, wl, sam_path, bam_path = pipeline
    bamx, baix, _ = BamConverter().preprocess(bam_path, tmp_path / "w")
    total = 0
    converter = BamConverter()
    for chrom in ("chr1", "chr2"):
        result = converter.convert_region(bamx, baix, chrom, "sam",
                                          tmp_path / chrom, nprocs=3)
        total += result.records
    placed = sum(1 for r in wl.records if r.rname != "*" and r.pos >= 0)
    assert total == placed


def test_sam_roundtrip_through_every_converter(pipeline, tmp_path):
    d, wl, sam_path, bam_path = pipeline
    result = SamConverter().convert(sam_path, "sam", tmp_path / "o",
                                    nprocs=4)
    recovered = []
    for path in result.outputs:
        _, part = read_sam(path)
        recovered.extend(part)
    assert recovered == wl.records


def test_histogram_statistics_chain(pipeline):
    """SAM -> coverage histogram -> NL-means -> FDR, the §IV workflow."""
    d, wl, sam_path, bam_path = pipeline
    histos = histogram_from_records(wl.records, wl.header, bin_size=25)
    signal = np.concatenate([histos[c] for c in sorted(histos)])
    assert signal.sum() > 0
    denoised_seq = nlmeans(signal, 10, 4, 5.0)
    denoised_par, _ = nlmeans_parallel(signal, 6, 10, 4, 5.0)
    assert np.array_equal(denoised_par, denoised_seq)
    sims = build_simulations(denoised_seq, 8, seed=5)
    seq = fdr_vectorized(denoised_seq, sims, 2.0)
    par, _ = fdr_parallel(denoised_seq, sims, 2.0, 5)
    assert par.fdr == seq.fdr
    assert 0.0 <= par.fdr


def test_histogram_export_matches_converter_bedgraph(pipeline, tmp_path):
    """The converter's per-record BEDGRAPH intervals, when accumulated,
    equal the histogram module's per-base coverage."""
    d, wl, sam_path, bam_path = pipeline
    from repro.formats.bedgraph import read_bedgraph
    from repro.stats.histogram import coverage_depth
    result = SamConverter().convert(sam_path, "bedgraph", tmp_path / "o",
                                    nprocs=2)
    chr1_len = wl.header.references[wl.header.ref_id("chr1")].length
    accumulated = np.zeros(chr1_len)
    for path in result.outputs:
        for iv in read_bedgraph(path):
            if iv.chrom == "chr1":
                accumulated[iv.start:min(iv.end, chr1_len)] += iv.value
    direct = coverage_depth(wl.records, "chr1", chr1_len)
    assert np.array_equal(accumulated, direct)


def test_end_to_end_nondestructive(pipeline):
    """The shared dataset is untouched by all previous tests."""
    d, wl, sam_path, bam_path = pipeline
    _, records = read_sam(sam_path)
    assert records == wl.records
