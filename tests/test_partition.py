"""Unit and property tests for Algorithm 1 partitioning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.runtime.partition import Partition, even_split, \
    partition_bytes, partition_records, partition_rank_spmd, \
    partition_text_file
from repro.runtime.spmd import run_spmd


def test_even_split_tiles_range():
    bounds = even_split(103, 4)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == 103
    sizes = [e - s for s, e in bounds]
    assert max(sizes) - min(sizes) <= 1
    for (_, a_end), (b_start, _) in zip(bounds, bounds[1:]):
        assert a_end == b_start


def test_even_split_more_parts_than_bytes():
    bounds = even_split(2, 5)
    assert len(bounds) == 5
    assert sum(e - s for s, e in bounds) == 2


def test_even_split_validation():
    with pytest.raises(PartitionError):
        even_split(10, 0)
    with pytest.raises(PartitionError):
        even_split(-1, 2)


def check_invariants(data: bytes, partitions: list[Partition]):
    """The three Algorithm-1 invariants from the paper."""
    # 1. Partitions tile [0, len(data)) without gaps or overlap.
    assert partitions[0].start == 0 or partitions[0].length == 0
    assert partitions[-1].end == len(data)
    for a, b in zip(partitions, partitions[1:]):
        assert a.end == b.start
    # 2. Every non-empty partition's start is a record boundary.
    for p in partitions:
        if p.length and p.start > 0:
            assert data[p.start - 1:p.start] == b"\n"
    # 3. Reassembling the partitions gives the original bytes.
    assert b"".join(data[p.start:p.end] for p in partitions) == data


def test_partition_bytes_simple():
    data = b"".join(b"line%04d\n" % i for i in range(100))
    for nparts in (1, 2, 3, 7, 16):
        parts = partition_bytes(data, nparts)
        check_invariants(data, parts)
        # Each partition holds whole lines.
        for p in parts:
            chunk = data[p.start:p.end]
            if chunk:
                assert chunk.endswith(b"\n")


def test_partition_boundary_exactly_on_newline():
    # 4 lines x 5 bytes = 20 bytes; 4 parts of 5 put every tentative
    # boundary exactly at a line start.  Algorithm 1 still scans forward,
    # shifting one record back to the previous rank (paper's behaviour).
    data = b"aaaa\nbbbb\ncccc\ndddd\n"
    parts = partition_bytes(data, 4)
    check_invariants(data, parts)
    assert data[parts[0].start:parts[0].end] == b"aaaa\nbbbb\n"


def test_partition_without_any_newline():
    data = b"x" * 50
    parts = partition_bytes(data, 4)
    check_invariants(data, parts)
    # All content collapses into rank 0 (no breaker to adjust on).
    assert parts[0].length == 50
    assert all(p.length == 0 for p in parts[1:])


def test_partition_one_giant_line_then_small():
    data = b"y" * 40 + b"\n" + b"z\n"
    parts = partition_bytes(data, 4)
    check_invariants(data, parts)


def test_partition_empty_input():
    parts = partition_bytes(b"", 3)
    assert all(p.length == 0 for p in parts)


def test_partition_small_probe_size():
    # Probe smaller than the line length forces multiple probe reads.
    data = b"".join(b"%d" % (i % 10) * 50 + b"\n" for i in range(20))
    parts = partition_bytes(data, 3, probe_size=7)
    check_invariants(data, parts)


def test_partition_text_file_matches_bytes(tmp_path):
    data = b"".join(b"row%05d\twith\tfields\n" % i for i in range(500))
    path = tmp_path / "t.txt"
    path.write_bytes(data)
    for nparts in (1, 3, 8):
        from_file = partition_text_file(path, nparts)
        from_bytes = partition_bytes(data, nparts)
        assert from_file == from_bytes


def test_partition_rank_spmd_agrees_with_pure_function(tmp_path):
    data = b"".join(b"record-%04d\n" % i for i in range(200))
    path = tmp_path / "t.txt"
    path.write_bytes(data)
    for backend in ("thread", "process"):
        for size in (1, 2, 5):
            spmd = run_spmd(partition_rank_spmd, size, str(path),
                            backend=backend)
            pure = partition_text_file(path, size)
            assert spmd == pure, (backend, size)


def test_partition_records_is_even_split():
    assert partition_records(10, 3) == even_split(10, 3)


_texts = st.lists(
    st.binary(min_size=0, max_size=30).filter(lambda b: b"\n" not in b),
    min_size=0, max_size=60,
).map(lambda lines: b"".join(l + b"\n" for l in lines))


@given(_texts, st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=120)
def test_algorithm1_invariants_property(data, nparts, probe):
    parts = partition_bytes(data, nparts, probe_size=probe)
    check_invariants(data, parts)


@given(_texts, st.integers(min_value=1, max_value=12))
@settings(max_examples=60)
def test_no_record_split_property(data, nparts):
    """Every line of the input appears in exactly one partition."""
    parts = partition_bytes(data, nparts)
    all_lines = data.split(b"\n")[:-1] if data else []
    recovered = []
    for p in parts:
        chunk = data[p.start:p.end]
        if chunk:
            recovered.extend(chunk.split(b"\n")[:-1])
    assert recovered == all_lines
