"""Unit tests for the target-format plugins (the user-program layer)."""

import pytest

from repro.core.targets import BedGraphTarget, BedTarget, FastaTarget, \
    FastqTarget, JsonTarget, SamTarget, TargetFormat, YamlTarget, \
    get_target, register_target, target_names
from repro.errors import ConversionError
from repro.formats.header import SamHeader
from repro.formats.record import UNMAPPED_POS
from repro.formats.sam import format_alignment, parse_alignment

HDR = SamHeader.from_references([("chr1", 100_000)])

MAPPED = parse_alignment(
    "r1\t99\tchr1\t101\t60\t8M\t=\t301\t208\tACGTACGT\tIIIIIIII\tNM:i:0")
REVERSE = parse_alignment(
    "r1\t147\tchr1\t301\t60\t8M\t=\t101\t-208\tAACCGGTT\tABCDEFGH")
UNMAPPED = parse_alignment(
    "r2\t77\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII")
SECONDARY = parse_alignment(
    "r3\t355\tchr1\t501\t0\t4M\t=\t601\t104\tACGT\tIIII")


def test_registry_contains_paper_formats():
    assert {"sam", "bam", "bed", "bedgraph", "fasta", "fastq", "json",
            "yaml"} <= set(target_names())


def test_get_target_unknown():
    with pytest.raises(ConversionError):
        get_target("vcf")


def test_register_custom_target():
    class CsvTarget(TargetFormat):
        name = "csv-test"
        extension = ".csv"

        def emit(self, record):
            return f"{record.qname},{record.pos}"

    register_target(CsvTarget)
    target = get_target("csv-test")
    assert target.emit(MAPPED) == "r1,100"


def test_register_requires_name():
    class Nameless(TargetFormat):
        extension = ".x"

        def emit(self, record):
            return None

    with pytest.raises(ConversionError):
        register_target(Nameless)


def test_sam_target_identity():
    target = SamTarget()
    assert target.emit(MAPPED) == format_alignment(MAPPED)
    assert target.file_header(HDR) == HDR.to_text()


def test_bed_target_mapped():
    line = BedTarget().emit(MAPPED)
    assert line == "chr1\t100\t108\tr1\t60\t+"


def test_bed_target_reverse_strand():
    assert BedTarget().emit(REVERSE).endswith("\t-")


def test_bed_target_skips_unmapped():
    assert BedTarget().emit(UNMAPPED) is None


def test_bedgraph_target():
    assert BedGraphTarget().emit(MAPPED) == "chr1\t100\t108\t1"
    assert BedGraphTarget().emit(UNMAPPED) is None


def test_fasta_target_restores_orientation():
    out = FastaTarget().emit(REVERSE)
    name, seq = out.split("\n")
    from repro.formats.seq import reverse_complement
    assert seq == reverse_complement("AACCGGTT")
    assert name == ">r1/2"


def test_fasta_target_mate_suffix():
    assert FastaTarget().emit(MAPPED).startswith(">r1/1\n")


def test_fastq_target_reverses_quality():
    out = FastqTarget().emit(REVERSE)
    lines = out.split("\n")
    assert lines[0] == "@r1/2"
    assert lines[3] == "HGFEDCBA"


def test_fastq_target_skips_secondary():
    assert FastqTarget().emit(SECONDARY) is None


def test_fastq_target_emits_unmapped_reads():
    # Unmapped reads still carry sequence: SamToFastq keeps them.
    assert FastqTarget().emit(UNMAPPED) is not None


def test_fastq_missing_quality_filled():
    rec = parse_alignment("r\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\t*")
    out = FastqTarget().emit(rec)
    assert out.split("\n")[3] == "!!!!"


def test_json_target_parses_back():
    import json
    from repro.formats.json_fmt import dict_to_record
    line = JsonTarget().emit(MAPPED)
    assert dict_to_record(json.loads(line)) == MAPPED


def test_yaml_target_parses_back():
    from repro.formats.json_fmt import dict_to_record
    from repro.formats.yaml_fmt import load_all
    text = YamlTarget().emit(MAPPED)
    (doc,) = load_all(text)
    assert dict_to_record(doc) == MAPPED


def test_bam_target_requires_header():
    target = get_target("bam")
    with pytest.raises(ConversionError):
        target.emit_binary(MAPPED)
    with pytest.raises(ConversionError):
        target.emit(MAPPED)
    target.bind_header(HDR)
    blob = target.emit_binary(MAPPED)
    from repro.formats.bam import decode_record
    assert decode_record(blob[4:], HDR) == MAPPED
