"""Tests for the SAM format converter (Fig. 2 execution flow)."""

import os

import pytest

from repro.core.sam_converter import SamConverter, convert_sam, \
    partition_alignments, scan_header
from repro.errors import ConversionError


def cat(paths):
    return b"".join(open(p, "rb").read() for p in paths)


def cat_no_header(paths):
    """Concatenate text parts, dropping the per-part @ header lines
    (each rank's SAM part legitimately repeats the header)."""
    out = []
    for p in paths:
        for line in open(p, "rb"):
            if not line.startswith(b"@"):
                out.append(line)
    return b"".join(out)


def test_scan_header(sam_file, workload):
    _, header, _ = workload
    parsed, offset = scan_header(sam_file)
    assert parsed == header
    with open(sam_file, "rb") as fh:
        fh.seek(offset)
        first = fh.readline()
    assert not first.startswith(b"@")


def test_partition_alignments_starts_after_header(sam_file):
    _, header_end = scan_header(sam_file)
    parts = partition_alignments(sam_file, 4, header_end)
    assert parts[0].start == header_end
    assert parts[-1].end == os.path.getsize(sam_file)


@pytest.mark.parametrize("target", ["bed", "bedgraph", "fasta", "fastq",
                                    "sam", "json", "yaml"])
def test_parallel_equals_sequential(tmp_path, sam_file, target):
    converter = SamConverter()
    seq = converter.convert(sam_file, target, tmp_path / "seq", nprocs=1)
    par = converter.convert(sam_file, target, tmp_path / "par", nprocs=5)
    if target == "sam":
        assert cat_no_header(seq.outputs) == cat_no_header(par.outputs)
    else:
        assert cat(seq.outputs) == cat(par.outputs)
    assert par.records == seq.records


def test_record_counts(tmp_path, sam_file, workload):
    _, _, records = workload
    result = SamConverter().convert(sam_file, "bed", tmp_path / "o",
                                    nprocs=3)
    assert result.records == len(records)
    mapped = sum(1 for r in records if r.is_mapped)
    assert result.emitted == mapped


def test_one_output_file_per_rank(tmp_path, sam_file):
    result = SamConverter().convert(sam_file, "bed", tmp_path / "o",
                                    nprocs=7)
    assert len(result.outputs) == 7
    assert all(os.path.exists(p) for p in result.outputs)
    assert result.nprocs == 7


def test_sam_target_includes_header_per_part(tmp_path, sam_file):
    result = SamConverter().convert(sam_file, "sam", tmp_path / "o",
                                    nprocs=2)
    for path in result.outputs:
        with open(path) as fh:
            assert fh.readline().startswith("@HD")


def test_sam_roundtrip_preserves_records(tmp_path, sam_file, workload):
    _, _, records = workload
    from repro.formats.sam import read_sam
    result = SamConverter().convert(sam_file, "sam", tmp_path / "o",
                                    nprocs=3)
    recovered = []
    for path in result.outputs:
        _, part = read_sam(path)
        recovered.extend(part)
    assert recovered == records


def test_bam_target_parts_are_valid_bam(tmp_path, sam_file, workload):
    _, _, records = workload
    from repro.formats.bam import read_bam
    result = SamConverter().convert(sam_file, "bam", tmp_path / "o",
                                    nprocs=3)
    recovered = []
    for path in result.outputs:
        _, part = read_bam(path)
        recovered.extend(part)
    assert recovered == records


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_executors_match_simulate(tmp_path, sam_file, executor):
    converter = SamConverter()
    sim = converter.convert(sam_file, "bed", tmp_path / "sim", nprocs=3)
    other = converter.convert(sam_file, "bed", tmp_path / executor,
                              nprocs=3, executor=executor)
    assert cat(sim.outputs) == cat(other.outputs)


def test_more_ranks_than_records(tmp_path):
    from repro.formats.header import SamHeader
    from repro.formats.sam import parse_alignment, write_sam
    rec = parse_alignment("r\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII")
    path = tmp_path / "tiny.sam"
    write_sam(path, SamHeader.from_references([("chr1", 100)]), [rec] * 2)
    result = SamConverter().convert(path, "bed", tmp_path / "o",
                                    nprocs=16)
    assert result.records == 2
    assert len(result.outputs) == 16  # most parts simply come out empty


def test_rank_metrics_populated(tmp_path, sam_file):
    result = SamConverter().convert(sam_file, "bed", tmp_path / "o",
                                    nprocs=2)
    assert len(result.rank_metrics) == 2
    total_read = sum(m.bytes_read for m in result.rank_metrics)
    _, header_end = scan_header(sam_file)
    assert total_read == os.path.getsize(sam_file) - header_end
    assert all(m.compute_seconds >= 0 for m in result.rank_metrics)


def test_invalid_nprocs(tmp_path, sam_file):
    with pytest.raises(ConversionError):
        SamConverter().convert(sam_file, "bed", tmp_path / "o", nprocs=0)


def test_invalid_target_rejected_before_work(tmp_path, sam_file):
    with pytest.raises(ConversionError):
        SamConverter().convert(sam_file, "vcf", tmp_path / "o")


def test_convenience_wrapper(tmp_path, sam_file):
    result = convert_sam(sam_file, "bed", tmp_path / "o", nprocs=2)
    assert result.nprocs == 2
