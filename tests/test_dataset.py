"""Tests for the AlignmentDataset facade."""

import numpy as np
import pytest

from repro.core.dataset import AlignmentDataset
from repro.errors import ConversionError


@pytest.fixture(scope="module")
def sam_ds(sam_file):
    return AlignmentDataset.open(sam_file)


@pytest.fixture(scope="module")
def bam_ds(bam_file):
    return AlignmentDataset.open(bam_file)


def test_open_dispatches_on_extension(sam_file, bam_file):
    assert AlignmentDataset.open(sam_file).kind == "sam"
    assert AlignmentDataset.open(bam_file).kind == "bam"
    with pytest.raises(ConversionError):
        AlignmentDataset.open("x.vcf")


def test_simulate_constructor(tmp_path):
    ds = AlignmentDataset.simulate(tmp_path / "s.sam", 25, seed=1)
    assert ds.count() == 50
    ds2 = AlignmentDataset.simulate(tmp_path / "s.bam", 25, seed=1)
    assert ds2.kind == "bam"
    assert ds2.count() == 50


def test_header_and_records(sam_ds, bam_ds, workload):
    _, header, records = workload
    assert sam_ds.header == header
    assert list(sam_ds.records()) == records
    assert list(bam_ds.records()) == records


def test_flagstat_and_validate(sam_ds, bam_ds):
    assert sam_ds.flagstat() == bam_ds.flagstat()
    assert sam_ds.validate().ok
    assert bam_ds.validate().ok


def test_histogram(sam_ds, workload):
    from repro.stats import histogram_from_records
    _, header, records = workload
    direct = histogram_from_records(records, header, 25)
    via_facade = sam_ds.histogram(bin_size=25)
    via_parallel = sam_ds.histogram(bin_size=25, nprocs=3)
    for chrom in direct:
        assert np.array_equal(via_facade[chrom], direct[chrom])
        assert np.array_equal(via_parallel[chrom], direct[chrom])


def test_sorted(tmp_path, unsorted_workload):
    from repro.formats.sam import write_sam
    _, header, records = unsorted_workload
    src = tmp_path / "u.sam"
    write_sam(src, header, records)
    ds = AlignmentDataset.open(src).sorted(tmp_path / "s.sam")
    assert ds.header.sort_order == "coordinate"
    keys = [(ds.header.ref_id(r.rname), r.pos) for r in ds.records()
            if r.is_mapped]
    assert keys == sorted(keys)


def test_convert_sam_direct(sam_ds, tmp_path, workload):
    _, _, records = workload
    result = sam_ds.convert("bed", tmp_path / "o", nprocs=3)
    assert result.records == len(records)


def test_convert_bam_preprocesses(bam_ds, tmp_path, workload):
    _, _, records = workload
    result = bam_ds.convert("bed", tmp_path / "o", nprocs=2,
                            work_dir=tmp_path / "w")
    assert result.records == len(records)


def test_store_handle_lifecycle(bam_ds, tmp_path, workload):
    _, header, records = workload
    store = bam_ds.preprocess(tmp_path / "w")
    assert len(store) == len(records)
    result = store.convert("sam", tmp_path / "o", nprocs=2)
    assert result.records == len(records)
    region_result = store.convert_region("chr1:1-30000", "bed",
                                         tmp_path / "r", nprocs=2)
    expected = sum(1 for r in records
                   if r.rname == "chr1" and 0 <= r.pos < 30_000)
    assert region_result.records == expected


def test_store_fetch_modes(bam_ds, tmp_path, workload):
    _, header, records = workload
    store = bam_ds.preprocess(tmp_path / "w")
    start_hits = store.fetch("chr1:5001-6000", mode="start")
    overlap_hits = store.fetch("chr1:5001-6000", mode="overlap")
    assert len(overlap_hits) >= len(start_hits)
    for rec in start_hits:
        assert 5_000 <= rec.pos < 6_000
    for rec in overlap_hits:
        assert rec.pos < 6_000 and rec.end > 5_000
    with pytest.raises(ConversionError):
        store.fetch("chr1:1-10", mode="middle")


def test_preprocess_compressed(bam_ds, tmp_path, workload):
    _, _, records = workload
    store = bam_ds.preprocess(tmp_path / "w", compress=True)
    assert store.store_path.endswith(".bamz")
    assert len(store) == len(records)


def test_sam_preprocess_returns_first_part(sam_ds, tmp_path):
    store = sam_ds.preprocess(tmp_path / "w", nprocs=2)
    assert store.store_path.endswith(".bamx")
    assert len(store) > 0
