"""Unit tests for the FASTQ codec."""

import io

import pytest

from repro.errors import FormatError
from repro.formats.fastq import FastqRecord, format_record, iter_fastq, \
    read_fastq, write_fastq


def test_format_four_lines():
    rec = FastqRecord("r1/1", "ACGT", "IIII")
    assert format_record(rec) == "@r1/1\nACGT\n+\nIIII\n"


def test_length_mismatch_rejected_at_construction():
    with pytest.raises(FormatError):
        FastqRecord("r", "ACGT", "III")


def test_parse_stream():
    text = "@a\nACGT\n+\nIIII\n@b\nTT\n+anything\nAB\n"
    records = list(iter_fastq(io.StringIO(text)))
    assert records == [FastqRecord("a", "ACGT", "IIII"),
                       FastqRecord("b", "TT", "AB")]


def test_parse_skips_blank_lines_between_records():
    text = "@a\nACGT\n+\nIIII\n\n@b\nTT\n+\nAB\n"
    assert len(list(iter_fastq(io.StringIO(text)))) == 2


def test_parse_rejects_missing_at():
    with pytest.raises(FormatError):
        list(iter_fastq(io.StringIO("a\nACGT\n+\nIIII\n")))


def test_parse_rejects_missing_plus():
    with pytest.raises(FormatError):
        list(iter_fastq(io.StringIO("@a\nACGT\nIIII\nIIII\n")))


def test_file_roundtrip(tmp_path):
    records = [FastqRecord(f"read{i}", "ACGT" * (i + 1), "IIII" * (i + 1))
               for i in range(5)]
    path = tmp_path / "t.fastq"
    assert write_fastq(path, records) == 5
    assert read_fastq(path) == records
