"""Tests for synthetic genome generation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.simdata.genome import Genome, synthesize_chromosome


def test_synthesize_length_and_alphabet():
    rng = np.random.default_rng(0)
    rec = synthesize_chromosome("c", 5_000, rng)
    assert len(rec.sequence) == 5_000
    assert set(rec.sequence) <= set("ACGT")


def test_deterministic_under_seed():
    a = Genome.synthesize([("c1", 1_000)], seed=5)
    b = Genome.synthesize([("c1", 1_000)], seed=5)
    assert a.sequence("c1") == b.sequence("c1")
    c = Genome.synthesize([("c1", 1_000)], seed=6)
    assert a.sequence("c1") != c.sequence("c1")


def test_gc_content_respected():
    rng = np.random.default_rng(1)
    seq = synthesize_chromosome("c", 200_000, rng, gc_content=0.6).sequence
    gc = (seq.count("G") + seq.count("C")) / len(seq)
    assert abs(gc - 0.6) < 0.01


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ReproError):
        synthesize_chromosome("c", 0, rng)
    with pytest.raises(ReproError):
        synthesize_chromosome("c", 10, rng, gc_content=1.5)
    with pytest.raises(ReproError):
        Genome([])


def test_duplicate_names_rejected():
    rng = np.random.default_rng(0)
    recs = [synthesize_chromosome("c", 10, rng),
            synthesize_chromosome("c", 10, rng)]
    with pytest.raises(ReproError):
        Genome(recs)


def test_accessors():
    genome = Genome.synthesize([("a", 100), ("b", 200)], seed=0)
    assert genome.names == ["a", "b"]
    assert genome.references == [("a", 100), ("b", 200)]
    assert genome.total_length == 300
    assert genome.fetch("a", 10, 20) == genome.sequence("a")[10:20]
    with pytest.raises(ReproError):
        genome.fetch("a", 50, 200)
    with pytest.raises(ReproError):
        genome.sequence("z")
