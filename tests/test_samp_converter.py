"""Tests for the preprocessing-optimized SAM converter (Fig. 5)."""

import os

import pytest

from repro.core.sam_converter import SamConverter
from repro.core.samp_converter import PreprocSamConverter
from repro.errors import ConversionError
from repro.formats.bamx import BamxReader


def cat(paths):
    return b"".join(open(p, "rb").read() for p in paths)


@pytest.fixture(scope="module")
def preprocessed(sam_file, tmp_path_factory):
    work = tmp_path_factory.mktemp("samp")
    converter = PreprocSamConverter()
    paths, metrics = converter.preprocess(sam_file, work, nprocs=3)
    return paths, metrics


def test_one_bamx_per_preprocessing_rank(preprocessed):
    paths, metrics = preprocessed
    assert len(paths) == 3
    assert len(metrics) == 3
    assert all(os.path.exists(p) for p in paths)
    assert all(os.path.exists(p + ".baix") for p in paths)


def test_preprocessing_preserves_all_records(preprocessed, workload):
    paths, _ = preprocessed
    _, _, records = workload
    recovered = []
    for path in paths:
        with BamxReader(path) as reader:
            recovered.extend(reader)
    assert recovered == records  # concatenation preserves order


def test_per_file_layouts_are_independent(preprocessed):
    paths, _ = preprocessed
    layouts = []
    for path in paths:
        with BamxReader(path) as reader:
            layouts.append(reader.layout)
    # Each file is self-describing; layouts may legitimately differ.
    assert all(l.record_size > 0 for l in layouts)


def test_m_by_n_output_files(preprocessed, tmp_path):
    paths, _ = preprocessed
    converter = PreprocSamConverter()
    result = converter.convert(paths, "bed", tmp_path / "o", nprocs=4)
    assert len(result.outputs) == len(paths) * 4  # M x N


def test_conversion_matches_original_sam_converter(preprocessed,
                                                   sam_file, tmp_path):
    """The optimized pipeline must produce the same bytes as the
    original SAM converter (same records, same target lines)."""
    paths, _ = preprocessed
    optimized = PreprocSamConverter().convert(paths, "bed",
                                              tmp_path / "opt", nprocs=2)
    original = SamConverter().convert(sam_file, "bed", tmp_path / "orig",
                                      nprocs=1)
    assert cat(optimized.outputs) == cat(original.outputs)


def test_end_to_end_attaches_preprocess_metrics(sam_file, tmp_path,
                                                workload):
    _, _, records = workload
    result = PreprocSamConverter().convert_end_to_end(
        sam_file, "fasta", tmp_path / "work", tmp_path / "out",
        preprocess_procs=2, convert_procs=3)
    assert len(result.preprocess_metrics) == 2
    assert result.records == len(records)
    pre_records = sum(m.records for m in result.preprocess_metrics)
    assert pre_records == len(records)


def test_rank_metrics_combined_across_files(preprocessed, tmp_path):
    paths, _ = preprocessed
    result = PreprocSamConverter().convert(paths, "bed", tmp_path / "o",
                                           nprocs=2)
    assert len(result.rank_metrics) == 2
    assert sum(m.records for m in result.rank_metrics) == result.records


def test_empty_bamx_list_rejected(tmp_path):
    with pytest.raises(ConversionError):
        PreprocSamConverter().convert([], "bed", tmp_path / "o")


def test_invalid_nprocs(sam_file, tmp_path):
    with pytest.raises(ConversionError):
        PreprocSamConverter().preprocess(sam_file, tmp_path, nprocs=0)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_preprocess_executors_match(sam_file, tmp_path, executor,
                                    workload):
    _, _, records = workload
    paths, _ = PreprocSamConverter().preprocess(
        sam_file, tmp_path / executor, nprocs=2, executor=executor)
    recovered = []
    for path in paths:
        with BamxReader(path) as reader:
            recovered.extend(reader)
    assert recovered == records
