"""Unit tests for the BAI index: build, save/load, region fetch."""

import pytest

from repro.errors import IndexError_
from repro.formats.bai import BaiIndex, default_index_path
from repro.formats.bam import BamReader, write_bam
from repro.formats.header import SamHeader
from repro.formats.record import AlignmentRecord


def brute_force_overlaps(records, chrom, beg, end):
    return [r for r in records
            if r.rname == chrom and r.is_mapped and r.pos < end
            and r.end > beg]


@pytest.fixture(scope="module")
def indexed(bam_file):
    return BaiIndex.from_bam(bam_file)


def test_build_covers_all_references(indexed, workload):
    _, header, _ = workload
    assert len(indexed.refs) == len(header.references)


def test_fetch_matches_brute_force(indexed, bam_file, workload):
    _, header, records = workload
    with BamReader(bam_file) as reader:
        for chrom, beg, end in [("chr1", 0, 60_000), ("chr1", 5_000, 9_000),
                                ("chr2", 0, 1_000), ("chr2", 10_000, 40_000),
                                ("chr1", 59_000, 60_000)]:
            got = list(indexed.fetch(reader, chrom, beg, end))
            expected = brute_force_overlaps(records, chrom, beg, end)
            assert got == expected, (chrom, beg, end)


def test_fetch_empty_region(indexed, bam_file):
    with BamReader(bam_file) as reader:
        # A 1-base window in a gap is usually empty; at minimum it must
        # not return non-overlapping records.
        for rec in indexed.fetch(reader, "chr1", 0, 1):
            assert rec.pos < 1 and rec.end > 0


def test_save_load_roundtrip(indexed, tmp_path, bam_file, workload):
    path = tmp_path / "t.bai"
    indexed.save(path)
    loaded = BaiIndex.load(path)
    assert len(loaded.refs) == len(indexed.refs)
    for a, b in zip(loaded.refs, indexed.refs):
        assert a.bins == b.bins
        assert a.linear == b.linear
    _, _, records = workload
    with BamReader(bam_file) as reader:
        assert list(loaded.fetch(reader, "chr1", 100, 5_000)) == \
            brute_force_overlaps(records, "chr1", 100, 5_000)


def test_unsorted_bam_rejected(tmp_path):
    header = SamHeader.from_references([("chr1", 10_000)])
    records = [
        AlignmentRecord("a", 0, "chr1", 500, 60, [(4, "M")], "*", -1, 0,
                        "ACGT", "IIII"),
        AlignmentRecord("b", 0, "chr1", 100, 60, [(4, "M")], "*", -1, 0,
                        "ACGT", "IIII"),
    ]
    path = tmp_path / "unsorted.bam"
    write_bam(path, header, records)
    with pytest.raises(IndexError_):
        BaiIndex.from_bam(path)


def test_unknown_reference_in_query(indexed):
    with pytest.raises(IndexError_):
        indexed.candidate_chunks(99, 0, 100)


def test_chunks_are_merged_and_sorted(indexed):
    chunks = indexed.candidate_chunks(0, 0, 60_000)
    assert chunks == sorted(chunks)
    for (a_beg, a_end), (b_beg, b_end) in zip(chunks, chunks[1:]):
        assert a_end < b_beg  # strictly disjoint after merging


def test_default_index_path():
    assert default_index_path("/x/y.bam") == "/x/y.bam.bai"
