"""Error-path coverage for :func:`repro.formats.store.open_record_store`:
files that are neither BAMX nor BAMZ must raise
:class:`BamxFormatError` naming the offending path."""

from __future__ import annotations

import pytest

from repro.errors import BamxFormatError
from repro.formats import bamx
from repro.formats.store import open_record_store


def test_truncated_file_shorter_than_magic(tmp_path):
    path = tmp_path / "short.bamx"
    path.write_bytes(bamx.MAGIC[:2])
    with pytest.raises(BamxFormatError) as excinfo:
        open_record_store(path)
    assert str(path) in str(excinfo.value)


def test_empty_file(tmp_path):
    path = tmp_path / "empty.bamx"
    path.write_bytes(b"")
    with pytest.raises(BamxFormatError) as excinfo:
        open_record_store(path)
    assert str(path) in str(excinfo.value)


def test_unknown_magic_bytes(tmp_path):
    path = tmp_path / "alien.bamx"
    # Long enough to pass both the BAMX magic read and the 18-byte
    # BGZF header sniff, but matching neither format.
    path.write_bytes(b"NOTAFORMAT" * 8)
    with pytest.raises(BamxFormatError) as excinfo:
        open_record_store(path)
    assert str(path) in str(excinfo.value)
