"""Docs lint: every intra-repo markdown link must resolve, and the
docs map must actually cover the docs directory."""

from __future__ import annotations

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_check_docs():
    path = os.path.join(REPO_ROOT, "tools", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_broken_markdown_links():
    check_docs = _load_check_docs()
    broken = check_docs.find_broken_links(REPO_ROOT)
    assert broken == [], "\n".join(
        f"{rel}:{lineno}: broken link -> {target}"
        for rel, lineno, target in broken)


def test_checker_flags_broken_link(tmp_path):
    check_docs = _load_check_docs()
    (tmp_path / "a.md").write_text(
        "see [missing](nope.md) and [ok](b.md)\n"
        "```\n[ignored](inside-fence.md)\n```\n"
        "[web](https://example.com) [anchor](#here)\n")
    (tmp_path / "b.md").write_text("# b\n")
    broken = check_docs.find_broken_links(str(tmp_path))
    assert broken == [("a.md", 1, "nope.md")]


def test_readme_docs_map_lists_every_doc():
    with open(os.path.join(REPO_ROOT, "README.md"),
              encoding="utf-8") as fh:
        readme = fh.read()
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            assert f"docs/{name}" in readme, \
                f"README docs map is missing docs/{name}"
