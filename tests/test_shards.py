"""Byte-identity of the dynamic-shard schedule.

The acceptance contract for over-decomposition: for every converter and
every registered target, ``shards_per_rank > 1`` produces *exactly* the
bytes of the static single-shard run, on every executor.  The shard
reducer concatenates shard outputs in range order (only shard 0 writes
the header), so equality is checked per part file, not just in
aggregate.
"""

import os

import pytest

from repro.core import (
    BamConverter,
    PreprocSamConverter,
    RecordFilter,
    SamConverter,
)
from repro.core.targets import get_target, target_names

EXECUTORS = ["simulate", "thread", "process"]


def read_parts(result):
    """``{basename: bytes}`` of a conversion result's output parts."""
    return {os.path.basename(p): open(p, "rb").read()
            for p in result.outputs}


def read_tree(root):
    """``{name: bytes}`` of every file under *root*."""
    out = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            out[os.path.relpath(path, root)] = open(path, "rb").read()
    return out


def assert_no_shard_leftovers(root):
    for _dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            assert ".shard" not in name, \
                f"leftover shard temporary {name}"


# -- SamConverter: every target x every executor ---------------------

@pytest.mark.parametrize("target", target_names())
def test_sam_converter_sharded_identity_all_targets(sam_file, tmp_path,
                                                    target):
    static = SamConverter().convert(sam_file, target,
                                    tmp_path / "static", nprocs=3)
    for executor in EXECUTORS:
        sharded = SamConverter(shards_per_rank=4).convert(
            sam_file, target, tmp_path / f"dyn-{executor}", nprocs=3,
            executor=executor)
        assert read_parts(sharded) == read_parts(static), \
            f"{target} via {executor}"
        assert_no_shard_leftovers(tmp_path / f"dyn-{executor}")


def test_binary_targets_decline_to_split(sam_file, tmp_path):
    """Targets with a binary payload (BAM) can't be concatenated
    text-wise; their specs must refuse split() and run static —
    outputs still identical, schedule just not decomposed."""
    from repro.core.sam_converter import SamRankSpec, scan_header
    _, header_end = scan_header(sam_file)
    spec = SamRankSpec(sam_file, header_end, os.path.getsize(sam_file),
                       "bam", str(tmp_path / "x.bam"), "", 4096,
                       RecordFilter())
    assert get_target("bam").mode == "binary"
    assert spec.split(4) == [spec]


def test_sam_converter_sharded_with_filter(sam_file, tmp_path):
    f = RecordFilter(min_mapq=30, primary_only=True)
    static = SamConverter().convert(sam_file, "bed", tmp_path / "s",
                                    nprocs=2, record_filter=f)
    sharded = SamConverter(shards_per_rank=5).convert(
        sam_file, "bed", tmp_path / "d", nprocs=2, executor="process",
        record_filter=f)
    assert read_parts(sharded) == read_parts(static)


def test_shards_of_one_is_the_static_path(sam_file, tmp_path):
    one = SamConverter(shards_per_rank=1).convert(
        sam_file, "sam", tmp_path / "one", nprocs=2, executor="thread")
    base = SamConverter().convert(sam_file, "sam", tmp_path / "base",
                                  nprocs=2)
    assert read_parts(one) == read_parts(base)


# -- BamConverter: full convert + region picks -----------------------

@pytest.mark.parametrize("executor", EXECUTORS)
def test_bam_converter_sharded_identity(bam_file, tmp_path, executor):
    converter = BamConverter()
    bamx, baix, _ = converter.preprocess(bam_file, tmp_path / "w")
    static = converter.convert(bamx, "sam", tmp_path / "static",
                               nprocs=3)
    sharded = BamConverter(shards_per_rank=4).convert(
        bamx, "sam", tmp_path / f"dyn-{executor}", nprocs=3,
        executor=executor)
    assert read_parts(sharded) == read_parts(static)
    assert_no_shard_leftovers(tmp_path / f"dyn-{executor}")


@pytest.mark.parametrize("executor", EXECUTORS)
def test_bam_region_sharded_identity(bam_file, tmp_path, executor):
    converter = BamConverter()
    bamx, baix, _ = converter.preprocess(bam_file, tmp_path / "w")
    static = converter.convert_region(bamx, baix, "chr1:1-40000",
                                      "sam", tmp_path / "static",
                                      nprocs=2)
    sharded = BamConverter(shards_per_rank=3).convert_region(
        bamx, baix, "chr1:1-40000", "sam",
        tmp_path / f"dyn-{executor}", nprocs=2, executor=executor)
    assert read_parts(sharded) == read_parts(static)
    assert_no_shard_leftovers(tmp_path / f"dyn-{executor}")


@pytest.mark.parametrize("target", ["bed", "json"])
def test_bam_converter_sharded_other_targets(bam_file, tmp_path,
                                             target):
    converter = BamConverter()
    bamx, _baix, _ = converter.preprocess(bam_file, tmp_path / "w")
    static = converter.convert(bamx, target, tmp_path / "static",
                               nprocs=2)
    sharded = BamConverter(shards_per_rank=4).convert(
        bamx, target, tmp_path / "dyn", nprocs=2, executor="process")
    assert read_parts(sharded) == read_parts(static)


# -- PreprocSamConverter: BAMX store + indexes -----------------------

@pytest.mark.parametrize("executor", EXECUTORS)
def test_preprocess_sharded_identity(sam_file, tmp_path, executor):
    _, static_metrics = PreprocSamConverter().preprocess(
        sam_file, tmp_path / "static", nprocs=2)
    _, sharded_metrics = PreprocSamConverter(
        shards_per_rank=4).preprocess(
        sam_file, tmp_path / f"dyn-{executor}", nprocs=2,
        executor=executor)
    assert read_tree(tmp_path / f"dyn-{executor}") == \
        read_tree(tmp_path / "static")
    assert [m.records for m in sharded_metrics] == \
        [m.records for m in static_metrics]


def test_preprocess_then_convert_sharded_end_to_end(sam_file, tmp_path):
    static = PreprocSamConverter().convert_end_to_end(
        sam_file, "bed", tmp_path / "sw", tmp_path / "static",
        preprocess_procs=2, convert_procs=2)
    sharded = PreprocSamConverter(shards_per_rank=3).convert_end_to_end(
        sam_file, "bed", tmp_path / "dw", tmp_path / "dyn",
        preprocess_procs=2, convert_procs=2, executor="process")
    assert read_parts(sharded) == read_parts(static)


# -- metrics fold ----------------------------------------------------

def test_sharded_metrics_conserve_record_counts(sam_file, tmp_path):
    """Per-rank metrics of a sharded run must fold back to the static
    run's counters (records/emitted/bytes_read are sums over shards)."""
    static = SamConverter().convert(sam_file, "bed", tmp_path / "s",
                                    nprocs=3)
    sharded = SamConverter(shards_per_rank=4).convert(
        sam_file, "bed", tmp_path / "d", nprocs=3, executor="thread")
    assert len(sharded.rank_metrics) == len(static.rank_metrics)
    for dyn, stat in zip(sharded.rank_metrics, static.rank_metrics):
        assert dyn.records == stat.records
        assert dyn.emitted == stat.emitted
        assert dyn.bytes_read == stat.bytes_read
    assert sharded.records == static.records
    assert sharded.emitted == static.emitted


# -- CLI and service surfaces ----------------------------------------

def test_cli_shards_flag_byte_identical(sam_file, tmp_path, capsys):
    from repro.cli import main
    assert main(["convert", str(sam_file), "--target", "bed",
                 "--out-dir", str(tmp_path / "static"),
                 "--nprocs", "2"]) == 0
    assert main(["convert", str(sam_file), "--target", "bed",
                 "--out-dir", str(tmp_path / "dyn"), "--nprocs", "2",
                 "--shards", "4", "--executor", "thread"]) == 0
    capsys.readouterr()
    static = {p: open(os.path.join(tmp_path / "static", p), "rb").read()
              for p in sorted(os.listdir(tmp_path / "static"))}
    dyn = {p: open(os.path.join(tmp_path / "dyn", p), "rb").read()
           for p in sorted(os.listdir(tmp_path / "dyn"))}
    assert dyn == static


def test_service_job_with_shards_param(sam_file, tmp_path):
    from repro.runtime.executor import reset_shared_executor, \
        shared_executor_stats
    from repro.service.server import ConversionService
    reset_shared_executor()
    service = ConversionService(tmp_path / "svc", workers=1)
    try:
        static = service.submit("convert", {
            "input": str(sam_file), "target": "bed",
            "out_dir": str(tmp_path / "static"), "nprocs": 2})
        dynamic = service.submit("convert", {
            "input": str(sam_file), "target": "bed",
            "out_dir": str(tmp_path / "dyn"), "nprocs": 2,
            "shards": 4, "executor": "thread"})
        assert service.pool.wait_all(timeout=60)
        static_job = service.pool.get(static.job_id)
        dynamic_job = service.pool.get(dynamic.job_id)
        assert static_job.state.value == "done", static_job.error
        assert dynamic_job.state.value == "done", dynamic_job.error

        def job_bytes(job):
            return {os.path.basename(p): open(p, "rb").read()
                    for p in job.result["outputs"]}
        assert job_bytes(dynamic_job) == job_bytes(static_job)
        # The scheduler mirrors shared-pool stats into gauges.
        snapshot = service.metrics.snapshot()
        gauges = snapshot["gauges"]
        assert "executor_calls" in gauges
        assert shared_executor_stats()["calls"] >= 1
    finally:
        service.close()
        reset_shared_executor()


# -- Columnar stores: shards x kernels x the v1 reference ------------

@pytest.mark.parametrize("target", ["bed", "sam"])
@pytest.mark.parametrize("executor", EXECUTORS)
def test_bamc_sharded_identity_vs_bamx(bam_file, tmp_path, executor,
                                       target):
    """Sharded columnar conversion == static row-store conversion.

    ``bed`` exercises the vectorized kernel emitters; ``sam`` has no
    kernel, so every columnar slab takes the record-driver fallback —
    both must reproduce the v1 bytes under over-decomposition.
    """
    row = BamConverter()
    bamx, _, _ = row.preprocess(bam_file, tmp_path / "wx")
    static = row.convert(bamx, target, tmp_path / "static", nprocs=3)
    col = BamConverter(shards_per_rank=4, store_format="bamc")
    bamc, _, _ = col.preprocess(bam_file, tmp_path / "wc")
    sharded = col.convert(bamc, target, tmp_path / f"dyn-{executor}",
                          nprocs=3, executor=executor)
    assert read_parts(sharded) == read_parts(static)
    assert_no_shard_leftovers(tmp_path / f"dyn-{executor}")


@pytest.mark.parametrize("target", ["bed", "sam"])
def test_bamc_region_sharded_identity_vs_bamx(bam_file, tmp_path,
                                              target):
    row = BamConverter()
    bamx, baix, _ = row.preprocess(bam_file, tmp_path / "wx")
    static = row.convert_region(bamx, baix, "chr1:1-40000", target,
                                tmp_path / "static", nprocs=2)
    col = BamConverter(shards_per_rank=3, store_format="bamc")
    bamc, cbaix, _ = col.preprocess(bam_file, tmp_path / "wc")
    sharded = col.convert_region(bamc, cbaix, "chr1:1-40000", target,
                                 tmp_path / "dyn", nprocs=2,
                                 executor="process")
    assert read_parts(sharded) == read_parts(static)
    assert_no_shard_leftovers(tmp_path / "dyn")


def test_bamc_sharded_with_filter(bam_file, tmp_path):
    f = RecordFilter(min_mapq=30, primary_only=True)
    row = BamConverter()
    bamx, _, _ = row.preprocess(bam_file, tmp_path / "wx")
    static = row.convert(bamx, "fastq", tmp_path / "s", nprocs=2,
                         record_filter=f)
    col = BamConverter(shards_per_rank=5, store_format="bamc")
    bamc, _, _ = col.preprocess(bam_file, tmp_path / "wc")
    sharded = col.convert(bamc, "fastq", tmp_path / "d", nprocs=2,
                          executor="process", record_filter=f)
    assert read_parts(sharded) == read_parts(static)


def test_preproc_sam_converter_bamc_parts(sam_file, tmp_path):
    """PreprocSamConverter writes .bamc rank parts and its end-to-end
    conversion matches the row-store run byte for byte."""
    row = PreprocSamConverter()
    col = PreprocSamConverter(store_format="bamc")
    row_paths, _ = row.preprocess(sam_file, tmp_path / "wx", nprocs=2)
    col_paths, _ = col.preprocess(sam_file, tmp_path / "wc", nprocs=2)
    assert all(p.endswith(".bamx") for p in row_paths)
    assert all(p.endswith(".bamc") for p in col_paths)
    static = row.convert(row_paths, "bedgraph", tmp_path / "s",
                         nprocs=2)
    columnar = col.convert(col_paths, "bedgraph", tmp_path / "d",
                           nprocs=2)
    assert read_parts(columnar) == read_parts(static)


# -- Straggler re-splitting: every target, forced mid-job ------------

@pytest.mark.parametrize("target", target_names())
def test_resplit_identity_all_targets(sam_file, tmp_path, target):
    """With a tiny budget override and an injected per-batch delay,
    every splittable shard yields mid-job and re-splits its remaining
    range; the final bytes must equal the static single-shard run for
    every registered target (binary targets decline to split and just
    run static)."""
    from repro.runtime import faults
    from repro.runtime.autotune import AutoTuner, CostModel

    static = SamConverter().convert(sam_file, target,
                                    tmp_path / "static", nprocs=2)
    faults.arm("shard.batch:delay")
    try:
        for executor in ("simulate", "thread"):
            tuner = AutoTuner(CostModel(tmp_path / f"m-{executor}.json"),
                              budget_override=0.001)
            resplit = SamConverter(
                shards_per_rank=3, batch_size=32, tuner=tuner).convert(
                sam_file, target, tmp_path / f"re-{executor}", nprocs=2,
                executor=executor)
            assert read_parts(resplit) == read_parts(static), \
                f"{target} via {executor}"
            assert_no_shard_leftovers(tmp_path / f"re-{executor}")
    finally:
        faults.disarm()


def test_auto_shards_identity_vs_static(sam_file, tmp_path):
    """`--shards auto` (cold, then warm from the persisted model) must
    match the static bytes on the same workload."""
    from repro.runtime.autotune import AutoTuner, CostModel

    static = SamConverter().convert(sam_file, "bed", tmp_path / "static",
                                    nprocs=3)
    model_path = tmp_path / "model.json"
    for run, executor in (("cold", "simulate"), ("warm", "thread"),
                          ("warm2", "process")):
        auto = SamConverter(
            shards_per_rank="auto",
            tuner=AutoTuner(CostModel(model_path), workers=3)).convert(
            sam_file, "bed", tmp_path / run, nprocs=3,
            executor=executor)
        assert read_parts(auto) == read_parts(static), run
        assert_no_shard_leftovers(tmp_path / run)
