"""Tests for the seed-and-extend aligner (the BWA stand-in)."""

import pytest

from repro.formats.flags import Flag
from repro.simdata.aligner import Aligner, AlignerConfig, KmerIndex, \
    coordinate_sort
from repro.simdata.genome import Genome
from repro.simdata.reads import ReadSimConfig, ReadSimulator


@pytest.fixture(scope="module")
def setup():
    genome = Genome.synthesize([("chr1", 20_000), ("chr2", 10_000)],
                               seed=21)
    sim = ReadSimulator(genome, ReadSimConfig(junk_fraction=0.0), seed=22)
    aligner = Aligner(genome)
    return genome, sim, aligner


def test_kmer_index_lookup():
    genome = Genome.synthesize([("c", 500)], seed=1)
    index = KmerIndex(genome, k=15)
    seq = genome.sequence("c")
    hits = index.lookup(seq[100:115])
    assert (0, 100) in hits
    assert index.lookup("Q" * 15) == []


def test_aligner_recovers_simulated_positions(setup):
    genome, sim, aligner = setup
    pairs = sim.simulate(60)
    correct = 0
    total = 0
    for r1, r2 in pairs:
        rec1, rec2 = aligner.align_pair(r1, r2)
        for rec, read in ((rec1, r1), (rec2, r2)):
            total += 1
            if rec.is_mapped and rec.rname == read.true_chrom \
                    and rec.pos == read.true_pos \
                    and rec.is_reverse == read.true_reverse:
                correct += 1
    assert correct / total > 0.95


def test_junk_reads_come_out_unmapped(setup):
    genome, _, aligner = setup
    sim = ReadSimulator(genome, ReadSimConfig(junk_fraction=1.0), seed=30)
    r1, r2 = sim.simulate_pair(0)
    rec1, rec2 = aligner.align_pair(r1, r2)
    assert not rec1.is_mapped and not rec2.is_mapped
    assert rec1.rname == "*" and rec1.cigar == []
    assert rec1.flag & Flag.MATE_UNMAPPED


def test_mate_fields_cross_linked(setup):
    genome, sim, aligner = setup
    r1, r2 = sim.simulate_pair(0)
    rec1, rec2 = aligner.align_pair(r1, r2)
    if rec1.is_mapped and rec2.is_mapped:
        assert rec1.pnext == rec2.pos
        assert rec2.pnext == rec1.pos
        assert rec1.rnext == "="
        assert rec1.tlen == -rec2.tlen != 0


def test_proper_pair_flag_for_fr_pairs(setup):
    genome, sim, aligner = setup
    proper = 0
    pairs = sim.simulate(40)
    for r1, r2 in pairs:
        rec1, rec2 = aligner.align_pair(r1, r2)
        if rec1.flag & Flag.PROPER_PAIR:
            assert rec2.flag & Flag.PROPER_PAIR
            proper += 1
    assert proper > 30  # nearly every simulated pair is FR and close


def test_records_validate(setup):
    genome, sim, aligner = setup
    for r1, r2 in sim.simulate(20):
        rec1, rec2 = aligner.align_pair(r1, r2)
        rec1.validate()
        rec2.validate()


def test_nm_tag_counts_mismatches(setup):
    genome, sim, aligner = setup
    for r1, r2 in sim.simulate(10):
        rec1, _ = aligner.align_pair(r1, r2)
        if rec1.is_mapped and rec1.pos == r1.true_pos:
            nm = rec1.get_tag("NM")
            ref_piece = genome.sequence(rec1.rname)[
                rec1.pos:rec1.pos + len(r1.sequence)]
            true_mismatches = sum(a != b for a, b
                                  in zip(r1.sequence, ref_piece))
            assert nm is not None and nm.value == true_mismatches


def test_reverse_read_stored_forward(setup):
    """SAM stores SEQ on the forward strand; original_sequence() must
    recover the instrument read."""
    genome, sim, aligner = setup
    for r1, r2 in sim.simulate(10):
        _, rec2 = aligner.align_pair(r1, r2)
        if rec2.is_mapped and rec2.is_reverse:
            assert rec2.original_sequence() == r2.sequence
            assert rec2.original_qualities() == r2.quality


def test_coordinate_sort(setup):
    genome, sim, aligner = setup
    records = aligner.align_all(sim.simulate(30))
    sorted_records = coordinate_sort(records, aligner.header)
    keys = []
    for rec in sorted_records:
        if rec.rname == "*" or rec.pos < 0:
            keys.append((1 << 30, 0))
        else:
            keys.append((aligner.header.ref_id(rec.rname), rec.pos))
    assert keys == sorted(keys)
    assert sorted(id(r) for r in records) == \
        sorted(id(r) for r in sorted_records)


def test_read_group_stamped(setup):
    genome, sim, aligner = setup
    assert any(l.type == "RG" and l.get("ID") == Aligner.READ_GROUP
               for l in aligner.header.lines)
    assert any(l.type == "PG" for l in aligner.header.lines)
    r1, r2 = sim.simulate_pair(0)
    rec1, _ = aligner.align_pair(r1, r2)
    if rec1.is_mapped:
        rg = rec1.get_tag("RG")
        assert rg is not None and rg.value == Aligner.READ_GROUP


def test_read_group_survives_bam_roundtrip(setup, tmp_path):
    from repro.formats.bam import read_bam, write_bam
    genome, sim, aligner = setup
    records = aligner.align_all(sim.simulate(5))
    path = tmp_path / "rg.bam"
    write_bam(path, aligner.header, records)
    header, back = read_bam(path)
    assert any(l.type == "RG" for l in header.lines)
    assert back == records


def test_config_validation():
    with pytest.raises(Exception):
        AlignerConfig(k=4)
    with pytest.raises(Exception):
        AlignerConfig(seeds_per_read=0)
