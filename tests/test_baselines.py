"""Tests for the Picard-like sequential baseline converters."""

from repro.baselines import bam_to_fastq, bam_to_sam, sam_to_bam, \
    sam_to_fastq
from repro.formats.bam import read_bam
from repro.formats.fastq import read_fastq
from repro.formats.sam import read_sam


def test_sam_to_fastq_counts(tmp_path, sam_file, workload):
    _, _, records = workload
    result = sam_to_fastq(sam_file, tmp_path / "o.fastq")
    assert result.records == len(records)
    primary_with_seq = sum(
        1 for r in records
        if not r.flag & 0x900 and r.seq != "*")
    assert result.emitted == primary_with_seq
    assert len(read_fastq(result.output)) == result.emitted


def test_sam_to_fastq_restores_orientation(tmp_path, sam_file, workload):
    _, _, records = workload
    result = sam_to_fastq(sam_file, tmp_path / "o.fastq")
    entries = {r.name: r for r in read_fastq(result.output)}
    for rec in records:
        if rec.flag & 0x900 or rec.seq == "*":
            continue
        mate = rec.mate_number
        name = f"{rec.qname}/{mate}" if mate else rec.qname
        assert entries[name].sequence == rec.original_sequence()


def test_bam_to_fastq_matches_sam_to_fastq(tmp_path, sam_file, bam_file):
    a = sam_to_fastq(sam_file, tmp_path / "a.fastq")
    b = bam_to_fastq(bam_file, tmp_path / "b.fastq")
    assert open(a.output).read() == open(b.output).read()


def test_bam_to_sam_roundtrip(tmp_path, bam_file, workload):
    _, header, records = workload
    result = bam_to_sam(bam_file, tmp_path / "o.sam")
    assert result.records == len(records)
    header2, records2 = read_sam(result.output)
    assert records2 == records


def test_sam_to_bam_roundtrip(tmp_path, sam_file, workload):
    _, _, records = workload
    result = sam_to_bam(sam_file, tmp_path / "o.bam")
    _, records2 = read_bam(result.output)
    assert records2 == records


def test_baseline_matches_our_converter_output(tmp_path, sam_file):
    """Table I comparability: the baseline and our SAM converter must
    produce identical FASTQ bytes for the same input."""
    from repro.core import SamConverter
    baseline = sam_to_fastq(sam_file, tmp_path / "picard.fastq")
    ours = SamConverter().convert(sam_file, "fastq", tmp_path / "ours",
                                  nprocs=1)
    baseline_bytes = open(baseline.output, "rb").read()
    ours_bytes = b"".join(open(p, "rb").read() for p in ours.outputs)
    assert baseline_bytes == ours_bytes
