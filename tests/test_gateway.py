"""Tests for the async gateway subsystem: framing robustness, TCP +
unix transports, admission control (explicit ``overloaded`` errors),
long-poll ``wait``, keepalive pings, connect retry, graceful drain,
and the ≥200-concurrent-submitter stress acceptance test."""

from __future__ import annotations

import asyncio
import json
import os
import socket as socketlib
import threading
import time

import pytest

from repro.errors import ProtocolError, ServiceError, \
    ServiceOverloadedError
from repro.runtime.metrics import ServiceMetrics
from repro.service import ConversionService, GatewayConfig, Job, \
    ServiceClient, ServiceDaemon, WorkerPool
from repro.service import protocol
from repro.service.gateway.framing import FrameError, FrameReader


# ---------------------------------------------------------------------
# framing codec


def run_frames(payload: bytes, max_line: int = protocol.MAX_LINE):
    """Feed *payload* through a FrameReader; collect frames/errors."""

    async def drive():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        frames = FrameReader(reader, max_line=max_line)
        out = []
        while True:
            try:
                frame = await frames.read_frame()
            except FrameError as exc:
                out.append(exc)
                continue
            if frame is None:
                return out
            out.append(frame)

    return asyncio.run(drive())


def test_framing_decodes_pipelined_frames():
    out = run_frames(b'{"op":"ping"}\n{"op":"status"}\n')
    assert out == [{"op": "ping"}, {"op": "status"}]


def test_framing_bad_json_keeps_stream_synchronized():
    out = run_frames(b'not json\n{"op":"ping"}\n')
    assert isinstance(out[0], FrameError)
    assert out[1] == {"op": "ping"}


def test_framing_oversized_line_is_skipped():
    big = b"x" * 600 + b"\n"
    out = run_frames(big + b'{"op":"ping"}\n', max_line=256)
    assert isinstance(out[0], FrameError)
    assert "line cap" in str(out[0])
    assert out[1] == {"op": "ping"}


def test_framing_partial_final_line_decodes():
    out = run_frames(b'{"op":"ping"}')        # EOF without newline
    assert out == [{"op": "ping"}]


def test_framing_non_object_frame_rejected():
    out = run_frames(b'[1,2,3]\n')
    assert isinstance(out[0], FrameError)
    assert "JSON object" in str(out[0])


# ---------------------------------------------------------------------
# address parsing


def test_parse_address_forms():
    assert protocol.parse_address("127.0.0.1:8555") == \
        ("127.0.0.1", 8555)
    assert protocol.parse_address(":9000") == ("127.0.0.1", 9000)
    assert protocol.parse_address("0") == ("127.0.0.1", 0)
    assert protocol.parse_address("[::1]:80") == ("::1", 80)


def test_parse_address_rejects_garbage():
    with pytest.raises(ProtocolError, match="bad service address"):
        protocol.parse_address("nope")
    with pytest.raises(ProtocolError, match="out of range"):
        protocol.parse_address("h:70000")


# ---------------------------------------------------------------------
# a lightweight service for gateway-behavior tests (no conversions)


class EchoService:
    """Minimal ConversionService stand-in: pool + metrics + façade."""

    def __init__(self, runner=None, workers: int = 2) -> None:
        self.metrics = ServiceMetrics()
        self.pool = WorkerPool(
            runner if runner is not None else
            (lambda job: dict(job.params)),
            workers=workers, metrics=self.metrics, trace_jobs=False)

    def submit(self, kind, params, priority=0, timeout=None,
               max_retries=0, backoff=0.1):
        return self.pool.submit(Job(
            kind=kind, params=dict(params), priority=priority,
            timeout=timeout, max_retries=max_retries, backoff=backoff))

    def status(self, job_id=None):
        if job_id is not None:
            return self.pool.get(job_id).to_dict()
        return [job.to_dict() for job in self.pool.jobs()]

    def cancel(self, job_id):
        return self.pool.cancel(job_id)

    def wait(self, job_id, timeout=None):
        job = self.pool.get(job_id)
        job.wait(timeout)
        return job.to_dict()

    def trace(self, job_id):
        return list(self.pool.get(job_id).trace)

    def metrics_snapshot(self):
        return self.metrics.snapshot()

    def close(self):
        self.pool.shutdown()


def start_daemon(tmp_path, service, *, unix=True, tcp=True,
                 config: GatewayConfig | None = None) -> ServiceDaemon:
    daemon = ServiceDaemon(
        service,
        socket_path=str(tmp_path / "gw.sock") if unix else None,
        listen=("127.0.0.1", 0) if tcp else None,
        config=config)
    daemon.start()
    return daemon


def raw_connect(daemon, transport: str):
    """A raw (socket, buffered rw file) pair to one daemon listener."""
    if transport == "unix":
        sock = socketlib.socket(socketlib.AF_UNIX,
                                socketlib.SOCK_STREAM)
        sock.connect(daemon.socket_path)
    else:
        sock = socketlib.create_connection(daemon.tcp_address)
    sock.settimeout(10)
    return sock, sock.makefile("rwb")


def read_response(stream) -> dict:
    """Next non-event frame from a raw stream."""
    while True:
        line = stream.readline()
        assert line, "connection closed while waiting for a response"
        frame = json.loads(line)
        if not protocol.is_event(frame):
            return frame


# ---------------------------------------------------------------------
# transports and protocol robustness


def test_tcp_and_unix_roundtrip(tmp_path):
    service = EchoService()
    daemon = start_daemon(tmp_path, service)
    try:
        assert daemon.tcp_address is not None
        for address in (daemon.socket_path, daemon.tcp_address):
            with ServiceClient(address) as client:
                assert client.ping()
                job = client.submit("k", {"x": 1})
                final = client.wait(job["job_id"], timeout=10)
                assert final["state"] == "done"
                assert final["result"] == {"x": 1}
        snap = service.metrics_snapshot()
        assert snap["counters"]["gateway_connections_total"] == 2
        assert snap["counters"]["gateway_requests_total"] >= 6
        assert "gateway_request_seconds" in snap["timers"]
    finally:
        daemon.stop()


@pytest.mark.parametrize("transport", ["unix", "tcp"])
def test_bad_frames_keep_session_alive(tmp_path, transport):
    """Malformed JSON and oversized frames get structured bad_frame
    errors and the connection keeps serving (both transports)."""
    service = EchoService()
    daemon = start_daemon(tmp_path, service)
    try:
        sock, stream = raw_connect(daemon, transport)
        try:
            # 1: malformed JSON
            stream.write(b"this is not json\n")
            stream.flush()
            response = read_response(stream)
            assert response["ok"] is False
            assert response["code"] == "bad_frame"
            assert "bad_frame" in response["error"]
            assert "bad protocol line" in response["error"]
            # 2: oversized frame (> MAX_LINE before the newline)
            stream.write(b"y" * (protocol.MAX_LINE + 64) + b"\n")
            stream.flush()
            response = read_response(stream)
            assert response["ok"] is False
            assert response["code"] == "bad_frame"
            assert "line cap" in response["error"]
            # 3: the session is still alive and serving
            stream.write(protocol.encode({"op": "ping"}))
            stream.flush()
            response = read_response(stream)
            assert response == {"ok": True, "pong": True}
        finally:
            sock.close()
        assert service.metrics.counter("gateway_bad_frames") == 2
    finally:
        daemon.stop()


def test_pipelined_requests_answered_in_order(tmp_path):
    service = EchoService()
    daemon = start_daemon(tmp_path, service, unix=False)
    try:
        sock, stream = raw_connect(daemon, "tcp")
        try:
            stream.write(protocol.encode({"op": "status"}) +
                         protocol.encode({"op": "ping"}) +
                         protocol.encode({"op": "metrics"}))
            stream.flush()
            first = read_response(stream)
            second = read_response(stream)
            third = read_response(stream)
            assert "jobs" in first
            assert second.get("pong") is True
            assert "metrics" in third
        finally:
            sock.close()
    finally:
        daemon.stop()


def test_keepalive_ping_events_on_idle(tmp_path):
    config = GatewayConfig(keepalive_interval=0.05)
    service = EchoService()
    daemon = start_daemon(tmp_path, service, unix=False,
                          config=config)
    try:
        sock, stream = raw_connect(daemon, "tcp")
        try:
            line = stream.readline()      # server speaks first: ping
            assert json.loads(line) == {"event": "ping"}
            stream.write(protocol.encode({"op": "ping"}))
            stream.flush()
            assert read_response(stream)["pong"] is True
        finally:
            sock.close()
        assert service.metrics.counter("gateway_keepalive_pings") >= 1
    finally:
        daemon.stop()


def test_idle_timeout_disconnects(tmp_path):
    config = GatewayConfig(keepalive_interval=None, idle_timeout=0.1)
    service = EchoService()
    daemon = start_daemon(tmp_path, service, unix=False,
                          config=config)
    try:
        sock, stream = raw_connect(daemon, "tcp")
        try:
            assert stream.readline() == b""     # server closes
        finally:
            sock.close()
        assert service.metrics.counter("gateway_idle_disconnects") == 1
    finally:
        daemon.stop()


# ---------------------------------------------------------------------
# admission control and backpressure


def test_overload_is_explicit_never_silent(tmp_path):
    gate = threading.Event()
    service = EchoService(runner=lambda job: gate.wait(30),
                          workers=1)
    config = GatewayConfig(max_pending_jobs=2)
    daemon = start_daemon(tmp_path, service, unix=False,
                          config=config)
    try:
        with ServiceClient(daemon.tcp_address) as client:
            admitted = []
            rejected = 0
            for i in range(8):
                try:
                    admitted.append(
                        client.submit("k", {"i": i})["job_id"])
                except ServiceOverloadedError as exc:
                    rejected += 1
                    assert "overloaded" in str(exc)
            # The worker grabs one job; the queue holds at most the
            # configured two more.  Nothing is silently dropped.
            assert rejected >= 5
            assert 1 <= len(admitted) <= 3
            gate.set()
            for job_id in admitted:
                final = client.wait(job_id, timeout=10)
                assert final["state"] == "done"
        assert service.metrics.counter(
            "gateway_rejected_overloaded") == rejected
    finally:
        gate.set()
        daemon.stop()


def test_graceful_drain_finishes_inflight_jobs(tmp_path):
    service = EchoService(runner=lambda job: time.sleep(0.2) or "ok",
                          workers=2)
    daemon = start_daemon(tmp_path, service, unix=False)
    address = daemon.tcp_address
    with ServiceClient(address) as client:
        jobs = [client.submit("k", {"i": i})["job_id"]
                for i in range(5)]
    daemon.stop()       # drain: finish in-flight jobs, then close
    states = {job.job_id: job.state.value
              for job in service.pool.jobs()}
    assert set(states) == set(jobs)
    assert all(state == "done" for state in states.values()), states
    assert service.metrics.gauge("gateway_draining") == 1
    with pytest.raises(ServiceError, match="cannot reach service"):
        ServiceClient(address)


def test_stop_survives_corrupted_thread_join_state(tmp_path):
    """A KeyboardInterrupt inside ``Thread.join`` can falsely mark the
    loop thread as stopped (bpo-45274 recovery path).  stop() must
    still wait for real shutdown — including the socket unlink —
    instead of trusting ``Thread.join``."""
    service = EchoService()
    daemon = start_daemon(tmp_path, service)
    socket_path = daemon.socket_path
    thread = daemon.gateway._thread
    # Simulate the corruption: the interrupted join released the
    # tstate lock and called _stop() on a live thread.
    thread._tstate_lock.release()
    thread._stop()
    assert not thread.is_alive()        # the lie stop() must survive
    daemon.stop()
    assert daemon.gateway._finished.is_set()
    assert not os.path.exists(socket_path)


def test_shutdown_op_stops_daemon(tmp_path):
    service = EchoService()
    daemon = start_daemon(tmp_path, service, unix=False)
    address = daemon.tcp_address
    with ServiceClient(address) as client:
        client.shutdown()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            ServiceClient(address).close()
        except ServiceError:
            break
        time.sleep(0.05)
    else:
        pytest.fail("daemon still accepting after shutdown op")
    daemon.stop()       # idempotent


# ---------------------------------------------------------------------
# client behavior: connect retry, long-poll wait


def test_connect_retry_bridges_startup_race(tmp_path):
    service = EchoService()
    with socketlib.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    daemon = ServiceDaemon(service, listen=("127.0.0.1", port))
    started = threading.Timer(0.3, daemon.start)
    started.start()
    try:
        client = ServiceClient(("127.0.0.1", port),
                               connect_retries=10,
                               connect_backoff=0.05)
        with client:
            assert client.ping()
    finally:
        started.join()
        daemon.stop()


def test_connect_failure_after_retries_is_service_error(tmp_path):
    t0 = time.monotonic()
    with pytest.raises(ServiceError, match="cannot reach service"):
        ServiceClient(str(tmp_path / "nothing.sock"),
                      connect_retries=2, connect_backoff=0.01)
    assert time.monotonic() - t0 < 5


def test_wait_long_polls_without_hammering(tmp_path):
    service = EchoService(runner=lambda job: time.sleep(0.5) or "ok")
    daemon = start_daemon(tmp_path, service, unix=False)
    try:
        with ServiceClient(daemon.tcp_address) as client:
            job = client.submit("k", {})
            final = client.wait(job["job_id"], poll_interval=0.1)
            assert final["state"] == "done"
            # ~6 poll chunks for a 0.5 s job; a busy-poll loop would
            # have issued hundreds of status calls.
            requests = service.metrics.counter(
                "gateway_requests_total")
            assert requests <= 20
    finally:
        daemon.stop()


def test_wait_deadline_returns_live_snapshot(tmp_path):
    gate = threading.Event()
    service = EchoService(runner=lambda job: gate.wait(30))
    daemon = start_daemon(tmp_path, service, unix=False)
    try:
        with ServiceClient(daemon.tcp_address) as client:
            job = client.submit("k", {})
            snap = client.wait(job["job_id"], timeout=0.3,
                               poll_interval=0.1)
            assert snap["state"] in ("queued", "running")
            gate.set()
            final = client.wait(job["job_id"], timeout=10)
            assert final["state"] == "done"
    finally:
        gate.set()
        daemon.stop()


# ---------------------------------------------------------------------
# acceptance: concurrency at the front door


N_SUBMITTERS = 200


def test_stress_200_concurrent_tcp_submitters(tmp_path, bam_file):
    """≥200 concurrent TCP submitters: every job completes, nothing is
    lost, overload (if any) is an explicit error, and the gateway
    multiplexes all sessions on one event loop."""
    service = ConversionService(tmp_path / "svc", workers=4)
    config = GatewayConfig(max_pending_jobs=None)
    daemon = ServiceDaemon(service, listen=("127.0.0.1", 0),
                           config=config)
    daemon.start()
    results: list = [None] * N_SUBMITTERS
    errors: list = [None] * N_SUBMITTERS

    def submitter(i: int) -> None:
        try:
            client = ServiceClient(daemon.tcp_address, timeout=120,
                                   connect_retries=5,
                                   connect_backoff=0.05)
            with client:
                job = client.submit("preprocess",
                                    {"input": bam_file})
                results[i] = client.wait(job["job_id"], timeout=120)
        except BaseException as exc:  # noqa: BLE001 — recorded
            errors[i] = exc

    threads = [threading.Thread(target=submitter, args=(i,))
               for i in range(N_SUBMITTERS)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180)
        assert not any(t.is_alive() for t in threads), "hung submitter"
        assert all(e is None for e in errors), \
            [e for e in errors if e is not None][:3]
        job_ids = {r["job_id"] for r in results}
        assert len(job_ids) == N_SUBMITTERS          # no job lost
        assert all(r["state"] == "done" for r in results)
        snap = service.metrics_snapshot()
        assert snap["counters"]["jobs_done"] == N_SUBMITTERS
        assert snap["counters"]["gateway_connections_total"] \
            >= N_SUBMITTERS
        assert snap["counters"].get("gateway_rejected_overloaded",
                                    0) == 0
        # One preprocessing run served all 200 submitters (warm cache).
        assert snap["counters"]["preprocess_runs"] == 1
    finally:
        daemon.stop()


def test_tcp_results_byte_identical_to_unix(tmp_path, bam_file):
    """The transport must not change a single output byte."""
    from .test_service import part_bytes
    service = ConversionService(tmp_path / "svc", workers=2)
    daemon = ServiceDaemon(service,
                           socket_path=str(tmp_path / "gw.sock"),
                           listen=("127.0.0.1", 0))
    daemon.start()
    try:
        outputs = {}
        for transport, address in (
                ("unix", daemon.socket_path),
                ("tcp", daemon.tcp_address)):
            out_dir = tmp_path / f"out-{transport}"
            with ServiceClient(address) as client:
                job = client.submit("region", {
                    "input": bam_file, "region": "chr1:1-30000",
                    "target": "bed", "out_dir": str(out_dir)})
                final = client.wait(job["job_id"], timeout=60)
                assert final["state"] == "done", final["error"]
            outputs[transport] = part_bytes(out_dir)
        assert outputs["unix"]
        assert outputs["unix"] == outputs["tcp"]
    finally:
        daemon.stop()


# ---------------------------------------------------------------------
# CLI integration over TCP


def test_cli_submit_status_cancel_over_tcp(tmp_path, sam_file):
    from repro.cli import main
    service = ConversionService(tmp_path / "svc", workers=1)
    daemon = ServiceDaemon(service, listen=("127.0.0.1", 0))
    daemon.start()
    connect = "%s:%d" % daemon.tcp_address
    try:
        out = tmp_path / "out"
        assert main(["submit", sam_file, "--connect", connect,
                     "--target", "bed", "--out-dir", str(out),
                     "--wait"]) == 0
        assert list(out.glob("*.bed*"))
        assert main(["status", "--connect", connect]) == 0
        assert main(["status", "--connect", connect,
                     "--metrics"]) == 0
    finally:
        daemon.stop()
