"""Tests for the span tracer, its exporters, and the instrumented
converter / runtime / CLI paths."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.tracing import Span, Tracer, _NULL_SPAN, \
    format_summary, format_tree, get_tracer, install, read_jsonl, \
    spans_from_dicts, to_chrome_events, traced, write_chrome, \
    write_jsonl, write_trace


# ---------------------------------------------------------------------
# core tracer behaviour


def test_nested_spans_get_parent_ids():
    tracer = Tracer()
    with tracer.span("outer", "t"):
        with tracer.span("inner", "t"):
            pass
        with tracer.span("inner2", "t"):
            pass
    spans = {s.name: s for s in tracer.spans()}
    assert spans["outer"].parent_id is None
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["inner2"].parent_id == spans["outer"].span_id
    assert spans["inner"].end is not None
    assert spans["outer"].duration >= spans["inner"].duration


def test_span_yields_live_span_for_args():
    tracer = Tracer()
    with tracer.span("work", "t") as span:
        span.args["records"] = 7
    assert tracer.spans()[0].args == {"records": 7}


def test_span_records_error_on_exception():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("nope")
    span = tracer.spans()[0]
    assert span.args["error"] == "ValueError"
    assert span.end is not None


def test_explicit_parent_id_overrides_stack():
    tracer = Tracer()
    with tracer.span("root") as root:
        pass
    with tracer.span("adopted", parent_id=root.span_id):
        pass
    spans = {s.name: s for s in tracer.spans()}
    assert spans["adopted"].parent_id == spans["root"].span_id


def test_rank_context_tags_spans():
    tracer = Tracer()
    with tracer.rank_context(3):
        with tracer.span("a"):
            pass
    with tracer.span("b"):
        pass
    spans = {s.name: s for s in tracer.spans()}
    assert spans["a"].rank == 3
    assert spans["b"].rank is None


def test_monotonic_timeline():
    tracer = Tracer()
    with tracer.span("one"):
        time.sleep(0.002)
    with tracer.span("two"):
        pass
    one, two = tracer.spans()
    assert one.start <= one.end <= two.start <= two.end


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    handle = tracer.span("x", args={"ignored": 1})
    assert handle is _NULL_SPAN          # shared singleton, no alloc
    with handle:
        pass
    assert tracer.spans() == []


def test_thread_safety_parallel_subtrees():
    tracer = Tracer()
    barrier = threading.Barrier(4)

    def work(i: int) -> None:
        barrier.wait()
        with tracer.rank_context(i), tracer.span("rank-root", rank=i):
            for _ in range(5):
                with tracer.span("leaf"):
                    pass

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    spans = tracer.spans()
    assert len(spans) == 4 * 6
    roots = [s for s in spans if s.name == "rank-root"]
    assert sorted(r.rank for r in roots) == [0, 1, 2, 3]
    # Every leaf is parented to the root of its own thread, and tagged
    # with that thread's rank via rank_context.
    by_id = {s.span_id: s for s in spans}
    for leaf in (s for s in spans if s.name == "leaf"):
        assert by_id[leaf.parent_id].rank == leaf.rank


def test_activate_is_thread_local():
    tracer = Tracer()
    seen = {}

    def other() -> None:
        seen["other"] = get_tracer()

    with tracer.activate():
        seen["here"] = get_tracer()
        t = threading.Thread(target=other)
        t.start()
        t.join()
    assert seen["here"] is tracer
    assert seen["other"] is not tracer


def test_install_returns_previous():
    tracer = Tracer()
    prev = install(tracer)
    try:
        assert get_tracer() is tracer
    finally:
        assert install(prev) is tracer
    assert get_tracer() is prev


def test_traced_decorator_resolves_at_call_time():
    @traced("fn.work", "test")
    def work(x):
        return x * 2

    tracer = Tracer()
    prev = install(tracer)
    try:
        assert work(21) == 42
    finally:
        install(prev)
    assert work(1) == 2                  # disabled path after restore
    spans = tracer.spans()
    assert [s.name for s in spans] == ["fn.work"]
    assert spans[0].category == "test"


def test_ingest_remaps_ids_and_attaches_parent():
    parent = Tracer()
    with parent.span("launch") as launch:
        pass
    child = Tracer(epoch=parent.epoch)
    with child.span("rank-root"):
        with child.span("leaf"):
            pass
    merged = parent.ingest([s.to_dict() for s in child.spans()],
                           rank=2, parent_id=launch.span_id)
    assert merged == 2
    spans = {s.name: s for s in parent.spans()}
    assert spans["rank-root"].parent_id == spans["launch"].span_id
    assert spans["rank-root"].rank == 2
    assert spans["leaf"].parent_id == spans["rank-root"].span_id
    ids = [s.span_id for s in parent.spans()]
    assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------
# exporters


def _sample_spans() -> list[Span]:
    tracer = Tracer()
    with tracer.span("outer", "cat", args={"n": 1}):
        with tracer.span("inner", rank=1):
            pass
    return tracer.spans()


def test_jsonl_round_trip(tmp_path):
    spans = _sample_spans()
    path = tmp_path / "t.trace"
    assert write_jsonl(spans, path) == 2
    back = read_jsonl(path)
    assert [s.to_dict() for s in back] == [s.to_dict() for s in spans]


def test_read_jsonl_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text('{"span_id": 1}\nnot json\n')
    with pytest.raises(RuntimeLayerError):
        read_jsonl(path)


def test_chrome_events_shape():
    spans = _sample_spans()
    events = to_chrome_events(spans)
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["pid"] == 0
    # Rank 1 gets its own named track.
    assert any(e["args"]["name"] == "rank 1" for e in meta)


def test_jsonl_to_chrome_pipeline(tmp_path):
    """JSON-lines traces convert losslessly into the Chrome format."""
    spans = _sample_spans()
    jsonl = tmp_path / "t.trace"
    write_jsonl(spans, jsonl)
    chrome = tmp_path / "t.json"
    assert write_chrome(read_jsonl(jsonl), chrome) > 0
    doc = json.loads(chrome.read_text())
    assert {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"} \
        == {"outer", "inner"}
    assert doc["displayTimeUnit"] == "ms"


def test_write_trace_dispatches_on_extension(tmp_path):
    spans = _sample_spans()
    write_trace(spans, tmp_path / "a.json")
    write_trace(spans, tmp_path / "a.trace")
    assert "traceEvents" in json.loads((tmp_path / "a.json").read_text())
    assert len(read_jsonl(tmp_path / "a.trace")) == len(spans)


def test_format_tree_and_summary():
    spans = _sample_spans()
    tree = format_tree(spans)
    assert "outer" in tree and "inner" in tree and "rank=1" in tree
    summary = format_summary(spans)
    assert "outer" in summary and "wall" in summary
    assert format_tree([]) == "(no spans recorded)"


def test_format_tree_collapses_sibling_bursts():
    tracer = Tracer()
    with tracer.span("root"):
        for _ in range(10):
            with tracer.span("block"):
                pass
    tree = format_tree(tracer.spans())
    assert "block x10" in tree
    assert tree.count("block") == 1


def test_spans_from_dicts_round_trip():
    spans = _sample_spans()
    rebuilt = spans_from_dicts(s.to_dict() for s in spans)
    assert [s.to_dict() for s in rebuilt] == [s.to_dict() for s in spans]


# ---------------------------------------------------------------------
# instrumented converter / runtime paths


@pytest.fixture()
def installed_tracer():
    tracer = Tracer()
    prev = install(tracer)
    yield tracer
    install(prev)


def _span_names(tracer: Tracer) -> set[str]:
    return {s.name for s in tracer.spans()}


def test_bam_pipeline_spans(installed_tracer, bam_file, tmp_path):
    from repro.core import BamConverter
    converter = BamConverter()
    with installed_tracer.span("cli.convert", "cli"):
        store, _, _ = converter.preprocess(bam_file, str(tmp_path / "w"))
        converter.convert(store, "bed", str(tmp_path / "out"), nprocs=2)
    names = _span_names(installed_tracer)
    assert {"cli.convert", "preprocess", "plan", "write", "index",
            "convert", "rank", "decompress"} <= names
    spans = installed_tracer.spans()
    root = next(s for s in spans if s.name == "cli.convert")
    phases = [s for s in spans if s.parent_id == root.span_id]
    assert {p.name for p in phases} == {"preprocess", "convert"}
    # Acceptance: the phase spans account for the run's wall-clock.
    assert sum(p.duration for p in phases) <= root.duration * 1.001
    assert sum(p.duration for p in phases) >= root.duration * 0.7


@pytest.mark.parametrize("executor", ["simulate", "thread", "process"])
def test_rank_spans_nest_under_convert(installed_tracer, bam_file,
                                       tmp_path, executor):
    from repro.core import BamConverter
    converter = BamConverter()
    store, _, _ = converter.preprocess(bam_file, str(tmp_path / "w"))
    converter.convert(store, "bed", str(tmp_path / "out"), nprocs=3,
                      executor=executor)
    spans = installed_tracer.spans()
    convert = next(s for s in spans if s.name == "convert")
    ranks = [s for s in spans if s.name == "rank"]
    assert sorted(r.rank for r in ranks) == [0, 1, 2]
    for rank_span in ranks:
        assert rank_span.parent_id == convert.span_id
    # Per-rank write spans nest under their rank span and carry its rank.
    by_id = {s.span_id: s for s in spans}
    writes = [s for s in spans if s.name == "write" and s.rank is not None]
    assert len(writes) == 3
    for write in writes:
        assert by_id[write.parent_id].rank == write.rank


def test_sam_converter_spans(installed_tracer, sam_file, tmp_path):
    from repro.core import SamConverter
    SamConverter().convert(sam_file, "bed", str(tmp_path / "out"),
                           nprocs=2)
    names = _span_names(installed_tracer)
    assert {"convert", "partition"} <= names
    convert = next(s for s in installed_tracer.spans()
                   if s.name == "convert")
    assert convert.category == "sam"


def test_samp_preprocess_spans(installed_tracer, sam_file, tmp_path):
    from repro.core import PreprocSamConverter
    PreprocSamConverter().preprocess(sam_file, str(tmp_path / "w"),
                                     nprocs=2)
    names = _span_names(installed_tracer)
    assert {"preprocess", "partition", "rank", "parse", "write",
            "index"} <= names


def test_region_conversion_spans(installed_tracer, bam_file, tmp_path):
    from repro.core import BamConverter
    converter = BamConverter()
    store, baix, _ = converter.preprocess(bam_file, str(tmp_path / "w"))
    converter.convert_region(store, baix, "chr1:1-30000", "bed",
                             str(tmp_path / "out"), nprocs=2)
    names = _span_names(installed_tracer)
    assert {"convert.region", "locate"} <= names


def test_spmd_process_backend_gathers_spans(installed_tracer):
    from repro.runtime.spmd import run_spmd
    with installed_tracer.span("launch") as launch:
        run_spmd(_spmd_rank_fn, 3, backend="process")
    spans = installed_tracer.spans()
    rank_spans = [s for s in spans if s.name == "spmd.rank"]
    assert sorted(s.rank for s in rank_spans) == [0, 1, 2]
    for span in rank_spans:
        assert span.parent_id == launch.span_id


def _spmd_rank_fn(comm):
    # Module-level so the process backend can pickle it.
    comm.barrier()
    return comm.rank


def test_partition_spans(installed_tracer, sam_file):
    from repro.runtime.partition import partition_text_file
    partition_text_file(sam_file, 4)
    assert "partition.algorithm1" in _span_names(installed_tracer)


def test_bgzf_threaded_writer_spans(installed_tracer, tmp_path):
    from repro.formats.bgzf import BgzfReader
    from repro.formats.bgzf_threads import ThreadedBgzfWriter
    data = bytes(range(256)) * 1024       # 4 full blocks
    writer = ThreadedBgzfWriter(tmp_path / "t.bgzf", threads=2)
    with installed_tracer.span("emit") as emit:
        writer.write(data)
        writer.close()
    with BgzfReader(tmp_path / "t.bgzf") as reader:
        assert reader.read(-1) == data
    compress = [s for s in installed_tracer.spans()
                if s.name == "compress"]
    assert len(compress) >= 4
    assert all(s.parent_id == emit.span_id for s in compress)
    decompress = [s for s in installed_tracer.spans()
                  if s.name == "decompress"]
    assert len(decompress) >= 4


# ---------------------------------------------------------------------
# disabled-tracer overhead: byte-identical outputs


def _convert_once(bam_file, out_root, trace: bool):
    from repro.core import BamConverter
    converter = BamConverter()
    tracer = Tracer(enabled=trace)
    prev = install(tracer)
    try:
        store, _, _ = converter.preprocess(bam_file, f"{out_root}/w")
        result = converter.convert(store, "bed", f"{out_root}/out",
                                   nprocs=2)
    finally:
        install(prev)
    return result, tracer


def test_outputs_byte_identical_with_and_without_trace(bam_file,
                                                       tmp_path):
    plain, off_tracer = _convert_once(bam_file, str(tmp_path / "a"),
                                      trace=False)
    traced_run, on_tracer = _convert_once(bam_file, str(tmp_path / "b"),
                                          trace=True)
    assert off_tracer.spans() == []
    assert on_tracer.spans() != []
    assert len(plain.outputs) == len(traced_run.outputs)
    for left, right in zip(plain.outputs, traced_run.outputs):
        with open(left, "rb") as fl, open(right, "rb") as fr:
            assert fl.read() == fr.read()


# ---------------------------------------------------------------------
# CLI integration


def test_cli_trace_flag_writes_chrome_trace(tmp_path):
    from repro.cli import main
    bam = tmp_path / "s.bam"
    assert main(["simulate", str(bam), "--templates", "40"]) == 0
    trace_path = tmp_path / "run.json"
    assert main(["convert", str(bam), "--target", "bed",
                 "--out-dir", str(tmp_path / "out"),
                 "--work-dir", str(tmp_path / "w"),
                 "--nprocs", "2", "--trace", str(trace_path)]) == 0
    doc = json.loads(trace_path.read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"cli.convert", "preprocess", "convert", "rank"} <= names


def test_cli_trace_env_var_writes_jsonl(tmp_path, monkeypatch):
    from repro.cli import main
    sam = tmp_path / "s.sam"
    assert main(["simulate", str(sam), "--templates", "30"]) == 0
    trace_path = tmp_path / "run.trace"
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    assert main(["convert", str(sam), "--target", "bed",
                 "--out-dir", str(tmp_path / "out")]) == 0
    spans = read_jsonl(trace_path)
    assert {"cli.convert", "convert", "partition"} <= \
        {s.name for s in spans}


def test_cli_without_trace_installs_nothing(tmp_path):
    from repro.cli import main
    sam = tmp_path / "s.sam"
    assert main(["simulate", str(sam), "--templates", "10"]) == 0
    assert not get_tracer().enabled
