"""Unit tests for the format registry."""

import pytest

from repro.errors import ConversionError
from repro.formats.registry import SOURCE_FORMATS, TARGET_FORMATS, \
    detect_format, get_format, list_formats


def test_known_formats_present():
    names = {f.name for f in list_formats()}
    assert {"sam", "bam", "bamx", "bed", "bedgraph", "fasta", "fastq",
            "wig", "json", "yaml"} <= names


def test_lookup_case_insensitive():
    assert get_format("SAM").name == "sam"
    assert get_format("BedGraph").name == "bedgraph"


def test_unknown_format_rejected():
    with pytest.raises(ConversionError):
        get_format("vcf")


def test_detect_by_extension():
    assert detect_format("/data/x.sam").name == "sam"
    assert detect_format("x.fq").name == "fastq"
    assert detect_format("x.bdg").name == "bedgraph"
    assert detect_format("X.BAM").name == "bam"


def test_detect_unknown_extension():
    with pytest.raises(ConversionError):
        detect_format("x.vcf")


def test_source_and_target_lists_are_registered():
    for name in SOURCE_FORMATS + tuple(TARGET_FORMATS):
        get_format(name)


def test_binary_flags():
    assert get_format("bam").binary
    assert get_format("bamx").binary
    assert not get_format("sam").binary
