"""Unit tests for the persistent shared worker pool
(:mod:`repro.runtime.executor`) and the shard-metrics fold."""

import os
import threading
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RuntimeLayerError
from repro.runtime.executor import (
    ExecutorFailure,
    SharedExecutor,
    get_shared_executor,
    reset_shared_executor,
    resolve_start_method,
    shared_executor_stats,
    simulate_schedule,
)
from repro.runtime.metrics import RankMetrics


# Module-level task functions so the process pool can pickle them.

def _double(x):
    return x * 2


def _boom(x):
    raise ValueError(f"bad item {x}")


def _crash(_x):
    os._exit(3)


def _crash_if_negative(x):
    if x < 0:
        os._exit(3)
    return x


def _thread_name(_x):
    time.sleep(0.02)
    return threading.current_thread().name


_ORDER_LOG: list[int] = []


def _log_order(x):
    _ORDER_LOG.append(x)
    return x


@pytest.fixture()
def executor():
    ex = SharedExecutor(idle_timeout=0)
    yield ex
    ex.shutdown()


# -- dispatch basics -------------------------------------------------

def test_results_come_back_in_input_order(executor):
    items = [5, 1, 4, 2, 3]
    assert executor.map_tasks(_double, items, "thread") == \
        [10, 2, 8, 4, 6]
    # Costs reorder the submission, never the results.
    assert executor.map_tasks(_double, items, "thread",
                              costs=[1, 5, 2, 4, 3]) == [10, 2, 8, 4, 6]


def test_empty_items_short_circuit(executor):
    assert executor.map_tasks(_double, [], "thread") == []
    assert executor.stats()["calls"] == 0


def test_unknown_pool_kind_rejected(executor):
    with pytest.raises(RuntimeLayerError, match="unknown pool kind"):
        executor.map_tasks(_double, [1], "simulate")


def test_costs_length_mismatch_rejected(executor):
    with pytest.raises(RuntimeLayerError, match="costs"):
        executor.map_tasks(_double, [1, 2], "thread", costs=[1.0])


def test_longest_first_submission_order():
    # One worker makes the pool's execution order equal the submission
    # order, exposing the LPT (descending cost) sort.
    ex = SharedExecutor(max_workers=1, idle_timeout=0)
    try:
        _ORDER_LOG.clear()
        ex.map_tasks(_log_order, [10, 30, 20], "thread",
                     costs=[1.0, 3.0, 2.0])
        assert _ORDER_LOG == [30, 20, 10]
    finally:
        ex.shutdown()


def test_process_pool_runs_tasks(executor):
    assert executor.map_tasks(_double, [1, 2, 3], "process") == [2, 4, 6]


# -- oversubscription guard (satellite 1) ----------------------------

def test_worker_cap_defaults_to_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_EXECUTOR_WORKERS", raising=False)
    ex = SharedExecutor(idle_timeout=0)
    try:
        assert ex.max_workers == (os.cpu_count() or 1)
    finally:
        ex.shutdown()


def test_no_thread_per_task_oversubscription():
    """Many more tasks than workers must reuse the capped thread set
    (the old executor spawned ``len(specs)`` threads unconditionally)."""
    ex = SharedExecutor(max_workers=2, idle_timeout=0)
    try:
        names = ex.map_tasks(_thread_name, list(range(16)), "thread")
        assert len(set(names)) <= 2
        assert all(name.startswith("repro-exec") for name in names)
    finally:
        ex.shutdown()


def test_worker_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "3")
    ex = SharedExecutor(idle_timeout=0)
    try:
        assert ex.max_workers == 3
    finally:
        ex.shutdown()


def test_invalid_worker_count_rejected():
    with pytest.raises(RuntimeLayerError, match="max_workers"):
        SharedExecutor(max_workers=0)


# -- warm reuse and idle timeout -------------------------------------

def test_pools_are_reused_across_calls(executor):
    for _ in range(4):
        executor.map_tasks(_double, [1, 2], "thread")
        executor.map_tasks(_double, [1, 2], "process")
    stats = executor.stats()
    assert stats["thread_pool_starts"] == 1
    assert stats["process_pool_starts"] == 1
    assert stats["calls"] == 8
    assert stats["tasks_completed"] == 16


def test_idle_timeout_reclaims_and_recreates_pools():
    ex = SharedExecutor(idle_timeout=0.05)
    try:
        ex.map_tasks(_double, [1], "thread")
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            stats = ex.stats()
            if stats["idle_shutdowns"] >= 1:
                break
            time.sleep(0.02)
        stats = ex.stats()
        assert stats["idle_shutdowns"] >= 1
        assert stats["thread_pool_alive"] == 0
        # The executor survives reclamation: the next call restarts.
        assert ex.map_tasks(_double, [2], "thread") == [4]
        assert ex.stats()["thread_pool_starts"] == 2
    finally:
        ex.shutdown()


def test_shutdown_then_reuse(executor):
    executor.map_tasks(_double, [1], "thread")
    executor.shutdown()
    assert executor.map_tasks(_double, [3], "thread") == [6]


# -- spawn fallback (satellite 2) ------------------------------------

def test_resolve_start_method_prefers_fork_when_available():
    import multiprocessing as mp
    expected = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    assert resolve_start_method() == expected


def test_resolve_start_method_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_START_METHOD", "spawn")
    assert resolve_start_method() == "spawn"


def test_resolve_start_method_rejects_unavailable():
    with pytest.raises(RuntimeLayerError, match="unavailable"):
        resolve_start_method("no-such-method")


def test_forced_spawn_context_runs_tasks():
    """The fork-unsafe-platform fallback: a spawn pool must run the
    same picklable ``fn(item)`` work items."""
    ex = SharedExecutor(max_workers=2, idle_timeout=0,
                        start_method="spawn")
    try:
        assert ex.start_method == "spawn"
        assert ex.map_tasks(_double, [1, 2, 3], "process") == [2, 4, 6]
    finally:
        ex.shutdown()


def test_forced_spawn_conversion_byte_identical(sam_file, tmp_path,
                                                monkeypatch):
    """A whole conversion must work under a spawn-only process pool."""
    from repro.core import SamConverter
    reset_shared_executor()
    monkeypatch.setenv("REPRO_EXECUTOR_START_METHOD", "spawn")
    try:
        spawned = SamConverter().convert(sam_file, "bed",
                                         tmp_path / "spawn", nprocs=2,
                                         executor="process")
    finally:
        reset_shared_executor()
    inline = SamConverter().convert(sam_file, "bed", tmp_path / "sim",
                                    nprocs=2)
    a = b"".join(open(p, "rb").read() for p in spawned.outputs)
    b = b"".join(open(p, "rb").read() for p in inline.outputs)
    assert a == b


# -- crash containment (satellite 4) ---------------------------------

def test_worker_crash_raises_executor_failure_with_label(executor):
    with pytest.raises(ExecutorFailure) as err:
        executor.map_tasks(_crash, [0], "process",
                           labels=["rank 2 shard 1"])
    assert "rank 2 shard 1" in str(err.value)
    assert err.value.label == "rank 2 shard 1"


def test_pool_survives_worker_crash(executor):
    with pytest.raises(ExecutorFailure):
        executor.map_tasks(_crash, [0], "process")
    # The broken pool was discarded; the next call gets a fresh one.
    assert executor.map_tasks(_double, [4], "process") == [8]
    stats = executor.stats()
    assert stats["process_pool_starts"] == 2
    assert stats["tasks_failed"] == 1


def test_crash_in_one_item_of_many(executor):
    with pytest.raises(ExecutorFailure):
        executor.map_tasks(_crash_if_negative, [1, 2, -1, 3], "process",
                           labels=[f"item {i}" for i in range(4)])
    assert executor.map_tasks(_double, [1], "process") == [2]


def test_ordinary_task_exception_propagates_unwrapped(executor):
    """Task-raised exceptions are the caller's contract — they pass
    through unchanged and the pool stays healthy."""
    with pytest.raises(ValueError, match="bad item 7"):
        executor.map_tasks(_boom, [7], "process")
    with pytest.raises(ValueError, match="bad item 7"):
        executor.map_tasks(_boom, [7], "thread")
    stats = executor.stats()
    assert stats["process_pool_starts"] == 1
    assert executor.map_tasks(_double, [1], "process") == [2]


# -- the process-global instance -------------------------------------

def test_global_executor_is_shared_and_resettable():
    reset_shared_executor()
    assert shared_executor_stats() == {}
    ex = get_shared_executor()
    assert ex is get_shared_executor()
    ex.map_tasks(_double, [1], "thread")
    assert shared_executor_stats()["calls"] >= 1
    reset_shared_executor()
    assert shared_executor_stats() == {}


# -- RankMetrics.merge_shards (satellite 3) --------------------------

_metrics_strategy = st.builds(
    RankMetrics,
    compute_seconds=st.floats(0, 1e3, allow_nan=False),
    io_seconds=st.floats(0, 1e3, allow_nan=False),
    bytes_read=st.integers(0, 2**40),
    bytes_written=st.integers(0, 2**40),
    records=st.integers(0, 2**32),
    emitted=st.integers(0, 2**32),
)


@given(_metrics_strategy)
def test_merge_shards_of_one_is_identity(m):
    assert RankMetrics.merge_shards([m]) == m


@given(st.lists(_metrics_strategy, min_size=1, max_size=6),
       st.randoms())
def test_merge_shards_is_order_insensitive(shards, rng):
    shuffled = list(shards)
    rng.shuffle(shuffled)
    assert RankMetrics.merge_shards(shuffled) == \
        RankMetrics.merge_shards(shards)


@given(st.lists(_metrics_strategy, min_size=1, max_size=6))
def test_merge_shards_sums_counters_and_maxes_time(shards):
    merged = RankMetrics.merge_shards(shards)
    assert merged.records == sum(m.records for m in shards)
    assert merged.bytes_read == sum(m.bytes_read for m in shards)
    assert merged.bytes_written == sum(m.bytes_written for m in shards)
    assert merged.emitted == sum(m.emitted for m in shards)
    assert merged.compute_seconds == \
        max(m.compute_seconds for m in shards)
    assert merged.io_seconds == max(m.io_seconds for m in shards)


def test_merge_shards_rejects_empty():
    with pytest.raises(RuntimeLayerError):
        RankMetrics.merge_shards([])


# -- simulate_schedule -----------------------------------------------

def test_simulate_schedule_single_worker_is_sum():
    assert simulate_schedule([3, 1, 2], 1) == pytest.approx(6.0)


def test_simulate_schedule_enough_workers_is_max():
    assert simulate_schedule([3, 1, 2], 8) == pytest.approx(3.0)


def test_simulate_schedule_lpt_beats_arrival_order_on_skew():
    # One big item last: arrival order strands it after the small ones.
    costs = [1, 1, 1, 1, 8]
    lpt = simulate_schedule(costs, 2, longest_first=True)
    arrival = simulate_schedule(costs, 2, longest_first=False)
    assert lpt <= arrival
    assert lpt == pytest.approx(8.0)
    assert arrival == pytest.approx(10.0)


@given(st.lists(st.floats(0.01, 100, allow_nan=False), min_size=1,
                max_size=12),
       st.integers(1, 6))
def test_simulate_schedule_bounds(costs, workers):
    makespan = simulate_schedule(costs, workers)
    assert makespan >= max(costs) - 1e-9
    assert makespan <= sum(costs) + 1e-9
    # Graham's list-scheduling bound: sum/m + (1 - 1/m) * max.
    upper = sum(costs) / workers + \
        (1 - 1 / workers) * max(costs)
    assert makespan <= upper + 1e-9


def test_simulate_schedule_rejects_bad_workers():
    with pytest.raises(RuntimeLayerError):
        simulate_schedule([1.0], 0)


def test_simulate_schedule_empty_is_zero():
    assert simulate_schedule([], 4) == 0.0


def test_simulate_schedule_more_workers_than_tasks():
    # Each task gets its own worker; the makespan is the longest task.
    assert simulate_schedule([3.0, 1.0, 2.0], 8) == pytest.approx(3.0)


def test_simulate_schedule_zero_cost_tasks_are_legal():
    assert simulate_schedule([0.0, 0.0, 0.0], 2) == 0.0
    assert simulate_schedule([0.0, 5.0], 2) == pytest.approx(5.0)


def test_simulate_schedule_single_worker_is_total_work():
    costs = [0.5, 2.0, 1.25]
    assert simulate_schedule(costs, 1) == pytest.approx(sum(costs))


# -- progress callbacks (autotune's completion feed) -----------------

def test_map_tasks_progress_reports_every_item(executor):
    seen = {}

    def progress(index, result, elapsed):
        seen[index] = (result, elapsed)

    out = executor.map_tasks(_double, [5, 6, 7], "thread",
                             progress=progress)
    assert out == [10, 12, 14]
    assert {i: r for i, (r, _) in seen.items()} == {0: 10, 1: 12, 2: 14}
    assert all(elapsed >= 0.0 for _, elapsed in seen.values())


def test_map_tasks_progress_exceptions_do_not_poison_results(executor):
    def progress(_index, _result, _elapsed):
        raise RuntimeError("observer bug")

    assert executor.map_tasks(_double, [1, 2], "thread",
                              progress=progress) == [2, 4]


def test_map_tasks_progress_skips_failed_items(executor):
    calls = []
    with pytest.raises(ValueError):
        executor.map_tasks(_boom, [1], "thread",
                           progress=lambda *a: calls.append(a))
    assert calls == []


# -- friendly REPRO_EXECUTOR_WORKERS validation (satellite) ----------

def test_worker_env_non_integer_names_the_value(monkeypatch):
    from repro.runtime.executor import default_worker_count
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "lots")
    with pytest.raises(RuntimeLayerError,
                       match=r"REPRO_EXECUTOR_WORKERS value 'lots'"):
        default_worker_count()


def test_worker_env_non_positive_names_the_value(monkeypatch):
    from repro.runtime.executor import default_worker_count
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "0")
    with pytest.raises(RuntimeLayerError, match=r"'0'.*>= 1"):
        SharedExecutor(idle_timeout=0)
