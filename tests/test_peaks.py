"""Tests for the peak-calling workflow."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.simdata import build_simulations
from repro.stats.peaks import Peak, call_peaks, empirical_pvalues, \
    regions_from_mask


def planted_signal(seed=3, n_bins=4_000, n_peaks=8):
    rng = np.random.default_rng(seed)
    signal = rng.poisson(5.0, n_bins).astype(float)
    truth = []
    x = np.arange(n_bins)
    for i in range(n_peaks):
        center = 250 + i * (n_bins - 500) // n_peaks
        width = 12
        signal += 50.0 * np.exp(-0.5 * ((x - center) / width) ** 2)
        truth.append((center - 2 * width, center + 2 * width))
    return signal, truth


def test_empirical_pvalues():
    hist = np.array([5.0, 1.0])
    sims = np.array([[4.0, 2.0], [6.0, 0.5], [5.0, 3.0]])
    p = empirical_pvalues(hist, sims)
    # bin 0: sims >= 5 are 6.0 and 5.0 -> 2; bin 1: 2.0 and 3.0 -> 2.
    assert p.tolist() == [2, 2]


def test_regions_from_mask_basic():
    mask = np.array([0, 1, 1, 0, 1, 0, 1, 1, 1], dtype=bool)
    values = np.arange(9, dtype=float)
    peaks = regions_from_mask(mask, values)
    assert [(p.start, p.end) for p in peaks] == [(1, 3), (4, 5), (6, 9)]
    assert peaks[0].max_value == 2.0
    assert peaks[2].mean_value == 7.0


def test_regions_merge_gap():
    mask = np.array([1, 1, 0, 1, 1], dtype=bool)
    values = np.ones(5)
    assert len(regions_from_mask(mask, values, merge_gap=1)) == 1
    assert len(regions_from_mask(mask, values, merge_gap=0)) == 2


def test_regions_min_width():
    mask = np.array([1, 0, 1, 1, 1], dtype=bool)
    values = np.ones(5)
    peaks = regions_from_mask(mask, values, min_width=2)
    assert [(p.start, p.end) for p in peaks] == [(2, 5)]


def test_regions_length_mismatch():
    with pytest.raises(ReproError):
        regions_from_mask(np.array([True]), np.ones(2))


def test_peak_width():
    assert Peak(10, 25, 1.0, 0.5).width == 15


def test_call_peaks_recovers_planted(tmp_path):
    signal, truth = planted_signal()
    sims = build_simulations(signal, 40, seed=9)
    result = call_peaks(signal, sims, target_fdr=0.05, nprocs=4,
                        min_width=2, merge_gap=3)
    assert result.fdr.fdr <= 0.05
    assert result.n_peaks >= len(truth) * 0.7
    recovered = sum(
        1 for lo, hi in truth
        if any(p.start < hi and p.end > lo for p in result.peaks))
    assert recovered >= len(truth) - 1
    # Peaks sit on genuinely elevated signal.
    background = float(np.median(signal))
    for peak in result.peaks:
        assert peak.max_value > background


def test_call_peaks_sweep_recorded():
    signal, _ = planted_signal(seed=4, n_bins=1_000, n_peaks=3)
    sims = build_simulations(signal, 20, seed=10)
    result = call_peaks(signal, sims, thresholds=[0.0, 1.0, 5.0],
                        nprocs=2)
    assert len(result.sweep) == 3
    assert result.threshold in (0.0, 1.0, 5.0)
    assert result.denoised is not None


def test_call_peaks_without_denoising():
    signal, _ = planted_signal(seed=5, n_bins=800, n_peaks=2)
    sims = build_simulations(signal, 15, seed=11)
    result = call_peaks(signal, sims, denoise=False)
    assert result.denoised is None


def test_call_peaks_falls_back_when_target_unreachable():
    rng = np.random.default_rng(0)
    noise = rng.poisson(5.0, 500).astype(float)  # no enrichment at all
    sims = build_simulations(noise, 15, seed=12)
    result = call_peaks(noise, sims, target_fdr=0.0, denoise=False)
    # Strictest candidate chosen; result is still well-formed.
    assert result.fdr is not None
    assert isinstance(result.peaks, list)


def test_call_peaks_validates_target():
    signal, _ = planted_signal(seed=6, n_bins=300, n_peaks=1)
    sims = build_simulations(signal, 5, seed=13)
    with pytest.raises(ReproError):
        call_peaks(signal, sims, target_fdr=1.5)
