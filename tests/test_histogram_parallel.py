"""Tests for parallel histogram construction."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.runtime.spmd import run_spmd
from repro.stats.histogram import histogram_from_records
from repro.stats.histogram_parallel import histogram_parallel, \
    histogram_spmd


@pytest.fixture(scope="module")
def sequential(workload):
    _, header, records = workload
    return histogram_from_records(records, header, bin_size=25)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 8])
def test_parallel_equals_sequential(sam_file, sequential, nprocs):
    parallel, metrics = histogram_parallel(sam_file, bin_size=25,
                                           nprocs=nprocs)
    assert set(parallel) == set(sequential)
    for chrom in sequential:
        assert np.array_equal(parallel[chrom], sequential[chrom]), chrom
    assert len(metrics) == nprocs


def test_rank_metrics_cover_all_records(sam_file, workload):
    _, _, records = workload
    _, metrics = histogram_parallel(sam_file, nprocs=4)
    assert sum(m.records for m in metrics) == len(records)


def test_different_bin_sizes(sam_file, workload):
    _, header, records = workload
    for bin_size in (1, 10, 100):
        parallel, _ = histogram_parallel(sam_file, bin_size=bin_size,
                                         nprocs=3)
        sequential = histogram_from_records(records, header, bin_size)
        for chrom in sequential:
            assert np.array_equal(parallel[chrom], sequential[chrom])


def test_invalid_nprocs(sam_file):
    with pytest.raises(ReproError):
        histogram_parallel(sam_file, nprocs=0)


def test_headerless_sam_rejected(tmp_path):
    path = tmp_path / "bare.sam"
    path.write_text("r\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII\n")
    with pytest.raises(ReproError):
        histogram_parallel(path)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_spmd_matches_sequential(sam_file, sequential, backend):
    results = run_spmd(
        lambda comm: histogram_spmd(comm, sam_file, bin_size=25),
        3, backend=backend)
    assert results[1] is None and results[2] is None
    for chrom in sequential:
        assert np.array_equal(results[0][chrom], sequential[chrom])
