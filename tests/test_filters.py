"""Tests for record filters and filtered conversion."""

import pytest

from repro.core.filters import ACCEPT_ALL, RecordFilter, \
    parse_filter_expr
from repro.errors import ConversionError
from repro.formats.sam import parse_alignment


def rec(flag=0, mapq=60):
    rname = "*" if flag & 0x4 else "chr1"
    pos = "0" if flag & 0x4 else "100"
    cigar = "*" if flag & 0x4 else "4M"
    return parse_alignment(
        f"q\t{flag}\t{rname}\t{pos}\t{mapq}\t{cigar}\t*\t0\t0\tACGT\tIIII")


def test_accept_all_is_noop():
    assert ACCEPT_ALL.is_noop
    assert ACCEPT_ALL.matches(rec())
    assert ACCEPT_ALL.matches(rec(flag=0x4, mapq=0))


def test_require_flags():
    f = RecordFilter(require_flags=0x40)
    assert f.matches(rec(flag=0x1 | 0x40))
    assert not f.matches(rec(flag=0x1 | 0x80))


def test_exclude_flags():
    f = RecordFilter(exclude_flags=0x400)
    assert f.matches(rec())
    assert not f.matches(rec(flag=0x400))


def test_min_mapq():
    f = RecordFilter(min_mapq=30)
    assert f.matches(rec(mapq=30))
    assert not f.matches(rec(mapq=29))


def test_primary_only():
    f = RecordFilter(primary_only=True)
    assert f.matches(rec())
    assert not f.matches(rec(flag=0x100))
    assert not f.matches(rec(flag=0x800))


def test_mapped_only():
    f = RecordFilter(mapped_only=True)
    assert f.matches(rec())
    assert not f.matches(rec(flag=0x4, mapq=0))


def test_apply_lazy():
    records = [rec(), rec(flag=0x400), rec()]
    f = RecordFilter(exclude_flags=0x400)
    assert len(list(f.apply(records))) == 2
    assert len(list(ACCEPT_ALL.apply(records))) == 3


def test_validation():
    with pytest.raises(ConversionError):
        RecordFilter(require_flags=-1)
    with pytest.raises(ConversionError):
        RecordFilter(exclude_flags=0x1000)
    with pytest.raises(ConversionError):
        RecordFilter(min_mapq=300)
    with pytest.raises(ConversionError):
        RecordFilter(require_flags=0x40, exclude_flags=0x40)


def test_parse_filter_expr():
    f = parse_filter_expr("q=30,F=0x400,primary")
    assert f.min_mapq == 30
    assert f.exclude_flags == 0x400
    assert f.primary_only and not f.mapped_only
    g = parse_filter_expr("f=99,mapped")
    assert g.require_flags == 99 and g.mapped_only
    assert parse_filter_expr("").is_noop


def test_parse_filter_expr_rejects_unknown():
    with pytest.raises(ConversionError):
        parse_filter_expr("z=1")


def test_filtered_sam_conversion(sam_file, workload, tmp_path):
    from repro.core import SamConverter
    _, _, records = workload
    f = RecordFilter(min_mapq=40, mapped_only=True)
    result = SamConverter().convert(sam_file, "bed", tmp_path / "o",
                                    nprocs=3, record_filter=f)
    expected_seen = sum(1 for r in records if f.matches(r))
    assert result.records == expected_seen
    # BED additionally skips nothing here because the filter already
    # demands mapped records.
    assert result.emitted == expected_seen


def test_filtered_bamx_conversion(bam_file, workload, tmp_path):
    from repro.core import BamConverter
    _, _, records = workload
    converter = BamConverter()
    bamx, baix, _ = converter.preprocess(bam_file, tmp_path / "w")
    f = RecordFilter(exclude_flags=0x10)  # forward-strand reads only
    result = converter.convert(bamx, "sam", tmp_path / "o", nprocs=2,
                               record_filter=f)
    expected = sum(1 for r in records if not r.flag & 0x10)
    assert result.records == expected


def test_filtered_region_conversion(bam_file, workload, tmp_path):
    from repro.core import BamConverter
    _, _, records = workload
    converter = BamConverter()
    bamx, baix, _ = converter.preprocess(bam_file, tmp_path / "w")
    f = RecordFilter(min_mapq=50)
    result = converter.convert_region(bamx, baix, "chr1:1-30000", "sam",
                                      tmp_path / "o", nprocs=2,
                                      record_filter=f)
    expected = sum(1 for r in records
                   if r.rname == "chr1" and 0 <= r.pos < 30_000
                   and r.mapq >= 50)
    assert result.records == expected
