"""Cross-codec property tests: arbitrary records must round-trip
identically through SAM text, BAM binary, BAMX and BAMZ."""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.bam import decode_record, encode_record
from repro.formats.bamx import plan_layout
from repro.formats.header import SamHeader
from repro.formats.record import UNMAPPED_POS, AlignmentRecord
from repro.formats.sam import format_alignment, parse_alignment
from repro.formats.tags import Tag

HDR = SamHeader.from_references([("chr1", 1 << 20), ("chr2", 1 << 18)])

_qname = st.from_regex(r"[!-?A-~]{1,24}", fullmatch=True)
_seq = st.text(alphabet="ACGTN", min_size=1, max_size=40)
_tag_name = st.from_regex(r"[A-Za-z][A-Za-z0-9]", fullmatch=True)
_tags = st.lists(
    st.one_of(
        st.builds(Tag, _tag_name, st.just("i"),
                  st.integers(-2**31, 2**31 - 1)),
        st.builds(Tag, _tag_name, st.just("Z"),
                  st.from_regex(r"[ -~]{0,12}", fullmatch=True)
                  .filter(lambda s: "\t" not in s)),
        st.builds(Tag, _tag_name, st.just("A"),
                  st.from_regex(r"[!-~]", fullmatch=True)),
    ),
    max_size=4, unique_by=lambda t: t.name)


@st.composite
def records(draw):
    seq = draw(_seq)
    mapped = draw(st.booleans())
    n = len(seq)
    if mapped:
        # Build a CIGAR consuming exactly n query bases.
        style = draw(st.integers(0, 3))
        if style == 0:
            cigar = [(n, "M")]
        elif style == 1 and n >= 3:
            a = draw(st.integers(1, n - 2))
            cigar = [(a, "S"), (n - a, "M")]
        elif style == 2 and n >= 4:
            a = draw(st.integers(1, n - 3))
            i = draw(st.integers(1, n - a - 2))
            cigar = [(a, "M"), (i, "I"), (n - a - i, "M")]
        elif n >= 2:
            a = draw(st.integers(1, n - 1))
            d = draw(st.integers(1, 5))
            cigar = [(a, "M"), (d, "D"), (n - a, "M")]
        else:
            cigar = [(n, "M")]
        rname = draw(st.sampled_from(["chr1", "chr2"]))
        pos = draw(st.integers(0, 100_000))
        mapq = draw(st.integers(0, 254))
        flag = draw(st.sampled_from([0, 16, 99, 147, 83, 163, 1024]))
    else:
        cigar = []
        rname, pos, mapq, flag = "*", UNMAPPED_POS, 0, 4
    mate_mapped = draw(st.booleans())
    if mapped and mate_mapped:
        rnext = draw(st.sampled_from(["=", "chr1", "chr2"]))
        pnext = draw(st.integers(0, 100_000))
    else:
        rnext, pnext = "*", UNMAPPED_POS
    qual = "*" if draw(st.booleans()) else "".join(
        chr(draw(st.integers(33, 126))) for _ in range(n))
    return AlignmentRecord(
        qname=draw(_qname), flag=flag, rname=rname, pos=pos, mapq=mapq,
        cigar=cigar, rnext=rnext, pnext=pnext,
        tlen=draw(st.integers(-(1 << 30), 1 << 30)), seq=seq, qual=qual,
        tags=draw(_tags))


def _norm(record: AlignmentRecord) -> AlignmentRecord:
    """BAM normalizes an explicit same-reference RNEXT to '='."""
    if record.rnext not in ("*", "=") and record.rnext == record.rname:
        import dataclasses
        return dataclasses.replace(record, rnext="=")
    return record


@given(records())
@settings(max_examples=120, deadline=None)
def test_sam_text_roundtrip(record):
    assert parse_alignment(format_alignment(record)) == record


@given(records())
@settings(max_examples=120, deadline=None)
def test_bam_binary_roundtrip(record):
    body = encode_record(record, HDR)
    assert decode_record(body[4:], HDR) == _norm(record)


@given(st.lists(records(), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_bamx_roundtrip(batch):
    layout = plan_layout(batch)
    for record in batch:
        decoded = layout.decode(layout.encode(record, HDR), HDR)
        assert decoded == _norm(record)


@given(st.lists(records(), min_size=1, max_size=5))
@settings(max_examples=15, deadline=None)
def test_bamz_file_roundtrip(batch):
    from repro.formats.bamz import read_bamz, write_bamz
    with tempfile.TemporaryDirectory() as d:
        path = f"{d}/t.bamz"
        write_bamz(path, HDR, batch)
        _, decoded = read_bamz(path)
    assert decoded == [_norm(r) for r in batch]


@given(records())
@settings(max_examples=60, deadline=None)
def test_json_yaml_roundtrip(record):
    from repro.formats.json_fmt import dict_to_record, record_to_dict
    from repro.formats.yaml_fmt import format_record as yaml_format
    from repro.formats.yaml_fmt import load_all
    assert dict_to_record(record_to_dict(record)) == record
    (doc,) = load_all(yaml_format(record))
    assert dict_to_record(doc) == record


@given(records())
@settings(max_examples=60, deadline=None)
def test_all_codecs_agree(record):
    """SAM text and BAM binary round-trips commute."""
    via_text = parse_alignment(format_alignment(record))
    via_bam = decode_record(encode_record(record, HDR)[4:], HDR)
    assert _norm(via_text) == via_bam
