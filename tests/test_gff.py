"""Tests for the GFF3 codec and conversion target."""

import io

import pytest

from repro.errors import FormatError
from repro.formats.gff import GffFeature, escape_attribute, \
    format_feature, iter_gff, parse_feature, read_gff, \
    unescape_attribute, write_gff


def test_format_and_parse_roundtrip():
    feature = GffFeature("chr1", "repro", "read_alignment", 99, 189,
                         60.0, "+", None, {"ID": "read7", "nm": "2"})
    line = format_feature(feature)
    cols = line.split("\t")
    assert cols[3] == "100"  # 1-based start on disk
    assert cols[4] == "189"
    assert parse_feature(line) == feature


def test_dot_fields():
    line = "chr1\t.\tregion\t1\t10\t.\t.\t.\t."
    feature = parse_feature(line)
    assert feature.score is None
    assert feature.phase is None
    assert feature.attributes == {}
    assert format_feature(feature) == line


def test_phase_roundtrip():
    feature = GffFeature("c", "s", "CDS", 0, 9, None, "+", 2, {})
    assert parse_feature(format_feature(feature)).phase == 2


def test_attribute_escaping():
    value = "a;b=c,d e%f"
    assert unescape_attribute(escape_attribute(value)) == value
    feature = GffFeature("c", "s", "t", 0, 5,
                         attributes={"Note": value})
    assert parse_feature(format_feature(feature)).attributes["Note"] \
        == value


@pytest.mark.parametrize("bad", [
    "chr1\t.\tt\t1\t10\t.\t.\t.",            # 8 columns
    "chr1\t.\tt\tone\t10\t.\t.\t.\t.",       # bad start
    "chr1\t.\tt\t1\t10\t.\t.\t.\tnoequals",  # bad attribute
])
def test_parse_rejects_malformed(bad):
    with pytest.raises(FormatError):
        parse_feature(bad)


def test_feature_validation():
    with pytest.raises(FormatError):
        GffFeature("c", "s", "t", 5, 5)
    with pytest.raises(FormatError):
        GffFeature("c", "s", "t", 0, 5, strand="x")
    with pytest.raises(FormatError):
        GffFeature("c", "s", "t", 0, 5, phase=3)


def test_iter_skips_directives_and_comments():
    text = ("##gff-version 3\n# comment\n"
            "chr1\t.\tgene\t1\t100\t.\t+\t.\tID=g1\n")
    features = list(iter_gff(io.StringIO(text)))
    assert len(features) == 1
    assert features[0].attributes["ID"] == "g1"


def test_file_roundtrip(tmp_path):
    features = [
        GffFeature("chr1", "src", "gene", 0, 100, 1.5, "+", None,
                   {"ID": "g1"}),
        GffFeature("chr2", "src", "exon", 10, 20, None, "-", 0,
                   {"Parent": "g1"}),
    ]
    path = tmp_path / "t.gff3"
    assert write_gff(path, features) == 2
    assert read_gff(path) == features
    assert open(path).readline() == "##gff-version 3\n"


def test_gff_target_plugin():
    from repro.core.targets import get_target
    from repro.formats.sam import parse_alignment
    target = get_target("gff")
    mapped = parse_alignment(
        "r1\t16\tchr1\t101\t37\t8M\t*\t0\t0\tACGTACGT\tIIIIIIII\tNM:i:1")
    line = target.emit(mapped)
    feature = parse_feature(line)
    assert feature.seqid == "chr1"
    assert feature.start == 100 and feature.end == 108
    assert feature.strand == "-"
    assert feature.score == 37.0
    assert feature.attributes == {"ID": "r1", "nm": "1"}
    unmapped = parse_alignment("r2\t4\t*\t0\t0\t*\t*\t0\t0\tAC\tII")
    assert target.emit(unmapped) is None


def test_gff_conversion_end_to_end(sam_file, workload, tmp_path):
    from repro.core import SamConverter
    _, _, records = workload
    result = SamConverter().convert(sam_file, "gff", tmp_path / "o",
                                    nprocs=3)
    mapped = sum(1 for r in records if r.is_mapped)
    assert result.emitted == mapped
    total = []
    for path in result.outputs:
        total.extend(read_gff(path))
    assert len(total) == mapped
