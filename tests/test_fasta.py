"""Unit tests for FASTA reading/writing and the .fai index."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats.fasta import FastaIndex, FastaRecord, format_record, \
    iter_fasta, read_fasta, write_fasta


def test_format_wraps_lines():
    rec = FastaRecord("seq1", "A" * 25)
    text = format_record(rec, width=10)
    assert text == ">seq1\n" + "A" * 10 + "\n" + "A" * 10 + "\n" \
        + "A" * 5 + "\n"


def test_format_invalid_width():
    with pytest.raises(ValueError):
        format_record(FastaRecord("s", "A"), width=0)


def test_parse_multi_record():
    text = ">a desc one\nACGT\nACG\n>b\nTTTT\n"
    records = list(iter_fasta(io.StringIO(text)))
    assert records[0].name == "a"
    assert records[0].description == "a desc one"
    assert records[0].sequence == "ACGTACG"
    assert records[1] == FastaRecord("b", "TTTT")


def test_parse_skips_semicolon_comments():
    text = ">a\n;old style comment\nACGT\n"
    (rec,) = iter_fasta(io.StringIO(text))
    assert rec.sequence == "ACGT"


def test_parse_rejects_data_before_header():
    with pytest.raises(FormatError):
        list(iter_fasta(io.StringIO("ACGT\n>a\nACGT\n")))


def test_parse_rejects_empty_name():
    with pytest.raises(FormatError):
        list(iter_fasta(io.StringIO(">\nACGT\n")))


def test_file_roundtrip(tmp_path):
    records = [FastaRecord("chr1", "ACGT" * 30),
               FastaRecord("chr2", "TTGGCC")]
    path = tmp_path / "t.fasta"
    assert write_fasta(path, records, width=50) == 2
    assert read_fasta(path) == records


def test_index_build_and_fetch(tmp_path):
    seq1 = "ACGTACGTACGTACGTACGTAC"  # 22 bases
    seq2 = "TTTTGGGGCCCCAAAA"        # 16 bases
    path = tmp_path / "ref.fasta"
    write_fasta(path, [FastaRecord("c1", seq1), FastaRecord("c2", seq2)],
                width=10)
    idx = FastaIndex.build(path)
    assert idx.length("c1") == 22
    assert idx.length("c2") == 16
    assert idx.fetch(path, "c1", 0, 22) == seq1
    assert idx.fetch(path, "c1", 5, 15) == seq1[5:15]
    assert idx.fetch(path, "c2", 9, 16) == seq2[9:16]
    assert idx.fetch(path, "c2", 3, 3) == ""


def test_index_fetch_bounds(tmp_path):
    path = tmp_path / "ref.fasta"
    write_fasta(path, [FastaRecord("c1", "ACGTACGT")], width=4)
    idx = FastaIndex.build(path)
    with pytest.raises(FormatError):
        idx.fetch(path, "c1", 0, 9)
    with pytest.raises(FormatError):
        idx.fetch(path, "nope", 0, 1)


def test_index_save_load(tmp_path):
    path = tmp_path / "ref.fasta"
    write_fasta(path, [FastaRecord("c1", "ACGT" * 7)], width=9)
    idx = FastaIndex.build(path)
    fai = tmp_path / "ref.fasta.fai"
    idx.save(fai)
    loaded = FastaIndex.load(fai)
    assert loaded.fetch(path, "c1", 3, 20) == idx.fetch(path, "c1", 3, 20)


def test_index_rejects_ragged_wrapping(tmp_path):
    path = tmp_path / "ragged.fasta"
    path.write_text(">a\nACGTACGT\nAC\nACGTACGT\n")
    with pytest.raises(FormatError):
        FastaIndex.build(path)


@given(st.text(alphabet="ACGTN", min_size=1, max_size=500),
       st.integers(min_value=1, max_value=80))
def test_roundtrip_any_wrap_width(seq, width):
    text = format_record(FastaRecord("x", seq), width)
    (rec,) = iter_fasta(io.StringIO(text))
    assert rec.sequence == seq


@given(st.text(alphabet="ACGT", min_size=1, max_size=200),
       st.integers(min_value=1, max_value=30),
       st.data())
def test_index_fetch_matches_slice(seq, width, data):
    import tempfile
    start = data.draw(st.integers(0, len(seq)))
    end = data.draw(st.integers(start, len(seq)))
    with tempfile.TemporaryDirectory() as d:
        path = f"{d}/r.fasta"
        write_fasta(path, [FastaRecord("x", seq)], width)
        idx = FastaIndex.build(path)
        assert idx.fetch(path, "x", start, end) == seq[start:end]
