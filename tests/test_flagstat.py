"""Tests for the flagstat tool."""


from repro.formats.sam import parse_alignment
from repro.tools.flagstat import FlagStats, flagstat, flagstat_parallel, \
    flagstat_records


def rec(flag, rname="chr1", rnext="=", mapq=60):
    pos = "100" if rname != "*" else "0"
    cigar = "4M" if not flag & 0x4 else "*"
    return parse_alignment(
        f"q\t{flag}\t{rname}\t{pos}\t{mapq}\t{cigar}\t{rnext}\t0\t0"
        f"\tACGT\tIIII")


def test_counts_proper_pair():
    stats = flagstat_records([rec(99), rec(147)])
    assert stats.total == 2
    assert stats.mapped == 2
    assert stats.paired == 2
    assert stats.read1 == 1 and stats.read2 == 1
    assert stats.properly_paired == 2
    assert stats.with_mate_mapped == 2
    assert stats.singletons == 0


def test_counts_secondary_supplementary_duplicates():
    stats = flagstat_records([rec(0x100), rec(0x800), rec(0x400)])
    assert stats.secondary == 1
    assert stats.supplementary == 1
    assert stats.duplicates == 1
    # Secondary/supplementary records never count toward pair stats.
    assert stats.paired == 0


def test_singleton():
    stats = flagstat_records([rec(0x1 | 0x8 | 0x40)])
    assert stats.singletons == 1
    assert stats.with_mate_mapped == 0


def test_mate_on_different_chr():
    low = rec(0x1 | 0x40, rnext="chr2", mapq=3)
    high = rec(0x1 | 0x40, rnext="chr2", mapq=30)
    stats = flagstat_records([low, high])
    assert stats.mate_on_different_chr == 2
    assert stats.mate_on_different_chr_mapq5 == 1


def test_unmapped():
    stats = flagstat_records([rec(0x4, rname="*", rnext="*", mapq=0)])
    assert stats.total == 1 and stats.mapped == 0


def test_merge_is_elementwise():
    a = flagstat_records([rec(99)])
    b = flagstat_records([rec(147), rec(0x400)])
    merged = a.merge(b)
    assert merged.total == 3
    assert merged.duplicates == 1
    assert merged.properly_paired == 2


def test_report_format():
    stats = flagstat_records([rec(99), rec(147)])
    report = stats.format_report()
    assert "2 in total" in report
    assert "2 mapped (100.00%)" in report
    assert "2 properly paired (100.00%)" in report


def test_report_handles_empty():
    assert "N/A" in FlagStats().format_report()


def test_file_and_parallel_agree(sam_file, bam_file):
    seq = flagstat(sam_file)
    from_bam = flagstat(bam_file)
    assert seq == from_bam
    for nprocs in (1, 2, 7):
        par, metrics = flagstat_parallel(sam_file, nprocs)
        assert par == seq, nprocs
        assert len(metrics) == nprocs


def test_counts_match_workload(sam_file, workload):
    _, _, records = workload
    stats = flagstat(sam_file)
    assert stats.total == len(records)
    assert stats.mapped == sum(1 for r in records if r.is_mapped)
    assert stats.paired == len(records)  # all simulated reads paired
