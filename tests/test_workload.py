"""Tests for the one-call workload builders."""

import numpy as np

from repro.formats.bam import read_bam
from repro.formats.sam import read_sam
from repro.simdata import build_alignments, build_bam_dataset, \
    build_histogram, build_sam_dataset, build_simulations


def test_build_alignments_sorted_by_default():
    genome, header, records = build_alignments(40, seed=1)
    assert header.sort_order == "coordinate"
    mapped = [(header.ref_id(r.rname), r.pos) for r in records
              if r.is_mapped]
    assert mapped == sorted(mapped)


def test_build_alignments_unsorted_keeps_template_order():
    _, header, records = build_alignments(20, seed=2, sort=False)
    assert header.sort_order == "unsorted"
    names = [r.qname for r in records]
    assert names == sorted(names)  # template ids are ascending


def test_build_sam_dataset_roundtrip(tmp_path):
    path = tmp_path / "w.sam"
    wl = build_sam_dataset(path, 30, seed=3)
    header, records = read_sam(path)
    assert records == wl.records
    assert header == wl.header


def test_build_bam_dataset_roundtrip(tmp_path):
    path = tmp_path / "w.bam"
    wl = build_bam_dataset(path, 30, seed=4)
    _, records = read_bam(path)
    assert records == wl.records


def test_workload_determinism(tmp_path):
    a = build_sam_dataset(tmp_path / "a.sam", 25, seed=9)
    b = build_sam_dataset(tmp_path / "b.sam", 25, seed=9)
    assert a.records == b.records


def test_build_histogram_properties():
    histo = build_histogram(2_000, seed=5)
    assert histo.shape == (2_000,)
    assert (histo >= 0).all()
    # Peaks rise well above the baseline.
    assert histo.max() > 4 * np.median(histo)


def test_build_histogram_deterministic():
    assert np.array_equal(build_histogram(500, seed=1),
                          build_histogram(500, seed=1))
    assert not np.array_equal(build_histogram(500, seed=1),
                              build_histogram(500, seed=2))


def test_build_simulations_are_permutations():
    histo = build_histogram(300, seed=6)
    sims = build_simulations(histo, 5, seed=7)
    assert sims.shape == (5, 300)
    for b in range(5):
        assert np.array_equal(np.sort(sims[b]), np.sort(histo))
    # Different simulations differ from each other.
    assert not np.array_equal(sims[0], sims[1])
