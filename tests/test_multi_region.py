"""Tests for multi-region (union) partial conversion."""

import pytest

from repro.core import BamConverter
from repro.core.region import GenomicRegion
from repro.errors import ConversionError
from repro.formats.sam import read_sam


@pytest.fixture(scope="module")
def store(bam_file, tmp_path_factory):
    work = tmp_path_factory.mktemp("multiregion")
    converter = BamConverter()
    bamx, baix, _ = converter.preprocess(bam_file, work)
    return converter, bamx, baix


def recovered_names(result):
    names = []
    for path in result.outputs:
        _, records = read_sam(path)
        names.extend(r.qname + str(r.flag) for r in records)
    return names


def test_union_of_disjoint_regions(store, workload, tmp_path):
    converter, bamx, baix = store
    _, _, records = workload
    regions = ["chr1:1-10000", "chr1:30001-40000", "chr2:1-5000"]
    result = converter.convert_regions(bamx, baix, regions, "sam",
                                       tmp_path / "o", nprocs=3)
    expected = [
        r for r in records if (
            (r.rname == "chr1" and (0 <= r.pos < 10_000
                                    or 30_000 <= r.pos < 40_000))
            or (r.rname == "chr2" and 0 <= r.pos < 5_000))]
    assert result.records == len(expected)


def test_overlapping_regions_deduplicate(store, workload, tmp_path):
    converter, bamx, baix = store
    _, _, records = workload
    overlapping = ["chr1:1-20000", "chr1:10001-30000"]
    result = converter.convert_regions(bamx, baix, overlapping, "sam",
                                       tmp_path / "o", nprocs=2)
    single = converter.convert_region(bamx, baix, "chr1:1-30000", "sam",
                                      tmp_path / "s", nprocs=2)
    assert result.records == single.records
    assert sorted(recovered_names(result)) == \
        sorted(recovered_names(single))


def test_multi_region_overlap_mode(store, workload, tmp_path):
    converter, bamx, _ = store
    _, _, records = workload
    result = converter.convert_regions(
        bamx, None, ["chr1:5001-5100", "chr2:1001-1100"], "sam",
        tmp_path / "o", nprocs=2, mode="overlap")
    expected = [
        r for r in records if r.is_mapped and (
            (r.rname == "chr1" and r.pos < 5_100 and r.end > 5_000)
            or (r.rname == "chr2" and r.pos < 1_100 and r.end > 1_000))]
    assert result.records == len(expected)


def test_multi_region_accepts_parsed_regions(store, workload, tmp_path):
    converter, bamx, baix = store
    _, header, _ = workload
    regions = [GenomicRegion("chr1", 0, 5_000),
               GenomicRegion("chr2", 0, 5_000)]
    result = converter.convert_regions(bamx, baix, regions, "bed",
                                       tmp_path / "o", nprocs=2)
    assert result.records >= 0


def test_multi_region_with_filter(store, workload, tmp_path):
    from repro.core import RecordFilter
    converter, bamx, baix = store
    _, _, records = workload
    f = RecordFilter(min_mapq=50)
    result = converter.convert_regions(bamx, baix,
                                       ["chr1:1-60000"], "sam",
                                       tmp_path / "o", nprocs=2,
                                       record_filter=f)
    expected = sum(1 for r in records
                   if r.rname == "chr1" and 0 <= r.pos < 60_000
                   and r.mapq >= 50)
    assert result.records == expected


def test_validation(store, tmp_path):
    converter, bamx, baix = store
    with pytest.raises(ConversionError):
        converter.convert_regions(bamx, baix, [], "sam", tmp_path / "o")
    with pytest.raises(ConversionError):
        converter.convert_regions(bamx, baix, ["chr1:1-10"], "sam",
                                  tmp_path / "o", nprocs=0)
    with pytest.raises(ConversionError):
        converter.convert_regions(bamx, baix, ["chr1:1-10"], "sam",
                                  tmp_path / "o", mode="middle")
