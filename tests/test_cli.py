"""Tests for the repro command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def run(args):
    return main(args)


@pytest.fixture()
def sim_sam(tmp_path):
    path = tmp_path / "s.sam"
    assert run(["simulate", str(path), "--templates", "60",
                "--chromosomes", "chrA:20000", "--seed", "3"]) == 0
    return path


def test_simulate_writes_sam(sim_sam):
    from repro.formats.sam import read_sam
    header, records = read_sam(sim_sam)
    assert len(records) == 120
    assert header.has_reference("chrA")


def test_simulate_bam(tmp_path):
    path = tmp_path / "s.bam"
    assert run(["simulate", str(path), "--templates", "20"]) == 0
    from repro.formats.bam import read_bam
    _, records = read_bam(path)
    assert len(records) == 40


def test_simulate_bad_chromosome_spec(tmp_path):
    assert run(["simulate", str(tmp_path / "x.sam"),
                "--chromosomes", "nolength"]) == 1


def test_simulate_zero_length_chromosome_rejected(tmp_path, capsys):
    # "chr1:0" passes isdigit() but must not produce a degenerate
    # zero-length genome downstream.
    assert run(["simulate", str(tmp_path / "x.sam"),
                "--chromosomes", "chr1:0"]) == 1
    assert "bad chromosome spec 'chr1:0'" in capsys.readouterr().err


def test_parse_chroms_zero_length_raises():
    from repro.cli import _parse_chroms
    from repro.errors import ReproError
    assert _parse_chroms("chr1:10,chr2:5") == [("chr1", 10),
                                               ("chr2", 5)]
    with pytest.raises(ReproError, match="chr2:0"):
        _parse_chroms("chr1:10,chr2:0")


def test_convert_sam(sim_sam, tmp_path, capsys):
    out = tmp_path / "out"
    assert run(["convert", str(sim_sam), "--target", "bed",
                "--out-dir", str(out), "--nprocs", "3"]) == 0
    captured = capsys.readouterr().out
    assert "3 part files" in captured
    assert len(list(out.glob("*.bed"))) == 3


def test_convert_bam_preprocesses_first(tmp_path, capsys):
    bam = tmp_path / "s.bam"
    run(["simulate", str(bam), "--templates", "30"])
    out = tmp_path / "out"
    assert run(["convert", str(bam), "--target", "sam",
                "--out-dir", str(out), "--nprocs", "2"]) == 0
    assert "preprocessed" in capsys.readouterr().out


def test_convert_unknown_source(tmp_path):
    path = tmp_path / "x.vcf"
    path.write_text("")
    assert run(["convert", str(path), "--target", "bed",
                "--out-dir", str(tmp_path / "o")]) == 1


def test_preprocess_and_region(sim_sam, tmp_path, capsys):
    work = tmp_path / "work"
    assert run(["preprocess", str(sim_sam), "--work-dir", str(work),
                "--nprocs", "2"]) == 0
    bamx_files = sorted(work.glob("*.bamx"))
    assert len(bamx_files) == 2
    out = tmp_path / "region"
    assert run(["region", str(bamx_files[0]), "--region", "chrA:1-10000",
                "--target", "bed", "--out-dir", str(out),
                "--nprocs", "2"]) == 0
    assert "partial conversion" in capsys.readouterr().out


def test_histogram_nlmeans_fdr_chain(sim_sam, tmp_path, capsys):
    bedgraph = tmp_path / "h.bedgraph"
    npy = tmp_path / "h.npy"
    assert run(["histogram", str(sim_sam), "--output", str(bedgraph),
                "--npy", str(npy)]) == 0
    denoised = tmp_path / "d.npy"
    assert run(["nlmeans", str(npy), "--output", str(denoised),
                "-r", "5", "-l", "2", "--nprocs", "2"]) == 0
    assert np.load(denoised).shape == np.load(npy).shape
    assert run(["fdr", str(npy), "-t", "2.5", "--n-simulations", "10",
                "--nprocs", "2"]) == 0
    assert "FDR(p_t=2.5)" in capsys.readouterr().out


def test_nlmeans_accepts_bedgraph_input(sim_sam, tmp_path):
    bedgraph = tmp_path / "h.bedgraph"
    run(["histogram", str(sim_sam), "--output", str(bedgraph)])
    out = tmp_path / "d.npy"
    assert run(["nlmeans", str(bedgraph), "--output", str(out),
                "-r", "4", "-l", "2"]) == 0


def test_formats_listing(capsys):
    assert run(["formats"]) == 0
    out = capsys.readouterr().out
    assert "bamx" in out and "bedgraph" in out


def test_sort_subcommand(tmp_path, capsys):
    src = tmp_path / "u.sam"
    run(["simulate", str(src), "--templates", "40", "--unsorted"])
    out = tmp_path / "s.sam"
    assert run(["sort", str(src), "--output", str(out),
                "--chunk-records", "25"]) == 0
    assert "sorted 80 records" in capsys.readouterr().out
    from repro.formats.sam import read_sam
    header, records = read_sam(out)
    assert header.sort_order == "coordinate"
    keys = [(header.ref_id(r.rname), r.pos) for r in records
            if r.is_mapped]
    assert keys == sorted(keys)


def test_sort_parallel_subcommand(tmp_path, capsys):
    src = tmp_path / "u.sam"
    run(["simulate", str(src), "--templates", "30", "--unsorted"])
    out = tmp_path / "s.sam"
    assert run(["sort", str(src), "--output", str(out),
                "--nprocs", "3", "--work-dir",
                str(tmp_path / "w")]) == 0
    assert "3 run-generation ranks" in capsys.readouterr().out


def test_flagstat_subcommand(sim_sam, capsys):
    assert run(["flagstat", str(sim_sam), "--nprocs", "2"]) == 0
    out = capsys.readouterr().out
    assert "in total" in out and "properly paired" in out


def test_validate_subcommand_clean(sim_sam, capsys):
    assert run(["validate", str(sim_sam)]) == 0
    assert "0 errors" in capsys.readouterr().out


def test_validate_subcommand_dirty(tmp_path, capsys):
    path = tmp_path / "bad.sam"
    path.write_text("@SQ\tSN:chr1\tLN:100\n"
                    "r\t0\tchrX\t10\t60\t4M\t*\t0\t0\tACGT\tIIII\n")
    assert run(["validate", str(path)]) == 1
    assert "UNKNOWN_REFERENCE" in capsys.readouterr().out


def test_convert_with_filter(sim_sam, tmp_path, capsys):
    out = tmp_path / "filtered"
    assert run(["convert", str(sim_sam), "--target", "bed",
                "--out-dir", str(out), "--filter", "q=60"]) == 0
    # Only MAPQ-60 records survive; all emitted BED scores must be 60.
    for bed in out.glob("*.bed"):
        for line in open(bed):
            assert line.split("\t")[4] == "60"


def test_region_overlap_mode(sim_sam, tmp_path, capsys):
    work = tmp_path / "w"
    run(["preprocess", str(sim_sam), "--work-dir", str(work)])
    (bamx,) = sorted(work.glob("*.bamx"))
    out = tmp_path / "o"
    assert run(["region", str(bamx), "--region", "chrA:1-5000",
                "--target", "bed", "--out-dir", str(out),
                "--mode", "overlap"]) == 0
    assert "partial conversion" in capsys.readouterr().out


def test_peaks_subcommand(sim_sam, tmp_path, capsys):
    npy = tmp_path / "h.npy"
    run(["histogram", str(sim_sam), "--output",
         str(tmp_path / "h.bedgraph"), "--npy", str(npy)])
    capsys.readouterr()
    bed = tmp_path / "peaks.bed"
    assert run(["peaks", str(npy), "--n-simulations", "15",
                "--target-fdr", "0.25", "--nprocs", "2",
                "--bed", str(bed), "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "enriched regions" in out
    assert "selected p_t=" in out
    from repro.formats.bed import read_bed
    read_bed(bed)  # parses cleanly


def test_convert_reuses_supplied_artifacts(tmp_path, capsys):
    bam = tmp_path / "s.bam"
    run(["simulate", str(bam), "--templates", "25"])
    work = tmp_path / "w"
    assert run(["preprocess", str(bam), "--work-dir", str(work)]) == 0
    (bamx,) = sorted(work.glob("*.bamx"))
    capsys.readouterr()
    out = tmp_path / "out"
    assert run(["convert", str(bam), "--target", "bed",
                "--out-dir", str(out), "--bamx", str(bamx)]) == 0
    captured = capsys.readouterr().out
    assert "reusing preprocessing artifacts" in captured
    assert "preprocessed to" not in captured


@pytest.fixture()
def service_socket(tmp_path):
    from repro.service import ConversionService, ServiceDaemon
    service = ConversionService(tmp_path / "svc", workers=1)
    daemon = ServiceDaemon(service, tmp_path / "repro.sock")
    daemon.start()
    yield str(daemon.socket_path)
    daemon.stop()


def test_service_cli_flow(service_socket, sim_sam, tmp_path, capsys):
    out = tmp_path / "out"
    assert run(["submit", str(sim_sam), "--socket", service_socket,
                "--target", "bed", "--out-dir", str(out),
                "--wait"]) == 0
    captured = capsys.readouterr().out
    assert "submitted job-" in captured
    assert "done" in captured
    assert list(out.glob("*.bed"))

    assert run(["status", "--socket", service_socket]) == 0
    assert "done" in capsys.readouterr().out
    assert run(["status", "--socket", service_socket,
                "--metrics"]) == 0
    metrics_out = capsys.readouterr().out
    assert "jobs_submitted" in metrics_out and "jobs_done" in metrics_out


def test_service_cli_cancel_finished_job(service_socket, sim_sam,
                                         tmp_path, capsys):
    assert run(["submit", str(sim_sam), "--socket", service_socket,
                "--target", "sam", "--out-dir", str(tmp_path / "o"),
                "--wait"]) == 0
    job_id = capsys.readouterr().out.split()[1]
    assert run(["cancel", job_id, "--socket", service_socket]) == 1
    assert "had already finished" in capsys.readouterr().out


def test_serve_bad_cache_verify_is_friendly(tmp_path, capsys):
    # Regression: `--cache-verify bogus` used to crash with a raw
    # ValueError traceback instead of the ServiceError message.
    assert run(["serve", "--socket", str(tmp_path / "s.sock"),
                "--work-dir", str(tmp_path / "work"),
                "--cache-verify", "bogus"]) == 1
    err = capsys.readouterr().err
    assert "bad cache verify policy" in err
    assert "Traceback" not in err


def test_submit_unreachable_socket(tmp_path, sim_sam):
    assert run(["submit", str(sim_sam), "--socket",
                str(tmp_path / "no.sock"), "--target", "bed",
                "--out-dir", str(tmp_path / "o")]) == 1


def test_preprocess_compress_flag(tmp_path, capsys):
    bam = tmp_path / "s.bam"
    run(["simulate", str(bam), "--templates", "20"])
    work = tmp_path / "w"
    assert run(["preprocess", str(bam), "--work-dir", str(work),
                "--compress"]) == 0
    assert list(work.glob("*.bamz"))
    assert list(work.glob("*.bamz.bzi"))
