"""Tests for the paired-end read simulator."""

import pytest

from repro.errors import ReproError
from repro.formats.seq import decode_qualities, reverse_complement
from repro.simdata.genome import Genome
from repro.simdata.reads import ReadSimConfig, ReadSimulator


@pytest.fixture(scope="module")
def genome():
    return Genome.synthesize([("chr1", 30_000)], seed=3)


def test_pair_structure(genome):
    sim = ReadSimulator(genome, ReadSimConfig(junk_fraction=0.0), seed=1)
    r1, r2 = sim.simulate_pair(0)
    assert r1.name == r2.name
    assert r1.mate == 1 and r2.mate == 2
    assert len(r1.sequence) == len(r1.quality) == 90
    assert not r1.true_reverse and r2.true_reverse


def test_ground_truth_positions_consistent(genome):
    cfg = ReadSimConfig(junk_fraction=0.0)
    sim = ReadSimulator(genome, cfg, seed=2)
    for r1, r2 in sim.simulate(50):
        assert r1.true_chrom == r2.true_chrom == "chr1"
        assert r1.tlen == -r2.tlen
        assert r2.true_pos - r1.true_pos == r1.tlen - cfg.read_length
        assert 0 <= r1.true_pos
        assert r2.true_pos + cfg.read_length <= 30_000


def test_reads_match_reference_modulo_errors(genome):
    cfg = ReadSimConfig(junk_fraction=0.0)
    sim = ReadSimulator(genome, cfg, seed=4)
    ref = genome.sequence("chr1")
    for r1, r2 in sim.simulate(30):
        truth1 = ref[r1.true_pos:r1.true_pos + 90]
        mismatches = sum(a != b for a, b in zip(r1.sequence, truth1))
        assert mismatches < 20  # errors are rare, never wholesale
        truth2 = reverse_complement(ref[r2.true_pos:r2.true_pos + 90])
        mismatches2 = sum(a != b for a, b in zip(r2.sequence, truth2))
        assert mismatches2 < 20


def test_quality_profile_decays(genome):
    sim = ReadSimulator(genome, ReadSimConfig(junk_fraction=0.0), seed=5)
    reads = [r for pair in sim.simulate(40) for r in pair]
    first = [decode_qualities(r.quality)[0] for r in reads]
    last = [decode_qualities(r.quality)[-1] for r in reads]
    assert sum(first) / len(first) > sum(last) / len(last) + 5


def test_junk_fraction_produces_unanchored_reads(genome):
    sim = ReadSimulator(genome, ReadSimConfig(junk_fraction=1.0), seed=6)
    r1, r2 = sim.simulate_pair(0)
    assert r1.true_chrom is None and r2.true_chrom is None


def test_determinism(genome):
    a = ReadSimulator(genome, seed=9).simulate(10)
    b = ReadSimulator(genome, seed=9).simulate(10)
    assert [(r1.sequence, r2.sequence) for r1, r2 in a] == \
        [(r1.sequence, r2.sequence) for r1, r2 in b]


def test_config_validation():
    with pytest.raises(ReproError):
        ReadSimConfig(read_length=0)
    with pytest.raises(ReproError):
        ReadSimConfig(fragment_mean=10.0, read_length=90)
    with pytest.raises(ReproError):
        ReadSimConfig(junk_fraction=2.0)
    with pytest.raises(ReproError):
        ReadSimulator(Genome.synthesize([("c", 100)], 0)).simulate(-1)
