"""Tests for NL-means: reference vs vectorized vs parallel vs SPMD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ReproError
from repro.runtime.spmd import run_spmd
from repro.stats.nlmeans import nlmeans, nlmeans_core, nlmeans_reference
from repro.stats.nlmeans_parallel import halo_partition, nlmeans_parallel, \
    nlmeans_spmd


@pytest.fixture(scope="module")
def signal():
    rng = np.random.default_rng(42)
    clean = np.concatenate([np.zeros(80), np.full(40, 30.0),
                            np.zeros(80)])
    return clean + rng.normal(0, 3.0, len(clean))


def test_vectorized_matches_reference(signal):
    ref = nlmeans_reference(signal, 10, 4, 8.0)
    vec = nlmeans(signal, 10, 4, 8.0)
    assert np.allclose(ref, vec, rtol=1e-10, atol=1e-12)


def test_weights_normalize_constant_signal():
    # A constant signal must stay exactly constant (weights sum to 1).
    v = np.full(50, 7.0)
    out = nlmeans(v, 5, 2, 3.0)
    assert np.allclose(out, 7.0)


def test_denoising_reduces_noise(signal):
    clean = np.concatenate([np.zeros(80), np.full(40, 30.0),
                            np.zeros(80)])
    noisy_err = np.mean((signal - clean) ** 2)
    denoised_err = np.mean((nlmeans(signal, 15, 5, 8.0) - clean) ** 2)
    assert denoised_err < noisy_err


def test_parameter_validation():
    v = np.ones(10)
    with pytest.raises(ReproError):
        nlmeans(v, 0, 2, 1.0)
    with pytest.raises(ReproError):
        nlmeans(v, 2, -1, 1.0)
    with pytest.raises(ReproError):
        nlmeans(v, 2, 1, 0.0)
    with pytest.raises(ReproError):
        nlmeans(np.ones((2, 2)), 2, 1, 1.0)
    with pytest.raises(ReproError):
        nlmeans(np.array([]), 2, 1, 1.0)


def test_core_requires_context():
    with pytest.raises(ReproError):
        nlmeans_core(np.ones(10), 2, 8, 3, 1, 1.0)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
def test_parallel_bitwise_equals_sequential(signal, nprocs):
    seq = nlmeans(signal, 10, 4, 8.0)
    par, metrics = nlmeans_parallel(signal, nprocs, 10, 4, 8.0)
    assert np.array_equal(par, seq)
    assert len(metrics) == nprocs
    assert sum(m.records for m in metrics) == len(signal)


def test_parallel_more_ranks_than_points():
    v = np.arange(5, dtype=float)
    seq = nlmeans(v, 2, 1, 1.0)
    par, _ = nlmeans_parallel(v, 9, 2, 1, 1.0)
    assert np.array_equal(par, seq)


def test_halo_partition_shapes():
    v = np.arange(100, dtype=float)
    parts = halo_partition(v, 4, halo=7)
    assert len(parts) == 4
    for start, core_len, enlarged in parts:
        assert len(enlarged) == core_len + 14
    assert sum(p[1] for p in parts) == 100


def test_halo_partition_replicates_neighbours():
    v = np.arange(20, dtype=float)
    parts = halo_partition(v, 2, halo=3)
    start1, len1, enlarged1 = parts[1]
    # Rank 1's left halo is the end of rank 0's core data.
    assert np.array_equal(enlarged1[:3], v[start1 - 3:start1])


def test_halo_partition_edge_replication():
    v = np.arange(10, dtype=float)
    parts = halo_partition(v, 2, halo=2)
    _, _, first = parts[0]
    assert first[0] == v[0] and first[1] == v[0]  # edge-replicated


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_spmd_matches_sequential(signal, backend):
    seq = nlmeans(signal, 6, 2, 8.0)

    def rank_fn(comm):
        return nlmeans_spmd(comm, signal if comm.rank == 0 else None,
                            6, 2, 8.0)

    results = run_spmd(rank_fn, 3, backend=backend)
    assert np.array_equal(results[0], seq)
    assert results[1] is None and results[2] is None


@given(arrays(np.float64, st.integers(4, 80),
              elements=st.floats(0, 100, allow_nan=False)),
       st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_parallel_equals_sequential_property(values, nprocs):
    seq = nlmeans(values, 3, 1, 5.0)
    par, _ = nlmeans_parallel(values, nprocs, 3, 1, 5.0)
    assert np.array_equal(par, seq)


@given(arrays(np.float64, st.integers(4, 60),
              elements=st.floats(0, 50, allow_nan=False)))
@settings(max_examples=15, deadline=None)
def test_vectorized_matches_reference_property(values):
    ref = nlmeans_reference(values, 4, 2, 6.0)
    vec = nlmeans(values, 4, 2, 6.0)
    assert np.allclose(ref, vec, rtol=1e-9, atol=1e-9)
