"""Unit tests for the BED codec."""

import io

import pytest

from repro.errors import FormatError
from repro.formats.bed import BedInterval, format_interval, iter_bed, \
    parse_interval, read_bed, write_bed


def test_format_columns():
    iv = BedInterval("chr1", 10, 20, "feat", 42, "+")
    assert format_interval(iv) == "chr1\t10\t20\tfeat\t42\t+"
    assert format_interval(iv, columns=3) == "chr1\t10\t20"
    assert format_interval(iv, columns=4) == "chr1\t10\t20\tfeat"


def test_format_float_score_kept_when_fractional():
    iv = BedInterval("c", 0, 1, ".", 1.5)
    assert "1.5" in format_interval(iv)
    iv2 = BedInterval("c", 0, 1, ".", 3.0)
    assert "\t3\t" in format_interval(iv2)


def test_format_invalid_column_count():
    iv = BedInterval("c", 0, 1)
    with pytest.raises(ValueError):
        format_interval(iv, columns=7)


def test_invalid_intervals_rejected():
    with pytest.raises(FormatError):
        BedInterval("c", -1, 5)
    with pytest.raises(FormatError):
        BedInterval("c", 10, 5)
    with pytest.raises(FormatError):
        BedInterval("c", 0, 5, strand="x")


def test_parse_minimal_and_full():
    assert parse_interval("chr1\t5\t10") == BedInterval("chr1", 5, 10)
    assert parse_interval("chr1\t5\t10\tn\t7\t-") == \
        BedInterval("chr1", 5, 10, "n", 7.0, "-")


def test_parse_rejects_bad_lines():
    with pytest.raises(FormatError):
        parse_interval("chr1\t5")
    with pytest.raises(FormatError):
        parse_interval("chr1\tfive\tten")


def test_iter_skips_track_and_comments():
    text = ("# comment\ntrack name=x\nbrowser position chr1\n"
            "chr1\t0\t5\n\nchr2\t3\t9\n")
    intervals = list(iter_bed(io.StringIO(text)))
    assert len(intervals) == 2


def test_file_roundtrip(tmp_path):
    intervals = [BedInterval("chr1", 0, 10, "a", 5, "+"),
                 BedInterval("chr2", 3, 9, "b", 0, "-")]
    path = tmp_path / "t.bed"
    assert write_bed(path, intervals) == 2
    assert read_bed(path) == intervals
