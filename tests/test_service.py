"""Tests for the conversion job service: job lifecycle, scheduler,
artifact cache, end-to-end byte equivalence with the batch CLI, and the
line-JSON daemon protocol."""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.errors import JobNotFoundError, ServiceError
from repro.service import ArtifactCache, ConversionService, Job, \
    JobState, ServiceClient, ServiceDaemon, WorkerPool, cache_key


def wait_terminal(job: Job, timeout: float = 30.0) -> Job:
    assert job.wait(timeout), f"{job.job_id} not terminal in {timeout}s"
    return job


# ---------------------------------------------------------------------
# job model


def test_job_transition_rules():
    job = Job(kind="convert")
    job.transition(JobState.RUNNING)
    job.transition(JobState.DONE)
    assert job.done.is_set() and job.state.terminal


def test_job_illegal_transition():
    job = Job(kind="convert")
    job.transition(JobState.RUNNING)
    job.transition(JobState.DONE)
    with pytest.raises(ServiceError, match="illegal transition"):
        job.transition(JobState.RUNNING)


def test_job_bad_policy_rejected():
    with pytest.raises(ServiceError, match="max_retries"):
        Job(kind="convert", max_retries=-1)
    with pytest.raises(ServiceError, match="timeout"):
        Job(kind="convert", timeout=0)


# ---------------------------------------------------------------------
# scheduler / worker pool lifecycle


def test_pool_success():
    pool = WorkerPool(lambda job: job.params["x"] * 2, workers=2)
    try:
        job = wait_terminal(pool.submit(Job(kind="k", params={"x": 21})))
        assert job.state is JobState.DONE
        assert job.result == 42 and job.attempts == 1
        assert pool.metrics.counter("jobs_done") == 1
    finally:
        pool.shutdown()


def test_pool_timeout_fails_job():
    release = threading.Event()
    pool = WorkerPool(lambda job: release.wait(10), workers=1)
    try:
        job = pool.submit(Job(kind="k", timeout=0.2))
        wait_terminal(job)
        assert job.state is JobState.FAILED
        assert "timed out" in job.error
        assert pool.metrics.counter("jobs_timed_out") == 1
    finally:
        release.set()
        pool.shutdown()


def test_pool_retry_then_fail():
    pool = WorkerPool(lambda job: 1 / 0, workers=1)
    try:
        job = pool.submit(Job(kind="k", max_retries=2, backoff=0.01))
        wait_terminal(job)
        assert job.state is JobState.FAILED
        assert job.attempts == 3
        assert "ZeroDivisionError" in job.error
        assert pool.metrics.counter("jobs_retried") == 2
        assert pool.metrics.counter("jobs_failed") == 1
    finally:
        pool.shutdown()


def test_pool_retry_then_succeed():
    def flaky(job: Job):
        if job.attempts < 3:
            raise RuntimeError("transient")
        return "recovered"

    pool = WorkerPool(flaky, workers=1)
    try:
        job = pool.submit(Job(kind="k", max_retries=3, backoff=0.01))
        wait_terminal(job)
        assert job.state is JobState.DONE
        assert job.result == "recovered" and job.attempts == 3
    finally:
        pool.shutdown()


def test_pool_cancel_queued_job():
    gate = threading.Event()
    pool = WorkerPool(lambda job: gate.wait(10), workers=1)
    try:
        blocker = pool.submit(Job(kind="k"))
        queued = pool.submit(Job(kind="k"))
        assert pool.cancel(queued.job_id) is True
        wait_terminal(queued, 5)
        assert queued.state is JobState.CANCELLED
        assert queued.attempts == 0
        gate.set()
        wait_terminal(blocker)
        assert blocker.state is JobState.DONE
        assert pool.metrics.counter("jobs_cancelled") == 1
    finally:
        gate.set()
        pool.shutdown()


def test_pool_cancel_running_job():
    started = threading.Event()

    def runner(job: Job):
        started.set()
        while not job.cancel_requested.is_set():
            time.sleep(0.01)
        return "ignored"

    pool = WorkerPool(runner, workers=1)
    try:
        job = pool.submit(Job(kind="k"))
        assert started.wait(5)
        assert pool.cancel(job.job_id) is True
        wait_terminal(job)
        assert job.state is JobState.CANCELLED
        assert job.result is None
    finally:
        pool.shutdown()


def test_pool_cancel_finished_job_returns_false():
    pool = WorkerPool(lambda job: None, workers=1)
    try:
        job = wait_terminal(pool.submit(Job(kind="k")))
        assert pool.cancel(job.job_id) is False
        with pytest.raises(JobNotFoundError):
            pool.cancel("job-999999")
    finally:
        pool.shutdown()


def test_pool_priority_order():
    order: list[str] = []
    gate = threading.Event()

    def runner(job: Job):
        if job.params.get("blocker"):
            gate.wait(10)
        else:
            order.append(job.params["tag"])

    pool = WorkerPool(runner, workers=1)
    try:
        pool.submit(Job(kind="k", params={"blocker": True}))
        time.sleep(0.05)  # let the blocker occupy the worker
        low = pool.submit(Job(kind="k", params={"tag": "low"},
                              priority=0))
        high = pool.submit(Job(kind="k", params={"tag": "high"},
                               priority=5))
        mid = pool.submit(Job(kind="k", params={"tag": "mid"},
                              priority=1))
        gate.set()
        for job in (low, high, mid):
            wait_terminal(job)
        assert order == ["high", "mid", "low"]
    finally:
        gate.set()
        pool.shutdown()


def test_pool_queue_depth_gauge_and_duplicate_submit():
    gate = threading.Event()
    pool = WorkerPool(lambda job: gate.wait(10), workers=1)
    try:
        first = pool.submit(Job(kind="k"))
        time.sleep(0.05)
        pool.submit(Job(kind="k"))
        assert pool.metrics.gauge("queue_depth") == 1
        assert pool.metrics.gauge("jobs_running") == 1
        with pytest.raises(ServiceError, match="duplicate job id"):
            pool.submit(first)
    finally:
        gate.set()
        pool.shutdown()


# ---------------------------------------------------------------------
# artifact cache


def write_input(path, data: bytes) -> str:
    path.write_bytes(data)
    return str(path)


def test_cache_miss_then_hit(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    src = write_input(tmp_path / "in.bam", b"payload")
    builds = []

    def builder(entry_dir: str) -> None:
        builds.append(entry_dir)
        with open(os.path.join(entry_dir, "a.bamx"), "wb") as fh:
            fh.write(b"x" * 64)

    entry1, hit1 = cache.get_or_build(src, {"compress": False}, builder)
    entry2, hit2 = cache.get_or_build(src, {"compress": False}, builder)
    assert (hit1, hit2) == (False, True)
    assert len(builds) == 1
    assert entry1.key == entry2.key
    assert cache.metrics.counter("cache_hits") == 1
    assert cache.metrics.counter("cache_misses") == 1


def test_cache_key_depends_on_content_and_params(tmp_path):
    a = write_input(tmp_path / "a.bam", b"AAAA")
    b = write_input(tmp_path / "b.bam", b"AAAA")
    c = write_input(tmp_path / "c.bam", b"BBBB")
    assert cache_key(a, {"z": 1}) == cache_key(b, {"z": 1})
    assert cache_key(a, {"z": 1}) != cache_key(a, {"z": 2})
    assert cache_key(a, {"z": 1}) != cache_key(c, {"z": 1})


def test_cache_lru_eviction(tmp_path):
    def builder(entry_dir: str) -> None:
        with open(os.path.join(entry_dir, "blob"), "wb") as fh:
            fh.write(b"x" * 1000)

    # The cap fits two entries (1000-byte blob + digest-bearing meta
    # each) but not three.
    cache = ArtifactCache(tmp_path / "cache", max_bytes=3000)
    srcs = [write_input(tmp_path / f"in{i}.bam", bytes([i]) * 8)
            for i in range(3)]
    for src in srcs:
        cache.get_or_build(src, {}, builder)
    # Three ~1 KiB entries exceed the cap: the oldest one is evicted.
    assert cache.metrics.counter("cache_evictions") == 1
    assert cache.lookup(srcs[0], {}) is None
    assert cache.lookup(srcs[1], {}) is not None
    assert cache.lookup(srcs[2], {}) is not None
    # Touch entry 1, then add a fourth: entry 2 is now the LRU victim.
    cache.get_or_build(srcs[1], {}, builder)
    src3 = write_input(tmp_path / "in3.bam", b"\x09" * 8)
    cache.get_or_build(src3, {}, builder)
    assert cache.lookup(srcs[2], {}) is None
    assert cache.lookup(srcs[1], {}) is not None


def test_cache_concurrent_build_runs_once(tmp_path):
    src = write_input(tmp_path / "in.bam", b"shared")
    cache = ArtifactCache(tmp_path / "cache")
    builds = []
    build_lock = threading.Lock()

    def builder(entry_dir: str) -> None:
        with build_lock:
            builds.append(entry_dir)
        time.sleep(0.05)
        with open(os.path.join(entry_dir, "a.bamx"), "wb") as fh:
            fh.write(b"y" * 16)

    results = []

    def worker() -> None:
        results.append(cache.get_or_build(src, {}, builder))

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(builds) == 1
    assert sum(1 for _, hit in results if not hit) == 1
    keys = {entry.key for entry, _ in results}
    assert len(keys) == 1


def test_cache_survives_restart(tmp_path):
    src = write_input(tmp_path / "in.bam", b"persist")

    def builder(entry_dir: str) -> None:
        with open(os.path.join(entry_dir, "a.bamx"), "wb") as fh:
            fh.write(b"z" * 32)

    first = ArtifactCache(tmp_path / "cache")
    first.get_or_build(src, {}, builder)
    reopened = ArtifactCache(tmp_path / "cache")
    entry, hit = reopened.get_or_build(
        src, {}, lambda d: pytest.fail("must not rebuild"))
    assert hit is True
    assert entry.files() and entry.files()[0].endswith("a.bamx")


# ---------------------------------------------------------------------
# conversion service end to end


@pytest.fixture()
def service(tmp_path):
    svc = ConversionService(tmp_path / "svc", workers=2)
    yield svc
    svc.close()


def part_bytes(out_dir) -> dict[str, bytes]:
    """{part file name: content} for comparing conversion outputs."""
    return {name: open(os.path.join(out_dir, name), "rb").read()
            for name in sorted(os.listdir(out_dir))
            if ".part" in name}


def test_service_validates_submissions(service, bam_file):
    with pytest.raises(ServiceError, match="unknown job kind"):
        service.submit("frobnicate", {"input": bam_file})
    with pytest.raises(ServiceError, match="'input'"):
        service.submit("convert", {})
    with pytest.raises(ServiceError, match="'region'"):
        service.submit("region", {"input": bam_file, "target": "bed",
                                  "out_dir": "/tmp/x"})
    with pytest.raises(JobNotFoundError):
        service.status("job-999999")


def test_service_convert_matches_batch_cli(service, bam_file, tmp_path):
    from repro.cli import main
    cli_out = tmp_path / "cli-out"
    assert main(["convert", bam_file, "--target", "sam",
                 "--out-dir", str(cli_out), "--work-dir",
                 str(tmp_path / "cli-work"), "--nprocs", "2"]) == 0
    svc_out = tmp_path / "svc-out"
    job = service.submit("convert", {"input": bam_file, "target": "sam",
                                     "out_dir": str(svc_out),
                                     "nprocs": 2})
    snap = service.wait(job.job_id, timeout=60)
    assert snap["state"] == "done", snap["error"]
    assert snap["result"]["cache"] == "miss"
    cli_parts = part_bytes(cli_out)
    svc_parts = part_bytes(svc_out)
    assert cli_parts.keys() == svc_parts.keys()
    assert cli_parts == svc_parts


def test_warm_cache_region_skips_preprocessing(service, bam_file,
                                               tmp_path):
    """Acceptance: a warm-cache partial-region job must not re-run the
    sequential preprocessing phase (asserted via metrics counters)."""
    first = service.submit("region", {
        "input": bam_file, "region": "chr1:1-30000", "target": "bed",
        "out_dir": str(tmp_path / "r1")})
    snap = service.wait(first.job_id, timeout=60)
    assert snap["state"] == "done", snap["error"]
    assert snap["result"]["cache"] == "miss"
    assert service.metrics.counter("preprocess_runs") == 1

    second = service.submit("region", {
        "input": bam_file, "region": "chr1:1-30000", "target": "bed",
        "out_dir": str(tmp_path / "r2")})
    snap2 = service.wait(second.job_id, timeout=60)
    assert snap2["state"] == "done", snap2["error"]
    assert snap2["result"]["cache"] == "hit"
    # The preprocessing counter did not move: warm path skipped it.
    assert service.metrics.counter("preprocess_runs") == 1
    assert service.metrics.counter("cache_hits") >= 1
    assert part_bytes(tmp_path / "r1") == part_bytes(tmp_path / "r2")


def test_region_matches_batch_cli(service, bam_file, tmp_path):
    from repro.cli import main
    work = tmp_path / "work"
    assert main(["preprocess", bam_file, "--work-dir", str(work)]) == 0
    (bamx,) = sorted(str(p) for p in work.glob("*.bamx"))
    cli_out = tmp_path / "cli-region"
    assert main(["region", bamx, "--region", "chr1:1-30000",
                 "--target", "bed", "--out-dir", str(cli_out),
                 "--nprocs", "2"]) == 0
    job = service.submit("region", {
        "input": bam_file, "region": "chr1:1-30000", "target": "bed",
        "out_dir": str(tmp_path / "svc-region"), "nprocs": 2})
    snap = service.wait(job.job_id, timeout=60)
    assert snap["state"] == "done", snap["error"]
    assert part_bytes(cli_out) == part_bytes(tmp_path / "svc-region")


def test_concurrent_submitters_byte_identical(service, bam_file,
                                              tmp_path):
    """Many threads submitting the same work must share one
    preprocessing run and all produce identical bytes."""
    n = 5
    jobs: list = [None] * n

    def submitter(i: int) -> None:
        jobs[i] = service.submit("region", {
            "input": bam_file, "region": "chr2:1-20000",
            "target": "bedgraph",
            "out_dir": str(tmp_path / f"out{i}")})

    threads = [threading.Thread(target=submitter, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snaps = [service.wait(job.job_id, timeout=120) for job in jobs]
    assert all(s["state"] == "done" for s in snaps), snaps
    assert service.metrics.counter("preprocess_runs") == 1
    reference = part_bytes(tmp_path / "out0")
    assert reference
    for i in range(1, n):
        assert part_bytes(tmp_path / f"out{i}") == reference


def test_service_preprocess_job_warms_cache(service, bam_file,
                                            tmp_path):
    job = service.submit("preprocess", {"input": bam_file})
    snap = service.wait(job.job_id, timeout=60)
    assert snap["state"] == "done", snap["error"]
    assert snap["result"]["cache"] == "miss"
    assert any(p.endswith(".bamx") for p in snap["result"]["artifacts"])
    follow = service.submit("convert", {
        "input": bam_file, "target": "bed",
        "out_dir": str(tmp_path / "out")})
    snap2 = service.wait(follow.job_id, timeout=60)
    assert snap2["result"]["cache"] == "hit"
    assert service.metrics.counter("preprocess_runs") == 1


# ---------------------------------------------------------------------
# daemon + protocol


@pytest.fixture()
def daemon(tmp_path):
    svc = ConversionService(tmp_path / "svc", workers=2)
    sock = str(tmp_path / "repro.sock")
    d = ServiceDaemon(svc, sock)
    d.start()
    yield d
    d.stop()


def test_daemon_roundtrip(daemon, bam_file, tmp_path):
    with ServiceClient(daemon.socket_path) as client:
        assert client.ping()
        job = client.submit("convert", {
            "input": bam_file, "target": "bed",
            "out_dir": str(tmp_path / "out")})
        assert job["state"] in ("queued", "running")
        final = client.wait(job["job_id"], timeout=60)
        assert final["state"] == "done"
        assert final["result"]["records"] > 0
        all_jobs = client.status()
        assert [j["job_id"] for j in all_jobs] == [job["job_id"]]
        metrics = client.metrics()
        assert metrics["counters"]["jobs_done"] == 1
        assert client.cancel(job["job_id"]) is False


def test_daemon_error_paths(daemon):
    with ServiceClient(daemon.socket_path) as client:
        with pytest.raises(ServiceError, match="unknown op"):
            client.request("explode")
        with pytest.raises(JobNotFoundError):
            client.status("job-424242")
        with pytest.raises(ServiceError, match="unknown job kind"):
            client.submit("nope", {"input": "x"})
        with pytest.raises(ServiceError, match="missing field"):
            client.request("wait")


def test_daemon_rejects_malformed_line(daemon):
    import socket as socketlib
    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.connect(daemon.socket_path)
    try:
        sock.sendall(b"this is not json\n")
        data = sock.makefile("rb").readline()
        import json
        response = json.loads(data)
        assert response["ok"] is False
        assert "bad protocol line" in response["error"]
    finally:
        sock.close()


def test_client_connection_refused(tmp_path):
    with pytest.raises(ServiceError, match="cannot reach service"):
        ServiceClient(str(tmp_path / "nothing.sock"))


# ---------------------------------------------------------------------
# retry delay-heap drain on cancel / shutdown (regression)


def test_cancel_parked_retry_drains_delay_heap():
    """Cancelling a job parked in the retry delay-heap must remove it
    from the heap — a stale entry would resurrect the job later."""
    pool = WorkerPool(lambda job: 1 / 0, workers=1)
    try:
        job = pool.submit(Job(kind="k", max_retries=3, backoff=30.0))
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            with pool._cond:
                if pool._delayed:
                    break
            time.sleep(0.01)
        with pool._cond:
            assert pool._delayed, "job never parked for retry"
        assert pool.cancel(job.job_id) is True
        wait_terminal(job, 5)
        assert job.state is JobState.CANCELLED
        with pool._cond:
            assert pool._delayed == [] and pool._ready == []
        # With the heap drained, wait_all returns immediately instead
        # of blocking until the 30 s backoff would have fired.
        assert pool.wait_all(timeout=1.0)
        assert pool.metrics.gauge("queue_depth") == 0
    finally:
        pool.shutdown()


def test_shutdown_finishes_parked_retries_as_cancelled():
    """shutdown() must not orphan retries parked in the delay heap:
    they finish CANCELLED instead of hanging QUEUED forever."""
    pool = WorkerPool(lambda job: 1 / 0, workers=1)
    job = pool.submit(Job(kind="k", max_retries=3, backoff=30.0))
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        with pool._cond:
            if pool._delayed:
                break
        time.sleep(0.01)
    pool.shutdown()
    wait_terminal(job, 5)
    assert job.state is JobState.CANCELLED
    assert job.done.is_set()


def test_retry_during_shutdown_is_cancelled_not_parked():
    """An attempt that fails while the pool is stopping must not park a
    retry the drained heap will never serve."""
    release = threading.Event()

    def runner(job: Job):
        release.wait(10)
        raise RuntimeError("fail after shutdown began")

    pool = WorkerPool(runner, workers=1)
    job = pool.submit(Job(kind="k", max_retries=3, backoff=0.01))
    time.sleep(0.05)                    # let the attempt start
    stopper = threading.Thread(target=pool.shutdown)
    stopper.start()
    time.sleep(0.05)                    # shutdown sets _stopping
    release.set()
    stopper.join(10)
    assert not stopper.is_alive()
    wait_terminal(job, 5)
    assert job.state is JobState.CANCELLED


# ---------------------------------------------------------------------
# per-job span traces


def test_pool_records_job_trace_and_span_timers():
    from repro.runtime.tracing import Tracer, get_tracer, install

    def runner(job: Job):
        with get_tracer().span("step", "test"):
            time.sleep(0.002)
        return "ok"

    pool = WorkerPool(runner, workers=1)
    try:
        job = wait_terminal(pool.submit(Job(kind="work")))
        assert job.state is JobState.DONE
        names = [s["name"] for s in job.trace]
        assert "job.work" in names and "step" in names
        root = next(s for s in job.trace if s["name"] == "job.work")
        step = next(s for s in job.trace if s["name"] == "step")
        assert step["parent_id"] == root["span_id"]
        snap = pool.metrics.snapshot()
        assert "span.job.work" in snap["timers"]
        assert "span.step" in snap["timers"]
        # Trace stays out of the wire dict (can be large).
        assert "trace" not in job.to_dict()
    finally:
        pool.shutdown()


def test_pool_trace_disabled():
    pool = WorkerPool(lambda job: "ok", workers=1, trace_jobs=False)
    try:
        job = wait_terminal(pool.submit(Job(kind="work")))
        assert job.trace == []
        assert "span.job.work" not in pool.metrics.snapshot()["timers"]
    finally:
        pool.shutdown()


def test_failed_attempts_keep_their_spans():
    pool = WorkerPool(lambda job: 1 / 0, workers=1)
    try:
        job = pool.submit(Job(kind="k", max_retries=2, backoff=0.01))
        wait_terminal(job)
        assert job.state is JobState.FAILED
        roots = [s for s in job.trace if s["name"] == "job.k"]
        assert len(roots) == job.attempts   # one span tree per attempt
        assert all(s["args"]["error"] == "ZeroDivisionError"
                   for s in roots)
        attempts = sorted(s["args"]["attempt"] for s in roots)
        assert attempts == list(range(1, job.attempts + 1))
    finally:
        pool.shutdown()


def test_daemon_trace_op(daemon, bam_file, tmp_path):
    with ServiceClient(daemon.socket_path) as client:
        job = client.submit("convert", {
            "input": bam_file, "target": "bed",
            "out_dir": str(tmp_path / "out")})
        client.wait(job["job_id"], timeout=60)
        spans = client.trace(job["job_id"])
        names = {s["name"] for s in spans}
        assert "job.convert" in names and "convert" in names
        with pytest.raises(JobNotFoundError):
            client.trace("job-424242")
