"""Tests for the structural validator."""

from repro.formats.header import SamHeader
from repro.formats.record import AlignmentRecord
from repro.formats.sam import parse_alignment, write_sam
from repro.tools.validate import validate_file, validate_records

HDR = SamHeader.from_references([("chr1", 1_000), ("chr2", 500)])
HDR_SORTED = HDR.with_sort_order("coordinate")


def line(text):
    return parse_alignment(text)


def test_clean_records_pass():
    records = [
        line("a\t99\tchr1\t100\t60\t4M\t=\t200\t104\tACGT\tIIII"),
        line("a\t147\tchr1\t200\t60\t4M\t=\t100\t-104\tACGT\tIIII"),
    ]
    report = validate_records(records, HDR)
    assert report.ok
    assert report.records_checked == 2


def test_unknown_reference_flagged():
    records = [line("a\t0\tchrX\t10\t60\t4M\t*\t0\t0\tACGT\tIIII")]
    report = validate_records(records, HDR)
    assert not report.ok
    assert report.errors[0].code == "UNKNOWN_REFERENCE"


def test_unknown_rnext_flagged():
    records = [line("a\t0\tchr1\t10\t60\t4M\tchrX\t0\t0\tACGT\tIIII")]
    report = validate_records(records, HDR)
    assert any(i.code == "UNKNOWN_REFERENCE" for i in report.errors)


def test_pos_beyond_reference():
    records = [line("a\t0\tchr2\t600\t60\t4M\t*\t0\t0\tACGT\tIIII")]
    report = validate_records(records, HDR)
    assert report.errors[0].code == "POS_BEYOND_REFERENCE"


def test_end_beyond_reference():
    records = [line("a\t0\tchr2\t499\t60\t4M\t*\t0\t0\tACGT\tIIII")]
    report = validate_records(records, HDR)
    assert report.errors[0].code == "POS_BEYOND_REFERENCE"


def test_missing_header_dictionary():
    records = [line("a\t0\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\tIIII")]
    report = validate_records(records, SamHeader())
    assert report.errors[0].code == "MISSING_HEADER"


def test_invalid_record_reported_not_raised():
    bad = AlignmentRecord("a", 0, "chr1", 10, 60, [(5, "M")], "*", -1, 0,
                          "ACGT", "IIII")  # CIGAR length mismatch
    report = validate_records([bad], HDR)
    assert report.errors[0].code == "RECORD_INVALID"


def test_sort_order_claim_checked():
    records = [
        line("a\t0\tchr1\t500\t60\t4M\t*\t0\t0\tACGT\tIIII"),
        line("b\t0\tchr1\t100\t60\t4M\t*\t0\t0\tACGT\tIIII"),
    ]
    report = validate_records(records, HDR_SORTED)
    assert any(i.code == "NOT_COORDINATE_SORTED" for i in report.errors)
    # The same records under an 'unsorted' header are fine.
    assert validate_records(records, HDR).ok


def test_sort_violation_reported_once():
    records = [
        line("a\t0\tchr1\t500\t60\t4M\t*\t0\t0\tACGT\tIIII"),
        line("b\t0\tchr1\t100\t60\t4M\t*\t0\t0\tACGT\tIIII"),
        line("c\t0\tchr1\t50\t60\t4M\t*\t0\t0\tACGT\tIIII"),
    ]
    report = validate_records(records, HDR_SORTED)
    assert sum(1 for i in report.errors
               if i.code == "NOT_COORDINATE_SORTED") == 1


def test_mate_inconsistency_detected():
    records = [
        line("a\t99\tchr1\t100\t60\t4M\t=\t999\t104\tACGT\tIIII"),
        line("a\t147\tchr1\t200\t60\t4M\t=\t100\t-104\tACGT\tIIII"),
    ]
    report = validate_records(records, HDR)
    assert any(i.code == "MATE_INCONSISTENT" for i in report.errors)


def test_duplicate_primary_detected():
    records = [
        line("a\t99\tchr1\t100\t60\t4M\t=\t200\t104\tACGT\tIIII"),
        line("a\t99\tchr1\t300\t60\t4M\t=\t200\t104\tACGT\tIIII"),
    ]
    report = validate_records(records, HDR)
    assert any(i.code == "DUPLICATE_PRIMARY" for i in report.errors)


def test_check_mates_can_be_disabled():
    records = [
        line("a\t99\tchr1\t100\t60\t4M\t=\t999\t104\tACGT\tIIII"),
        line("a\t147\tchr1\t200\t60\t4M\t=\t100\t-104\tACGT\tIIII"),
    ]
    report = validate_records(records, HDR, check_mates=False)
    assert report.ok


def test_report_formatting():
    records = [line("a\t0\tchrX\t10\t60\t4M\t*\t0\t0\tACGT\tIIII")]
    report = validate_records(records, HDR)
    text = report.format_report()
    assert "1 errors" in text
    assert "UNKNOWN_REFERENCE" in text


def test_workload_files_validate_clean(sam_file, bam_file):
    assert validate_file(sam_file).ok
    assert validate_file(bam_file).ok


def test_unsorted_file_with_sorted_claim(tmp_path, unsorted_workload):
    _, header, records = unsorted_workload
    lying_header = header.with_sort_order("coordinate")
    path = tmp_path / "lying.sam"
    write_sam(path, lying_header, records)
    report = validate_file(path, check_mates=False)
    assert any(i.code == "NOT_COORDINATE_SORTED" for i in report.errors)
