"""Tests for the multi-threaded BGZF writer."""

import pytest

from repro.errors import BgzfError
from repro.formats.bgzf import BgzfReader, BgzfWriter, EOF_MARKER
from repro.formats.bgzf_threads import ThreadedBgzfWriter, compress_file


def sequential_bytes(payload, level=6):
    import io
    buf = io.BytesIO()
    writer = BgzfWriter(buf, level=level)
    writer.write(payload)
    writer.close()
    return buf.getvalue()


def threaded_bytes(payload, threads, level=6, chunk=None):
    import io
    buf = io.BytesIO()
    writer = ThreadedBgzfWriter(buf, threads=threads, level=level)
    if chunk:
        for off in range(0, len(payload), chunk):
            writer.write(payload[off:off + chunk])
    else:
        writer.write(payload)
    writer.close()
    return buf.getvalue()


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_output_identical_to_sequential(threads):
    payload = bytes(range(256)) * 2_000  # ~512 KiB, several blocks
    assert threaded_bytes(payload, threads) == sequential_bytes(payload)


def test_chunked_writes_identical():
    payload = b"record data\n" * 30_000
    assert threaded_bytes(payload, 3, chunk=4_097) == \
        sequential_bytes(payload)


def test_roundtrip_through_reader(tmp_path):
    payload = b"x" * 300_000 + b"tail"
    path = tmp_path / "t.bgzf"
    writer = ThreadedBgzfWriter(path, threads=3)
    writer.write(payload)
    writer.close()
    reader = BgzfReader(path)
    assert reader.read(-1) == payload


def test_empty_stream_is_just_eof(tmp_path):
    path = tmp_path / "empty.bgzf"
    ThreadedBgzfWriter(path, threads=2).close()
    assert path.read_bytes() == EOF_MARKER


def test_tell_matches_sequential_writer(tmp_path):
    import io
    payload_parts = [b"a" * 10, b"b" * 70_000, b"c" * 5]
    seq_buf = io.BytesIO()
    thr_buf = io.BytesIO()
    seq = BgzfWriter(seq_buf)
    thr = ThreadedBgzfWriter(thr_buf, threads=2)
    for part in payload_parts:
        seq.write(part)
        thr.write(part)
        assert thr.tell() == seq.tell()
    seq.close()
    thr.close()
    assert thr_buf.getvalue() == seq_buf.getvalue()


def test_close_idempotent(tmp_path):
    writer = ThreadedBgzfWriter(tmp_path / "t.bgzf", threads=2)
    writer.write(b"abc")
    writer.close()
    writer.close()


def test_invalid_thread_count(tmp_path):
    with pytest.raises(BgzfError):
        ThreadedBgzfWriter(tmp_path / "t.bgzf", threads=0)


def test_backpressure_bounded(tmp_path):
    # A tiny pending window must still produce correct ordered output.
    import io
    payload = bytes(range(256)) * 1_500
    buf = io.BytesIO()
    writer = ThreadedBgzfWriter(buf, threads=4, max_pending=1)
    writer.write(payload)
    writer.close()
    assert buf.getvalue() == sequential_bytes(payload)


def test_compress_file(tmp_path):
    src = tmp_path / "plain.txt"
    src.write_bytes(b"line of text\n" * 50_000)
    dst = tmp_path / "plain.txt.gz"
    n = compress_file(src, dst, threads=3)
    assert n == src.stat().st_size
    reader = BgzfReader(dst)
    assert reader.read(-1) == src.read_bytes()
