"""Unit tests for the BAMX fixed-record format."""

import pytest

from repro.errors import BamxFormatError, CapacityError
from repro.formats.bamx import BamxLayout, BamxReader, BamxWriter, \
    plan_layout, read_bamx, write_bamx
from repro.formats.header import SamHeader
from repro.formats.record import UNMAPPED_POS, AlignmentRecord
from repro.formats.tags import Tag

HDR = SamHeader.from_references([("chr1", 100_000), ("chr2", 50_000)])


def make_record(**overrides):
    base = dict(qname="q1", flag=99, rname="chr1", pos=500, mapq=60,
                cigar=[(4, "M")], rnext="=", pnext=700, tlen=204,
                seq="ACGT", qual="IIII", tags=[Tag("NM", "i", 0)])
    base.update(overrides)
    return AlignmentRecord(**base)


def test_layout_record_size_is_fixed():
    layout = BamxLayout(name_cap=10, cigar_cap=3, seq_cap=9, tag_cap=8)
    rec_small = make_record(qname="a", seq="AC", qual="II",
                            cigar=[(2, "M")], tags=[])
    rec_big = make_record(qname="abcdefghij", seq="ACGTACGTA",
                          qual="IIIIIIIII", cigar=[(4, "M"), (1, "I"),
                                                   (4, "M")])
    a = layout.encode(rec_small, HDR)
    b = layout.encode(rec_big, HDR)
    assert len(a) == len(b) == layout.record_size


def test_encode_decode_roundtrip():
    layout = BamxLayout(8, 4, 16, 32)
    for rec in (make_record(),
                make_record(seq="*", qual="*", cigar=[]),
                make_record(qual="*"),
                make_record(flag=4 | 1, rname="*", pos=UNMAPPED_POS,
                            mapq=0, cigar=[], rnext="*",
                            pnext=UNMAPPED_POS, tlen=0, tags=[]),
                make_record(rnext="chr2", pnext=3),
                make_record(seq="ACGTA", qual="ABCDE",
                            cigar=[(5, "M")])):
        assert layout.decode(layout.encode(rec, HDR), HDR) == rec


def test_capacity_violations():
    layout = BamxLayout(name_cap=3, cigar_cap=1, seq_cap=4, tag_cap=4)
    with pytest.raises(CapacityError):
        layout.encode(make_record(qname="toolong"), HDR)
    with pytest.raises(CapacityError):
        layout.encode(make_record(cigar=[(2, "M"), (2, "M")]), HDR)
    with pytest.raises(CapacityError):
        layout.encode(make_record(seq="ACGTA", qual="IIIII",
                                  cigar=[(5, "M")]), HDR)
    with pytest.raises(CapacityError):
        layout.encode(make_record(tags=[Tag("XZ", "Z", "long value")]),
                      HDR)


def test_plan_layout_is_tight():
    records = [make_record(qname="abc", seq="ACGTAC", qual="IIIIII",
                           cigar=[(6, "M")]),
               make_record(qname="a", seq="AC", qual="II",
                           cigar=[(1, "M"), (1, "I")], tags=[])]
    layout = plan_layout(records)
    assert layout.name_cap == 3
    assert layout.cigar_cap == 2
    assert layout.seq_cap == 6
    for rec in records:
        layout.encode(rec, HDR)  # everything fits


def test_layout_merge():
    a = BamxLayout(1, 5, 2, 0)
    b = BamxLayout(3, 1, 9, 4)
    assert a.merge(b) == BamxLayout(3, 5, 9, 4)


def test_invalid_layouts_rejected():
    with pytest.raises(BamxFormatError):
        BamxLayout(-1, 0, 0, 0)
    with pytest.raises(BamxFormatError):
        BamxLayout(255, 0, 0, 0)


def test_file_roundtrip(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bamx"
    layout = write_bamx(path, header, records)
    header2, records2 = read_bamx(path)
    assert records2 == records
    assert header2 == header
    with BamxReader(path) as reader:
        assert reader.layout == layout


def test_random_access(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bamx"
    write_bamx(path, header, records)
    with BamxReader(path) as reader:
        assert len(reader) == len(records)
        assert reader[0] == records[0]
        assert reader[len(records) - 1] == records[-1]
        assert reader[-1] == records[-1]
        assert reader[37] == records[37]
        with pytest.raises(IndexError):
            reader[len(records)]


def test_read_range(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bamx"
    write_bamx(path, header, records)
    with BamxReader(path) as reader:
        assert list(reader.read_range(10, 20)) == records[10:20]
        assert list(reader.read_range(0, 0)) == []
        with pytest.raises(BamxFormatError):
            list(reader.read_range(0, len(records) + 1))


def test_writer_counts_and_indices(tmp_path):
    path = tmp_path / "t.bamx"
    layout = BamxLayout(8, 4, 8, 8)
    with BamxWriter(path, HDR, layout) as writer:
        assert writer.write(make_record()) == 0
        assert writer.write(make_record()) == 1
        assert writer.records_written == 2
    with BamxReader(path) as reader:
        assert len(reader) == 2


def test_bad_magic(tmp_path):
    path = tmp_path / "bad.bamx"
    path.write_bytes(b"not a bamx file at all")
    with pytest.raises(BamxFormatError):
        BamxReader(path)


def test_truncated_data_region_detected(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bamx"
    write_bamx(path, header, records)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(BamxFormatError):
        BamxReader(path)
