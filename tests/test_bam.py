"""Unit tests for the BAM binary codec."""

import pytest

from repro.errors import BamFormatError
from repro.formats.bam import BamReader, BamWriter, decode_record, \
    encode_record, read_bam, write_bam
from repro.formats.header import SamHeader
from repro.formats.record import UNMAPPED_POS, AlignmentRecord
from repro.formats.sam import parse_alignment
from repro.formats.tags import Tag

HDR = SamHeader.from_references([("chr1", 100_000), ("chr2", 50_000)])


def make_record(**overrides):
    base = dict(qname="q1", flag=99, rname="chr1", pos=500, mapq=60,
                cigar=[(4, "M")], rnext="=", pnext=700, tlen=204,
                seq="ACGT", qual="IIII",
                tags=[Tag("NM", "i", 0)])
    base.update(overrides)
    return AlignmentRecord(**base)


def test_record_roundtrip():
    rec = make_record()
    body = encode_record(rec, HDR)
    size = int.from_bytes(body[:4], "little")
    assert size == len(body) - 4
    assert decode_record(body[4:], HDR) == rec


def test_unmapped_record_roundtrip():
    rec = make_record(flag=4 | 1 | 64, rname="*", pos=UNMAPPED_POS,
                      mapq=0, cigar=[], rnext="*", pnext=UNMAPPED_POS,
                      tlen=0)
    body = encode_record(rec, HDR)
    assert decode_record(body[4:], HDR) == rec


def test_mate_on_other_chromosome():
    rec = make_record(rnext="chr2", pnext=100)
    body = encode_record(rec, HDR)
    assert decode_record(body[4:], HDR).rnext == "chr2"


def test_equal_sign_convention():
    # rnext "=" survives; an explicit same-name rnext normalizes to "=".
    rec = make_record(rnext="chr1")
    decoded = decode_record(encode_record(rec, HDR)[4:], HDR)
    assert decoded.rnext == "="


def test_missing_quality_roundtrip():
    rec = make_record(qual="*")
    decoded = decode_record(encode_record(rec, HDR)[4:], HDR)
    assert decoded.qual == "*"


def test_no_sequence_roundtrip():
    rec = make_record(seq="*", qual="*", cigar=[(4, "M")])
    decoded = decode_record(encode_record(rec, HDR)[4:], HDR)
    assert decoded.seq == "*" and decoded.qual == "*"


def test_odd_length_sequence():
    rec = make_record(seq="ACGTA", qual="IIIII", cigar=[(5, "M")])
    assert decode_record(encode_record(rec, HDR)[4:], HDR) == rec


def test_unknown_reference_rejected():
    with pytest.raises(Exception):
        encode_record(make_record(rname="chrX"), HDR)


def test_qname_length_limit():
    with pytest.raises(BamFormatError):
        encode_record(make_record(qname="x" * 255), HDR)


def test_qual_seq_length_mismatch_rejected():
    with pytest.raises(BamFormatError):
        encode_record(make_record(qual="III"), HDR)


def test_file_roundtrip(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bam"
    assert write_bam(path, header, records) == len(records)
    header2, records2 = read_bam(path)
    assert records2 == records
    assert [r.name for r in header2.references] == \
        [r.name for r in header.references]


def test_reader_exposes_header(bam_file, workload):
    _, header, _ = workload
    with BamReader(bam_file) as reader:
        assert [r.name for r in reader.header.references] == \
            [r.name for r in header.references]
        assert reader.header.sort_order == "coordinate"


def test_iter_with_offsets_allows_seek(bam_file):
    with BamReader(bam_file) as reader:
        pairs = list(reader.iter_with_offsets())
        assert len(pairs) > 10
        voffset, expected = pairs[7]
        reader.seek_virtual(voffset)
        assert reader._read_one() == expected


def test_rewind(bam_file):
    with BamReader(bam_file) as reader:
        first_pass = list(reader)
        reader.rewind()
        assert list(reader) == first_pass


def test_bad_magic_rejected(tmp_path):
    from repro.formats.bgzf import BgzfWriter
    path = tmp_path / "bad.bam"
    writer = BgzfWriter(path)
    writer.write(b"NOPE")
    writer.close()
    with pytest.raises(BamFormatError):
        BamReader(path)


def test_mismatched_sq_lines_rejected(tmp_path):
    import struct

    from repro.formats.bgzf import BgzfWriter
    # Header text says chr1:100, binary list says chr1:200.
    text = "@SQ\tSN:chr1\tLN:100\n".encode()
    blob = bytearray(b"BAM\x01")
    blob += struct.pack("<i", len(text)) + text
    blob += struct.pack("<i", 1)
    name = b"chr1\x00"
    blob += struct.pack("<i", len(name)) + name + struct.pack("<i", 200)
    path = tmp_path / "mismatch.bam"
    writer = BgzfWriter(path)
    writer.write(bytes(blob))
    writer.close()
    with pytest.raises(BamFormatError):
        BamReader(path)


def test_writer_returns_monotonic_offsets(tmp_path):
    path = tmp_path / "t.bam"
    with BamWriter(path, HDR) as writer:
        offsets = [writer.write(make_record(pos=i)) for i in range(100)]
    assert offsets == sorted(offsets)
    assert len(set(offsets)) == len(offsets)


def test_sam_line_through_bam_roundtrip():
    line = ("r9\t147\tchr2\t321\t7\t3S7M2I4M\t=\t100\t-250\t"
            "ACGTACGTACGTACGT\tABCDEFGHIJKLMNOP\tNM:i:3\tXB:B:c,1,-1")
    rec = parse_alignment(line)
    assert decode_record(encode_record(rec, HDR)[4:], HDR) == rec
