"""Unit tests for the SPMD launcher over all backends."""

import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.spmd import SpmdFailure, run_spmd


def rank_square(comm):
    return comm.rank ** 2


def ring_pass(comm):
    """Send rank id around a ring; each rank returns what it received."""
    if comm.size == 1:
        return comm.rank
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    # Even ranks send first to avoid deadlock on blocking pipes.
    if comm.rank % 2 == 0:
        comm.send(comm.rank, right)
        got = comm.recv(left)
    else:
        got = comm.recv(left)
        comm.send(comm.rank, right)
    comm.barrier()
    return got


def reduce_sum(comm):
    return comm.allreduce(comm.rank + 1, lambda a, b: a + b)


def failing_rank(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 explodes")
    return comm.rank


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_per_rank_results(backend):
    assert run_spmd(rank_square, 4, backend=backend) == [0, 1, 4, 9]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_ring_communication(backend):
    size = 4
    results = run_spmd(ring_pass, size, backend=backend)
    assert results == [(r - 1) % size for r in range(size)]


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_collectives(backend):
    size = 3
    assert run_spmd(reduce_sum, size, backend=backend) == [6, 6, 6]


def test_serial_backend_single_rank():
    assert run_spmd(rank_square, 1, backend="serial") == [0]


def test_serial_backend_rejects_multi_rank():
    with pytest.raises(RuntimeLayerError):
        run_spmd(rank_square, 2, backend="serial")


def test_size_one_any_backend_runs_inline():
    assert run_spmd(rank_square, 1, backend="thread") == [0]
    assert run_spmd(rank_square, 1, backend="process") == [0]


def test_invalid_backend():
    with pytest.raises(RuntimeLayerError):
        run_spmd(rank_square, 2, backend="mpi")


def test_invalid_size():
    with pytest.raises(RuntimeLayerError):
        run_spmd(rank_square, 0)


def test_thread_failure_collected():
    with pytest.raises(SpmdFailure) as info:
        run_spmd(failing_rank, 2, backend="thread")
    assert 1 in info.value.failures
    assert "rank 1 explodes" in info.value.failures[1]


def test_process_failure_collected():
    with pytest.raises(SpmdFailure) as info:
        run_spmd(failing_rank, 2, backend="process")
    assert 1 in info.value.failures


def test_extra_args_passed_through():
    def fn(comm, base, scale):
        return base + scale * comm.rank
    assert run_spmd(fn, 3, 10, 2, backend="thread") == [10, 12, 14]


def test_out_of_order_tags_are_buffered_process_backend():
    def fn(comm):
        if comm.rank == 0:
            comm.send("a", 1, tag=1)
            comm.send("b", 1, tag=2)
            return None
        # Receive in reverse tag order: the pipe comm must stash tag 1.
        second = comm.recv(0, tag=2)
        first = comm.recv(0, tag=1)
        return (first, second)
    results = run_spmd(fn, 2, backend="process")
    assert results[1] == ("a", "b")
