"""Tests for BAMZ (compressed BAMX) and the record-store opener."""

import os

import pytest

from repro.errors import BamxFormatError, IndexError_
from repro.formats.bamx import BamxReader, write_bamx
from repro.formats.bamz import BamzReader, BamzWriter, index_path_for, \
    read_bamz, write_bamz
from repro.formats.store import open_record_store, store_extension


@pytest.fixture(scope="module")
def bamz_file(workload, tmp_path_factory):
    _, header, records = workload
    path = tmp_path_factory.mktemp("bamz") / "t.bamz"
    layout = write_bamz(path, header, records)
    return str(path), layout, records


def test_roundtrip(bamz_file, workload):
    path, layout, records = bamz_file
    header, got = read_bamz(path)
    assert got == records


def test_sidecar_index_written(bamz_file):
    path, _, _ = bamz_file
    assert os.path.exists(index_path_for(path))


def test_random_access(bamz_file):
    path, _, records = bamz_file
    with BamzReader(path) as reader:
        assert len(reader) == len(records)
        assert reader[0] == records[0]
        assert reader[-1] == records[-1]
        assert reader[17] == records[17]
        with pytest.raises(IndexError):
            reader[len(records)]


def test_read_range(bamz_file):
    path, _, records = bamz_file
    with BamzReader(path) as reader:
        assert list(reader.read_range(5, 25)) == records[5:25]
        assert list(reader.read_range(3, 3)) == []
        with pytest.raises(BamxFormatError):
            list(reader.read_range(0, len(records) + 1))


def test_compression_actually_shrinks(workload, tmp_path):
    _, header, records = workload
    bamx = tmp_path / "t.bamx"
    bamz = tmp_path / "t.bamz"
    write_bamx(bamx, header, records)
    write_bamz(bamz, header, records)
    assert os.path.getsize(bamz) < 0.6 * os.path.getsize(bamx)


def test_missing_index_rejected(workload, tmp_path):
    _, header, records = workload
    path = tmp_path / "t.bamz"
    write_bamz(path, header, records[:10])
    os.unlink(index_path_for(path))
    with pytest.raises(FileNotFoundError):
        BamzReader(path)


def test_mismatched_index_rejected(workload, tmp_path):
    _, header, records = workload
    a = tmp_path / "a.bamz"
    b = tmp_path / "b.bamz"
    write_bamz(a, header, records[:10])
    # Different header text shifts the first record's virtual offset.
    bigger = header.with_sort_order("queryname")
    write_bamz(b, bigger, records[:10])
    with pytest.raises(IndexError_):
        BamzReader(a, index_path=index_path_for(b))


def test_bad_magic(tmp_path):
    from repro.formats.bgzf import BgzfWriter
    path = tmp_path / "bad.bamz"
    writer = BgzfWriter(path)
    writer.write(b"WRONG MAGIC HERE")
    writer.close()
    with pytest.raises(BamxFormatError):
        BamzReader(path)


def test_writer_counts(workload, tmp_path):
    _, header, records = workload
    from repro.formats.bamx import plan_layout
    path = tmp_path / "t.bamz"
    with BamzWriter(path, header, plan_layout(records)) as writer:
        assert writer.write(records[0]) == 0
        assert writer.write(records[1]) == 1
    with BamzReader(path) as reader:
        assert len(reader) == 2


def test_open_record_store_dispatch(workload, tmp_path):
    _, header, records = workload
    bamx = tmp_path / "t.bamx"
    bamz = tmp_path / "t.bamz"
    write_bamx(bamx, header, records[:20])
    write_bamz(bamz, header, records[:20])
    with open_record_store(bamx) as store:
        assert isinstance(store, BamxReader)
        assert list(store) == records[:20]
    with open_record_store(bamz) as store:
        assert isinstance(store, BamzReader)
        assert list(store) == records[:20]


def test_open_record_store_rejects_other_files(tmp_path, sam_file):
    with pytest.raises(BamxFormatError):
        open_record_store(sam_file)


def test_store_extension():
    assert store_extension(False) == ".bamx"
    assert store_extension(True) == ".bamz"


def test_converter_pipeline_over_bamz(workload, tmp_path):
    """Full and partial conversion behave identically over BAMX and
    BAMZ stores."""
    from repro.core import BamConverter
    from repro.formats.bam import write_bam
    _, header, records = workload
    bam = tmp_path / "t.bam"
    write_bam(bam, header, records)
    converter = BamConverter()
    bamx, baix_x, _ = converter.preprocess(bam, tmp_path / "wx",
                                           compress=False)
    bamz, baix_z, _ = converter.preprocess(bam, tmp_path / "wz",
                                           compress=True)
    assert bamz.endswith(".bamz")
    a = converter.convert(bamx, "bed", tmp_path / "ox", nprocs=3)
    b = converter.convert(bamz, "bed", tmp_path / "oz", nprocs=3)
    def cat(res):
        return b"".join(open(p, "rb").read() for p in res.outputs)
    assert cat(a) == cat(b)
    ra = converter.convert_region(bamx, baix_x, "chr1:1-20000", "sam",
                                  tmp_path / "rx", nprocs=2)
    rb = converter.convert_region(bamz, baix_z, "chr1:1-20000", "sam",
                                  tmp_path / "rz", nprocs=2)
    assert cat(ra) == cat(rb)
