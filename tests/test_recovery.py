"""Tests for crash recovery: pool-level journal replay adoption,
recovered-job cancellation, job-id seeding across restarts, and
service-level restarts that keep job ids and states stable."""

from __future__ import annotations

import secrets
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import ConversionService
from repro.service.jobs import Job, JobState, next_job_id, \
    seed_job_counter
from repro.service.journal import JobJournal, replay
from repro.service.scheduler import WorkerPool


@pytest.fixture(autouse=True)
def fresh_id_nonce():
    """Tests below re-seed the process-global id counter; restore a
    collision-free configuration afterwards no matter what."""
    yield
    seed_job_counter(0, nonce=secrets.token_hex(2) + "-")


def spec(job_id, state="queued", attempts=0, max_retries=0,
         submitted_at=None, **extra):
    base = {
        "job_id": job_id, "kind": "k", "params": {},
        "priority": 0, "timeout": None, "max_retries": max_retries,
        "backoff": 0.01, "state": state, "attempts": attempts,
        "result": None, "error": None,
        "submitted_at": submitted_at if submitted_at is not None
        else time.time(),
        "started_at": None, "finished_at": None,
    }
    base.update(extra)
    return base


# ---------------------------------------------------------------------
# pool-level recovery


def test_recover_categories():
    pool = WorkerPool(lambda job: {"ran": job.job_id}, workers=2)
    try:
        counts = pool.recover([
            spec("job-000001", state="queued"),
            spec("job-000002", state="running", attempts=1,
                 max_retries=2),
            spec("job-000003", state="running", attempts=1,
                 max_retries=0),
            spec("job-000004", state="done", attempts=1,
                 result={"kept": True}, finished_at=time.time()),
        ])
        # job 3 exhausted its retries when the crash interrupted it.
        assert counts == {"terminal": 1, "requeued": 1, "rerun": 1,
                          "failed": 1, "invalid": 0}
        assert pool.wait_all(10)
        assert pool.get("job-000001").state is JobState.DONE
        rerun = pool.get("job-000002")
        assert rerun.state is JobState.DONE
        assert rerun.result == {"ran": "job-000002"}
        assert rerun.error is None          # interruption note cleared
        assert rerun.attempts == 2          # the lost attempt counted
        failed = pool.get("job-000003")
        assert failed.state is JobState.FAILED
        assert "interrupted by service restart" in failed.error
        kept = pool.get("job-000004")
        assert kept.state is JobState.DONE
        assert kept.result == {"kept": True}
        assert kept.done.is_set()
        assert pool.metrics.counter("jobs_recovered") == 2
        assert pool.metrics.counter("jobs_recovered_failed") == 1
    finally:
        pool.shutdown()


def test_recover_skips_invalid_specs():
    """A journal record that is valid JSON but semantically bad
    (unknown state, missing kind) must not abort recovery — the
    daemon still starts, the bad spec is counted and skipped."""
    pool = WorkerPool(lambda job: {"ran": job.job_id}, workers=1)
    try:
        bad_state = spec("job-000001", state="bogus")
        missing_kind = spec("job-000002")
        del missing_kind["kind"]
        counts = pool.recover([bad_state, missing_kind,
                               spec("job-000003", state="queued")])
        assert counts["invalid"] == 2
        assert counts["requeued"] == 1
        assert pool.metrics.counter("jobs_recover_errors") == 2
        assert pool.wait_all(10)
        assert pool.get("job-000003").state is JobState.DONE
        with pytest.raises(Exception, match="unknown job id"):
            pool.get("job-000001")
    finally:
        pool.shutdown()


def test_recover_rejects_duplicate_ids():
    pool = WorkerPool(lambda job: None, workers=1)
    try:
        pool.recover([spec("job-000001")])
        with pytest.raises(ServiceError, match="duplicate job id"):
            pool.recover([spec("job-000001")])
    finally:
        pool.shutdown()


def test_recovered_job_can_be_cancelled():
    gate = threading.Event()
    pool = WorkerPool(lambda job: gate.wait(30), workers=1)
    try:
        # The high-priority job pins the single worker; the other
        # recovered job is still queued and must cancel immediately.
        pool.recover([
            spec("job-000001", state="queued", priority=5),
            spec("job-000002", state="queued"),
        ])
        deadline = time.monotonic() + 10
        while pool.get("job-000001").state is not JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        assert pool.cancel("job-000002") is True
        assert pool.get("job-000002").state is JobState.CANCELLED
        gate.set()
        assert pool.wait_all(10)
    finally:
        gate.set()
        pool.shutdown()


def test_pool_restart_with_journal_finishes_everything(tmp_path):
    path = tmp_path / "jobs.jsonl"
    gate = threading.Event()
    journal1 = JobJournal(path, fsync="never")
    pool1 = WorkerPool(lambda job: gate.wait(30), workers=1,
                       journal=journal1)
    running = pool1.submit(Job(kind="k", max_retries=1, backoff=0.01))
    queued = pool1.submit(Job(kind="k", max_retries=1, backoff=0.01))
    deadline = time.monotonic() + 10
    while running.state is not JobState.RUNNING:
        assert time.monotonic() < deadline
        time.sleep(0.005)
    # Simulate the crash: abandon the pool mid-flight (its worker is
    # a daemon thread parked on the gate) and reopen the journal the
    # way a fresh process would.
    journal1.close()
    specs, stats = replay(path)
    assert specs[running.job_id]["state"] == "running"
    assert specs[queued.job_id]["state"] == "queued"

    journal2 = JobJournal(path, fsync="never")
    pool2 = WorkerPool(lambda job: {"done": job.job_id}, workers=1,
                       journal=journal2)
    try:
        counts = pool2.recover(list(specs.values()))
        assert counts["rerun"] == 1 and counts["requeued"] == 1
        assert pool2.wait_all(10)
        for job_id in (running.job_id, queued.job_id):
            job = pool2.get(job_id)
            assert job.state is JobState.DONE
            assert job.result == {"done": job_id}
    finally:
        gate.set()
        pool2.shutdown()
        journal2.close()
        pool1.shutdown(wait=False)


def test_compaction_never_loses_racing_submits(tmp_path):
    """Regression: compaction used to snapshot jobs() before taking
    the journal lock, so a submit landing in that window was erased
    by the rewrite.  Hammer submits against forced compactions and
    check every acknowledged submit survives replay."""
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="never", compact_threshold=2)
    pool = WorkerPool(lambda job: None, workers=1, journal=journal)
    submitted: list[str] = []
    stop = threading.Event()

    def compact_loop():
        while not stop.is_set():
            pool.compact_journal(force=True)

    compactor = threading.Thread(target=compact_loop, daemon=True)
    compactor.start()
    try:
        for i in range(200):
            job = Job(kind="k", job_id=f"job-{i + 1:06d}")
            pool.submit(job)
            submitted.append(job.job_id)
    finally:
        stop.set()
        compactor.join(10)
        assert pool.wait_all(30)
        pool.shutdown()
        journal.close()
    specs, _ = replay(path)
    missing = [job_id for job_id in submitted if job_id not in specs]
    assert not missing, f"compaction lost acked submits: {missing}"


# ---------------------------------------------------------------------
# job-id seeding


def test_seed_job_counter_continues_sequence():
    seed_job_counter(41, nonce="")
    assert next_job_id() == "job-000042"
    assert next_job_id() == "job-000043"


def test_unseeded_ids_carry_a_nonce():
    seed_job_counter(0, nonce="feed-")
    assert next_job_id() == "job-feed-000001"


def test_seed_job_counter_rejects_negative_floor():
    with pytest.raises(ServiceError, match="must be >= 0"):
        seed_job_counter(-1)


# ---------------------------------------------------------------------
# service-level restart (end to end, real conversions)


def test_service_restart_preserves_ids_and_results(tmp_path,
                                                   sam_file):
    work_dir = tmp_path / "svc"
    journal = tmp_path / "journal.jsonl"
    out_dir = tmp_path / "out"

    svc1 = ConversionService(work_dir, workers=2,
                             journal_path=journal)
    try:
        first = svc1.submit("convert", {
            "input": sam_file, "target": "bed",
            "out_dir": str(out_dir / "a")})
        second = svc1.submit("convert", {
            "input": sam_file, "target": "bed",
            "out_dir": str(out_dir / "b")})
        assert first.job_id == "job-000001"
        assert second.job_id == "job-000002"
        assert svc1.wait(first.job_id, 30)["state"] == "done"
        assert svc1.wait(second.job_id, 30)["state"] == "done"
        done_result = svc1.status(first.job_id)["result"]
    finally:
        svc1.close()

    svc2 = ConversionService(work_dir, workers=2,
                             journal_path=journal)
    try:
        # Finished jobs survive the restart under their original ids,
        # with their results intact.
        snapshot = svc2.status(first.job_id)
        assert snapshot["state"] == "done"
        assert snapshot["result"] == done_result
        assert svc2.status(second.job_id)["state"] == "done"
        # New ids continue the journal's sequence — no collisions.
        third = svc2.submit("convert", {
            "input": sam_file, "target": "bed",
            "out_dir": str(out_dir / "c")})
        assert third.job_id == "job-000003"
        assert svc2.wait(third.job_id, 30)["state"] == "done"
    finally:
        svc2.close()


def test_service_restart_reruns_interrupted_job(tmp_path, sam_file):
    """A journal holding a RUNNING record (the daemon died mid-attempt)
    is re-run to completion by the next incarnation."""
    import json

    work_dir = tmp_path / "svc"
    journal = tmp_path / "journal.jsonl"
    out_dir = tmp_path / "out"
    interrupted = spec(
        "job-000007", kind="convert", state="running", attempts=1,
        max_retries=1,
        params={"input": sam_file, "target": "bed",
                "out_dir": str(out_dir)})
    journal.write_text(json.dumps(
        {"event": "submit", "job": interrupted}) + "\n")

    svc = ConversionService(work_dir, workers=1,
                            journal_path=journal)
    try:
        final = svc.wait("job-000007", 30)
        assert final["state"] == "done"
        assert final["attempts"] == 2
        assert final["result"]["records"] > 0
        assert svc.metrics.gauge("journal_recovered_jobs") == 1
        # New submissions never collide with the recovered id.
        assert svc.submit("convert", {
            "input": sam_file, "target": "bed",
            "out_dir": str(out_dir / "fresh")}).job_id == "job-000008"
    finally:
        svc.close()
