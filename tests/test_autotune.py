"""Tests for the self-tuning scheduler (:mod:`repro.runtime.autotune`):
the persistent cost model, auto knob resolution, deterministic mid-job
straggler re-splitting, provenance spans, service counters and the CLI
surface."""

from __future__ import annotations

import json
import os

import pytest

from repro.core import SamConverter
from repro.errors import ConversionError, RuntimeLayerError, \
    ServiceError
from repro.runtime import faults
from repro.runtime.autotune import (
    AUTO,
    AutoTuner,
    CostModel,
    make_key,
    resolve_model_path,
    size_bucket,
)
from repro.runtime.metrics import ServiceMetrics
from repro.runtime.tracing import Tracer, install


def read_parts(result):
    return {os.path.basename(p): open(p, "rb").read()
            for p in result.outputs}


@pytest.fixture(autouse=True)
def _no_faults():
    faults.disarm()
    yield
    faults.disarm()


# ---------------------------------------------------------------------
# CostModel


def test_observe_then_lookup_rates(tmp_path):
    model = CostModel(tmp_path / "m.json")
    key = make_key("bed", "sam", "batch", 4000)
    model.observe(key, [(100.0, 1.0), (100.0, 1.0)])
    entry = model.lookup(key)
    assert entry is not None
    assert entry["rate"] == pytest.approx(0.01)
    assert entry["rate_max"] == pytest.approx(0.01)
    assert entry["count"] == 1


def test_ewma_folds_new_observations(tmp_path):
    model = CostModel(tmp_path / "m.json", alpha=0.5)
    key = make_key("bed", "sam", "batch", 4000)
    model.observe(key, [(100.0, 1.0)])      # rate 0.01
    model.observe(key, [(100.0, 3.0)])      # rate 0.03
    entry = model.lookup(key)
    assert entry["rate"] == pytest.approx(0.02)  # halfway at alpha=0.5
    assert entry["count"] == 2


def test_skew_statistics_capture_hot_fraction(tmp_path):
    model = CostModel(tmp_path / "m.json")
    key = make_key("bed", "sam", "batch", 4000)
    # Equal unit counts, one shard 9x the cost of the other three.
    model.observe(key, [(100.0, 0.9), (100.0, 0.1), (100.0, 0.1),
                        (100.0, 0.1)])
    entry = model.lookup(key)
    assert entry["rate_max"] == pytest.approx(0.009)
    assert entry["hot_frac"] == pytest.approx(0.25)


def test_persistence_round_trip_is_atomic(tmp_path):
    path = tmp_path / "m.json"
    model = CostModel(path)
    key = make_key("bed", "sam", "batch", 4000)
    model.observe(key, [(100.0, 1.0)])
    model.save()
    assert [p.name for p in tmp_path.iterdir()] == ["m.json"], \
        "temp file left behind by the atomic replace"
    reloaded = CostModel(path)
    assert reloaded.load_error is None
    assert reloaded.lookup(key)["rate"] == pytest.approx(0.01)


def test_corrupt_model_file_reads_as_empty(tmp_path):
    path = tmp_path / "m.json"
    path.write_text("{not json", encoding="utf-8")
    model = CostModel(path)
    assert model.load_error is not None
    assert len(model) == 0
    # ... and is still usable: observe + save overwrites the damage.
    model.observe(make_key("bed", "sam", "batch", 10), [(1.0, 1.0)])
    model.save()
    assert CostModel(path).load_error is None


def test_bounded_history_evicts_least_recently_updated(tmp_path):
    model = CostModel(tmp_path / "m.json", max_keys=3)
    for i in range(6):
        model.observe(f"t{i}|sam|batch|b0", [(1.0, 1.0)])
    model.save()
    reloaded = CostModel(tmp_path / "m.json", max_keys=3)
    assert len(reloaded) == 3
    for i in (3, 4, 5):                      # newest keys survive
        assert reloaded.lookup(f"t{i}|sam|batch|b0") is not None


def test_reset_forgets_and_removes_file(tmp_path):
    path = tmp_path / "m.json"
    model = CostModel(path)
    model.observe("a|sam|batch|b0", [(1.0, 1.0)])
    model.save()
    model.reset()
    assert len(model) == 0 and not path.exists()


def test_size_buckets_group_similar_inputs():
    assert size_bucket(1) == 0
    assert size_bucket(3) == 0
    assert size_bucket(4) == 1
    assert size_bucket(4 ** 5) == 5
    assert make_key("bed", "sam", "batch", 4 ** 5) == \
        "bed|sam|batch|b5"


def test_nearest_borrows_adjacent_bucket_only(tmp_path):
    model = CostModel(tmp_path / "m.json")
    model.observe(make_key("bed", "sam", "batch", 4 ** 5),
                  [(1.0, 1.0)])
    assert model.nearest(make_key("bed", "sam", "batch",
                                  4 ** 6)) is not None
    assert model.nearest(make_key("bed", "sam", "batch",
                                  4 ** 8)) is None
    assert model.nearest(make_key("fasta", "sam", "batch",
                                  4 ** 5)) is None


def test_resolve_model_path_precedence(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COST_MODEL", str(tmp_path / "env.json"))
    assert resolve_model_path(str(tmp_path / "cli.json")) == \
        str(tmp_path / "cli.json")
    assert resolve_model_path() == str(tmp_path / "env.json")
    monkeypatch.delenv("REPRO_COST_MODEL")
    assert resolve_model_path().endswith("cost-model.json")


# ---------------------------------------------------------------------
# AutoTuner decisions


def test_cold_model_falls_back_to_defaults(tmp_path):
    tuner = AutoTuner(CostModel(tmp_path / "m.json"), workers=4)
    tuning = tuner.begin_job("bed", "sam", "batch", 4000, nprocs=4,
                             shards=AUTO, batch_size=AUTO,
                             default_batch=4096)
    assert tuning.decision.hit is False
    assert tuning.shards_per_rank == 1
    assert tuning.batch_size == 4096


def test_warm_skewed_model_chooses_extra_shards(tmp_path):
    model = CostModel(tmp_path / "m.json")
    key = make_key("bed", "sam", "batch", 4000)
    # One rank 10x the others: LPT over finer shards must win.
    model.observe(key, [(1000.0, 10.0), (1000.0, 1.0),
                        (1000.0, 1.0), (1000.0, 1.0)])
    tuner = AutoTuner(model, workers=4)
    tuning = tuner.begin_job("bed", "sam", "batch", 4000, nprocs=4,
                             shards=AUTO)
    assert tuning.decision.hit is True
    assert tuning.shards_per_rank > 1
    assert tuning.decision.predicted_makespan < \
        tuning.decision.predicted_static


def test_warm_model_chooses_best_rated_batch(tmp_path):
    model = CostModel(tmp_path / "m.json")
    key = make_key("bed", "sam", "batch", 4000)
    model.observe(key, [(100.0, 1.0)], batch_size=1024)
    model.observe(key, [(100.0, 0.2)], batch_size=8192)
    tuner = AutoTuner(model, workers=2)
    tuning = tuner.begin_job("bed", "sam", "batch", 4000, nprocs=2,
                             batch_size=AUTO, default_batch=4096)
    assert tuning.batch_size == 8192


def test_budget_override_beats_the_model(tmp_path):
    tuner = AutoTuner(CostModel(tmp_path / "m.json"),
                      budget_override=0.123)
    assert tuner.shard_budget(None, 1000.0) == 0.123
    assert tuner.sibling_budget([5.0, 5.0]) == 0.123


def test_sibling_budget_is_k_times_median(tmp_path):
    tuner = AutoTuner(CostModel(tmp_path / "m.json"),
                      straggler_factor=4.0)
    assert tuner.sibling_budget([]) is None
    assert tuner.sibling_budget([1.0, 2.0, 3.0]) == pytest.approx(8.0)
    # ... floored so micro-tasks never trip the predicate on noise.
    assert tuner.sibling_budget([1e-6]) == pytest.approx(0.05)


def test_tuner_rejects_bad_parameters(tmp_path):
    with pytest.raises(RuntimeLayerError, match="straggler_factor"):
        AutoTuner(CostModel(tmp_path / "m.json"), straggler_factor=1.0)
    with pytest.raises(RuntimeLayerError, match="resplit_factor"):
        AutoTuner(CostModel(tmp_path / "m.json"), resplit_factor=1)


def test_finish_persists_observations(tmp_path):
    path = tmp_path / "m.json"
    tuner = AutoTuner(CostModel(path), workers=2)
    tuning = tuner.begin_job("bed", "sam", "batch", 4000, nprocs=2)
    tuning.observe([(2000.0, 1.0), (2000.0, 1.0)])
    tuning.finish()
    assert CostModel(path).lookup(tuning.decision.key) is not None


def test_finish_survives_unwritable_model_dir(tmp_path):
    target = tmp_path / "ro" / "sub" / "m.json"
    tuner = AutoTuner(CostModel(target), workers=2)
    tuning = tuner.begin_job("bed", "sam", "batch", 100, nprocs=1)
    tuning.observe([(100.0, 1.0)])
    (tmp_path / "ro").mkdir()
    (tmp_path / "ro").chmod(0o555)
    try:
        tuning.finish()                      # must not raise
    finally:
        (tmp_path / "ro").chmod(0o755)


# ---------------------------------------------------------------------
# converter knob validation (satellite: friendly errors)


def test_converter_rejects_bad_shards_naming_value():
    with pytest.raises(ConversionError,
                       match=r"shards_per_rank value 'bogus'"):
        SamConverter(shards_per_rank="bogus")
    with pytest.raises(ConversionError, match=r"value 0.*>= 1"):
        SamConverter(shards_per_rank=0)
    with pytest.raises(ConversionError,
                       match=r"batch_size value -3"):
        SamConverter(batch_size="-3")


def test_converter_accepts_auto_and_numeric_strings():
    converter = SamConverter(shards_per_rank="AUTO", batch_size="512")
    assert converter.shards_per_rank == AUTO
    assert converter.batch_size == 512
    assert converter.tuner is not None      # private in-memory tuner


# ---------------------------------------------------------------------
# end-to-end: auto knobs + deterministic straggler re-splitting


def _convert(sam_file, out_dir, tuner=None, shards=1, batch=4096,
             executor="simulate"):
    return SamConverter(shards_per_rank=shards, batch_size=batch,
                        tuner=tuner).convert(
        sam_file, "bed", out_dir, nprocs=2, executor=executor)


@pytest.mark.parametrize("executor", ["simulate", "thread"])
def test_forced_resplit_is_byte_identical(sam_file, tmp_path, executor):
    """A fault-injected delay makes every shard blow its (overridden)
    budget; the remaining ranges re-split mid-job and the final bytes
    must still equal the static run's."""
    static = _convert(sam_file, tmp_path / "static")
    metrics = ServiceMetrics()
    tuner = AutoTuner(CostModel(tmp_path / "m.json"), metrics=metrics,
                      budget_override=0.001)
    faults.arm("shard.batch:delay")
    try:
        resplit = _convert(sam_file, tmp_path / f"re-{executor}",
                           tuner=tuner, shards=3, batch=32,
                           executor=executor)
    finally:
        faults.disarm()
    assert read_parts(resplit) == read_parts(static)
    assert metrics.counter("autotune_resplits") >= 1
    leftovers = [n for n in os.listdir(tmp_path / f"re-{executor}")
                 if ".shard" in n or ".tail" in n]
    assert leftovers == []


def test_resplit_rounds_are_bounded(sam_file, tmp_path):
    """Budgets come off after MAX_RESPLIT_ROUNDS waves, so a job whose
    every shard 'straggles' forever still terminates."""
    from repro.runtime.autotune import MAX_RESPLIT_ROUNDS
    metrics = ServiceMetrics()
    tuner = AutoTuner(CostModel(tmp_path / "m.json"), metrics=metrics,
                      budget_override=1e-9, resplit_factor=2)
    faults.arm("shard.batch:delay")
    try:
        result = _convert(sam_file, tmp_path / "out", tuner=tuner,
                          shards=2, batch=16)
    finally:
        faults.disarm()
    static = _convert(sam_file, tmp_path / "static")
    assert read_parts(result) == read_parts(static)
    assert MAX_RESPLIT_ROUNDS == 2


def test_auto_shards_warm_run_is_byte_identical(sam_file, tmp_path):
    """Run 1 (cold) trains the model; run 2 (fresh tuner, same file)
    resolves ``auto`` from it.  Both must match the static bytes."""
    static = _convert(sam_file, tmp_path / "static")
    path = tmp_path / "m.json"
    cold = _convert(sam_file, tmp_path / "cold",
                    tuner=AutoTuner(CostModel(path), workers=2),
                    shards="auto", batch="auto")
    warm = _convert(sam_file, tmp_path / "warm",
                    tuner=AutoTuner(CostModel(path), workers=2),
                    shards="auto", batch="auto", executor="thread")
    assert read_parts(cold) == read_parts(static)
    assert read_parts(warm) == read_parts(static)
    assert CostModel(path).lookup(
        make_key("bed", "sam", "batch",
                 os.path.getsize(sam_file))) is not None


# ---------------------------------------------------------------------
# provenance span


def test_autotune_span_explains_the_decision(sam_file, tmp_path):
    path = tmp_path / "m.json"
    blocks = []
    for run in ("cold", "warm"):
        tracer = Tracer(enabled=True)
        prev = install(tracer)
        try:
            _convert(sam_file, tmp_path / run,
                     tuner=AutoTuner(CostModel(path), workers=2),
                     shards="auto")
        finally:
            install(prev)
        spans = [s for s in tracer.spans() if s.name == "autotune"]
        assert len(spans) == 1
        blocks.append(spans[0].args["cost_model"])
    cold, warm = blocks
    assert cold["hit"] is False and warm["hit"] is True
    assert cold["key"] == warm["key"]
    assert cold["key"].startswith("bed|sam|batch|b")
    assert cold["auto_shards"] is True
    assert cold["resplits"] == 0
    assert warm["path"] == str(path)


def test_format_tree_renders_cost_model_inline(sam_file, tmp_path):
    from repro.runtime.tracing import format_tree
    tracer = Tracer(enabled=True)
    prev = install(tracer)
    try:
        _convert(sam_file, tmp_path / "out",
                 tuner=AutoTuner(CostModel(tmp_path / "m.json"),
                                 workers=2), shards="auto")
    finally:
        install(prev)
    tree = format_tree(tracer.spans())
    assert "autotune" in tree
    assert "key=bed|sam|batch" in tree
    assert "shards_per_rank=" in tree


# ---------------------------------------------------------------------
# service integration


def test_service_auto_job_and_counters(sam_file, tmp_path):
    from repro.runtime.executor import reset_shared_executor
    from repro.service.server import ConversionService
    reset_shared_executor()
    service = ConversionService(tmp_path / "svc", workers=1)
    try:
        static = service.submit("convert", {
            "input": str(sam_file), "target": "bed",
            "out_dir": str(tmp_path / "static"), "nprocs": 2})
        auto = service.submit("convert", {
            "input": str(sam_file), "target": "bed",
            "out_dir": str(tmp_path / "auto"), "nprocs": 2,
            "shards": "auto"})
        assert service.pool.wait_all(timeout=60)
        static_job = service.pool.get(static.job_id)
        auto_job = service.pool.get(auto.job_id)
        assert static_job.state.value == "done", static_job.error
        assert auto_job.state.value == "done", auto_job.error

        def job_bytes(job):
            return {os.path.basename(p): open(p, "rb").read()
                    for p in job.result["outputs"]}
        assert job_bytes(auto_job) == job_bytes(static_job)

        assert service.metrics.counter("autotune_jobs") >= 2
        assert service.metrics.counter("autotune_auto_jobs") >= 1
        assert service.metrics.gauge("autotune_model_keys") >= 1
        # The model is the service's own file, shared across jobs.
        assert os.path.exists(tmp_path / "svc" / "cost_model.json")
        # The job trace carries the autotune provenance span.
        spans = service.trace(auto.job_id)
        tune = [s for s in spans if s["name"] == "autotune"]
        assert tune and "cost_model" in tune[0]["args"]
    finally:
        service.close()
        reset_shared_executor()


def test_service_rejects_bad_knobs_at_submit(sam_file, tmp_path):
    from repro.service.server import ConversionService
    service = ConversionService(tmp_path / "svc", workers=1)
    try:
        with pytest.raises(ServiceError, match=r"shards value 'turbo'"):
            service.submit("convert", {
                "input": str(sam_file), "target": "bed",
                "out_dir": str(tmp_path / "out"), "shards": "turbo"})
        with pytest.raises(ServiceError,
                           match=r"batch_size value 0"):
            service.submit("convert", {
                "input": str(sam_file), "target": "bed",
                "out_dir": str(tmp_path / "out"), "batch_size": 0})
    finally:
        service.close()


def test_service_ctor_rejects_bad_default_shards(tmp_path):
    from repro.service.server import ConversionService
    with pytest.raises(ServiceError, match=r"shards_per_rank value"):
        ConversionService(tmp_path / "svc", workers=1,
                          shards_per_rank="warp")


# ---------------------------------------------------------------------
# CLI surface


def test_cli_tune_show_and_reset(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "m.json")
    model = CostModel(path)
    model.observe("bed|sam|batch|b5", [(100.0, 1.0)])
    model.save()
    assert main(["tune", "show", "--cost-model", path]) == 0
    out = capsys.readouterr().out
    assert "bed|sam|batch|b5" in out and "1 keys" in out
    assert main(["tune", "reset", "--cost-model", path]) == 0
    assert not os.path.exists(path)
    assert main(["tune", "show", "--cost-model", path]) == 0
    assert "empty (cold)" in capsys.readouterr().out


def test_cli_auto_convert_warms_model(sam_file, tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "m.json")
    args = ["convert", str(sam_file), "--target", "bed",
            "--nprocs", "2", "--shards", "auto", "--batch-size",
            "auto", "--cost-model", path]
    assert main(args + ["--out-dir", str(tmp_path / "o1")]) == 0
    assert main(args + ["--out-dir", str(tmp_path / "o2")]) == 0
    capsys.readouterr()
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert any(k.startswith("bed|sam|batch|") for k in doc["keys"])
    o1 = sorted(os.listdir(tmp_path / "o1"))
    assert o1 == sorted(os.listdir(tmp_path / "o2"))
    for name in o1:
        assert (tmp_path / "o1" / name).read_bytes() == \
            (tmp_path / "o2" / name).read_bytes()


def test_cli_rejects_bad_shards_naming_value(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit):
        main(["convert", "x.sam", "--target", "bed", "--out-dir", "o",
              "--shards", "many"])
    assert "invalid shards value 'many'" in capsys.readouterr().err
