"""Tests for the O(N(2r+1)) prefix-sum NL-means variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ReproError
from repro.stats.nlmeans import nlmeans, nlmeans_reference
from repro.stats.nlmeans_fast import nlmeans_auto, nlmeans_fast


@pytest.fixture(scope="module")
def signal():
    rng = np.random.default_rng(7)
    return rng.uniform(0, 60, 800)


def test_matches_exact_kernel(signal):
    exact = nlmeans(signal, 15, 6, 9.0)
    fast = nlmeans_fast(signal, 15, 6, 9.0)
    assert np.allclose(fast, exact, rtol=1e-9, atol=1e-9)


def test_matches_reference(signal):
    small = signal[:120]
    ref = nlmeans_reference(small, 6, 3, 8.0)
    fast = nlmeans_fast(small, 6, 3, 8.0)
    assert np.allclose(fast, ref, rtol=1e-8, atol=1e-8)


def test_constant_signal_unchanged():
    v = np.full(64, 5.0)
    assert np.allclose(nlmeans_fast(v, 4, 2, 3.0), 5.0)


def test_zero_half_patch():
    v = np.arange(30, dtype=float)
    exact = nlmeans(v, 3, 0, 2.0)
    fast = nlmeans_fast(v, 3, 0, 2.0)
    assert np.allclose(fast, exact, rtol=1e-10)


def test_auto_dispatch(signal):
    exact = nlmeans_auto(signal, 8, 3, 5.0, exact=True)
    fast = nlmeans_auto(signal, 8, 3, 5.0, exact=False)
    assert np.array_equal(exact, nlmeans(signal, 8, 3, 5.0))
    assert np.allclose(fast, exact, rtol=1e-9)


def test_validation_shared_with_exact_kernel():
    with pytest.raises(ReproError):
        nlmeans_fast(np.ones(10), 0, 2, 1.0)
    with pytest.raises(ReproError):
        nlmeans_fast(np.ones(10), 2, 1, -1.0)


def test_fast_is_actually_faster():
    import time
    rng = np.random.default_rng(1)
    v = rng.uniform(0, 50, 4_000)
    t0 = time.perf_counter()
    nlmeans(v, 40, 15, 10.0)
    t_exact = time.perf_counter() - t0
    t0 = time.perf_counter()
    nlmeans_fast(v, 40, 15, 10.0)
    t_fast = time.perf_counter() - t0
    # The (2l+1)=31x work reduction must show up as a clear win even
    # with timing noise.
    assert t_fast < 0.5 * t_exact, (t_exact, t_fast)


@given(arrays(np.float64, st.integers(4, 100),
              elements=st.floats(0, 100, allow_nan=False)),
       st.integers(1, 6), st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_agreement_property(values, r, l):
    exact = nlmeans(values, r, l, 5.0)
    fast = nlmeans_fast(values, r, l, 5.0)
    assert np.allclose(fast, exact, rtol=1e-8, atol=1e-8)
