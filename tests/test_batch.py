"""Batched pipeline correctness: the chunk-level codecs and fastpaths in
:mod:`repro.formats.batch` must be byte-identical to the record-at-a-time
path for every converter, every registered target, and adversarial batch
sizes / chunk boundaries."""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BamConverter, PreprocSamConverter, SamConverter
from repro.core.filters import RecordFilter
from repro.core.targets import get_target, target_names
from repro.errors import ConversionError, FormatError
from repro.formats import batch as batch_codec
from repro.formats.bam import write_bam
from repro.formats.bamx import BamxReader, BamxWriter, plan_layout
from repro.formats.header import SamHeader
from repro.formats.sam import format_alignment, write_sam
from repro.runtime.buffers import BufferedTextWriter, RangeLineReader
from tests.test_properties_records import records as record_strategy

HDR = SamHeader.from_references([("chr1", 1 << 20), ("chr2", 1 << 18)])

#: Adversarial batch sizes: degenerate, tiny, prime, larger than any
#: test file.
BATCH_SIZES = (1, 2, 7, 100_000)


def _read_outputs(result):
    blobs = []
    for path in result.outputs:
        with open(path, "rb") as fh:
            blobs.append(fh.read())
    return blobs


def _assert_pipelines_identical(make_converter, convert, nprocs=3):
    """Record vs batch outputs must match byte for byte."""
    record = convert(make_converter(pipeline="record"), "record")
    for batch_size in BATCH_SIZES:
        batched = convert(
            make_converter(pipeline="batch", batch_size=batch_size),
            f"batch{batch_size}")
        assert _read_outputs(batched) == _read_outputs(record), batch_size
        assert batched.records == record.records
        assert batched.emitted == record.emitted


@pytest.fixture(scope="module")
def sample_records():
    """A deterministic mix: mapped/unmapped, reverse strand, mates,
    secondary/supplementary flags, '*' quals, tags."""
    from repro.simdata import build_sam_dataset
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "mix.sam")
        build_sam_dataset(path, 60,
                          chromosomes=[("chr1", 1 << 20),
                                       ("chr2", 1 << 18)],
                          seed=7)
        from repro.formats.sam import read_sam
        _, records = read_sam(path)
    return records


@pytest.fixture(scope="module")
def sam_path(sample_records, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("batchsam") / "in.sam")
    write_sam(path, HDR, sample_records)
    return path


@pytest.fixture(scope="module")
def bamx_store(sample_records, tmp_path_factory):
    d = tmp_path_factory.mktemp("batchbamx")
    bam = str(d / "in.bam")
    write_bam(bam, HDR, sample_records)
    bamx, _, _ = BamConverter().preprocess(bam, str(d / "work"))
    return bamx


@pytest.mark.parametrize("target", target_names())
def test_sam_converter_pipelines_identical(target, sam_path, tmp_path):
    def convert(converter, tag):
        return converter.convert(sam_path, target,
                                 str(tmp_path / f"{target}_{tag}"),
                                 nprocs=3)
    _assert_pipelines_identical(SamConverter, convert)


@pytest.mark.parametrize("target", target_names())
def test_bam_converter_pipelines_identical(target, bamx_store, tmp_path):
    def convert(converter, tag):
        return converter.convert(bamx_store, target,
                                 str(tmp_path / f"{target}_{tag}"),
                                 nprocs=3)
    _assert_pipelines_identical(BamConverter, convert)


@pytest.mark.parametrize("target", ("bed", "fastq", "sam"))
def test_samp_converter_pipelines_identical(target, sam_path, tmp_path):
    parts = {}
    for pipeline in ("record", "batch"):
        converter = PreprocSamConverter(pipeline=pipeline, batch_size=7)
        paths, _ = converter.preprocess(
            sam_path, str(tmp_path / f"pre_{pipeline}"), nprocs=2)
        parts[pipeline] = converter.convert(
            paths, target, str(tmp_path / f"{target}_{pipeline}"),
            nprocs=2)
    assert _read_outputs(parts["batch"]) == _read_outputs(parts["record"])


def test_sam_converter_filter_pipelines_identical(sam_path, tmp_path):
    flt = RecordFilter(min_mapq=10, primary_only=True, mapped_only=True)

    def convert(converter, tag):
        return converter.convert(sam_path, "bed",
                                 str(tmp_path / f"f_{tag}"), nprocs=2,
                                 record_filter=flt)
    _assert_pipelines_identical(SamConverter, convert)


def test_bam_region_filter_pipelines_identical(bamx_store, tmp_path):
    flt = RecordFilter(min_mapq=5)

    def convert(converter, tag):
        return converter.convert_region(
            bamx_store, None, "chr1:1000-200000", "bed",
            str(tmp_path / f"r_{tag}"), nprocs=2, mode="overlap",
            record_filter=flt)
    _assert_pipelines_identical(BamConverter, convert)


def test_records_straddling_chunk_boundaries(sam_path, tmp_path):
    """A tiny read chunk forces every record to straddle buffer reads."""
    def make(pipeline, batch_size=3):
        return SamConverter(read_chunk=7, batch_size=batch_size,
                            pipeline=pipeline)

    def convert(converter, tag):
        return converter.convert(sam_path, "sam",
                                 str(tmp_path / f"s_{tag}"), nprocs=2)
    record = convert(make("record"), "record")
    batched = convert(make("batch"), "batch")
    assert _read_outputs(batched) == _read_outputs(record)


@given(st.lists(record_strategy(), min_size=1, max_size=10),
       st.sampled_from(BATCH_SIZES),
       st.sampled_from(["sam", "bed", "fasta", "fastq", "bedgraph"]))
@settings(max_examples=25, deadline=None)
def test_fuzz_batch_equals_record(batch, batch_size, target):
    """Arbitrary generated record sets: batch == record, byte for byte."""
    with tempfile.TemporaryDirectory() as d:
        src = f"{d}/in.sam"
        write_sam(src, HDR, batch)
        outs = {}
        for pipeline in ("record", "batch"):
            result = SamConverter(
                pipeline=pipeline, batch_size=batch_size).convert(
                    src, target, f"{d}/{pipeline}", nprocs=2)
            outs[pipeline] = _read_outputs(result)
        assert outs["batch"] == outs["record"]


def test_invalid_pipeline_and_batch_size_rejected():
    with pytest.raises(ConversionError):
        SamConverter(pipeline="vectorized")
    with pytest.raises(ConversionError):
        SamConverter(batch_size=0)
    with pytest.raises(ConversionError):
        BamConverter(pipeline="")
    with pytest.raises(ConversionError):
        BamConverter(batch_size=-1)


# ---------------------------------------------------------------------------
# Unit-level codec checks


def test_convert_sam_lines_counts_fallbacks():
    """Non-canonical text falls back to the record path but still emits
    the canonical line.  A leading-zero FLAG is normalized by the
    fastpath itself (no fallback); a leading-zero CIGAR count is not
    provably canonical, so that line takes the record path."""
    fast = batch_codec.sam_fastpath_for(get_target("sam"))
    assert fast is not None
    out = []
    seen, emitted, fallbacks = batch_codec.convert_sam_lines(
        ["r1\t007\tchr1\t100\t30\t4M\t*\t0\t0\tACGT\t!!!!"],
        get_target("sam"), fast, None, out)
    assert (seen, emitted, fallbacks) == (1, 1, 0)
    assert out[0].startswith("r1\t7\t")
    out = []
    seen, emitted, fallbacks = batch_codec.convert_sam_lines(
        ["r1\t0\tchr1\t100\t30\t04M\t*\t0\t0\tACGT\t!!!!"],
        get_target("sam"), fast, None, out)
    assert (seen, emitted, fallbacks) == (1, 1, 1)
    assert "\t4M\t" in out[0]


def test_convert_sam_lines_skips_headers_and_blanks():
    lines = ["@HD\tVN:1.6", "",
             "r\t0\tchr1\t10\t3\t2M\t*\t0\t0\tAC\t!!"]
    out = []
    seen, emitted, _ = batch_codec.convert_sam_lines(
        lines, get_target("bed"), batch_codec.sam_fastpath_for(
            get_target("bed")), None, out)
    assert seen == 1 and emitted == 1 and len(out) == 1


def test_sam_fastpath_only_for_text_targets():
    assert batch_codec.sam_fastpath_for(get_target("bam")) is None
    assert batch_codec.sam_fastpath_for(get_target("bed")) is not None
    assert batch_codec.sam_fastpath_for(get_target("json")) is None


@given(st.lists(record_strategy(), min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_parse_sam_lines_matches_per_line_parse(batch):
    lines = [format_alignment(r) for r in batch]
    assert batch_codec.parse_sam_lines(lines) == batch


@given(st.lists(record_strategy(), min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_encode_bamx_batch_matches_concat(batch):
    layout = plan_layout(batch)
    expected = b"".join(layout.encode(r, HDR) for r in batch)
    assert bytes(batch_codec.encode_bamx_batch(batch, HDR, layout)) \
        == expected
    decoded = batch_codec.decode_bamx_batch(
        memoryview(expected), len(batch), layout, HDR)
    from tests.test_properties_records import _norm
    assert decoded == [_norm(r) for r in batch]


@given(st.lists(record_strategy(), min_size=1, max_size=9),
       st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_bamx_write_batch_matches_per_record_writes(batch, split):
    with tempfile.TemporaryDirectory() as d:
        layout = plan_layout(batch)
        one, many = f"{d}/one.bamx", f"{d}/many.bamx"
        with BamxWriter(one, HDR, layout) as w:
            for r in batch:
                w.write(r)
        with BamxWriter(many, HDR, layout) as w:
            for off in range(0, len(batch), split):
                first = w.write_batch(batch[off:off + split])
                assert first == off
        with open(one, "rb") as a, open(many, "rb") as b:
            assert a.read() == b.read()


@given(st.lists(record_strategy(), min_size=1, max_size=9),
       st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_bamx_read_raw_batches_roundtrip(batch, batch_size):
    from tests.test_properties_records import _norm
    with tempfile.TemporaryDirectory() as d:
        path = f"{d}/t.bamx"
        with BamxWriter(path, HDR, plan_layout(batch)) as w:
            w.write_batch(batch)
        with BamxReader(path) as reader:
            decoded = []
            for buf, count in reader.read_raw_batches(
                    0, len(batch), batch_size):
                decoded.extend(batch_codec.decode_bamx_batch(
                    buf, count, reader.layout, reader.header))
            raw0 = reader.read_raw(0)
            assert bytes(raw0) == bytes(
                next(reader.read_raw_batches(0, 1))[0])
    assert decoded == [_norm(r) for r in batch]


def test_matches_flag_mapq_agrees_with_matches(sample_records):
    flt = RecordFilter(min_mapq=20, exclude_flags=0x10,
                       primary_only=True, mapped_only=True)
    for record in sample_records:
        assert flt.matches(record) == \
            flt.matches_flag_mapq(record.flag, record.mapq)


# ---------------------------------------------------------------------------
# Buffer-layer batching


def test_iter_batches_matches_line_iteration(tmp_path):
    path = str(tmp_path / "t.txt")
    lines = [f"line-{i}" * (i % 5 + 1) for i in range(57)]
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    size = os.path.getsize(path)
    for batch_size in BATCH_SIZES:
        reader = RangeLineReader(path, 0, size, chunk_size=13)
        got = [line for chunk in reader.iter_batches(batch_size)
               for line in chunk]
        assert got == lines, batch_size
    reader = RangeLineReader(path, 0, size, chunk_size=13)
    assert list(reader) == lines


def test_iter_batches_rejects_nonpositive(tmp_path):
    from repro.errors import PartitionError
    path = str(tmp_path / "t.txt")
    with open(path, "w") as fh:
        fh.write("x\n")
    reader = RangeLineReader(path, 0, 2)
    with pytest.raises(PartitionError):
        next(reader.iter_batches(0))


def test_write_lines_identical_to_write_text(tmp_path):
    lines = [f"row {i}" for i in range(100)]
    a, b = str(tmp_path / "a.txt"), str(tmp_path / "b.txt")
    with BufferedTextWriter(a, chunk_size=64) as w:
        for line in lines:
            w.write_text(line + "\n")
    with BufferedTextWriter(b, chunk_size=64) as w:
        w.write_lines(lines[:33])
        w.write_lines(lines[33:34])
        w.write_lines(lines[34:])
    with open(a, "rb") as fa, open(b, "rb") as fb:
        assert fa.read() == fb.read()


# ---------------------------------------------------------------------------
# seq.py satellite: single error paths


def test_validate_seq_superset_check():
    from repro.formats.seq import validate_seq
    validate_seq("ACGTN")
    validate_seq("")
    with pytest.raises(FormatError, match="invalid nucleotide 'x'"):
        validate_seq("ACxGT")


def test_encode_qualities_single_error_path():
    from repro.formats.seq import encode_qualities
    assert encode_qualities([0, 41, 93]) == "!J~"
    with pytest.raises(FormatError):
        encode_qualities([10, 94])
    with pytest.raises(FormatError):
        encode_qualities([-1])
