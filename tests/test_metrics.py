"""Unit tests for rank metrics and the simulated-cluster model."""

import math

import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.metrics import DEFAULT_CLUSTER, ClusterModel, \
    RankMetrics, SpeedupCurve, merge_all, modeled_parallel_time, \
    modeled_speedup


def test_merge_adds_fields():
    a = RankMetrics(1.0, 0.5, 10, 20, 3, 2)
    b = RankMetrics(2.0, 0.25, 1, 2, 4, 4)
    m = a.merge(b)
    assert m.compute_seconds == 3.0
    assert m.io_seconds == 0.75
    assert m.bytes_read == 11
    assert m.bytes_written == 22
    assert m.records == 7
    assert m.emitted == 6


def test_total_seconds():
    assert RankMetrics(1.5, 0.5).total_seconds == 2.0


def test_merge_all():
    total = merge_all([RankMetrics(records=2), RankMetrics(records=3)])
    assert total.records == 5


def test_timed_contexts():
    m = RankMetrics()
    with m.timed_compute():
        pass
    with m.timed_io():
        pass
    assert m.compute_seconds >= 0 and m.io_seconds >= 0


def test_modeled_time_compute_bound_scales_linearly():
    model = ClusterModel(io_streams=1000, collective_alpha=0.0)
    seq = RankMetrics(compute_seconds=8.0)
    ranks = [RankMetrics(compute_seconds=1.0) for _ in range(8)]
    assert modeled_parallel_time(ranks, model) == pytest.approx(1.0)
    assert modeled_speedup(seq, ranks, model) == pytest.approx(8.0)


def test_modeled_time_dominated_by_slowest_rank():
    model = ClusterModel(collective_alpha=0.0, io_streams=1000)
    ranks = [RankMetrics(compute_seconds=1.0),
             RankMetrics(compute_seconds=5.0)]
    assert modeled_parallel_time(ranks, model) == pytest.approx(5.0)


def test_modeled_io_saturates_at_stream_cap():
    model = ClusterModel(io_streams=4, collective_alpha=0.0)
    # 16 ranks each with 1s of I/O: serial I/O = 16s, capped at 4
    # streams -> 4s, not 1s.
    ranks = [RankMetrics(io_seconds=1.0) for _ in range(16)]
    assert modeled_parallel_time(ranks, model) == pytest.approx(4.0)


def test_modeled_io_never_faster_than_slowest_rank():
    model = ClusterModel(io_streams=1000, collective_alpha=0.0)
    ranks = [RankMetrics(io_seconds=0.1) for _ in range(7)]
    ranks.append(RankMetrics(io_seconds=3.0))
    assert modeled_parallel_time(ranks, model) == pytest.approx(3.0)


def test_collective_term_grows_logarithmically():
    model = ClusterModel(collective_alpha=1.0, io_streams=1000)
    ranks2 = [RankMetrics() for _ in range(2)]
    ranks64 = [RankMetrics() for _ in range(64)]
    t2 = modeled_parallel_time(ranks2, model)
    t64 = modeled_parallel_time(ranks64, model)
    assert t2 == pytest.approx(1.0)
    assert t64 == pytest.approx(math.log2(64))


def test_modeled_time_requires_ranks():
    with pytest.raises(RuntimeLayerError):
        modeled_parallel_time([])


def test_nodes_for():
    assert DEFAULT_CLUSTER.nodes_for(1) == 1
    assert DEFAULT_CLUSTER.nodes_for(8) == 1
    assert DEFAULT_CLUSTER.nodes_for(9) == 2
    assert DEFAULT_CLUSTER.nodes_for(256) == 32


def test_speedup_curve_table():
    curve = SpeedupCurve("sam->bed")
    curve.add(1, 10.0, 10.0)
    curve.add(4, 10.0, 2.5)
    assert curve.speedups() == [1.0, 4.0]
    table = curve.format_table()
    assert "sam->bed" in table
    assert "4.00" in table
    point = curve.points[1]
    assert point.efficiency == pytest.approx(1.0)


def test_service_metrics_counters_gauges_timers():
    from repro.runtime.metrics import ServiceMetrics
    metrics = ServiceMetrics()
    metrics.inc("jobs_submitted")
    metrics.inc("jobs_submitted", 2)
    metrics.set_gauge("queue_depth", 4)
    metrics.add_gauge("queue_depth", -1)
    metrics.observe("job_wall_seconds", 2.0)
    metrics.observe("job_wall_seconds", 4.0)
    assert metrics.counter("jobs_submitted") == 3
    assert metrics.counter("never_touched") == 0
    assert metrics.gauge("queue_depth") == 3
    snap = metrics.snapshot()
    assert snap["counters"]["jobs_submitted"] == 3
    timer = snap["timers"]["job_wall_seconds"]
    assert timer["count"] == 2
    assert timer["mean_seconds"] == pytest.approx(3.0)
    report = metrics.format_report()
    assert "jobs_submitted" in report and "queue_depth" in report


def test_service_metrics_thread_safety():
    import threading

    from repro.runtime.metrics import ServiceMetrics
    metrics = ServiceMetrics()

    def spin():
        for _ in range(500):
            metrics.inc("hits")

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert metrics.counter("hits") == 4000


def test_format_metrics_snapshot_empty():
    from repro.runtime.metrics import format_metrics_snapshot
    assert format_metrics_snapshot({}) == "(no metrics recorded)"
