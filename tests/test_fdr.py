"""Tests for FDR computation: all implementations must agree exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.runtime.spmd import run_spmd
from repro.simdata import build_histogram, build_simulations
from repro.stats.fdr import fdr_parallel, fdr_reference, fdr_sorted, \
    fdr_spmd, fdr_vectorized


@pytest.fixture(scope="module")
def dataset():
    hist = build_histogram(250, seed=7)
    sims = build_simulations(hist, 10, seed=8)
    return hist, sims


@pytest.mark.parametrize("p_t", [0.0, 1.0, 3.0, 5.0, 10.0])
def test_vectorized_matches_reference(dataset, p_t):
    hist, sims = dataset
    ref = fdr_reference(hist, sims, p_t)
    vec = fdr_vectorized(hist, sims, p_t)
    assert vec.fdr == ref.fdr
    assert vec.numerator == ref.numerator
    assert vec.denominator == ref.denominator


@pytest.mark.parametrize("p_t", [1.0, 3.0, 7.0])
def test_sorted_matches_vectorized(dataset, p_t):
    hist, sims = dataset
    assert fdr_sorted(hist, sims, p_t).fdr == \
        fdr_vectorized(hist, sims, p_t).fdr


def test_sorted_handles_ties():
    hist = np.array([1.0, 2.0, 3.0])
    sims = np.array([[1.0, 2.0, 3.0],
                     [1.0, 2.0, 1.0],
                     [1.0, 5.0, 3.0]])
    for p_t in (0.0, 1.0, 2.0, 3.0):
        assert fdr_sorted(hist, sims, p_t).fdr == \
            fdr_reference(hist, sims, p_t).fdr


@pytest.mark.parametrize("nprocs", [1, 2, 3, 7, 16])
def test_parallel_matches_sequential(dataset, nprocs):
    hist, sims = dataset
    vec = fdr_vectorized(hist, sims, 3.0)
    par, metrics = fdr_parallel(hist, sims, 3.0, nprocs)
    assert par.fdr == vec.fdr
    assert par.numerator == vec.numerator
    assert par.denominator == vec.denominator
    assert len(metrics) == nprocs


def test_unfused_same_value_more_work(dataset):
    hist, sims = dataset
    fused, fm = fdr_parallel(hist, sims, 3.0, 4, fused=True)
    unfused, um = fdr_parallel(hist, sims, 3.0, 4, fused=False)
    assert unfused.fdr == fused.fdr
    # The two-pass schedule sweeps every bin partition twice; the fused
    # schedule touches each bin once (timing itself is too noisy to
    # compare at this scale, so assert the structural work count).
    assert sum(m.records for m in fm) == len(hist)
    assert sum(m.records for m in um) == 2 * len(hist)


def test_parallel_sorted_method(dataset):
    hist, sims = dataset
    quad, _ = fdr_parallel(hist, sims, 3.0, 3, method="quadratic")
    srt, _ = fdr_parallel(hist, sims, 3.0, 3, method="sorted")
    assert quad.fdr == srt.fdr


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_spmd_matches_sequential(dataset, backend):
    hist, sims = dataset
    vec = fdr_vectorized(hist, sims, 3.0)

    def rank_fn(comm):
        return fdr_spmd(comm,
                        hist if comm.rank == 0 else None,
                        sims if comm.rank == 0 else None, 3.0)

    results = run_spmd(rank_fn, 4, backend=backend)
    assert results[0].fdr == vec.fdr
    assert all(r is None for r in results[1:])


def test_zero_denominator_convention():
    hist = np.full(5, 100.0)        # observed far above all simulations
    sims = np.zeros((3, 5))
    result = fdr_vectorized(hist, sims, -1.0)  # nothing passes p_t
    assert result.denominator == 0
    assert result.fdr == 0.0


def test_fdr_monotonic_behaviour(dataset):
    """Raising p_t (looser threshold) must not shrink the selected-bin
    denominator."""
    hist, sims = dataset
    last_den = -1.0
    for p_t in (0.0, 2.0, 4.0, 8.0):
        result = fdr_vectorized(hist, sims, p_t)
        assert result.denominator >= last_den
        last_den = result.denominator


def test_validation():
    with pytest.raises(ReproError):
        fdr_vectorized(np.ones((2, 2)), np.ones((2, 2)), 1.0)
    with pytest.raises(ReproError):
        fdr_vectorized(np.ones(3), np.ones((2, 4)), 1.0)
    with pytest.raises(ReproError):
        fdr_vectorized(np.ones(3), np.ones((0, 3)), 1.0)
    with pytest.raises(ReproError):
        fdr_parallel(np.ones(3), np.ones((2, 3)), 1.0, 0)


def test_permutation_simulations_shape():
    hist = build_histogram(100, seed=0)
    sims = build_simulations(hist, 7, seed=1)
    assert sims.shape == (7, 100)
    # Permutations preserve the multiset of values.
    for b in range(7):
        assert np.array_equal(np.sort(sims[b]), np.sort(hist))


@given(st.integers(2, 8), st.integers(5, 40),
       st.floats(0, 10, allow_nan=False), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_all_implementations_agree_property(n_sims, n_bins, p_t, nprocs):
    rng = np.random.default_rng(n_sims * 100 + n_bins)
    hist = rng.integers(0, 20, n_bins).astype(float)
    sims = rng.integers(0, 20, (n_sims, n_bins)).astype(float)
    ref = fdr_reference(hist, sims, p_t)
    vec = fdr_vectorized(hist, sims, p_t)
    srt = fdr_sorted(hist, sims, p_t)
    par, _ = fdr_parallel(hist, sims, p_t, nprocs)
    assert ref.fdr == vec.fdr == srt.fdr == par.fdr
