"""Tests for artifact-cache integrity: per-file digests, quarantine
of corrupt entries, the corrupt-meta.json startup regression, publish
races, temp-dir sweeping, and verification policies."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ServiceError
from repro.runtime.metrics import ServiceMetrics
from repro.service.cache import ArtifactCache, cache_key, \
    content_digest, file_digests


PAYLOAD = b"bamx-artifact-bytes" * 10


def make_input(tmp_path, payload=b"input-bytes"):
    path = tmp_path / "input.bam"
    path.write_bytes(payload)
    return str(path)


def builder(entry_dir):
    with open(os.path.join(entry_dir, "data.bamx"), "wb") as fh:
        fh.write(PAYLOAD)
    with open(os.path.join(entry_dir, "data.bamx.baix"), "wb") as fh:
        fh.write(b"index-bytes")


def build_one(tmp_path, **cache_kwargs):
    cache = ArtifactCache(tmp_path / "cache", **cache_kwargs)
    source = make_input(tmp_path)
    entry, hit = cache.get_or_build(source, {"op": "x"}, builder)
    assert not hit
    return cache, source, entry


# ---------------------------------------------------------------------
# digest recording and verification


def test_meta_records_per_file_digests(tmp_path):
    _, _, entry = build_one(tmp_path)
    with open(entry.file("meta.json"), encoding="utf-8") as fh:
        meta = json.load(fh)
    assert meta["files"] == {
        "data.bamx": content_digest(entry.file("data.bamx")),
        "data.bamx.baix": content_digest(entry.file("data.bamx.baix")),
    }
    assert meta["files"] == file_digests(entry.path)


def test_corrupt_artifact_is_quarantined_not_served(tmp_path):
    metrics = ServiceMetrics()
    cache, source, entry = build_one(tmp_path, metrics=metrics)
    with open(entry.file("data.bamx"), "ab") as fh:
        fh.write(b"bit rot")
    # The rotted entry is never served: lookup quarantines it ...
    assert cache.lookup(source, {"op": "x"}) is None
    assert cache.keys() == []
    assert len(cache.quarantined()) == 1
    assert metrics.counter("cache_verify_failed") == 1
    assert metrics.counter("cache_quarantined") == 1
    # ... and get_or_build transparently rebuilds a clean copy.
    rebuilt, hit = cache.get_or_build(source, {"op": "x"}, builder)
    assert not hit
    with open(rebuilt.file("data.bamx"), "rb") as fh:
        assert fh.read() == PAYLOAD
    # A subsequent fetch digest-verifies the rebuilt entry.
    assert cache.lookup(source, {"op": "x"}) is not None
    assert metrics.counter("cache_verify_ok") >= 1


def test_extra_file_in_entry_fails_verification(tmp_path):
    cache, source, entry = build_one(tmp_path)
    with open(entry.file("smuggled.bin"), "wb") as fh:
        fh.write(b"?")
    assert cache.lookup(source, {"op": "x"}) is None
    assert len(cache.quarantined()) == 1


# ---------------------------------------------------------------------
# startup scan robustness (the corrupt-meta regression)


def test_truncated_meta_json_quarantined_at_startup(tmp_path):
    """Regression: a truncated meta.json used to crash ``_scan`` (and
    with it every service start) with a JSONDecodeError."""
    metrics = ServiceMetrics()
    _, source, entry = build_one(tmp_path)
    meta_path = entry.file("meta.json")
    data = open(meta_path, "rb").read()
    with open(meta_path, "wb") as fh:
        fh.write(data[:len(data) // 2])
    reopened = ArtifactCache(tmp_path / "cache", metrics=metrics)
    assert reopened.keys() == []
    assert len(reopened.quarantined()) == 1
    assert metrics.counter("cache_scan_errors") == 1
    # The quarantined key rebuilds cleanly on the next request.
    rebuilt, hit = reopened.get_or_build(source, {"op": "x"}, builder)
    assert not hit
    with open(rebuilt.file("data.bamx"), "rb") as fh:
        assert fh.read() == PAYLOAD


def test_binary_garbage_meta_quarantined_at_startup(tmp_path):
    _, _, entry = build_one(tmp_path)
    with open(entry.file("meta.json"), "wb") as fh:
        fh.write(b"\x00\xff\xfe not json at all")
    reopened = ArtifactCache(tmp_path / "cache")
    assert reopened.keys() == []
    assert len(reopened.quarantined()) == 1


def test_non_object_meta_quarantined_at_startup(tmp_path):
    _, _, entry = build_one(tmp_path)
    with open(entry.file("meta.json"), "w", encoding="utf-8") as fh:
        fh.write("[1, 2, 3]")
    reopened = ArtifactCache(tmp_path / "cache")
    assert reopened.keys() == []
    assert len(reopened.quarantined()) == 1


def test_stale_build_dirs_swept_at_startup(tmp_path):
    metrics = ServiceMetrics()
    cache_dir = tmp_path / "cache"
    _, _, entry = build_one(tmp_path)
    stale = cache_dir / ".build-deadbeef-12345"
    stale.mkdir()
    (stale / "partial.bamx").write_bytes(b"half")
    reopened = ArtifactCache(cache_dir, metrics=metrics)
    assert not stale.exists()
    assert metrics.counter("cache_tmp_swept") == 1
    # The published entry itself was adopted untouched.
    assert reopened.keys() == [entry.key]


def test_legacy_entry_without_digests_is_served(tmp_path):
    """Entries written before digest recording have no ``files`` map;
    they are served (counted as skipped), not quarantined."""
    metrics = ServiceMetrics()
    _, source, entry = build_one(tmp_path)
    with open(entry.file("meta.json"), encoding="utf-8") as fh:
        meta = json.load(fh)
    del meta["files"]
    with open(entry.file("meta.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh)
    reopened = ArtifactCache(tmp_path / "cache", metrics=metrics)
    found = reopened.lookup(source, {"op": "x"})
    assert found is not None and found.key == entry.key
    assert metrics.counter("cache_verify_skipped") == 1
    assert reopened.quarantined() == []


# ---------------------------------------------------------------------
# verification policies


def test_verify_never_skips_digest_checks(tmp_path):
    metrics = ServiceMetrics()
    cache, source, entry = build_one(tmp_path)
    with open(entry.file("data.bamx"), "ab") as fh:
        fh.write(b"rot")
    lax = ArtifactCache(tmp_path / "cache", metrics=metrics,
                        verify="never")
    # Policy "never" trusts the entry (the operator's trade-off).
    assert lax.lookup(source, {"op": "x"}) is not None
    assert metrics.counter("cache_verify_failed") == 0


def test_verify_policy_validation(tmp_path):
    with pytest.raises(ServiceError, match="bad cache verify policy"):
        ArtifactCache(tmp_path / "a", verify="bogus")
    with pytest.raises(ServiceError, match="not in \\[0, 1\\]"):
        ArtifactCache(tmp_path / "b", verify=1.5)
    assert ArtifactCache(tmp_path / "c", verify=0.5).verify_prob == 0.5
    assert ArtifactCache(tmp_path / "d", verify="never").verify_prob \
        == 0.0


def test_sampled_verification_still_catches_rot(tmp_path):
    # With p=0.5 the deterministic sampler must verify some fetches;
    # repeated lookups of a rotted entry eventually quarantine it.
    metrics = ServiceMetrics()
    cache, source, entry = build_one(tmp_path)
    with open(entry.file("data.bamx"), "ab") as fh:
        fh.write(b"rot")
    sampled = ArtifactCache(tmp_path / "cache", metrics=metrics,
                            verify=0.5)
    for _ in range(32):
        if sampled.lookup(source, {"op": "x"}) is None:
            break
    assert metrics.counter("cache_quarantined") == 1


# ---------------------------------------------------------------------
# concurrent publication


def test_lost_publish_race_is_a_hit(tmp_path):
    """Two cache instances over one directory: the loser of the
    ``os.rename`` publish race adopts the winner's entry instead of
    failing with ENOTEMPTY."""
    metrics = ServiceMetrics()
    source = make_input(tmp_path)
    winner = ArtifactCache(tmp_path / "cache")
    loser = ArtifactCache(tmp_path / "cache", metrics=metrics)
    entry_w, hit_w = winner.get_or_build(source, {"op": "x"}, builder)
    assert not hit_w
    # The loser's in-memory index predates the publish, so it builds —
    # and collides with the already-published directory.
    entry_l, hit_l = loser.get_or_build(source, {"op": "x"}, builder)
    assert not hit_l
    assert entry_l.path == entry_w.path
    assert metrics.counter("cache_publish_races") == 1
    with open(entry_l.file("data.bamx"), "rb") as fh:
        assert fh.read() == PAYLOAD
    # No stray temp dirs survive the race.
    assert [name for name in os.listdir(tmp_path / "cache")
            if name.startswith(".build-")] == []


def test_cache_key_is_content_addressed(tmp_path):
    a = tmp_path / "a.bam"
    b = tmp_path / "b.bam"
    a.write_bytes(b"same-bytes")
    b.write_bytes(b"same-bytes")
    assert cache_key(a, {"op": "x"}) == cache_key(b, {"op": "x"})
    assert cache_key(a, {"op": "x"}) != cache_key(a, {"op": "y"})
