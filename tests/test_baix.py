"""Unit tests for the BAIX index (sorted positions -> record indices)."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.formats.baix import BaixIndex, default_index_path
from repro.formats.bamx import BamxReader, write_bamx
from repro.formats.header import SamHeader

HDR = SamHeader.from_references([("chr1", 100_000), ("chr2", 50_000)])


@pytest.fixture(scope="module")
def index(workload):
    _, header, records = workload
    return BaixIndex.build(enumerate(records), header), header, records


def test_excludes_unplaced_records(index):
    idx, header, records = index
    placed = sum(1 for r in records if r.rname != "*" and r.pos >= 0)
    assert len(idx) == placed


def test_entries_sorted_by_coordinate(index):
    idx, _, _ = index
    keys = list(zip(idx.ref_ids.tolist(), idx.positions.tolist()))
    assert keys == sorted(keys)


def test_locate_matches_linear_scan(index):
    idx, header, records = index
    for chrom, beg, end in [("chr1", 0, 60_000), ("chr1", 5_000, 9_000),
                            ("chr2", 100, 200), ("chr2", 0, 50_000)]:
        ref_id = header.ref_id(chrom)
        lo, hi = idx.locate(ref_id, beg, end)
        got = sorted(idx.record_indices(lo, hi).tolist())
        expected = sorted(
            i for i, r in enumerate(records)
            if r.rname == chrom and beg <= r.pos < end)
        assert got == expected, (chrom, beg, end)


def test_locate_empty_region(index):
    idx, _, _ = index
    lo, hi = idx.locate(0, 0, 0)
    assert lo == hi


def test_locate_rejects_invalid(index):
    idx, _, _ = index
    with pytest.raises(IndexError_):
        idx.locate(0, -1, 10)
    with pytest.raises(IndexError_):
        idx.locate(0, 10, 5)


def test_record_indices_bounds(index):
    idx, _, _ = index
    with pytest.raises(IndexError_):
        idx.record_indices(0, len(idx) + 1)


def test_ref_span(index):
    idx, header, records = index
    lo, hi = idx.ref_span(header.ref_id("chr1"))
    chr1_count = sum(1 for r in records if r.rname == "chr1" and r.pos >= 0)
    assert hi - lo == chr1_count


def test_save_load_roundtrip(index, tmp_path):
    idx, _, _ = index
    path = tmp_path / "t.baix"
    idx.save(path)
    loaded = BaixIndex.load(path)
    assert np.array_equal(loaded.ref_ids, idx.ref_ids)
    assert np.array_equal(loaded.positions, idx.positions)
    assert np.array_equal(loaded.indices, idx.indices)


def test_load_rejects_bad_magic(tmp_path):
    path = tmp_path / "bad.baix"
    path.write_bytes(b"garbage")
    with pytest.raises(IndexError_):
        BaixIndex.load(path)


def test_unsorted_construction_rejected():
    with pytest.raises(IndexError_):
        BaixIndex(np.array([0, 0]), np.array([10, 5]), np.array([0, 1]))


def test_column_length_mismatch_rejected():
    with pytest.raises(IndexError_):
        BaixIndex(np.array([0]), np.array([1, 2]), np.array([0, 1]))


def test_from_bamx(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bamx"
    write_bamx(path, header, records)
    with BamxReader(path) as reader:
        idx = BaixIndex.from_bamx(reader)
        lo, hi = idx.locate(header.ref_id("chr1"), 1_000, 2_000)
        for record_index in idx.record_indices(lo, hi):
            rec = reader[int(record_index)]
            assert rec.rname == "chr1" and 1_000 <= rec.pos < 2_000


def test_default_index_path():
    assert default_index_path("/a/b.bamx") == "/a/b.bamx.baix"


def test_index_order_mirrors_fig4():
    """Fig. 4: positions ascending while record indices may be permuted."""
    from repro.formats.record import AlignmentRecord
    records = [
        AlignmentRecord("r0", 0, "chr1", 500, 60, [(4, "M")], "*", -1, 0,
                        "ACGT", "IIII"),
        AlignmentRecord("r1", 0, "chr1", 100, 60, [(4, "M")], "*", -1, 0,
                        "ACGT", "IIII"),
        AlignmentRecord("r2", 0, "chr1", 300, 60, [(4, "M")], "*", -1, 0,
                        "ACGT", "IIII"),
    ]
    idx = BaixIndex.build(enumerate(records), HDR)
    assert idx.positions.tolist() == [100, 300, 500]
    assert idx.indices.tolist() == [1, 2, 0]
