"""Shared fixtures: one small synthetic workload reused across tests.

The workload fixtures are session-scoped because building them (genome,
reads, alignment) dominates test time; tests must not mutate the shared
records in place.
"""

from __future__ import annotations

import pytest

from repro.formats.bam import write_bam
from repro.formats.sam import write_sam
from repro.simdata import build_alignments


@pytest.fixture(scope="session")
def workload():
    """(genome, header, coordinate-sorted records) for ~400 records."""
    return build_alignments(200, seed=11)


@pytest.fixture(scope="session")
def unsorted_workload():
    """Same pipeline without the coordinate sort (template order)."""
    return build_alignments(120, seed=12, sort=False)


@pytest.fixture(scope="session")
def sam_file(workload, tmp_path_factory):
    """The shared workload written as a SAM file."""
    genome, header, records = workload
    path = tmp_path_factory.mktemp("data") / "sample.sam"
    write_sam(path, header, records)
    return str(path)


@pytest.fixture(scope="session")
def bam_file(workload, tmp_path_factory):
    """The shared workload written as a BAM file."""
    genome, header, records = workload
    path = tmp_path_factory.mktemp("data") / "sample.bam"
    write_bam(path, header, records)
    return str(path)


@pytest.fixture()
def records(workload):
    """The shared records list (do not mutate elements)."""
    return workload[2]


@pytest.fixture()
def header(workload):
    """The shared coordinate-sorted header."""
    return workload[1]
