"""Unit tests for the SAM header model."""

import pytest

from repro.errors import SamFormatError
from repro.formats.header import HeaderLine, SamHeader, parse_header_line

HEADER_TEXT = (
    "@HD\tVN:1.4\tSO:coordinate\n"
    "@SQ\tSN:chr1\tLN:1000\n"
    "@SQ\tSN:chr2\tLN:2000\n"
    "@RG\tID:rg1\tSM:sample\n"
    "@PG\tID:aligner\tPN:repro\n"
    "@CO\tfree text\twith tabs\n"
)


def test_parse_and_rerender_roundtrip():
    header = SamHeader.from_text(HEADER_TEXT)
    assert header.to_text() == HEADER_TEXT


def test_reference_dictionary_order_and_lookup():
    header = SamHeader.from_text(HEADER_TEXT)
    assert [r.name for r in header.references] == ["chr1", "chr2"]
    assert header.ref_id("chr1") == 0
    assert header.ref_id("chr2") == 1
    assert header.ref_name(1) == "chr2"
    assert header.has_reference("chr1")
    assert not header.has_reference("chrX")


def test_unknown_reference_raises():
    header = SamHeader.from_text(HEADER_TEXT)
    with pytest.raises(SamFormatError):
        header.ref_id("chr3")
    with pytest.raises(SamFormatError):
        header.ref_name(2)


def test_sort_order():
    header = SamHeader.from_text(HEADER_TEXT)
    assert header.sort_order == "coordinate"
    assert SamHeader().sort_order == "unknown"


def test_with_sort_order_replaces_and_preserves_original():
    header = SamHeader.from_text(HEADER_TEXT)
    changed = header.with_sort_order("queryname")
    assert changed.sort_order == "queryname"
    assert header.sort_order == "coordinate"  # original untouched
    # Adding SO when @HD lacks it:
    bare = SamHeader.from_text("@SQ\tSN:c\tLN:5\n")
    assert bare.with_sort_order("coordinate").sort_order == "coordinate"


def test_from_references_builds_minimal_header():
    header = SamHeader.from_references([("chrA", 500), ("chrB", 600)],
                                       sort_order="coordinate")
    assert header.ref_id("chrB") == 1
    assert "@SQ\tSN:chrA\tLN:500" in header.to_text()
    assert header.sort_order == "coordinate"


@pytest.mark.parametrize("bad", [
    "@SQ\tSN:chr1",            # missing LN
    "@SQ\tLN:100",             # missing SN
    "@SQ\tSN:chr1\tLN:zero",   # non-integer LN
    "@SQ\tSN:chr1\tLN:0",      # non-positive LN
])
def test_invalid_sq_lines(bad):
    with pytest.raises(SamFormatError):
        SamHeader.from_text(bad + "\n")


def test_duplicate_reference_rejected():
    text = "@SQ\tSN:chr1\tLN:10\n@SQ\tSN:chr1\tLN:20\n"
    with pytest.raises(SamFormatError):
        SamHeader.from_text(text)


def test_parse_header_line_validation():
    with pytest.raises(SamFormatError):
        parse_header_line("HD\tVN:1.4")       # no @
    with pytest.raises(SamFormatError):
        parse_header_line("@HDX\tVN:1.4")     # 3-char type
    with pytest.raises(SamFormatError):
        parse_header_line("@HD\tnovalue")     # field without colon


def test_comment_line_preserves_tabs():
    line = parse_header_line("@CO\ta\tb\tc")
    assert line.type == "CO"
    assert line.comment == "a\tb\tc"
    assert line.to_sam() == "@CO\ta\tb\tc"


def test_headerline_get():
    line = HeaderLine("SQ", [("SN", "chr1"), ("LN", "10")])
    assert line.get("SN") == "chr1"
    assert line.get("XX") is None


def test_equality_is_textual():
    a = SamHeader.from_text(HEADER_TEXT)
    b = SamHeader.from_text(HEADER_TEXT)
    assert a == b
    assert a != SamHeader.from_text("@SQ\tSN:chr1\tLN:1000\n")


def test_empty_header():
    header = SamHeader.from_text("")
    assert header.to_text() == ""
    assert header.references == []
