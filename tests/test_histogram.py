"""Tests for coverage histogram construction."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.formats.bedgraph import BedGraphInterval
from repro.formats.header import SamHeader
from repro.formats.record import AlignmentRecord
from repro.stats.histogram import bedgraph_to_histogram, bin_coverage, \
    coverage_depth, histogram_from_records, histogram_to_bedgraph

HDR = SamHeader.from_references([("chr1", 100)])


def rec(pos, length, chrom="chr1", flag=0):
    return AlignmentRecord("r", flag, chrom, pos, 60, [(length, "M")],
                           "*", -1, 0, "A" * length, "I" * length)


def test_coverage_depth_single_read():
    depth = coverage_depth([rec(10, 5)], "chr1", 100)
    assert depth[9] == 0
    assert all(depth[10:15] == 1)
    assert depth[15] == 0


def test_coverage_depth_overlapping_reads():
    depth = coverage_depth([rec(0, 10), rec(5, 10)], "chr1", 100)
    assert all(depth[0:5] == 1)
    assert all(depth[5:10] == 2)
    assert all(depth[10:15] == 1)


def test_coverage_depth_ignores_other_chrom_and_unmapped():
    reads = [rec(0, 10), rec(0, 10, chrom="chr2"), rec(0, 10, flag=4)]
    depth = coverage_depth(reads, "chr1", 100)
    assert depth.max() == 1


def test_coverage_depth_clips_overhang():
    depth = coverage_depth([rec(95, 10)], "chr1", 100)
    assert all(depth[95:] == 1)
    assert depth.sum() == 5


def test_coverage_depth_deletion_counts_reference_span():
    record = AlignmentRecord("r", 0, "chr1", 10, 60,
                             [(3, "M"), (4, "D"), (3, "M")], "*", -1, 0,
                             "ACGTAC", "IIIIII")
    depth = coverage_depth([record], "chr1", 100)
    assert all(depth[10:20] == 1)  # span 3+4+3


def test_coverage_depth_validates_length():
    with pytest.raises(ReproError):
        coverage_depth([], "chr1", 0)


def test_bin_coverage_sums():
    depth = np.array([1, 1, 2, 2, 3])
    bins = bin_coverage(depth, 2)
    assert bins.tolist() == [2, 4, 3]


def test_bin_coverage_exact_division():
    assert bin_coverage(np.ones(10), 5).tolist() == [5, 5]


def test_bin_coverage_validates():
    with pytest.raises(ReproError):
        bin_coverage(np.ones(4), 0)


def test_histogram_from_records_conserves_mass(workload):
    _, header, records = workload
    histos = histogram_from_records(records, header, bin_size=25)
    total = sum(h.sum() for h in histos.values())
    mapped_bases = sum(min(r.end, dict(
        (x.name, x.length) for x in header.references)[r.rname])
        - r.pos for r in records if r.is_mapped and r.pos >= 0)
    assert total == mapped_bases


def test_bedgraph_roundtrip():
    histo = np.array([0, 0, 3, 3, 1, 0], dtype=float)
    intervals = histogram_to_bedgraph(histo, "chr1", 25)
    assert intervals[0] == BedGraphInterval("chr1", 0, 50, 0)
    back = bedgraph_to_histogram(intervals, "chr1", len(histo), 25)
    assert np.array_equal(back, histo)


def test_bedgraph_to_histogram_rejects_misaligned():
    with pytest.raises(ReproError):
        bedgraph_to_histogram([BedGraphInterval("chr1", 3, 28, 1.0)],
                              "chr1", 10, 25)
