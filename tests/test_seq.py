"""Unit and property tests for sequence/quality codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats.seq import NYBBLE_ALPHABET, decode_qualities, \
    encode_qualities, pack_sequence, reverse_complement, unpack_sequence, \
    validate_seq


def test_reverse_complement_basic():
    assert reverse_complement("ACGT") == "ACGT"
    assert reverse_complement("AAAA") == "TTTT"
    assert reverse_complement("ACCGGGT") == "ACCCGGT"


def test_reverse_complement_involution():
    seq = "ACGTNRYKM"
    assert reverse_complement(reverse_complement(seq)) == seq


def test_reverse_complement_preserves_case():
    assert reverse_complement("acgt") == "acgt"
    assert reverse_complement("AcGt") == "aCgT"


def test_pack_even_and_odd_lengths():
    packed = pack_sequence("ACGT")
    assert len(packed) == 2
    assert unpack_sequence(packed, 4) == "ACGT"
    packed3 = pack_sequence("ACG")
    assert len(packed3) == 2
    assert unpack_sequence(packed3, 3) == "ACG"


def test_pack_nybble_codes_match_spec():
    # '=ACMGRSVTWYHKDBN': A=1, C=2, G=4, T=8, N=15.
    assert pack_sequence("A")[0] >> 4 == 1
    assert pack_sequence("C")[0] >> 4 == 2
    assert pack_sequence("G")[0] >> 4 == 4
    assert pack_sequence("T")[0] >> 4 == 8
    assert pack_sequence("N")[0] >> 4 == 15


def test_pack_accepts_lowercase_normalizing_to_upper():
    assert unpack_sequence(pack_sequence("acgt"), 4) == "ACGT"


def test_pack_rejects_invalid():
    with pytest.raises(FormatError):
        pack_sequence("ACGQ")


def test_unpack_too_short_raises():
    with pytest.raises(FormatError):
        unpack_sequence(b"\x12", 4)


def test_quality_roundtrip():
    scores = [0, 10, 41, 93]
    assert decode_qualities(encode_qualities(scores)) == scores


def test_quality_bounds():
    with pytest.raises(FormatError):
        encode_qualities([94])
    with pytest.raises(FormatError):
        encode_qualities([-1])
    with pytest.raises(FormatError):
        decode_qualities(" ")  # ord 32 < 33


def test_validate_seq_star_passthrough():
    assert validate_seq("*") == "*"
    assert validate_seq("ACGTN") == "ACGTN"
    with pytest.raises(FormatError):
        validate_seq("AC-GT")


_seq = st.text(alphabet=list(NYBBLE_ALPHABET[1:]), min_size=0,
               max_size=300)


@given(_seq)
def test_pack_roundtrip_property(seq):
    assert unpack_sequence(pack_sequence(seq), len(seq)) == seq


@given(st.text(alphabet="ACGT", min_size=1, max_size=200))
def test_revcomp_roundtrip_property(seq):
    assert reverse_complement(reverse_complement(seq)) == seq


@given(st.lists(st.integers(min_value=0, max_value=93), max_size=120))
def test_quality_roundtrip_property(scores):
    assert decode_qualities(encode_qualities(scores)) == scores
