"""Unit, property and identity tests for the columnar BAMC format.

The acceptance contract of the columnar store: every record round-trips
exactly, and every conversion through the vectorized kernels is
byte-identical to the v1 BAMX pipeline — per part file, for every
target, with and without filters, for full and partial conversions.
"""

import dataclasses
import os
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BamConverter, RecordFilter
from repro.core.targets import target_names
from repro.errors import BamxFormatError, CapacityError
from repro.formats.bamc import DEFAULT_SLAB_RECORDS, MAGIC, BamcReader, \
    BamcWriter, read_bamc, write_bamc
from repro.formats.bamx import BamxLayout, plan_layout
from repro.formats.header import SamHeader
from repro.formats.record import UNMAPPED_POS, AlignmentRecord
from repro.formats.store import open_record_store, store_extension
from repro.formats.tags import Tag

HDR = SamHeader.from_references([("chr1", 100_000), ("chr2", 50_000)])


def make_record(**overrides):
    base = dict(qname="q1", flag=99, rname="chr1", pos=500, mapq=60,
                cigar=[(4, "M")], rnext="=", pnext=700, tlen=204,
                seq="ACGT", qual="IIII", tags=[Tag("NM", "i", 0)])
    base.update(overrides)
    return AlignmentRecord(**base)


EDGE_RECORDS = [
    make_record(),
    make_record(seq="*", qual="*", cigar=[]),          # zero-length seq
    make_record(qual="*"),                             # missing quals
    make_record(flag=4 | 1, rname="*", pos=UNMAPPED_POS, mapq=0,
                cigar=[], rnext="*", pnext=UNMAPPED_POS, tlen=0,
                tags=[]),                              # unmapped
    make_record(rnext="chr2", pnext=3),                # cross-chrom mate
    make_record(qname="a" * 254),                      # name at hard cap
    make_record(seq="ACGTA", qual="\x7f" * 5,          # odd-length seq,
                cigar=[(5, "M")]),                     # high qual chars
    make_record(cigar=[(1, "M")] * 3 + [(1, "I")], seq="ACGT",
                qual="IIII"),                          # many CIGAR ops
]


@pytest.mark.parametrize("slab_records", [1, 3, 7, 64,
                                          len(EDGE_RECORDS) + 10])
def test_roundtrip_edge_records(tmp_path, slab_records):
    path = tmp_path / "t.bamc"
    write_bamc(path, HDR, EDGE_RECORDS, slab_records=slab_records)
    header, decoded = read_bamc(path)
    assert header.to_text() == HDR.to_text()
    assert decoded == EDGE_RECORDS


def test_default_slab_size_matches_batch_default():
    from repro.formats.batch import DEFAULT_BATCH_SIZE
    assert DEFAULT_SLAB_RECORDS == DEFAULT_BATCH_SIZE


def test_random_access_and_ranges(tmp_path):
    records = [make_record(qname=f"r{i}", pos=10 * i)
               for i in range(50)]
    path = tmp_path / "t.bamc"
    write_bamc(path, HDR, records, slab_records=7)
    with BamcReader(path) as reader:
        assert len(reader) == 50
        assert reader[0] == records[0]
        assert reader[49] == records[49]
        assert reader[-1] == records[-1]
        assert list(reader.read_range(13, 29)) == records[13:29]
        with pytest.raises(IndexError):
            reader[50]


def test_column_picks_preserve_caller_order(tmp_path):
    records = [make_record(qname=f"r{i}", pos=10 * i)
               for i in range(40)]
    path = tmp_path / "t.bamc"
    write_bamc(path, HDR, records, slab_records=8)
    picks = [3, 4, 5, 30, 31, 2, 17, 16, 39, 0]
    with BamcReader(path) as reader:
        got = [record
               for slab in reader.read_column_picks(picks)
               for record in slab.decode_all(reader.header)]
    assert got == [records[i] for i in picks]


def test_end_pos_column_is_record_end(tmp_path):
    records = [make_record(qname="a", pos=100,
                           cigar=[(2, "M"), (3, "D"), (2, "M")],
                           seq="ACGT", qual="IIII"),
               make_record(flag=4, rname="*", pos=UNMAPPED_POS, mapq=0,
                           cigar=[], rnext="*", pnext=UNMAPPED_POS,
                           tlen=0, tags=[])]
    path = tmp_path / "t.bamc"
    write_bamc(path, HDR, records)
    with BamcReader(path) as reader:
        slab = next(reader.read_column_batches(0, len(reader)))
        assert slab.end_pos[0] == records[0].end == 107
        assert slab.end_pos[1] == records[1].end


def test_capacity_violations(tmp_path):
    layout = BamxLayout(name_cap=3, cigar_cap=1, seq_cap=4, tag_cap=4)
    path = tmp_path / "t.bamc"
    for bad in (make_record(qname="toolong"),
                make_record(cigar=[(2, "M"), (2, "M")]),
                make_record(seq="ACGTA", qual="IIIII",
                            cigar=[(5, "M")]),
                make_record(tags=[Tag("XZ", "Z", "long value")])):
        # Records are buffered per slab, so the capacity check fires at
        # flush time — by context exit at the latest.
        with pytest.raises(CapacityError):
            with BamcWriter(path, HDR, layout) as writer:
                writer.write(bad)


def test_qual_length_mismatch_rejected(tmp_path):
    layout = plan_layout([make_record()])
    with pytest.raises(BamxFormatError):
        with BamcWriter(tmp_path / "t.bamc", HDR, layout) as writer:
            writer.write(make_record(qual="II"))


def test_open_record_store_dispatches_on_magic(tmp_path):
    path = tmp_path / "oddly.named"
    write_bamc(path, HDR, EDGE_RECORDS)
    with open(path, "rb") as fh:
        assert fh.read(len(MAGIC)) == MAGIC
    with open_record_store(path) as reader:
        assert isinstance(reader, BamcReader)
        assert list(reader) == EDGE_RECORDS


def test_store_extension_knows_bamc():
    assert store_extension(False, "bamc") == ".bamc"
    assert store_extension(False, "bamx") == ".bamx"
    assert store_extension(True, "bamx") == ".bamz"
    with pytest.raises(BamxFormatError):
        store_extension(True, "bamc")  # no BGZF layering
    with pytest.raises(BamxFormatError):
        store_extension(False, "parquet")


def test_truncated_file_is_rejected(tmp_path):
    path = tmp_path / "t.bamc"
    write_bamc(path, HDR, EDGE_RECORDS)
    data = open(path, "rb").read()
    clipped = tmp_path / "clipped.bamc"
    clipped.write_bytes(data[:len(data) - 9])
    with pytest.raises(BamxFormatError):
        BamcReader(clipped)


# -- property fuzz ----------------------------------------------------

_qname = st.from_regex(r"[!-?A-~]{1,24}", fullmatch=True)
_seq = st.text(alphabet="ACGTN", min_size=1, max_size=40)


@st.composite
def records(draw):
    seq = draw(_seq)
    mapped = draw(st.booleans())
    n = len(seq)
    if mapped:
        if draw(st.booleans()) and n >= 3:
            a = draw(st.integers(1, n - 2))
            cigar = [(a, "S"), (n - a, "M")]
        else:
            cigar = [(n, "M")]
        rname = draw(st.sampled_from(["chr1", "chr2"]))
        pos = draw(st.integers(0, 100_000))
        mapq = draw(st.integers(0, 254))
        flag = draw(st.sampled_from([0, 16, 99, 147, 83, 163, 1024]))
    else:
        cigar = []
        rname, pos, mapq, flag = "*", UNMAPPED_POS, 0, 4
    if mapped and draw(st.booleans()):
        rnext = draw(st.sampled_from(["=", "chr1", "chr2"]))
        pnext = draw(st.integers(0, 100_000))
    else:
        rnext, pnext = "*", UNMAPPED_POS
    if draw(st.booleans()):
        seq, qual = "*", "*"
        cigar = [] if not mapped else cigar
        if mapped:
            cigar = []
    else:
        qual = "*" if draw(st.booleans()) else "".join(
            chr(draw(st.integers(33, 126))) for _ in range(n))
    return AlignmentRecord(
        qname=draw(_qname), flag=flag, rname=rname, pos=pos, mapq=mapq,
        cigar=cigar, rnext=rnext, pnext=pnext,
        tlen=draw(st.integers(-(1 << 30), 1 << 30)), seq=seq, qual=qual,
        tags=[])


def _norm(record):
    """BAM-family stores normalize same-reference RNEXT to '='."""
    if record.rnext not in ("*", "=") and record.rnext == record.rname:
        return dataclasses.replace(record, rnext="=")
    return record


@given(st.lists(records(), min_size=1, max_size=9),
       st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_bamc_fuzz_roundtrip(batch, slab_records):
    with tempfile.TemporaryDirectory() as d:
        path = f"{d}/t.bamc"
        write_bamc(path, HDR, batch, slab_records=slab_records)
        _, decoded = read_bamc(path)
    assert decoded == [_norm(r) for r in batch]


# -- byte identity against the v1 BAMX pipeline -----------------------

FILTERS = [None, RecordFilter(min_mapq=30, primary_only=True)]


def _parts(result):
    return {os.path.basename(p): open(p, "rb").read()
            for p in result.outputs}


@pytest.mark.parametrize("target", target_names())
def test_bamc_conversion_byte_identical_all_targets(bam_file, tmp_path,
                                                    target):
    bamx_conv = BamConverter()
    bamc_conv = BamConverter(store_format="bamc")
    bamx, _, _ = bamx_conv.preprocess(bam_file, tmp_path / "wx")
    bamc, _, _ = bamc_conv.preprocess(bam_file, tmp_path / "wc")
    assert bamc.endswith(".bamc")
    for i, flt in enumerate(FILTERS):
        v1 = bamx_conv.convert(bamx, target, tmp_path / f"x{i}",
                               nprocs=2, record_filter=flt)
        v2 = bamc_conv.convert(bamc, target, tmp_path / f"c{i}",
                               nprocs=2, record_filter=flt)
        assert _parts(v2) == _parts(v1), (target, flt)
        assert (v2.records, v2.emitted) == (v1.records, v1.emitted)


@pytest.mark.parametrize("mode", ["start", "overlap"])
def test_bamc_region_byte_identical(bam_file, tmp_path, mode):
    bamx_conv = BamConverter()
    bamc_conv = BamConverter(store_format="bamc")
    bamx, _, _ = bamx_conv.preprocess(bam_file, tmp_path / "wx")
    bamc, _, _ = bamc_conv.preprocess(bam_file, tmp_path / "wc")
    for target in ("bed", "fastq", "sam"):
        v1 = bamx_conv.convert_region(bamx, None, "chr1:1-40000",
                                      target, tmp_path / f"x-{target}",
                                      nprocs=2, mode=mode)
        v2 = bamc_conv.convert_region(bamc, None, "chr1:1-40000",
                                      target, tmp_path / f"c-{target}",
                                      nprocs=2, mode=mode)
        assert _parts(v2) == _parts(v1), (target, mode)


def test_record_pipeline_matches_batch_on_bamc(bam_file, tmp_path):
    conv = BamConverter(store_format="bamc")
    bamc, _, _ = conv.preprocess(bam_file, tmp_path / "w")
    batch = conv.convert(bamc, "fastq", tmp_path / "batch", nprocs=2)
    record = BamConverter(pipeline="record",
                          store_format="bamc").convert(
        bamc, "fastq", tmp_path / "record", nprocs=2)
    assert _parts(record) == _parts(batch)


def test_kernel_fallback_counted_for_non_kernel_targets(bam_file,
                                                        tmp_path):
    conv = BamConverter(store_format="bamc")
    bamc, _, _ = conv.preprocess(bam_file, tmp_path / "w")
    kernel = conv.convert(bamc, "bed", tmp_path / "k")
    fallback = conv.convert(bamc, "gff", tmp_path / "f")
    assert sum(m.kernel_fallbacks for m in kernel.rank_metrics) == 0
    assert sum(m.kernel_fallbacks for m in fallback.rank_metrics) > 0


# -- vectorized kernels vs record-path results ------------------------

def test_flagstat_kernel_matches_record_path(bam_file, tmp_path,
                                             workload):
    from repro.tools.flagstat import flagstat, flagstat_records
    _genome, _header, records = workload
    conv = BamConverter(store_format="bamc")
    bamc, _, _ = conv.preprocess(bam_file, tmp_path / "w")
    assert flagstat(bamc) == flagstat_records(records)


def test_histogram_kernel_matches_record_path(bam_file, tmp_path,
                                              workload):
    from repro.stats import histogram_from_records, histogram_from_store
    _genome, header, records = workload
    conv = BamConverter(store_format="bamc")
    bamc, _, _ = conv.preprocess(bam_file, tmp_path / "w")
    with open_record_store(bamc) as reader:
        columnar = histogram_from_store(reader, 25)
    reference = histogram_from_records(records, header, 25)
    assert set(columnar) == set(reference)
    for name in reference:
        assert np.array_equal(columnar[name], reference[name])


def test_filter_mask_matches_scalar_filter(tmp_path, workload):
    from repro.formats.kernels import slab_filter_mask
    _genome, header, records = workload
    path = tmp_path / "t.bamc"
    write_bamc(path, header, records, slab_records=37)
    flt = RecordFilter(min_mapq=30, exclude_flags=0x10,
                       mapped_only=True)
    with BamcReader(path) as reader:
        for slab in reader.read_column_batches(0, len(reader)):
            mask = slab_filter_mask(slab, flt)
            expect = [flt.matches_flag_mapq(int(f), int(q))
                      for f, q in zip(slab.flag, slab.mapq)]
            assert mask.tolist() == expect
            assert slab_filter_mask(slab, RecordFilter()) is None


def test_mapq_histogram_kernel(tmp_path, workload):
    from repro.formats.kernels import mapq_histogram
    _genome, header, records = workload
    path = tmp_path / "t.bamc"
    write_bamc(path, header, records)
    with BamcReader(path) as reader:
        total = np.zeros(256, dtype=np.int64)
        for slab in reader.read_column_batches(0, len(reader)):
            total += mapq_histogram(slab)
    expect = np.bincount([r.mapq for r in records], minlength=256)
    assert np.array_equal(total, expect)


# -- service-layer integration ---------------------------------------

def test_service_store_format_param(bam_file, tmp_path):
    from repro.runtime.executor import reset_shared_executor
    from repro.service.server import ConversionService
    reset_shared_executor()
    service = ConversionService(tmp_path / "svc", workers=1)
    try:
        row = service.submit("convert", {
            "input": str(bam_file), "target": "bed",
            "out_dir": str(tmp_path / "row")})
        col = service.submit("convert", {
            "input": str(bam_file), "target": "bed",
            "out_dir": str(tmp_path / "col"), "store_format": "bamc"})
        sam_job = service.submit("convert", {
            "input": str(bam_file), "target": "sam",
            "out_dir": str(tmp_path / "sam"), "store_format": "bamc"})
        assert service.pool.wait_all(timeout=60)
        for job_id in (row.job_id, col.job_id, sam_job.job_id):
            job = service.pool.get(job_id)
            assert job.state.value == "done", job.error

        def job_bytes(job_id):
            job = service.pool.get(job_id)
            return {os.path.basename(p): open(p, "rb").read()
                    for p in job.result["outputs"]}
        assert job_bytes(col.job_id) == job_bytes(row.job_id)
        # Row and columnar artifacts of the same BAM live in distinct
        # cache entries (store_format is part of the cache key).
        extensions = set()
        for dirpath, _dirnames, filenames in os.walk(service.cache.cache_dir):
            for name in filenames:
                extensions.add(os.path.splitext(name)[1])
        assert ".bamx" in extensions and ".bamc" in extensions
        # The sam job has no columnar kernel -> its slabs fell back to
        # the record path and the service counter says so.
        assert service.metrics.counter("kernel_fallbacks") > 0
    finally:
        service.close()
        reset_shared_executor()
