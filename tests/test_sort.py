"""Tests for the external coordinate sort (samtools-sort substitute)."""

import pytest

from repro.core.sort import merge_runs, parallel_sort_sam, sort_bam, \
    sort_key, sort_sam
from repro.errors import ConversionError
from repro.formats.bam import read_bam, write_bam
from repro.formats.sam import read_sam, write_sam


def is_sorted(records, header):
    keys = [sort_key(r, header) for r in records]
    return keys == sorted(keys)


@pytest.fixture(scope="module")
def unsorted_sam(unsorted_workload, tmp_path_factory):
    _, header, records = unsorted_workload
    path = tmp_path_factory.mktemp("sort") / "u.sam"
    write_sam(path, header, records)
    return str(path), header, records


def test_sort_key_ordering(unsorted_workload):
    from repro.formats.sam import parse_alignment
    _, header, records = unsorted_workload
    mapped = next(r for r in records if r.is_mapped)
    unmapped = parse_alignment("u\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII")
    assert sort_key(mapped, header) < sort_key(unmapped, header)


def test_in_memory_sort(unsorted_sam, tmp_path):
    path, header, records = unsorted_sam
    result = sort_sam(path, tmp_path / "s.sam")
    assert result.runs == 0  # fits in one chunk
    assert result.records == len(records)
    out_header, out_records = read_sam(result.output)
    assert is_sorted(out_records, out_header)
    assert out_header.sort_order == "coordinate"
    assert len(out_records) == len(records)


def test_external_sort_with_spills(unsorted_sam, tmp_path):
    path, header, records = unsorted_sam
    result = sort_sam(path, tmp_path / "s.sam", chunk_records=37)
    assert result.runs > 1
    _, out_records = read_sam(result.output)
    assert is_sorted(out_records, header)
    # Same multiset of records: sort both deterministically and compare.
    assert sorted(map(str, map(id, out_records))) is not None
    assert sorted((r.qname, r.flag) for r in out_records) == \
        sorted((r.qname, r.flag) for r in records)


def test_spill_and_in_memory_agree(unsorted_sam, tmp_path):
    path, header, _ = unsorted_sam
    a = sort_sam(path, tmp_path / "a.sam", chunk_records=10 ** 9)
    b = sort_sam(path, tmp_path / "b.sam", chunk_records=13)
    assert open(a.output).read() == open(b.output).read()


def test_sort_is_stable(tmp_path):
    """Records at the same coordinate keep their input order."""
    from repro.formats.header import SamHeader
    from repro.formats.sam import parse_alignment
    header = SamHeader.from_references([("chr1", 1000)])
    records = [parse_alignment(
        f"r{i}\t0\tchr1\t100\t60\t4M\t*\t0\t0\tACGT\tIIII")
        for i in range(20)]
    path = tmp_path / "ties.sam"
    write_sam(path, header, records)
    result = sort_sam(path, tmp_path / "s.sam", chunk_records=6)
    _, out = read_sam(result.output)
    assert [r.qname for r in out] == [f"r{i}" for i in range(20)]


def test_sort_bam_roundtrip(unsorted_workload, tmp_path):
    _, header, records = unsorted_workload
    bam_in = tmp_path / "u.bam"
    write_bam(bam_in, header, records)
    result = sort_bam(bam_in, tmp_path / "s.bam", chunk_records=50)
    out_header, out_records = read_bam(result.output)
    assert is_sorted(out_records, out_header)
    assert len(out_records) == len(records)
    # Sorted BAM is now indexable.
    from repro.formats.bai import BaiIndex
    BaiIndex.from_bam(result.output)


def test_parallel_sort_matches_sequential(unsorted_sam, tmp_path):
    path, header, _ = unsorted_sam
    seq = sort_sam(path, tmp_path / "seq.sam")
    for nprocs in (1, 2, 5):
        par, rank_metrics = parallel_sort_sam(
            path, tmp_path / f"par{nprocs}.sam", nprocs,
            tmp_path / f"w{nprocs}")
        assert len(rank_metrics) == nprocs
        assert open(par.output).read() == open(seq.output).read()


def test_merge_runs_order(tmp_path, header):
    from repro.formats.sam import SamWriter, parse_alignment
    run_a = tmp_path / "a.sam"
    run_b = tmp_path / "b.sam"
    with SamWriter(run_a) as w:
        w.write(parse_alignment(
            "a\t0\tchr1\t10\t60\t4M\t*\t0\t0\tACGT\tIIII"))
        w.write(parse_alignment(
            "c\t0\tchr1\t30\t60\t4M\t*\t0\t0\tACGT\tIIII"))
    with SamWriter(run_b) as w:
        w.write(parse_alignment(
            "b\t0\tchr1\t20\t60\t4M\t*\t0\t0\tACGT\tIIII"))
    merged = list(merge_runs([str(run_a), str(run_b)], header))
    assert [r.qname for r in merged] == ["a", "b", "c"]


def test_invalid_parameters(unsorted_sam, tmp_path):
    path, _, _ = unsorted_sam
    with pytest.raises(ConversionError):
        sort_sam(path, tmp_path / "x.sam", chunk_records=0)
    with pytest.raises(ConversionError):
        parallel_sort_sam(path, tmp_path / "x.sam", 0, tmp_path / "w")
