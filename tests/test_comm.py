"""Unit tests for the communicator abstraction (serial and thread)."""

import threading

import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.comm import SerialComm, ThreadComm


def run_world(size, fn):
    """Run fn(comm) on `size` ThreadComm ranks; return results by rank."""
    comms = ThreadComm.create_world(size)
    results = [None] * size
    errors = []

    def runner(rank):
        try:
            results[rank] = fn(comms[rank])
        except Exception as exc:  # noqa: BLE001
            errors.append((rank, exc))

    threads = [threading.Thread(target=runner, args=(r,))
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0][1]
    return results


def test_serial_comm_identity_collectives():
    comm = SerialComm()
    assert comm.rank == 0 and comm.size == 1
    assert comm.bcast("x") == "x"
    assert comm.scatter(["only"]) == "only"
    assert comm.gather(42) == [42]
    assert comm.allgather(1) == [1]
    assert comm.allreduce(5, lambda a, b: a + b) == 5
    comm.barrier()


def test_serial_comm_rejects_point_to_point():
    comm = SerialComm()
    with pytest.raises(RuntimeLayerError):
        comm.send(1, 0)
    with pytest.raises(RuntimeLayerError):
        comm.recv(0)


def test_send_recv_pairs():
    def fn(comm):
        if comm.rank == 0:
            comm.send({"payload": 1}, dest=1)
            return comm.recv(source=1)
        comm.send("pong", dest=0)
        return comm.recv(source=0)
    results = run_world(2, fn)
    assert results[0] == "pong"
    assert results[1] == {"payload": 1}


def test_bcast():
    def fn(comm):
        value = [1, 2, 3] if comm.rank == 0 else None
        return comm.bcast(value, root=0)
    assert run_world(4, fn) == [[1, 2, 3]] * 4


def test_bcast_nonzero_root():
    def fn(comm):
        value = "from2" if comm.rank == 2 else None
        return comm.bcast(value, root=2)
    assert run_world(4, fn) == ["from2"] * 4


def test_scatter_gather():
    def fn(comm):
        values = [i * i for i in range(comm.size)] if comm.rank == 0 \
            else None
        mine = comm.scatter(values, root=0)
        return comm.gather(mine + 1, root=0)
    results = run_world(4, fn)
    assert results[0] == [1, 2, 5, 10]
    assert results[1] is None


def test_scatter_requires_one_value_per_rank():
    def fn(comm):
        if comm.rank == 0:
            with pytest.raises(RuntimeLayerError):
                comm.scatter([1, 2], root=0)
        return True
    # Only exercise rank 0's validation path (single rank world).
    comm = SerialComm()
    with pytest.raises(RuntimeLayerError):
        comm.scatter([1, 2])


def test_allgather_and_allreduce():
    def fn(comm):
        return (comm.allgather(comm.rank),
                comm.allreduce(comm.rank, lambda a, b: a + b))
    results = run_world(3, fn)
    for gathered, reduced in results:
        assert gathered == [0, 1, 2]
        assert reduced == 3


def test_reduce_with_custom_op():
    def fn(comm):
        return comm.reduce(comm.rank + 1, lambda a, b: a * b, root=0)
    results = run_world(4, fn)
    assert results[0] == 24
    assert results[1:] == [None, None, None]


def test_barrier_orders_phases():
    log = []
    lock = threading.Lock()

    def fn(comm):
        with lock:
            log.append(("before", comm.rank))
        comm.barrier()
        with lock:
            log.append(("after", comm.rank))
    run_world(3, fn)
    phases = [phase for phase, _ in log]
    assert phases.index("after") >= 3  # every 'before' precedes any 'after'


def test_tag_mismatch_detected():
    def fn(comm):
        if comm.rank == 0:
            comm.send("x", 1, tag=7)
            return None
        with pytest.raises(RuntimeLayerError):
            comm.recv(0, tag=8)
        return True
    results = run_world(2, fn)
    assert results[1] is True


def test_self_send_rejected():
    comms = ThreadComm.create_world(2)
    with pytest.raises(RuntimeLayerError):
        comms[0].send(1, 0)
    with pytest.raises(RuntimeLayerError):
        comms[0].recv(0)


def test_invalid_ranks_rejected():
    comms = ThreadComm.create_world(2)
    with pytest.raises(RuntimeLayerError):
        comms[0].send(1, 5)
    with pytest.raises(RuntimeLayerError):
        comms[0].recv(-1)
    with pytest.raises(RuntimeLayerError):
        comms[0].bcast(1, root=9)
