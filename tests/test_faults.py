"""Tests for the deterministic fault-injection harness and for every
wired injection point: armed faults surface as structured errors or
successful recovery — never as an unhandled crash."""

from __future__ import annotations

import json
import os
import socket as socketlib
import subprocess
import sys
import time

import pytest

import repro
from repro.errors import FaultInjectedError, ReproError
from repro.runtime import faults
from repro.runtime.metrics import ServiceMetrics
from repro.service import protocol
from repro.service.cache import ArtifactCache
from repro.service.jobs import Job, JobState
from repro.service.journal import JobJournal, replay
from repro.service.scheduler import WorkerPool
from repro.service.server import ServiceDaemon


@pytest.fixture(autouse=True)
def disarmed():
    """Every test starts and ends with a disarmed registry."""
    faults.disarm()
    yield
    faults.disarm()


def make_input(tmp_path, payload=b"input-bytes"):
    path = tmp_path / "input.bam"
    path.write_bytes(payload)
    return str(path)


def make_builder(payload=b"artifact-payload"):
    def builder(entry_dir):
        with open(os.path.join(entry_dir, "data.bamx"), "wb") as fh:
            fh.write(payload)
        with open(os.path.join(entry_dir, "data.bamx.baix"),
                  "wb") as fh:
            fh.write(b"index-bytes")
    return builder


# ---------------------------------------------------------------------
# spec parsing and registry mechanics


def test_parse_spec_full_and_defaults():
    assert faults.parse_spec(
        "cache.fetch:partial-write:0.5:7") == \
        [("cache.fetch", "partial-write", 0.5, 7)]
    assert faults.parse_spec("journal.append:delay") == \
        [("journal.append", "delay", 1.0, 0)]
    assert faults.parse_spec(
        "cache.build:crash:0.1, scheduler.attempt:exception") == [
        ("cache.build", "crash", 0.1, 0),
        ("scheduler.attempt", "exception", 1.0, 0)]
    assert faults.parse_spec("") == []


@pytest.mark.parametrize("bad, detail", [
    ("cache.fletch:exception", "unknown fault point"),
    ("cache.fetch:explosion", "unknown fault kind"),
    ("cache.fetch", "want point:kind"),
    ("cache.fetch:exception:zap", "bad fault spec"),
    ("cache.fetch:exception:1.5", "not in [0, 1]"),
    ("cache.fetch:exception:0.5:x", "bad fault spec"),
    ("cache.fetch:exception:0.5:1:9", "want point:kind"),
])
def test_parse_spec_rejects_typos(bad, detail):
    # A typo must raise, not silently disarm a test run.
    with pytest.raises(ReproError) as err:
        faults.parse_spec(bad)
    assert detail in str(err.value)


def test_arm_disarm_and_snapshot():
    assert not faults.is_armed()
    faults.arm("gateway.dispatch:delay:0.5:3")
    assert faults.is_armed()
    assert faults.is_armed("gateway.dispatch")
    assert not faults.is_armed("cache.build")
    snap = faults.snapshot()
    assert snap["gateway.dispatch"] == {
        "kind": "delay", "prob": 0.5, "seed": 3,
        "evaluations": 0, "fires": 0}
    faults.disarm()
    assert not faults.is_armed()
    assert faults.snapshot() == {}


def test_fire_is_deterministic_under_seed():
    def sequence():
        faults.arm("scheduler.attempt:exception:0.5:42")
        fired = []
        for _ in range(64):
            try:
                faults.fire("scheduler.attempt")
                fired.append(False)
            except FaultInjectedError:
                fired.append(True)
        return fired

    first, second = sequence(), sequence()
    assert first == second
    assert True in first and False in first  # prob actually applied


def test_fire_exception_kind():
    faults.arm("journal.append:exception")
    with pytest.raises(FaultInjectedError,
                       match="injected fault at journal.append"):
        faults.fire("journal.append")
    faults.fire("cache.build")  # other points stay disarmed


def test_fire_delay_kind():
    faults.arm("cache.fetch:delay")
    start = time.monotonic()
    faults.fire("cache.fetch")
    assert time.monotonic() - start >= faults.DELAY_SECONDS * 0.8


def test_partial_write_corrupts_but_never_fires():
    faults.arm("journal.append:partial-write:1.0:5")
    faults.fire("journal.append")  # no-op at control-flow sites
    data = b"x" * 100
    cut = faults.corrupt("journal.append", data)
    assert len(cut) < len(data)
    assert data.startswith(cut)
    assert faults.should_corrupt("journal.append")
    faults.disarm()
    assert faults.corrupt("journal.append", data) == data
    assert not faults.should_corrupt("journal.append")


def test_crash_kind_exits_process():
    code = ("from repro.runtime import faults\n"
            "faults.arm('scheduler.attempt:crash')\n"
            "faults.fire('scheduler.attempt')\n"
            "raise SystemExit(1)  # unreachable\n")
    env = dict(os.environ, PYTHONPATH=os.path.dirname(
        os.path.dirname(repro.__file__)))
    env.pop("REPRO_FAULTS", None)
    proc = subprocess.run([sys.executable, "-c", code], env=env)
    assert proc.returncode == faults.CRASH_EXIT_CODE


def test_arm_from_env_in_subprocess():
    # REPRO_FAULTS reaches a fresh interpreter at import time — the
    # mechanism the crash smoke test relies on to arm spawned daemons.
    code = ("from repro.runtime import faults\n"
            "assert faults.is_armed('gateway.dispatch')\n"
            "snap = faults.snapshot()['gateway.dispatch']\n"
            "assert snap['kind'] == 'delay' and snap['prob'] == 0.25\n")
    env = dict(os.environ,
               PYTHONPATH=os.path.dirname(
                   os.path.dirname(repro.__file__)),
               REPRO_FAULTS="gateway.dispatch:delay:0.25:9")
    proc = subprocess.run([sys.executable, "-c", code], env=env)
    assert proc.returncode == 0


def test_disarmed_fire_is_cheap():
    # Loose sanity bound: a disarmed point is one boolean check, so a
    # hundred thousand evaluations must be effectively free.
    start = time.monotonic()
    for _ in range(100_000):
        faults.fire("cache.fetch")
    assert time.monotonic() - start < 0.5


# ---------------------------------------------------------------------
# wired points, armed at p=1.0: structured failure or clean recovery


def test_scheduler_attempt_exception_exhausts_retries():
    faults.arm("scheduler.attempt:exception")
    pool = WorkerPool(lambda job: {"ok": True}, workers=1)
    try:
        job = pool.submit(Job(kind="k", max_retries=1, backoff=0.01))
        assert job.wait(10)
        assert job.state is JobState.FAILED
        assert job.attempts == 2
        assert "injected fault at scheduler.attempt" in job.error
        assert pool.metrics.counter("jobs_retried") == 1
    finally:
        pool.shutdown()


def test_scheduler_attempt_fault_recovers_via_retry():
    # seed 1 at prob 0.5 fires on the first evaluation and not the
    # second: the first attempt fails, the retry succeeds.
    faults.arm("scheduler.attempt:exception:0.5:1")
    pool = WorkerPool(lambda job: {"ok": True}, workers=1)
    try:
        job = pool.submit(Job(kind="k", max_retries=2, backoff=0.01))
        assert job.wait(10)
        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert job.result == {"ok": True}
        assert job.error is None
    finally:
        pool.shutdown()


def test_journal_append_fault_refuses_submit(tmp_path):
    journal = JobJournal(tmp_path / "jobs.jsonl", fsync="never")
    pool = WorkerPool(lambda job: {"ok": True}, workers=1,
                      journal=journal)
    try:
        faults.arm("journal.append:exception")
        with pytest.raises(FaultInjectedError):
            pool.submit(Job(kind="k"))
        # Write-ahead discipline: the refused job must not exist.
        assert pool.jobs() == []
        faults.disarm()
        job = pool.submit(Job(kind="k"))
        assert job.wait(10) and job.state is JobState.DONE
    finally:
        pool.shutdown()
        journal.close()


def test_journal_append_partial_write_survives_replay(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="never")
    faults.arm("journal.append:partial-write:1.0:3")
    for i in range(1, 6):
        journal.append_submit(Job(kind="k", job_id=f"job-{i:06d}"))
    faults.disarm()
    journal.close()
    specs, stats = replay(path)
    # Every line was torn; replay skips the damage and keeps going.
    assert stats["bad_lines"] >= 1
    assert len(specs) < 5


def test_cache_build_exception_fails_clean(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    source = make_input(tmp_path)
    faults.arm("cache.build:exception")
    with pytest.raises(FaultInjectedError):
        cache.get_or_build(source, {"op": "x"}, make_builder())
    assert cache.keys() == []
    # The interrupted build's temp dir was cleaned up.
    assert [name for name in os.listdir(cache.cache_dir)
            if name.startswith(".build-")] == []
    faults.disarm()
    entry, hit = cache.get_or_build(source, {"op": "x"},
                                    make_builder())
    assert not hit
    with open(entry.file("data.bamx"), "rb") as fh:
        assert fh.read() == b"artifact-payload"


def test_cache_build_partial_write_quarantined(tmp_path):
    metrics = ServiceMetrics()
    cache = ArtifactCache(tmp_path / "cache", metrics=metrics)
    source = make_input(tmp_path)
    faults.arm("cache.build:partial-write:1.0:2")
    with pytest.raises(
            Exception, match="failed verification after build"):
        cache.get_or_build(source, {"op": "x"}, make_builder())
    # The torn entry was never served and never registered.
    assert cache.keys() == []
    assert len(cache.quarantined()) == 1
    assert metrics.counter("cache_quarantined") == 1
    faults.disarm()
    entry, hit = cache.get_or_build(source, {"op": "x"},
                                    make_builder())
    assert not hit
    with open(entry.file("data.bamx"), "rb") as fh:
        assert fh.read() == b"artifact-payload"


def test_cache_fetch_partial_write_quarantines_and_rebuilds(tmp_path):
    metrics = ServiceMetrics()
    cache = ArtifactCache(tmp_path / "cache", metrics=metrics)
    source = make_input(tmp_path)
    cache.get_or_build(source, {"op": "x"}, make_builder())
    faults.arm("cache.fetch:partial-write:1.0:4")
    entry, hit = cache.get_or_build(source, {"op": "x"},
                                    make_builder())
    # The rotted entry was quarantined and transparently rebuilt.
    assert not hit
    assert len(cache.quarantined()) == 1
    assert metrics.counter("cache_verify_failed") == 1
    with open(entry.file("data.bamx"), "rb") as fh:
        assert fh.read() == b"artifact-payload"


class _TinyService:
    """Minimal ConversionService stand-in for gateway fault tests."""

    def __init__(self) -> None:
        self.metrics = ServiceMetrics()
        self.pool = WorkerPool(lambda job: dict(job.params),
                               workers=1, metrics=self.metrics,
                               trace_jobs=False)

    def submit(self, kind, params, priority=0, timeout=None,
               max_retries=0, backoff=0.1):
        return self.pool.submit(Job(
            kind=kind, params=dict(params), priority=priority,
            timeout=timeout, max_retries=max_retries,
            backoff=backoff))

    def status(self, job_id=None):
        if job_id is not None:
            return self.pool.get(job_id).to_dict()
        return [job.to_dict() for job in self.pool.jobs()]

    def cancel(self, job_id):
        return self.pool.cancel(job_id)

    def wait(self, job_id, timeout=None):
        job = self.pool.get(job_id)
        job.wait(timeout)
        return job.to_dict()

    def trace(self, job_id):
        return list(self.pool.get(job_id).trace)

    def metrics_snapshot(self):
        return self.metrics.snapshot()

    def close(self):
        self.pool.shutdown()


def test_gateway_dispatch_fault_is_structured():
    service = _TinyService()
    daemon = ServiceDaemon(service, listen=("127.0.0.1", 0))
    daemon.start()
    try:
        sock = socketlib.create_connection(daemon.tcp_address)
        sock.settimeout(10)
        stream = sock.makefile("rwb")
        try:
            faults.arm("gateway.dispatch:exception")
            protocol.write_message(stream, {"op": "ping"})
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert response["code"] == protocol.CODE_FAULT_INJECTED
            assert "injected fault at gateway.dispatch" \
                in response["error"]
            # The session survives the injected fault and, once
            # disarmed, the same connection serves normally.
            faults.disarm()
            protocol.write_message(stream, {"op": "ping"})
            assert json.loads(stream.readline()) == \
                {"ok": True, "pong": True}
        finally:
            sock.close()
    finally:
        daemon.stop()
