"""Unit tests for the metered read/write buffers."""

import pytest

from repro.errors import PartitionError
from repro.runtime.buffers import BufferedBinaryWriter, \
    BufferedTextWriter, RangeLineReader
from repro.runtime.metrics import RankMetrics


def test_range_line_reader_full_file(tmp_path):
    lines = [f"line{i:03d}" for i in range(50)]
    path = tmp_path / "t.txt"
    path.write_text("\n".join(lines) + "\n")
    reader = RangeLineReader(path, 0, path.stat().st_size)
    assert list(reader) == lines


def test_range_line_reader_subrange(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("aaa\nbbb\nccc\n")
    # range covering only "bbb\n"
    reader = RangeLineReader(path, 4, 8)
    assert list(reader) == ["bbb"]


def test_range_line_reader_tiny_chunks(tmp_path):
    lines = [f"row-{i}" for i in range(30)]
    path = tmp_path / "t.txt"
    path.write_text("\n".join(lines) + "\n")
    reader = RangeLineReader(path, 0, path.stat().st_size, chunk_size=3)
    assert list(reader) == lines


def test_range_line_reader_final_line_without_newline(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("aaa\nbbb")
    reader = RangeLineReader(path, 0, 7)
    assert list(reader) == ["aaa", "bbb"]


def test_range_line_reader_empty_range(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("aaa\n")
    assert list(RangeLineReader(path, 2, 2)) == []


def test_range_line_reader_metrics(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("aaa\nbbb\n")
    metrics = RankMetrics()
    list(RangeLineReader(path, 0, 8, metrics=metrics))
    assert metrics.bytes_read == 8
    assert metrics.io_seconds >= 0.0


def test_range_line_reader_invalid_range(tmp_path):
    path = tmp_path / "t.txt"
    path.write_text("x\n")
    with pytest.raises(PartitionError):
        RangeLineReader(path, 5, 2)


def test_text_writer_lines_and_flush(tmp_path):
    path = tmp_path / "out.txt"
    metrics = RankMetrics()
    with BufferedTextWriter(path, chunk_size=16, metrics=metrics) as w:
        for i in range(10):
            w.write_line(f"line{i}")
    assert path.read_text() == "".join(f"line{i}\n" for i in range(10))
    assert metrics.bytes_written == path.stat().st_size


def test_text_writer_write_text_no_newline(tmp_path):
    path = tmp_path / "out.txt"
    with BufferedTextWriter(path) as w:
        w.write_text("header\n")
        w.write_line("body")
    assert path.read_text() == "header\nbody\n"


def test_text_writer_close_idempotent(tmp_path):
    path = tmp_path / "out.txt"
    w = BufferedTextWriter(path)
    w.write_line("x")
    w.close()
    w.close()
    assert path.read_text() == "x\n"


def test_binary_writer(tmp_path):
    path = tmp_path / "out.bin"
    metrics = RankMetrics()
    with BufferedBinaryWriter(path, chunk_size=8, metrics=metrics) as w:
        w.write(b"\x01\x02")
        assert w.tell() == 2
        w.write(b"\x03" * 20)
    assert path.read_bytes() == b"\x01\x02" + b"\x03" * 20
    assert metrics.bytes_written == 22
