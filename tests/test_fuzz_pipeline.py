"""Fuzz-style pipeline properties: generated record sets through the
full converter stack with random rank counts."""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BamConverter, SamConverter
from repro.formats.bam import write_bam
from repro.formats.header import SamHeader
from repro.formats.sam import read_sam, write_sam
from tests.test_properties_records import records as record_strategy

HDR = SamHeader.from_references([("chr1", 1 << 20), ("chr2", 1 << 18)])


@given(st.lists(record_strategy(), min_size=1, max_size=12),
       st.integers(1, 7))
@settings(max_examples=20, deadline=None)
def test_sam_converter_preserves_arbitrary_records(batch, nprocs):
    """Any record set survives SAM -> partitioned parallel -> SAM."""
    with tempfile.TemporaryDirectory() as d:
        src = f"{d}/in.sam"
        write_sam(src, HDR, batch)
        result = SamConverter().convert(src, "sam", f"{d}/out",
                                        nprocs=nprocs)
        recovered = []
        for path in result.outputs:
            _, part = read_sam(path)
            recovered.extend(part)
    assert recovered == batch
    assert result.records == len(batch)


@given(st.lists(record_strategy(), min_size=1, max_size=10),
       st.integers(1, 5))
@settings(max_examples=12, deadline=None)
def test_bam_pipeline_preserves_arbitrary_records(batch, nprocs):
    """Any record set survives BAM -> BAMX preprocessing -> parallel
    SAM conversion (modulo BAM's '=' RNEXT normalization)."""
    from tests.test_properties_records import _norm
    with tempfile.TemporaryDirectory() as d:
        src = f"{d}/in.bam"
        write_bam(src, HDR, batch)
        converter = BamConverter()
        bamx, _, _ = converter.preprocess(src, f"{d}/work")
        result = converter.convert(bamx, "sam", f"{d}/out",
                                   nprocs=nprocs)
        recovered = []
        for path in result.outputs:
            _, part = read_sam(path)
            recovered.extend(part)
    assert recovered == [_norm(r) for r in batch]


@given(st.lists(record_strategy(), min_size=0, max_size=10))
@settings(max_examples=15, deadline=None)
def test_flagstat_invariants(batch):
    """Category counts respect their structural inequalities for any
    record set."""
    from repro.tools.flagstat import flagstat_records
    stats = flagstat_records(batch)
    assert stats.total == len(batch)
    assert stats.mapped <= stats.total
    assert stats.properly_paired <= stats.paired
    assert stats.read1 + stats.read2 <= stats.paired * 2
    assert stats.singletons + stats.with_mate_mapped <= stats.paired
    assert stats.mate_on_different_chr_mapq5 <= \
        stats.mate_on_different_chr


@given(st.lists(record_strategy(), min_size=1, max_size=12),
       st.integers(1, 4))
@settings(max_examples=12, deadline=None)
def test_sort_then_validate(batch, chunk):
    """Sorting any record set yields a file the validator accepts as
    coordinate-ordered (mate checks off: random mates are unrelated)."""
    from repro.core.sort import sort_key, sort_sam
    from repro.tools.validate import validate_file
    with tempfile.TemporaryDirectory() as d:
        src = f"{d}/in.sam"
        write_sam(src, HDR, batch)
        result = sort_sam(src, f"{d}/sorted.sam", chunk_records=chunk)
        header, recovered = read_sam(result.output)
        report = validate_file(result.output, check_mates=False)
    keys = [sort_key(r, header) for r in recovered]
    assert keys == sorted(keys)
    assert not any(i.code == "NOT_COORDINATE_SORTED"
                   for i in report.issues)
