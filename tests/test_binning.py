"""Unit and property tests for the UCSC binning scheme."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formats.binning import BIN_COUNT, MAX_BIN_COORD, bin_interval, \
    bin_level, linear_window, reg2bin, reg2bins


def _reg2bin_spec(beg, end):
    """Verbatim transcription of the SAM-spec C reference."""
    end -= 1
    if beg >> 14 == end >> 14:
        return ((1 << 15) - 1) // 7 + (beg >> 14)
    if beg >> 17 == end >> 17:
        return ((1 << 12) - 1) // 7 + (beg >> 17)
    if beg >> 20 == end >> 20:
        return ((1 << 9) - 1) // 7 + (beg >> 20)
    if beg >> 23 == end >> 23:
        return ((1 << 6) - 1) // 7 + (beg >> 23)
    if beg >> 26 == end >> 26:
        return ((1 << 3) - 1) // 7 + (beg >> 26)
    return 0


def test_known_bins():
    assert reg2bin(0, 1) == 4681          # first 16 kbp leaf
    assert reg2bin(0, 1 << 14) == 4681
    assert reg2bin(1 << 14, (1 << 14) + 1) == 4682
    assert reg2bin(0, (1 << 14) + 1) == 585  # spans two leaves -> level 4
    assert reg2bin(0, MAX_BIN_COORD) == 0    # whole-genome bin


def test_unmapped_convention():
    assert reg2bin(-1, 0) == 4680


def test_reg2bins_includes_containing_bins():
    beg, end = 100_000, 200_000
    bins = reg2bins(beg, end)
    assert 0 in bins
    assert reg2bin(beg, end) in bins
    # Every leaf bin covering the range is present.
    for pos in range(beg >> 14, (end - 1 >> 14) + 1):
        assert 4681 + pos in bins


def test_reg2bins_empty_region():
    assert reg2bins(500, 500) == [0]
    assert reg2bins(500, 400) == [0]


def test_reg2bins_clamps_out_of_range():
    bins = reg2bins(-100, MAX_BIN_COORD + 100)
    assert bins[0] == 0
    assert max(bins) < BIN_COUNT


def test_bin_level_and_interval():
    assert bin_level(0) == 0
    assert bin_level(1) == 1
    assert bin_level(4681) == 5
    assert bin_interval(0) == (0, 1 << 29)
    assert bin_interval(4681) == (0, 1 << 14)
    assert bin_interval(4682) == (1 << 14, 2 << 14)
    with pytest.raises(ValueError):
        bin_level(BIN_COUNT)


def test_linear_window():
    assert linear_window(0) == 0
    assert linear_window((1 << 14) - 1) == 0
    assert linear_window(1 << 14) == 1
    with pytest.raises(ValueError):
        linear_window(-1)


_intervals = st.tuples(
    st.integers(min_value=0, max_value=MAX_BIN_COORD - 2),
    st.integers(min_value=1, max_value=100_000),
).map(lambda t: (t[0], min(t[0] + t[1], MAX_BIN_COORD)))


@given(_intervals)
def test_reg2bin_matches_spec_reference(interval):
    beg, end = interval
    assert reg2bin(beg, end) == _reg2bin_spec(beg, end)


@given(_intervals)
def test_bin_contains_interval(interval):
    beg, end = interval
    lo, hi = bin_interval(reg2bin(beg, end))
    assert lo <= beg and end <= hi


@given(_intervals, _intervals)
def test_overlapping_intervals_share_a_candidate_bin(a, b):
    # If two intervals overlap, reg2bins(a) must contain reg2bin(b):
    # this is the property region queries rely on.
    if max(a[0], b[0]) < min(a[1], b[1]):
        assert reg2bin(b[0], b[1]) in reg2bins(a[0], a[1])
