"""Unit and property tests for the SAM text codec."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SamFormatError
from repro.formats.header import SamHeader
from repro.formats.record import UNMAPPED_POS, AlignmentRecord
from repro.formats.sam import SamReader, SamWriter, format_alignment, \
    parse_alignment, read_sam, write_sam

LINE = ("frag7\t99\tchr1\t1000\t60\t10M\t=\t1200\t290\t"
        "ACGTACGTAC\tIIIIIIIIII\tNM:i:1\tRG:Z:lane1")


def test_parse_maps_columns():
    rec = parse_alignment(LINE)
    assert rec.qname == "frag7"
    assert rec.flag == 99
    assert rec.rname == "chr1"
    assert rec.pos == 999            # 1-based POS -> 0-based
    assert rec.mapq == 60
    assert rec.cigar == [(10, "M")]
    assert rec.rnext == "="
    assert rec.pnext == 1199
    assert rec.tlen == 290
    assert rec.seq == "ACGTACGTAC"
    assert rec.qual == "IIIIIIIIII"
    assert [t.name for t in rec.tags] == ["NM", "RG"]


def test_format_is_exact_inverse():
    assert format_alignment(parse_alignment(LINE)) == LINE


def test_pos_zero_means_unavailable():
    line = "r\t4\t*\t0\t0\t*\t*\t0\t0\tACGT\tIIII"
    rec = parse_alignment(line)
    assert rec.pos == UNMAPPED_POS and rec.pnext == UNMAPPED_POS
    assert format_alignment(rec) == line


def test_too_few_columns():
    with pytest.raises(SamFormatError):
        parse_alignment("a\tb\tc")


def test_non_integer_flag():
    with pytest.raises(SamFormatError):
        parse_alignment(LINE.replace("99", "xx", 1))


def test_reader_separates_header_and_records():
    text = ("@HD\tVN:1.4\n@SQ\tSN:chr1\tLN:5000\n"
            + LINE + "\n" + LINE + "\n")
    reader = SamReader(io.StringIO(text))
    assert reader.header.ref_id("chr1") == 0
    assert len(list(reader)) == 2


def test_reader_headerless_file():
    reader = SamReader(io.StringIO(LINE + "\n"))
    assert reader.header.references == []
    assert len(list(reader)) == 1


def test_reader_skips_blank_lines():
    reader = SamReader(io.StringIO(LINE + "\n\n" + LINE + "\n"))
    assert len(list(reader)) == 2


def test_file_roundtrip(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "roundtrip.sam"
    assert write_sam(path, header, records) == len(records)
    header2, records2 = read_sam(path)
    assert header2 == header
    assert records2 == records


def test_writer_counts(tmp_path):
    path = tmp_path / "counted.sam"
    with SamWriter(path, SamHeader()) as writer:
        writer.write(parse_alignment(LINE))
        writer.write_all([parse_alignment(LINE)] * 3)
        assert writer.records_written == 4


_qname = st.from_regex(r"[!-?A-~]{1,40}", fullmatch=True)
_seq = st.text(alphabet="ACGTN", min_size=1, max_size=60)


@st.composite
def sam_records(draw):
    seq = draw(_seq)
    mapped = draw(st.booleans())
    if mapped:
        cigar = [(len(seq), "M")]
        rname, pos, mapq = "chr1", draw(st.integers(0, 10_000)), \
            draw(st.integers(0, 254))
        flag = draw(st.sampled_from([0, 16, 99, 147, 83, 163]))
    else:
        cigar = []
        rname, pos, mapq = "*", UNMAPPED_POS, 0
        flag = 4
    qual = "".join(chr(draw(st.integers(33, 126)))
                   for _ in range(len(seq)))
    return AlignmentRecord(
        qname=draw(_qname), flag=flag, rname=rname, pos=pos, mapq=mapq,
        cigar=cigar, rnext="*", pnext=UNMAPPED_POS,
        tlen=draw(st.integers(-10_000, 10_000)), seq=seq, qual=qual,
        tags=[])


@given(sam_records())
def test_record_text_roundtrip_property(record):
    assert parse_alignment(format_alignment(record)) == record


@given(st.lists(sam_records(), min_size=1, max_size=8))
def test_stream_roundtrip_property(records):
    buf = io.StringIO()
    writer = SamWriter(buf, SamHeader.from_references([("chr1", 20_000)]))
    writer.write_all(records)
    buf.seek(0)
    reader = SamReader(buf)
    assert list(reader) == records
