"""Tests for indel simulation and gapped (banded-DP) alignment."""

import pytest

from repro.formats.cigar import query_length, reference_span
from repro.simdata.aligner import Aligner, AlignerConfig, \
    banded_semiglobal
from repro.simdata.genome import Genome
from repro.simdata.reads import ReadSimConfig, ReadSimulator


# --- banded_semiglobal kernel -------------------------------------------


def test_exact_match():
    assert banded_semiglobal("ACGT", "ACGT") == (0, 0, [(4, "M")])


def test_free_reference_ends():
    dist, off, cigar = banded_semiglobal("ACGT", "TTACGTTT")
    assert (dist, off, cigar) == (0, 2, [(4, "M")])


def test_mismatch_counted():
    dist, _, cigar = banded_semiglobal("ACGT", "AGGT")
    assert dist == 1 and cigar == [(4, "M")]


def test_insertion_in_read():
    dist, off, cigar = banded_semiglobal("ACXGT", "ACGT")
    assert dist == 1
    assert query_length(cigar) == 5
    assert reference_span(cigar) == 4
    assert any(op == "I" for _, op in cigar)


def test_deletion_from_read():
    # Read skips the reference's T; the long distinct flanks make the
    # deletion strictly cheaper than any mismatch alignment.
    dist, off, cigar = banded_semiglobal("ACGTTGCA", "ACGTATGCA")
    assert dist == 1
    assert cigar == [(4, "M"), (1, "D"), (4, "M")]
    assert query_length(cigar) == 8
    assert reference_span(cigar) == 9


def test_empty_read():
    assert banded_semiglobal("", "ACGT") == (0, 0, [])


def test_cigar_runs_are_merged():
    _, _, cigar = banded_semiglobal("AAAA", "GGAAAAGG")
    assert cigar == [(4, "M")]


# --- simulator indels ----------------------------------------------------


@pytest.fixture(scope="module")
def genome():
    return Genome.synthesize([("chr1", 25_000)], seed=31)


def test_indel_rate_zero_means_no_true_cigars(genome):
    sim = ReadSimulator(genome, ReadSimConfig(junk_fraction=0.0),
                        seed=1)
    for r1, r2 in sim.simulate(20):
        assert r1.true_cigar is None and r2.true_cigar is None


def test_indel_reads_keep_read_length(genome):
    cfg = ReadSimConfig(junk_fraction=0.0, indel_rate=1.0)
    sim = ReadSimulator(genome, cfg, seed=2)
    for r1, r2 in sim.simulate(20):
        for read in (r1, r2):
            assert len(read.sequence) == cfg.read_length
            if read.true_cigar is not None:
                assert query_length(read.true_cigar) == cfg.read_length


def test_true_cigar_structure(genome):
    cfg = ReadSimConfig(junk_fraction=0.0, indel_rate=1.0, max_indel=3)
    sim = ReadSimulator(genome, cfg, seed=3)
    saw_insertion = saw_deletion = False
    for r1, r2 in sim.simulate(30):
        for read in (r1, r2):
            if read.true_cigar is None:
                continue
            ops = [op for _, op in read.true_cigar]
            assert ops in (["M", "I", "M"], ["M", "D", "M"])
            mid_len = read.true_cigar[1][0]
            assert 1 <= mid_len <= 3
            saw_insertion |= "I" in ops
            saw_deletion |= "D" in ops
    assert saw_insertion and saw_deletion


def test_indel_config_validation():
    with pytest.raises(Exception):
        ReadSimConfig(indel_rate=1.5)
    with pytest.raises(Exception):
        ReadSimConfig(max_indel=0)


# --- gapped aligner -------------------------------------------------------


@pytest.fixture(scope="module")
def gapped_setup(genome):
    cfg = ReadSimConfig(junk_fraction=0.0, indel_rate=0.6)
    sim = ReadSimulator(genome, cfg, seed=4)
    aligner = Aligner(genome, AlignerConfig(gapped=True))
    return sim.simulate(30), aligner


def test_gapped_recovers_positions(gapped_setup):
    pairs, aligner = gapped_setup
    correct = total = 0
    for r1, r2 in pairs:
        rec1, rec2 = aligner.align_pair(r1, r2)
        for rec, read in ((rec1, r1), (rec2, r2)):
            total += 1
            if rec.is_mapped and rec.pos == read.true_pos \
                    and rec.is_reverse == read.true_reverse:
                correct += 1
    assert correct / total > 0.9


def test_gapped_produces_indel_cigars(gapped_setup):
    pairs, aligner = gapped_setup
    with_indel = 0
    indel_reads = 0
    for r1, r2 in pairs:
        rec1, rec2 = aligner.align_pair(r1, r2)
        for rec, read in ((rec1, r1), (rec2, r2)):
            if read.true_cigar is not None:
                indel_reads += 1
                if rec.is_mapped and any(op in "ID"
                                         for _, op in rec.cigar):
                    with_indel += 1
    assert indel_reads > 10
    assert with_indel / indel_reads > 0.8


def test_gapped_records_validate_and_roundtrip(gapped_setup, tmp_path):
    """Indel CIGARs flow through SAM and BAM codecs unchanged."""
    from repro.formats.bam import read_bam, write_bam
    from repro.formats.sam import read_sam, write_sam
    pairs, aligner = gapped_setup
    records = aligner.align_all(pairs[:10])
    for rec in records:
        rec.validate()
    sam = tmp_path / "g.sam"
    write_sam(sam, aligner.header, records)
    _, back = read_sam(sam)
    assert back == records
    bam = tmp_path / "g.bam"
    write_bam(bam, aligner.header, records)
    _, back2 = read_bam(bam)
    assert back2 == records


def test_ungapped_mode_rejects_heavy_indel_reads(genome):
    """Without gapped mode an indel shifts downstream bases, pushing
    Hamming past the limit — most indel reads come out unmapped, which
    is exactly the motivation for the gapped extension."""
    cfg = ReadSimConfig(junk_fraction=0.0, indel_rate=1.0, max_indel=3)
    sim = ReadSimulator(genome, cfg, seed=5)
    plain = Aligner(genome, AlignerConfig(gapped=False))
    gapped = Aligner(genome, AlignerConfig(gapped=True))
    pairs = sim.simulate(15)
    plain_mapped = sum(r.is_mapped for rec in map(
        lambda p: plain.align_pair(*p), pairs) for r in rec)
    gapped_mapped = sum(r.is_mapped for rec in map(
        lambda p: gapped.align_pair(*p), pairs) for r in rec)
    assert gapped_mapped > plain_mapped
