"""Robustness tests for the rank executors: pickling of every spec
shape, message stress on the communicators, and cross-backend
equivalence with the newest features (filters, BAMZ, overlap mode)."""

import os
import pickle

import pytest

from repro.core import BamConverter, RecordFilter, SamConverter
from repro.runtime.comm import ThreadComm
from repro.runtime.spmd import run_spmd


def cat(result):
    return b"".join(open(p, "rb").read() for p in result.outputs)


def test_all_rank_specs_are_picklable(sam_file, bam_file, tmp_path):
    """Every spec dataclass must survive pickling (process executor)."""
    from repro.core.bam_converter import BamxPickSpec, BamxRangeSpec
    from repro.core.sam_converter import SamRankSpec
    from repro.core.samp_converter import PreprocessSpec
    from repro.core.sort import SortRankSpec
    f = RecordFilter(min_mapq=30, primary_only=True)
    specs = [
        SamRankSpec(sam_file, 0, 10, "bed", "/tmp/x.bed", "", 4096, f),
        BamxRangeSpec("x.bamx", 0, 5, "sam", "/tmp/x.sam", f),
        BamxPickSpec("x.bamx", (1, 2, 3), "sam", "/tmp/x.sam", f),
        PreprocessSpec(sam_file, 0, 10, "/tmp/x.bamx", "", 4096),
        SortRankSpec(sam_file, 0, 10, "/tmp/run.sam", ""),
    ]
    for spec in specs:
        assert pickle.loads(pickle.dumps(spec)) == spec


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_filtered_conversion_across_executors(sam_file, tmp_path,
                                              executor):
    f = RecordFilter(min_mapq=40)
    sim = SamConverter().convert(sam_file, "bed", tmp_path / "sim",
                                 nprocs=3, record_filter=f)
    other = SamConverter().convert(sam_file, "bed", tmp_path / executor,
                                   nprocs=3, executor=executor,
                                   record_filter=f)
    assert cat(sim) == cat(other)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_bamz_region_across_executors(bam_file, tmp_path, executor):
    converter = BamConverter()
    bamz, baix, _ = converter.preprocess(bam_file, tmp_path / "w",
                                         compress=True)
    sim = converter.convert_region(bamz, baix, "chr1:1-30000", "sam",
                                   tmp_path / "sim", nprocs=2)
    other = converter.convert_region(bamz, baix, "chr1:1-30000", "sam",
                                     tmp_path / executor, nprocs=2,
                                     executor=executor)
    assert cat(sim) == cat(other)


def test_thread_comm_message_stress():
    """Hundreds of interleaved tagged messages keep FIFO-per-pair
    ordering."""
    n_messages = 300

    def fn(comm):
        if comm.rank == 0:
            for i in range(n_messages):
                comm.send(i, dest=1, tag=i % 3)
            return None
        got = {0: [], 1: [], 2: []}
        # Drain tag by tag; per-pair FIFO must preserve per-tag order.
        for tag in (0, 1, 2):
            for _ in range(n_messages // 3):
                got[tag].append(comm.recv(0, tag=tag))
        return got

    # Tags interleave in send order, so a strict-tag recv on ThreadComm
    # (which enforces tag matching on a single FIFO) raises instead of
    # silently reordering; verify that protocol-mismatch detection.
    from repro.runtime.spmd import SpmdFailure
    with pytest.raises(SpmdFailure):
        run_spmd(fn, 2, backend="thread")


def test_thread_comm_single_tag_stress():
    n_messages = 500

    def fn(comm):
        if comm.rank == 0:
            for i in range(n_messages):
                comm.send(i, dest=1)
            return None
        return [comm.recv(0) for _ in range(n_messages)]

    results = run_spmd(fn, 2, backend="thread")
    assert results[1] == list(range(n_messages))


def test_process_comm_multi_tag_stress():
    """The pipe communicator buffers out-of-order tags, so the same
    interleaved pattern succeeds there."""
    n_messages = 90

    def fn(comm):
        if comm.rank == 0:
            for i in range(n_messages):
                comm.send(i, dest=1, tag=i % 3)
            return None
        got = []
        for tag in (2, 0, 1):
            for _ in range(n_messages // 3):
                got.append((tag, comm.recv(0, tag=tag)))
        return got

    results = run_spmd(fn, 2, backend="process")
    by_tag = {0: [], 1: [], 2: []}
    for tag, value in results[1]:
        by_tag[tag].append(value)
    for tag in (0, 1, 2):
        assert by_tag[tag] == [i for i in range(n_messages)
                               if i % 3 == tag]


def test_collectives_stress_many_ranks():
    def fn(comm):
        total = comm.allreduce(comm.rank, lambda a, b: a + b)
        gathered = comm.allgather(comm.rank * 2)
        return total, gathered

    size = 12
    results = run_spmd(fn, size, backend="thread")
    expected_sum = size * (size - 1) // 2
    for total, gathered in results:
        assert total == expected_sum
        assert gathered == [r * 2 for r in range(size)]


def test_thread_world_isolated_instances():
    """Two worlds built back-to-back must not share mailboxes."""
    a = ThreadComm.create_world(2)
    b = ThreadComm.create_world(2)
    a[0].send("for-a", dest=1)
    b[0].send("for-b", dest=1)
    assert b[1].recv(0) == "for-b"
    assert a[1].recv(0) == "for-a"


# -- shard-level robustness (dynamic-shard schedule) -----------------

def _shard_crash(_item):
    os._exit(3)


def test_worker_crash_mid_shard_names_the_shard():
    """A worker dying inside one shard must surface as an
    ExecutorFailure naming that shard, and the shared pool must
    survive to serve the next call."""
    from repro.runtime.executor import ExecutorFailure, SharedExecutor
    ex = SharedExecutor(max_workers=2, idle_timeout=0)
    try:
        with pytest.raises(ExecutorFailure) as err:
            ex.map_tasks(_shard_crash, [0], "process",
                         labels=["rank 1 shard 3"])
        assert "rank 1 shard 3" in str(err.value)
        # Next call on the same executor gets a fresh process pool.
        assert ex.map_tasks(len, [[1, 2]], "process") == [2]
        assert ex.stats()["process_pool_starts"] == 2
    finally:
        ex.shutdown()


def test_conversion_survives_prior_pool_crash(sam_file, tmp_path):
    """A crash in one job must not poison later conversions that use
    the process-global pool."""
    from repro.runtime.executor import (
        ExecutorFailure,
        get_shared_executor,
        reset_shared_executor,
    )
    reset_shared_executor()
    try:
        with pytest.raises(ExecutorFailure):
            get_shared_executor().map_tasks(_shard_crash, [0], "process")
        sim = SamConverter().convert(sam_file, "bed", tmp_path / "sim",
                                     nprocs=2)
        after = SamConverter(shards_per_rank=3).convert(
            sam_file, "bed", tmp_path / "after", nprocs=2,
            executor="process")
        assert cat(sim) == cat(after)
    finally:
        reset_shared_executor()


def test_sharded_specs_are_picklable(sam_file, tmp_path):
    """split() products (with write_header / parse_only fields) must
    survive pickling just like their parent rank specs."""
    from repro.core.sam_converter import SamRankSpec, scan_header
    from repro.core.samp_converter import PreprocessSpec
    _, header_end = scan_header(sam_file)
    end = os.path.getsize(sam_file)
    sam_spec = SamRankSpec(sam_file, header_end, end, "bed",
                           str(tmp_path / "x.bed"), "", 4096,
                           RecordFilter())
    pre_spec = PreprocessSpec(sam_file, header_end, end,
                              str(tmp_path / "x.bamx"), "", 4096)
    for spec in (*sam_spec.split(3), *pre_spec.split(3)):
        assert pickle.loads(pickle.dumps(spec)) == spec
    shards = sam_spec.split(3)
    assert len(shards) > 1
    assert shards[0].write_header and not shards[1].write_header
    pre_shards = pre_spec.split(3)
    assert all(s.parse_only for s in pre_shards)
