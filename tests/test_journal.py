"""Tests for the write-ahead job journal: record round-trips, torn
tails and corrupt lines, fsync policies, compaction, and the job-id
high-water mark."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import JournalError, ServiceError
from repro.service.jobs import Job, JobState, job_id_sequence
from repro.service.journal import JobJournal, high_water_mark, replay


def make_job(job_id: str, **kwargs) -> Job:
    defaults = {"kind": "convert",
                "params": {"input": "x.sam", "target": "bed",
                           "out_dir": "out"}}
    defaults.update(kwargs)
    return Job(job_id=job_id, **defaults)


# ---------------------------------------------------------------------
# Job spec round-trip


def test_job_spec_round_trip():
    job = make_job("job-000001", priority=3, timeout=7.5,
                   max_retries=2, backoff=0.25)
    job.attempts = 1
    job.transition(JobState.RUNNING)
    clone = Job.from_spec(json.loads(json.dumps(job.to_spec())))
    assert clone.to_spec() == job.to_spec()
    assert clone.state is JobState.RUNNING
    assert not clone.done.is_set()


def test_job_spec_terminal_sets_done():
    job = make_job("job-000002")
    job.attempts = 1
    job.transition(JobState.RUNNING)
    job.result = {"records": 4}
    job.transition(JobState.DONE)
    clone = Job.from_spec(job.to_spec())
    assert clone.done.is_set()
    assert clone.wait(0.01)
    assert clone.result == {"records": 4}


def test_job_spec_rejects_garbage():
    with pytest.raises(ServiceError, match="unknown state"):
        Job.from_spec({"job_id": "j", "kind": "k", "state": "bogus"})
    with pytest.raises(ServiceError, match="missing field"):
        Job.from_spec({"kind": "k"})


def test_job_id_sequence():
    assert job_id_sequence("job-000042") == 42
    assert job_id_sequence("job-ab12-000007") == 7
    assert job_id_sequence("weird") == 0


# ---------------------------------------------------------------------
# append + replay


def test_journal_round_trip(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="always")
    a = make_job("job-000001")
    b = make_job("job-000002", max_retries=1)
    journal.append_submit(a)
    journal.append_submit(b)
    a.attempts = 1
    a.transition(JobState.RUNNING)
    journal.append_transition(a)
    a.result = {"ok": True}
    a.transition(JobState.DONE)
    journal.append_transition(a)
    b.attempts = 1
    b.transition(JobState.RUNNING)
    journal.append_transition(b)
    journal.close()

    specs, stats = replay(path)
    assert stats["bad_lines"] == 0
    assert list(specs) == ["job-000001", "job-000002"]
    assert specs["job-000001"]["state"] == "done"
    assert specs["job-000001"]["result"] == {"ok": True}
    assert specs["job-000002"]["state"] == "running"
    assert specs["job-000002"]["attempts"] == 1
    assert specs["job-000002"]["max_retries"] == 1


def test_replay_missing_file_is_empty(tmp_path):
    specs, stats = replay(tmp_path / "nope.jsonl")
    assert specs == {} and stats["records"] == 0


def test_replay_tolerates_torn_tail(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="never")
    journal.append_submit(make_job("job-000001"))
    journal.close()
    # Simulate the half-line a crash leaves behind.
    with open(path, "ab") as fh:
        fh.write(b'{"event":"submit","job":{"job_id":"job-0000')
    specs, stats = replay(path)
    assert list(specs) == ["job-000001"]
    assert stats["bad_lines"] == 1


def test_reopen_seals_torn_tail(tmp_path):
    """Regression: appending straight after a torn tail glued the new
    record onto the half-line, so replay dropped *both* as one
    bad_line and the acked record was lost.  Reopening must seal the
    tail so the damage stays confined to the torn line."""
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="never")
    journal.append_submit(make_job("job-000001"))
    journal.close()
    with open(path, "ab") as fh:
        fh.write(b'{"event":"submit","job":{"job_id":"job-0000')
    journal = JobJournal(path, fsync="never")
    journal.append_submit(make_job("job-000002"))
    journal.close()
    specs, stats = replay(path)
    assert list(specs) == ["job-000001", "job-000002"]
    assert stats["bad_lines"] == 1


def test_reopen_seals_torn_tail_of_all_torn_journal(tmp_path):
    """The guard must work even when the journal holds *only* a torn
    fragment (nothing recoverable), where no startup compaction runs
    to paper over the problem."""
    path = tmp_path / "jobs.jsonl"
    path.write_bytes(b'{"event":"submit","job":{"job_id":"job-0000')
    journal = JobJournal(path, fsync="never")
    journal.append_submit(make_job("job-000001"))
    journal.close()
    specs, stats = replay(path)
    assert list(specs) == ["job-000001"]
    assert stats["bad_lines"] == 1


def test_replay_skips_corrupt_interior_line(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="never")
    journal.append_submit(make_job("job-000001"))
    journal.append_submit(make_job("job-000002"))
    journal.close()
    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(lines[0] + b"\x00garbage not json\n" + lines[1])
    specs, stats = replay(path)
    assert list(specs) == ["job-000001", "job-000002"]
    assert stats["bad_lines"] == 1


def test_replay_counts_orphan_transitions(tmp_path):
    path = tmp_path / "jobs.jsonl"
    path.write_text(json.dumps(
        {"event": "transition", "job_id": "job-000009",
         "to": "running", "attempts": 1}) + "\n")
    specs, stats = replay(path)
    assert specs == {}
    assert stats["orphan_transitions"] == 1


def test_journal_closed_append_raises(tmp_path):
    journal = JobJournal(tmp_path / "jobs.jsonl")
    journal.close()
    with pytest.raises(JournalError, match="closed"):
        journal.append_submit(make_job("job-000001"))


def test_journal_bad_fsync_policy(tmp_path):
    with pytest.raises(JournalError, match="fsync policy"):
        JobJournal(tmp_path / "jobs.jsonl", fsync="sometimes")


@pytest.mark.parametrize("policy", ["always", "interval", "never"])
def test_journal_fsync_policies_append(tmp_path, policy):
    journal = JobJournal(tmp_path / "jobs.jsonl", fsync=policy)
    journal.append_submit(make_job("job-000001"))
    journal.close()
    specs, _ = replay(tmp_path / "jobs.jsonl")
    assert list(specs) == ["job-000001"]


# ---------------------------------------------------------------------
# compaction


def test_compaction_preserves_state_and_shrinks(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="never")
    jobs = []
    for i in range(1, 6):
        job = make_job(f"job-{i:06d}")
        journal.append_submit(job)
        job.attempts = 1
        job.transition(JobState.RUNNING)
        journal.append_transition(job)
        job.result = {"i": i}
        job.transition(JobState.DONE)
        journal.append_transition(job)
        jobs.append(job)
    before_specs, _ = replay(path)
    before_size = os.path.getsize(path)
    journal.compact(jobs)
    after_specs, stats = replay(path)
    assert os.path.getsize(path) < before_size
    assert stats["bad_lines"] == 0
    assert after_specs == before_specs
    # The journal stays appendable after compaction.
    journal.append_submit(make_job("job-000099"))
    journal.close()
    specs, _ = replay(path)
    assert "job-000099" in specs


def test_auto_compaction_threshold(tmp_path):
    path = tmp_path / "jobs.jsonl"
    journal = JobJournal(path, fsync="never", compact_threshold=5)
    job = make_job("job-000001")
    journal.append_submit(job)
    assert not journal.maybe_compact([job])
    for _ in range(5):
        journal.append_transition(job)
    assert journal.maybe_compact([job])
    # One submit line per job after compaction.
    assert len(path.read_bytes().splitlines()) == 1
    journal.close()


def test_bad_compact_threshold(tmp_path):
    with pytest.raises(JournalError, match="compact_threshold"):
        JobJournal(tmp_path / "j.jsonl", compact_threshold=0)


# ---------------------------------------------------------------------
# high-water mark


def test_high_water_mark():
    assert high_water_mark({}) == 0
    specs = {"job-000007": {}, "job-ab12-000003": {},
             "job-000041": {}}
    assert high_water_mark(specs) == 41
