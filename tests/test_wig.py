"""Unit tests for the WIG codec."""

import io

import pytest

from repro.errors import FormatError
from repro.formats.bedgraph import BedGraphInterval
from repro.formats.wig import iter_wig, read_wig, write_fixed_step


def test_fixed_step_roundtrip(tmp_path):
    path = tmp_path / "t.wig"
    assert write_fixed_step(path, "chr1", [1.0, 2.5, 3.0], start=10) == 3
    intervals = read_wig(path)
    assert intervals == [
        BedGraphInterval("chr1", 10, 11, 1.0),
        BedGraphInterval("chr1", 11, 12, 2.5),
        BedGraphInterval("chr1", 12, 13, 3.0),
    ]


def test_fixed_step_with_step_and_span():
    text = "fixedStep chrom=c start=1 step=10 span=5\n1\n2\n"
    intervals = list(iter_wig(io.StringIO(text)))
    assert intervals == [BedGraphInterval("c", 0, 5, 1.0),
                         BedGraphInterval("c", 10, 15, 2.0)]


def test_variable_step():
    text = "variableStep chrom=c span=2\n100 7\n300 9\n"
    intervals = list(iter_wig(io.StringIO(text)))
    assert intervals == [BedGraphInterval("c", 99, 101, 7.0),
                         BedGraphInterval("c", 299, 301, 9.0)]


def test_multiple_sections():
    text = ("fixedStep chrom=a start=1\n5\n"
            "variableStep chrom=b\n10 3\n")
    intervals = list(iter_wig(io.StringIO(text)))
    assert [iv.chrom for iv in intervals] == ["a", "b"]


def test_track_and_comment_lines_skipped():
    text = "track type=wiggle_0\n# note\nfixedStep chrom=c start=1\n4\n"
    assert len(list(iter_wig(io.StringIO(text)))) == 1


def test_data_before_declaration_rejected():
    with pytest.raises(FormatError):
        list(iter_wig(io.StringIO("5\n")))


def test_declaration_missing_chrom_rejected():
    with pytest.raises(FormatError):
        list(iter_wig(io.StringIO("fixedStep start=1\n5\n")))


def test_fixed_step_missing_start_rejected():
    with pytest.raises(FormatError):
        list(iter_wig(io.StringIO("fixedStep chrom=c\n5\n")))


def test_variable_step_bad_line_rejected():
    with pytest.raises(FormatError):
        list(iter_wig(io.StringIO("variableStep chrom=c\n100\n")))
