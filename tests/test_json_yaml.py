"""Unit and property tests for the JSON and YAML alignment codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats import json_fmt, yaml_fmt
from repro.formats.record import UNMAPPED_POS
from repro.formats.sam import parse_alignment

LINE = ("frag7\t99\tchr1\t1000\t60\t10M\t=\t1200\t290\t"
        "ACGTACGTAC\tIIIIIIIIII\tNM:i:1\tXH:H:BEEF\tXB:B:c,1,-2")


def test_json_roundtrip_with_tags():
    rec = parse_alignment(LINE)
    line = json_fmt.format_record(rec)
    assert json_fmt.dict_to_record(__import__("json").loads(line)) == rec


def test_json_coordinates_are_one_based():
    rec = parse_alignment(LINE)
    data = json_fmt.record_to_dict(rec)
    assert data["pos"] == 1000   # matches the SAM text column
    assert data["pnext"] == 1200


def test_json_unmapped_pos_zero():
    rec = parse_alignment("r\t4\t*\t0\t0\t*\t*\t0\t0\tAC\tII")
    data = json_fmt.record_to_dict(rec)
    assert data["pos"] == 0
    assert json_fmt.dict_to_record(data).pos == UNMAPPED_POS


def test_json_file_roundtrip(tmp_path, records):
    path = tmp_path / "t.jsonl"
    assert json_fmt.write_json(path, records) == len(records)
    assert json_fmt.read_json(path) == records


def test_json_malformed_rejected():
    with pytest.raises(FormatError):
        json_fmt.dict_to_record({"qname": "x"})


def test_yaml_scalar_roundtrips():
    for value in (None, True, False, 0, -17, 3.5, "plain", "with space",
                  "123abc", "", "tricky: colon", '"quoted"'):
        assert yaml_fmt.load(yaml_fmt.dump(value)) == value


def test_yaml_nested_structure_roundtrip():
    doc = {"a": 1, "b": {"c": [1, 2, "x"], "d": None},
           "e": [{"f": 2.5}], "empty_map": {}, "empty_list": []}
    assert yaml_fmt.load(yaml_fmt.dump(doc)) == doc


def test_yaml_multi_document():
    text = yaml_fmt.dump({"a": 1})
    stream = "---\n" + text + "---\n" + yaml_fmt.dump({"b": 2})
    docs = list(yaml_fmt.load_all(stream))
    assert docs == [{"a": 1}, {"b": 2}]


def test_yaml_record_roundtrip():
    rec = parse_alignment(LINE)
    (doc,) = yaml_fmt.load_all(yaml_fmt.format_record(rec))
    assert json_fmt.dict_to_record(doc) == rec


def test_yaml_file_roundtrip(tmp_path, records):
    path = tmp_path / "t.yaml"
    assert yaml_fmt.write_yaml(path, records) == len(records)
    assert yaml_fmt.read_yaml(path) == records


def test_yaml_rejects_trailing_garbage():
    with pytest.raises(FormatError):
        yaml_fmt.load("a: 1\nnot a mapping line without colon\n")


_plain = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=30)


@given(st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
    st.one_of(st.integers(-10**6, 10**6), st.booleans(), st.none(),
              _plain,
              st.lists(st.integers(-100, 100), max_size=5)),
    max_size=6))
def test_yaml_mapping_roundtrip_property(doc):
    assert yaml_fmt.load(yaml_fmt.dump(doc)) == (doc if doc else None) \
        or yaml_fmt.load(yaml_fmt.dump(doc)) == doc


@given(st.integers(0, 5))
def test_json_yaml_agree_on_records(seed):
    from repro.simdata import build_alignments
    _, _, records = build_alignments(3, seed=seed)
    for rec in records:
        via_json = json_fmt.dict_to_record(json_fmt.record_to_dict(rec))
        (doc,) = yaml_fmt.load_all(yaml_fmt.format_record(rec))
        via_yaml = json_fmt.dict_to_record(doc)
        assert via_json == via_yaml == rec
