"""Unit and property tests for the BEDGRAPH codec and run compression."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.formats.bedgraph import BedGraphInterval, compress_runs, \
    format_interval, iter_bedgraph, parse_interval, read_bedgraph, \
    write_bedgraph


def test_format_and_parse():
    iv = BedGraphInterval("chr1", 0, 25, 7)
    line = format_interval(iv)
    assert line == "chr1\t0\t25\t7"
    assert parse_interval(line) == iv


def test_fractional_value_preserved():
    iv = BedGraphInterval("c", 0, 1, 2.25)
    assert parse_interval(format_interval(iv)) == iv


def test_invalid_intervals_rejected():
    with pytest.raises(FormatError):
        BedGraphInterval("c", 5, 5, 1.0)  # empty span
    with pytest.raises(FormatError):
        BedGraphInterval("c", -1, 5, 1.0)


def test_parse_rejects_wrong_columns():
    with pytest.raises(FormatError):
        parse_interval("chr1\t0\t25")
    with pytest.raises(FormatError):
        parse_interval("chr1\t0\t25\tseven")


def test_iter_skips_track_lines():
    text = "track type=bedGraph\nchr1\t0\t5\t1\nchr1\t5\t9\t0\n"
    assert len(list(iter_bedgraph(io.StringIO(text)))) == 2


def test_file_roundtrip(tmp_path):
    intervals = [BedGraphInterval("chr1", 0, 25, 3),
                 BedGraphInterval("chr1", 25, 100, 0)]
    path = tmp_path / "t.bedgraph"
    assert write_bedgraph(path, intervals) == 2
    assert read_bedgraph(path) == intervals


def test_compress_runs_collapses_equal_neighbours():
    values = [1, 1, 1, 0, 0, 2, 1, 1]
    runs = list(compress_runs("c", values))
    assert runs == [
        BedGraphInterval("c", 0, 3, 1),
        BedGraphInterval("c", 3, 5, 0),
        BedGraphInterval("c", 5, 6, 2),
        BedGraphInterval("c", 6, 8, 1),
    ]


def test_compress_runs_with_offset():
    runs = list(compress_runs("c", [5, 5], start=100))
    assert runs == [BedGraphInterval("c", 100, 102, 5)]


def test_compress_runs_empty():
    assert list(compress_runs("c", [])) == []


@given(st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                max_size=200))
def test_compress_runs_reconstructs_exactly(values):
    runs = list(compress_runs("c", values))
    rebuilt = []
    for iv in runs:
        rebuilt.extend([iv.value] * (iv.end - iv.start))
    assert rebuilt == [float(v) for v in values]
    # Runs tile [0, len) and neighbours always differ in value.
    assert runs[0].start == 0 and runs[-1].end == len(values)
    for a, b in zip(runs, runs[1:]):
        assert a.end == b.start
        assert a.value != b.value
