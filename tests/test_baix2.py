"""Tests for the BAIX v2 overlap index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.formats.baix2 import BaixOverlapIndex, default_index_path
from repro.formats.header import SamHeader
from repro.formats.record import AlignmentRecord

HDR = SamHeader.from_references([("chr1", 100_000), ("chr2", 50_000)])


def rec(pos, span, chrom="chr1"):
    return AlignmentRecord("r", 0, chrom, pos, 60, [(span, "M")], "*",
                           -1, 0, "A" * span, "I" * span)


@pytest.fixture(scope="module")
def index(workload):
    _, header, records = workload
    return BaixOverlapIndex.build(enumerate(records), header), header, \
        records


def brute_force(records, header, chrom, start, end):
    return sorted(
        i for i, r in enumerate(records)
        if r.rname == chrom and r.is_mapped and r.pos < end
        and r.end > start)


def test_overlap_matches_brute_force(index):
    idx, header, records = index
    for chrom, start, end in [("chr1", 0, 60_000), ("chr1", 5_000, 5_050),
                              ("chr1", 10_000, 20_000),
                              ("chr2", 0, 40_000), ("chr2", 100, 101)]:
        got = sorted(idx.locate_overlaps(header.ref_id(chrom), start,
                                         end).tolist())
        assert got == brute_force(records, header, chrom, start, end), \
            (chrom, start, end)


def test_overlap_superset_of_start_query(index):
    idx, header, records = index
    ref_id = header.ref_id("chr1")
    lo, hi = idx.locate_starts(ref_id, 10_000, 20_000)
    start_hits = set(idx.indices[lo:hi].tolist())
    overlap_hits = set(idx.locate_overlaps(ref_id, 10_000,
                                           20_000).tolist())
    assert start_hits <= overlap_hits


def test_spanning_record_found():
    """A long record starting before the query region is still found."""
    records = [rec(100, 500), rec(2_000, 50)]
    idx = BaixOverlapIndex.build(enumerate(records), HDR)
    hits = idx.locate_overlaps(0, 300, 350)
    assert hits.tolist() == [0]
    # And a start-within query misses it, by design.
    lo, hi = idx.locate_starts(0, 300, 350)
    assert hi - lo == 0


def test_empty_region_and_empty_reference():
    records = [rec(10, 5)]
    idx = BaixOverlapIndex.build(enumerate(records), HDR)
    assert idx.locate_overlaps(0, 50, 50).tolist() == []
    assert idx.locate_overlaps(1, 0, 50_000).tolist() == []  # chr2 empty


def test_adjacent_intervals_do_not_overlap():
    records = [rec(10, 5)]  # covers [10, 15)
    idx = BaixOverlapIndex.build(enumerate(records), HDR)
    assert idx.locate_overlaps(0, 15, 20).tolist() == []
    assert idx.locate_overlaps(0, 5, 10).tolist() == []
    assert idx.locate_overlaps(0, 14, 15).tolist() == [0]


def test_save_load_roundtrip(index, tmp_path):
    idx, _, _ = index
    path = tmp_path / "t.baix2"
    idx.save(path)
    loaded = BaixOverlapIndex.load(path)
    assert np.array_equal(loaded.starts, idx.starts)
    assert np.array_equal(loaded.ends, idx.ends)
    assert np.array_equal(loaded.indices, idx.indices)
    got = loaded.locate_overlaps(0, 1_000, 2_000)
    assert np.array_equal(got, idx.locate_overlaps(0, 1_000, 2_000))


def test_load_rejects_v1_magic(tmp_path, index):
    from repro.formats.baix import BaixIndex
    idx, header, records = index
    v1 = BaixIndex.build(enumerate(records), header)
    path = tmp_path / "t.baix"
    v1.save(path)
    with pytest.raises(IndexError_):
        BaixOverlapIndex.load(path)


def test_invalid_construction():
    with pytest.raises(IndexError_):
        BaixOverlapIndex(np.array([0]), np.array([10]), np.array([5]),
                         np.array([0]))  # end < start
    with pytest.raises(IndexError_):
        BaixOverlapIndex(np.array([0, 0]), np.array([10, 5]),
                         np.array([20, 9]), np.array([0, 1]))  # unsorted


def test_invalid_region(index):
    idx, _, _ = index
    with pytest.raises(IndexError_):
        idx.locate_overlaps(0, -1, 10)
    with pytest.raises(IndexError_):
        idx.locate_overlaps(0, 10, 5)


def test_default_index_path():
    assert default_index_path("x.bamx") == "x.bamx.baix2"


def test_preprocessing_writes_v2(bam_file, tmp_path):
    from repro.core import BamConverter
    bamx, _, _ = BamConverter().preprocess(bam_file, tmp_path / "w")
    import os
    assert os.path.exists(default_index_path(bamx))


def test_overlap_mode_partial_conversion(bam_file, workload, tmp_path):
    from repro.core import BamConverter
    _, header, records = workload
    converter = BamConverter()
    bamx, _, _ = converter.preprocess(bam_file, tmp_path / "w")
    result = converter.convert_region(bamx, None, "chr1:5001-5100",
                                      "sam", tmp_path / "o", nprocs=2,
                                      mode="overlap")
    expected = brute_force(records, header, "chr1", 5_000, 5_100)
    assert result.records == len(expected)


def test_unknown_mode_rejected(bam_file, tmp_path):
    from repro.core import BamConverter
    from repro.errors import ConversionError
    converter = BamConverter()
    bamx, baix, _ = converter.preprocess(bam_file, tmp_path / "w")
    with pytest.raises(ConversionError):
        converter.convert_region(bamx, baix, "chr1:1-100", "sam",
                                 tmp_path / "o", mode="nearest")
