"""Unit and property tests for SAM optional fields (tags)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SamFormatError
from repro.formats.tags import Tag, decode_tags, encode_tag, encode_tags, \
    format_tags, parse_tag, parse_tags


def test_parse_integer_tag():
    tag = parse_tag("NM:i:3")
    assert tag == Tag("NM", "i", 3)
    assert tag.to_sam() == "NM:i:3"


def test_parse_negative_integer():
    assert parse_tag("XD:i:-17").value == -17


def test_parse_char_string_float():
    assert parse_tag("XT:A:U").value == "U"
    assert parse_tag("RG:Z:sample one").value == "sample one"
    assert parse_tag("XF:f:1.5").value == 1.5


def test_parse_hex_tag():
    tag = parse_tag("XH:H:DEADBEEF")
    assert tag.value == bytes.fromhex("deadbeef")
    assert tag.to_sam() == "XH:H:DEADBEEF"


def test_parse_array_tag():
    tag = parse_tag("XB:B:s,1,-2,300")
    assert tag.value == ("s", (1, -2, 300))
    assert tag.to_sam() == "XB:B:s,1,-2,300"


def test_parse_float_array():
    tag = parse_tag("XB:B:f,1.5,-2.0")
    sub, values = tag.value
    assert sub == "f" and values == (1.5, -2.0)


@pytest.mark.parametrize("bad", [
    "NM", "NM:i", "1M:i:3", "NM:q:3", "NM:i:abc", "XH:H:ABC",
    "XH:H:GG", "XB:B:q,1", "XB:B:c,999", "XB:B:C,-1", "XA:A:ab",
])
def test_parse_rejects_malformed(bad):
    with pytest.raises(SamFormatError):
        parse_tag(bad)


def test_binary_roundtrip_each_type():
    tags = [
        Tag("XA", "A", "u"),
        Tag("NM", "i", 3),
        Tag("XN", "i", -70000),
        Tag("XF", "f", 0.5),
        Tag("RG", "Z", "lane1"),
        Tag("XH", "H", b"\x01\xff"),
        Tag("XB", "B", ("S", (0, 65535))),
        Tag("XC", "B", ("f", (1.5, 2.5))),
    ]
    assert decode_tags(encode_tags(tags)) == tags


def test_integer_width_narrowing_is_transparent():
    # Any i-tag decodes back as type 'i' regardless of stored width.
    for value in (-128, 127, 255, -32768, 65535, 2**31 - 1, -2**31):
        blob = encode_tag(Tag("XX", "i", value))
        (tag,) = decode_tags(blob)
        assert tag == Tag("XX", "i", value)


def test_integer_too_wide_rejected():
    with pytest.raises(SamFormatError):
        encode_tag(Tag("XX", "i", 2**32))


def test_decode_truncated_raises():
    blob = encode_tag(Tag("NM", "i", 300))
    with pytest.raises(SamFormatError):
        decode_tags(blob[:3])


def test_parse_and_format_tag_list():
    fields = ["NM:i:2", "AS:i:88", "RG:Z:x"]
    tags = parse_tags(fields)
    assert format_tags(tags) == "\t".join(fields)
    assert format_tags([]) == ""


_tag_name = st.from_regex(r"[A-Za-z][A-Za-z0-9]", fullmatch=True)
_printable = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=1)
_z_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=40).filter(lambda s: "\t" not in s)

_tags = st.one_of(
    st.builds(Tag, _tag_name, st.just("A"), _printable),
    st.builds(Tag, _tag_name, st.just("i"),
              st.integers(min_value=-2**31, max_value=2**31 - 1)),
    st.builds(Tag, _tag_name, st.just("Z"), _z_text),
    st.builds(Tag, _tag_name, st.just("H"),
              st.binary(min_size=0, max_size=16)),
    st.builds(Tag, _tag_name, st.just("B"),
              st.tuples(st.just("i"),
                        st.tuples(st.integers(-2**31, 2**31 - 1)))),
)


@given(_tags)
def test_sam_text_roundtrip_property(tag):
    assert parse_tag(tag.to_sam()) == tag


@given(st.lists(_tags, max_size=6))
def test_binary_roundtrip_property(tags):
    assert decode_tags(encode_tags(tags)) == tags
