"""Failure injection: corrupt and truncated inputs must fail loudly
with library exceptions, never silently return wrong data or crash with
unrelated errors."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BamFormatError, BamxFormatError, BgzfError, \
    IndexError_, ReproError, SamFormatError
from repro.formats.bam import BamReader, write_bam
from repro.formats.bamx import BamxReader, write_bamx
from repro.formats.bamz import BamzReader, write_bamz
from repro.formats.bgzf import BgzfReader, BgzfWriter, compress_bytes
from repro.formats.sam import parse_alignment


# --- SAM text ----------------------------------------------------------


@given(st.text(max_size=120))
@settings(max_examples=150)
def test_sam_parser_never_crashes_unexpectedly(line):
    """Arbitrary text either parses or raises SamFormatError."""
    try:
        parse_alignment(line)
    except SamFormatError:
        pass


@given(st.binary(max_size=80))
@settings(max_examples=80)
def test_sam_parser_on_binary_garbage(data):
    try:
        parse_alignment(data.decode("latin-1"))
    except SamFormatError:
        pass


# --- BGZF --------------------------------------------------------------


def test_bgzf_bit_flip_detected(tmp_path):
    path = tmp_path / "t.bgzf"
    writer = BgzfWriter(path)
    writer.write(b"payload " * 5_000)
    writer.close()
    blob = bytearray(path.read_bytes())
    # Flip one byte inside the compressed body of the first block.
    blob[30] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(BgzfError):
        BgzfReader(path).read(-1)


def test_bgzf_truncated_header(tmp_path):
    path = tmp_path / "t.bgzf"
    path.write_bytes(compress_bytes(b"data")[:10])
    with pytest.raises(BgzfError):
        BgzfReader(path)


def test_bgzf_seek_past_block_payload(tmp_path):
    path = tmp_path / "t.bgzf"
    writer = BgzfWriter(path)
    writer.write(b"abc")
    writer.close()
    reader = BgzfReader(path)
    with pytest.raises(BgzfError):
        reader.seek_virtual(5_000)  # uoffset beyond the 3-byte payload


# --- BAM ---------------------------------------------------------------


@pytest.fixture()
def small_bam(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bam"
    write_bam(path, header, records[:50])
    return path


def test_bam_truncated_mid_record(small_bam):
    blob = small_bam.read_bytes()
    # Cut the BGZF stream partway: drop the last 60% of bytes and the
    # EOF marker, then re-terminate at a non-block boundary.
    small_bam.write_bytes(blob[: int(len(blob) * 0.4)])
    with pytest.raises((BamFormatError, BgzfError)):
        with BamReader(small_bam) as reader:
            list(reader)


def test_bam_garbage_after_header(tmp_path, workload):
    import struct

    from repro.formats.bgzf import BgzfWriter as W
    _, header, _ = workload
    path = tmp_path / "junk.bam"
    writer = W(path)
    text = header.to_text().encode()
    blob = bytearray(b"BAM\x01")
    blob += struct.pack("<i", len(text)) + text
    blob += struct.pack("<i", len(header.references))
    for ref in header.references:
        name = ref.name.encode() + b"\x00"
        blob += struct.pack("<i", len(name)) + name
        blob += struct.pack("<i", ref.length)
    # One plausible-length record frame filled with garbage.
    blob += struct.pack("<i", 64) + os.urandom(64)
    writer.write(bytes(blob))
    writer.close()
    with pytest.raises((BamFormatError, SamFormatError, ReproError,
                        Exception)):
        with BamReader(path) as reader:
            list(reader)


# --- BAMX / BAMZ ---------------------------------------------------------


def test_bamx_header_count_beyond_file(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bamx"
    write_bamx(path, header, records[:20])
    blob = bytearray(path.read_bytes())
    # Inflate the record count field (u64 at offset 5 + 4 + 16).
    import struct
    struct.pack_into("<Q", blob, 5 + 4 + 16, 10_000)
    path.write_bytes(bytes(blob))
    with pytest.raises(BamxFormatError):
        BamxReader(path)


def test_bamz_truncated_stream(tmp_path, workload):
    _, header, records = workload
    path = tmp_path / "t.bamz"
    write_bamz(path, header, records[:30])
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises((BgzfError, BamxFormatError)):
        with BamzReader(path) as reader:
            list(reader)


def test_bamz_index_record_count_mismatch(tmp_path, workload):
    import struct

    from repro.formats.bamz import index_path_for
    _, header, records = workload
    path = tmp_path / "t.bamz"
    write_bamz(path, header, records[:10])
    index_file = index_path_for(path)
    blob = bytearray(open(index_file, "rb").read())
    struct.pack_into("<Q", blob, 4, 99)  # claim 99 entries
    open(index_file, "wb").write(bytes(blob))
    with pytest.raises(IndexError_):
        BamzReader(path)


# --- BAIX ---------------------------------------------------------------


def test_baix_truncated(tmp_path, workload):
    from repro.formats.baix import BaixIndex
    _, header, records = workload
    idx = BaixIndex.build(enumerate(records), header)
    path = tmp_path / "t.baix"
    idx.save(path)
    blob = path.read_bytes()
    path.write_bytes(blob[:-16])
    with pytest.raises(IndexError_):
        BaixIndex.load(path)


# --- converters on corrupt input -----------------------------------------


def test_sam_converter_propagates_parse_errors(tmp_path):
    path = tmp_path / "broken.sam"
    path.write_text("@HD\tVN:1.4\n@SQ\tSN:chr1\tLN:100\n"
                    "good\t0\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII\n"
                    "broken line without enough columns\n")
    from repro.core import SamConverter
    from repro.runtime.spmd import SpmdFailure
    with pytest.raises((SamFormatError, SpmdFailure)):
        SamConverter().convert(path, "bed", tmp_path / "o", nprocs=2)


def test_empty_sam_converts_to_empty_outputs(tmp_path):
    path = tmp_path / "empty.sam"
    path.write_text("@HD\tVN:1.4\n@SQ\tSN:chr1\tLN:100\n")
    from repro.core import SamConverter
    result = SamConverter().convert(path, "bed", tmp_path / "o",
                                    nprocs=3)
    assert result.records == 0
    for out in result.outputs:
        assert os.path.getsize(out) == 0
