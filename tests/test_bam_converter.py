"""Tests for the BAM format converter (Fig. 3) and partial conversion."""

import os

import pytest

from repro.core.bam_converter import BamConverter, convert_bam_direct, \
    preprocess_bam
from repro.core.region import GenomicRegion
from repro.errors import ConversionError
from repro.formats.baix import BaixIndex
from repro.formats.bamx import BamxReader


def cat(paths):
    return b"".join(open(p, "rb").read() for p in paths)


def cat_no_header(paths):
    out = []
    for p in paths:
        for line in open(p, "rb"):
            if not line.startswith(b"@"):
                out.append(line)
    return b"".join(out)


@pytest.fixture(scope="module")
def preprocessed(bam_file, tmp_path_factory):
    work = tmp_path_factory.mktemp("bamx")
    converter = BamConverter()
    bamx, baix, metrics = converter.preprocess(bam_file, work)
    return bamx, baix, metrics


def test_preprocess_preserves_records(preprocessed, workload):
    bamx, baix, metrics = preprocessed
    _, _, records = workload
    with BamxReader(bamx) as reader:
        assert list(reader) == records
    assert metrics.records == len(records)


def test_preprocess_builds_sorted_index(preprocessed, workload):
    _, baix, _ = preprocessed
    _, header, records = workload
    index = BaixIndex.load(baix)
    placed = sum(1 for r in records if r.rname != "*" and r.pos >= 0)
    assert len(index) == placed


def test_preprocess_metrics_account_for_two_passes(preprocessed,
                                                   bam_file):
    _, _, metrics = preprocessed
    assert metrics.bytes_read == 2 * os.path.getsize(bam_file)
    assert metrics.bytes_written > 0


@pytest.mark.parametrize("target", ["bed", "bedgraph", "fasta", "sam"])
def test_full_conversion_parallel_equals_sequential(tmp_path, preprocessed,
                                                    target):
    bamx, _, _ = preprocessed
    converter = BamConverter()
    seq = converter.convert(bamx, target, tmp_path / "seq", nprocs=1)
    par = converter.convert(bamx, target, tmp_path / "par", nprocs=6)
    if target == "sam":
        assert cat_no_header(seq.outputs) == cat_no_header(par.outputs)
    else:
        assert cat(seq.outputs) == cat(par.outputs)


def test_full_conversion_equal_record_partitioning(tmp_path, preprocessed,
                                                   workload):
    bamx, _, _ = preprocessed
    _, _, records = workload
    result = BamConverter().convert(bamx, "bed", tmp_path / "o", nprocs=4)
    counts = [m.records for m in result.rank_metrics]
    assert sum(counts) == len(records)
    assert max(counts) - min(counts) <= 1  # paper: equal number per rank


def test_partial_conversion_selects_region(tmp_path, preprocessed,
                                           workload):
    bamx, baix, _ = preprocessed
    _, header, records = workload
    region = GenomicRegion("chr1", 10_000, 30_000)
    result = BamConverter().convert_region(bamx, baix, region, "sam",
                                           tmp_path / "o", nprocs=3)
    expected = [r for r in records
                if r.rname == "chr1" and 10_000 <= r.pos < 30_000]
    assert result.records == len(expected)
    from repro.formats.sam import read_sam
    recovered = []
    for path in result.outputs:
        _, part = read_sam(path)
        recovered.extend(part)
    assert sorted(r.qname for r in recovered) == \
        sorted(r.qname for r in expected)


def test_partial_conversion_accepts_region_string(tmp_path, preprocessed):
    bamx, baix, _ = preprocessed
    result = BamConverter().convert_region(bamx, baix, "chr2:1-5000",
                                           "bed", tmp_path / "o",
                                           nprocs=2)
    assert result.records >= 0
    for path in result.outputs:
        for line in open(path):
            assert line.startswith("chr2\t")


def test_partial_conversion_defaults_to_sibling_index(tmp_path,
                                                      preprocessed):
    bamx, baix, _ = preprocessed
    a = BamConverter().convert_region(bamx, None, "chr1:1-2000", "bed",
                                      tmp_path / "a", nprocs=2)
    b = BamConverter().convert_region(bamx, baix, "chr1:1-2000", "bed",
                                      tmp_path / "b", nprocs=2)
    assert cat(a.outputs) == cat(b.outputs)


def test_partial_conversion_proportional_work(tmp_path, preprocessed,
                                              workload):
    """Fig. 8 property: larger subsets convert more records."""
    bamx, baix, _ = preprocessed
    _, header, _ = workload
    converter = BamConverter()
    counts = []
    for frac in (0.2, 0.6, 1.0):
        end = int(60_000 * frac)
        result = converter.convert_region(
            bamx, baix, GenomicRegion("chr1", 0, end), "sam",
            tmp_path / f"o{frac}", nprocs=2)
        counts.append(result.records)
    assert counts[0] <= counts[1] <= counts[2]
    assert counts[2] > counts[0]


def test_direct_conversion_matches_preprocessed(tmp_path, bam_file,
                                                preprocessed):
    bamx, _, _ = preprocessed
    direct = convert_bam_direct(bam_file, "sam", tmp_path / "direct.sam")
    via_bamx = BamConverter().convert(bamx, "sam", tmp_path / "o",
                                      nprocs=1)
    assert cat(direct.outputs) == cat(via_bamx.outputs)


def test_preprocess_bam_function(tmp_path, bam_file, workload):
    _, _, records = workload
    bamx = tmp_path / "x.bamx"
    metrics = preprocess_bam(bam_file, bamx)
    assert metrics.records == len(records)
    assert os.path.exists(str(bamx) + ".baix")


def test_invalid_nprocs(tmp_path, preprocessed):
    bamx, baix, _ = preprocessed
    with pytest.raises(ConversionError):
        BamConverter().convert(bamx, "bed", tmp_path / "o", nprocs=0)
    with pytest.raises(ConversionError):
        BamConverter().convert_region(bamx, baix, "chr1:1-10", "bed",
                                      tmp_path / "o", nprocs=-1)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_executors_match_simulate(tmp_path, preprocessed, executor):
    bamx, _, _ = preprocessed
    converter = BamConverter()
    sim = converter.convert(bamx, "bed", tmp_path / "sim", nprocs=3)
    other = converter.convert(bamx, "bed", tmp_path / executor, nprocs=3,
                              executor=executor)
    assert cat(sim.outputs) == cat(other.outputs)
