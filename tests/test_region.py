"""Unit tests for genomic region parsing."""

import pytest

from repro.core.region import GenomicRegion
from repro.errors import RegionError
from repro.formats.header import SamHeader

HDR = SamHeader.from_references([("chr1", 10_000), ("chr2", 5_000)])


def test_parse_full_form():
    region = GenomicRegion.parse("chr1:1001-2000", HDR)
    assert region == GenomicRegion("chr1", 1000, 2000)
    assert region.length == 1000


def test_parse_with_commas():
    region = GenomicRegion.parse("chr1:1,001-2,000", HDR)
    assert region.start == 1000 and region.end == 2000


def test_parse_bare_chromosome_expands_to_length():
    region = GenomicRegion.parse("chr2", HDR)
    assert region == GenomicRegion("chr2", 0, 5_000)


def test_parse_single_position():
    region = GenomicRegion.parse("chr1:500", HDR)
    assert region == GenomicRegion("chr1", 499, 500)


def test_parse_without_header():
    region = GenomicRegion.parse("anything:10-20")
    assert region.chrom == "anything"
    assert region.start == 9 and region.end == 20


def test_end_clipped_to_reference():
    region = GenomicRegion.parse("chr2:4901-9999", HDR)
    assert region.end == 5_000


def test_unknown_chromosome_rejected():
    with pytest.raises(RegionError):
        GenomicRegion.parse("chrX:1-10", HDR)


def test_start_beyond_reference_rejected():
    with pytest.raises(RegionError):
        GenomicRegion.parse("chr2:6001-7000", HDR)


def test_equal_endpoints_is_single_base_region():
    # samtools convention: chr1:5-5 selects exactly base 5.
    region = GenomicRegion.parse("chr1:5-5", HDR)
    assert region == GenomicRegion("chr1", 4, 5)


@pytest.mark.parametrize("bad", ["chr1:0-10", "chr1:100-50"])
def test_invalid_coordinates_rejected(bad):
    with pytest.raises(RegionError):
        GenomicRegion.parse(bad, HDR)


def test_str_renders_one_based():
    assert str(GenomicRegion("chr1", 999, 2000)) == "chr1:1000-2000"


def test_clip():
    region = GenomicRegion("chr1", 100, 900)
    assert region.clip(500) == GenomicRegion("chr1", 100, 500)


def test_direct_construction_validation():
    with pytest.raises(RegionError):
        GenomicRegion("c", -1, 5)
    with pytest.raises(RegionError):
        GenomicRegion("c", 10, 5)
