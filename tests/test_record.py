"""Unit tests for the canonical AlignmentRecord."""

import pytest

from repro.errors import SamFormatError
from repro.formats.record import UNMAPPED_POS, AlignmentRecord
from repro.formats.sam import parse_alignment
from repro.formats.tags import Tag


def make_record(**overrides):
    base = dict(qname="read1", flag=0, rname="chr1", pos=99, mapq=60,
                cigar=[(4, "M")], rnext="*", pnext=UNMAPPED_POS, tlen=0,
                seq="ACGT", qual="IIII", tags=[])
    base.update(overrides)
    return AlignmentRecord(**base)


def test_end_uses_reference_span():
    rec = make_record(cigar=[(2, "M"), (1, "D"), (2, "M")], seq="ACGT")
    assert rec.end == 99 + 5


def test_end_without_cigar_occupies_one_base():
    rec = make_record(cigar=[], seq="ACGT")
    assert rec.end == 100


def test_end_unmapped_is_sentinel():
    rec = make_record(pos=UNMAPPED_POS, rname="*", cigar=[])
    assert rec.end == UNMAPPED_POS


def test_query_length_prefers_seq():
    rec = make_record()
    assert rec.query_length == 4
    rec2 = make_record(seq="*", qual="*", cigar=[(7, "M")])
    assert rec2.query_length == 7


def test_original_orientation_roundtrip():
    fwd = make_record(seq="AACG", qual="ABCD")
    assert fwd.original_sequence() == "AACG"
    assert fwd.original_qualities() == "ABCD"
    rev = make_record(flag=16, seq="AACG", qual="ABCD")
    assert rev.original_sequence() == "CGTT"
    assert rev.original_qualities() == "DCBA"


def test_original_orientation_star_passthrough():
    rec = make_record(flag=16, seq="*", qual="*", cigar=[])
    assert rec.original_sequence() == "*"
    assert rec.original_qualities() == "*"


def test_get_tag():
    rec = make_record(tags=[Tag("NM", "i", 1), Tag("AS", "i", 2)])
    assert rec.get_tag("AS") == Tag("AS", "i", 2)
    assert rec.get_tag("XX") is None


def test_validate_accepts_good_record():
    make_record().validate()


@pytest.mark.parametrize("overrides", [
    dict(flag=-1),
    dict(flag=0x2000),
    dict(qname=""),
    dict(qname="has space"),
    dict(qname="x" * 255),
    dict(mapq=300),
    dict(pos=-5),
    dict(seq="AC-T"),
    dict(qual="III"),                     # length mismatch
    dict(cigar=[(3, "M")]),               # cigar/seq mismatch
])
def test_validate_rejects_bad_records(overrides):
    with pytest.raises(SamFormatError):
        make_record(**overrides).validate()


def test_flag_properties_delegate():
    rec = make_record(flag=99)
    assert rec.is_paired and rec.is_mapped and not rec.is_reverse
    assert rec.mate_number == 1


def test_parse_alignment_validate_flag_runs_validation():
    line = "r\t0\tchr1\t10\t60\t5M\t*\t0\t0\tACGT\tIIII"  # CIGAR 5M vs 4bp
    parse_alignment(line)  # lenient parse succeeds
    with pytest.raises(SamFormatError):
        parse_alignment(line, validate=True)
