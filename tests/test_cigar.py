"""Unit and property tests for CIGAR parsing/encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SamFormatError
from repro.formats.cigar import CIGAR_OPS, decode_ops, encode_ops, \
    format_cigar, parse_cigar, query_length, reference_span, \
    validate_cigar


def test_parse_simple():
    assert parse_cigar("90M") == [(90, "M")]
    assert parse_cigar("5S85M") == [(5, "S"), (85, "M")]
    assert parse_cigar("10M2I5M3D20M") == [
        (10, "M"), (2, "I"), (5, "M"), (3, "D"), (20, "M")]


def test_star_means_no_cigar():
    assert parse_cigar("*") == []
    assert format_cigar([]) == "*"


@pytest.mark.parametrize("bad", ["", "M", "10", "10Z", "10M5", "M10",
                                 "0M", "1.5M", "10m"])
def test_parse_rejects_malformed(bad):
    with pytest.raises(SamFormatError):
        parse_cigar(bad)


def test_query_and_reference_lengths():
    ops = parse_cigar("5S10M2I3D4N20M1H")
    # query: S + M + I + M = 5+10+2+20
    assert query_length(ops) == 37
    # reference: M + D + N + M = 10+3+4+20
    assert reference_span(ops) == 37
    ops2 = parse_cigar("10M5D10M")
    assert query_length(ops2) == 20
    assert reference_span(ops2) == 25


def test_encode_decode_roundtrip_explicit():
    ops = parse_cigar("5S10M2I3D4N20M6H")
    assert decode_ops(encode_ops(ops)) == ops


def test_encode_op_codes_match_bam_spec():
    # M=0, I=1, D=2, N=3, S=4, H=5, P=6, ==7, X=8
    for code, op in enumerate(CIGAR_OPS):
        assert encode_ops([(7, op)]) == [(7 << 4) | code]


def test_decode_rejects_bad_code():
    with pytest.raises(SamFormatError):
        decode_ops([(5 << 4) | 0xF])


def test_validate_hard_clip_position():
    validate_cigar(parse_cigar("5H10M5H"))
    with pytest.raises(SamFormatError):
        validate_cigar(parse_cigar("10M5H10M"))


def test_validate_soft_clip_position():
    validate_cigar(parse_cigar("5S10M5S"))
    validate_cigar(parse_cigar("5H5S10M"))
    with pytest.raises(SamFormatError):
        validate_cigar(parse_cigar("10M5S10M"))


def test_validate_seq_length_consistency():
    ops = parse_cigar("10M")
    validate_cigar(ops, seq_len=10)
    with pytest.raises(SamFormatError):
        validate_cigar(ops, seq_len=11)


_cigar_ops = st.lists(
    st.tuples(st.integers(min_value=1, max_value=10_000),
              st.sampled_from(list(CIGAR_OPS))),
    min_size=1, max_size=12)


@given(_cigar_ops)
def test_text_roundtrip_property(ops):
    assert parse_cigar(format_cigar(ops)) == ops


@given(_cigar_ops)
def test_binary_roundtrip_property(ops):
    assert decode_ops(encode_ops(ops)) == ops


@given(_cigar_ops)
def test_lengths_are_nonnegative_and_bounded(ops):
    total = sum(n for n, _ in ops)
    assert 0 <= query_length(ops) <= total
    assert 0 <= reference_span(ops) <= total
