"""Figure 7 — full-conversion speedup of the BAM format converter.

Paper: a 117 GB sorted BAM converted to BED, BEDGRAPH and FASTA on 1 to
128 cores after sequential preprocessing; scalability is good because
(1) padded BAMX records give a perfectly regular layout and (2) rank
tasks are independent.

Like Fig. 6, this bench additionally measures the batched pipeline
(raw-slab reads + field-level fastpaths over the fixed BAMX layout)
against the record-at-a-time pipeline on a single rank; smoke mode
(``REPRO_BENCH_SMOKE``) runs only that comparison.
"""

from __future__ import annotations

import functools
import os

from repro.core import BamConverter
from repro.runtime.metrics import SpeedupCurve

from .common import CONVERSION_CORES, bam_dataset, best_of, \
    best_seconds, curve_payload, dataset_dir, maybe_trace, report, \
    report_json, sequential_reference, smoke_mode, speedup_curve

TARGETS = ("bed", "bedgraph", "fasta")


@functools.lru_cache(maxsize=None)
def preprocessed_bamx() -> str:
    """Preprocess the bench BAM once (shared with the Fig. 8 bench)."""
    converter = BamConverter()
    with maybe_trace("fig7_preprocess"):
        bamx, _, _ = converter.preprocess(
            bam_dataset(), os.path.join(dataset_dir(), "pp"))
    return bamx


def _compare_pipelines(out_root: str) -> dict[str, dict[str, float]]:
    """Single-rank record vs batch pipeline, best-of-3 per target."""
    bamx = preprocessed_bamx()
    comparison = {}
    for target in TARGETS:
        seconds = {}
        for pipeline in ("record", "batch"):
            converter = BamConverter(pipeline=pipeline)
            out_dir = os.path.join(out_root, f"pipe_{pipeline}_{target}")
            seconds[pipeline] = best_seconds(
                lambda: converter.convert(bamx, target, out_dir,
                                          nprocs=1).rank_metrics)
        comparison[target] = {
            "record_seconds": round(seconds["record"], 4),
            "batch_seconds": round(seconds["batch"], 4),
            "batched_speedup": round(
                seconds["record"] / seconds["batch"], 2),
        }
    return comparison


def _sweep(out_root: str) -> dict[str, SpeedupCurve]:
    bamx = preprocessed_bamx()
    converter = BamConverter()
    curves = {}
    for target in TARGETS:
        runs = {}
        for nprocs in CONVERSION_CORES:
            runs[nprocs] = best_of(lambda: converter.convert(
                bamx, target,
                os.path.join(out_root, f"{target}_{nprocs}"),
                nprocs).rank_metrics, repeats=3)
        seq = sequential_reference(runs[1])
        curves[target] = speedup_curve(f"BAM(X) -> {target.upper()}",
                                       seq, runs)
    return curves


def test_fig7_bam_full_conversion_speedup(benchmark, tmp_path):
    if smoke_mode():
        comparison = _compare_pipelines(str(tmp_path))
        report_json("fig7_bam_full", {"pipelines": comparison})
        for target, row in comparison.items():
            assert row["batched_speedup"] > 1.0, (target, row)
        return

    curves = benchmark.pedantic(_sweep, args=(str(tmp_path),),
                                rounds=1, iterations=1)
    comparison = _compare_pipelines(str(tmp_path))
    text = "\n\n".join(c.format_table() for c in curves.values())
    text += "\n\nsingle-rank batched speedup: " + ", ".join(
        f"{t}={row['batched_speedup']}x"
        for t, row in sorted(comparison.items()))
    report("fig7_bam_full", text)
    report_json("fig7_bam_full", {
        "pipelines": comparison,
        "curves": curve_payload(curves),
    })

    for target, curve in curves.items():
        speedups = curve.speedups()
        assert speedups[0] == 1.0
        assert speedups[2] > 2.5, (target, speedups)     # 4 cores
        assert speedups[4] > 9.0, (target, speedups)     # 16 cores
        # Monotone (2% tolerance) through the compute-bound range.
        for a, b in zip(speedups[:5], speedups[1:5]):
            assert b > 0.98 * a, (target, speedups)
        # Still gaining at the high end.
        assert speedups[-1] > speedups[4], target
    # Field-level fastpaths must beat record-at-a-time decisively.
    for target, row in comparison.items():
        assert row["batched_speedup"] >= 1.5, (target, row)
