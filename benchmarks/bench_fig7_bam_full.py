"""Figure 7 — full-conversion speedup of the BAM format converter.

Paper: a 117 GB sorted BAM converted to BED, BEDGRAPH and FASTA on 1 to
128 cores after sequential preprocessing; scalability is good because
(1) padded BAMX records give a perfectly regular layout and (2) rank
tasks are independent.
"""

from __future__ import annotations

import functools
import os

from repro.core import BamConverter
from repro.runtime.metrics import SpeedupCurve

from .common import CONVERSION_CORES, bam_dataset, best_of, \
    dataset_dir, maybe_trace, report, sequential_reference, speedup_curve


@functools.lru_cache(maxsize=None)
def preprocessed_bamx() -> str:
    """Preprocess the bench BAM once (shared with the Fig. 8 bench)."""
    converter = BamConverter()
    with maybe_trace("fig7_preprocess"):
        bamx, _, _ = converter.preprocess(
            bam_dataset(), os.path.join(dataset_dir(), "pp"))
    return bamx


def _sweep(out_root: str) -> dict[str, SpeedupCurve]:
    bamx = preprocessed_bamx()
    converter = BamConverter()
    curves = {}
    for target in ("bed", "bedgraph", "fasta"):
        runs = {}
        for nprocs in CONVERSION_CORES:
            runs[nprocs] = best_of(lambda: converter.convert(
                bamx, target,
                os.path.join(out_root, f"{target}_{nprocs}"),
                nprocs).rank_metrics, repeats=3)
        seq = sequential_reference(runs[1])
        curves[target] = speedup_curve(f"BAM(X) -> {target.upper()}",
                                       seq, runs)
    return curves


def test_fig7_bam_full_conversion_speedup(benchmark, tmp_path):
    curves = benchmark.pedantic(_sweep, args=(str(tmp_path),),
                                rounds=1, iterations=1)
    text = "\n\n".join(c.format_table() for c in curves.values())
    report("fig7_bam_full", text)

    for target, curve in curves.items():
        speedups = curve.speedups()
        assert speedups[0] == 1.0
        assert speedups[2] > 2.5, (target, speedups)     # 4 cores
        assert speedups[4] > 9.0, (target, speedups)     # 16 cores
        # Monotone (2% tolerance) through the compute-bound range.
        for a, b in zip(speedups[:5], speedups[1:5]):
            assert b > 0.98 * a, (target, speedups)
        # Still gaining at the high end.
        assert speedups[-1] > speedups[4], target
