"""Columnar kernels — BAMC vs the v1 BAMX batch pipeline.

Measures what the slab-columnar store buys on a single rank:

1. Conversion targets with vectorized emitters (BED, BEDGRAPH, FASTA,
   FASTQ): BAMC columnar driver vs the BAMX batched pipeline.
2. Whole-file scans: ``flagstat`` and the coverage histogram through
   the column kernels vs the record path over the same data.

Smoke mode (``REPRO_BENCH_SMOKE``, the CI perf-smoke job) runs the
same comparisons on the small dataset and gates on the columnar path
never being *slower* (>= 1x); the full run asserts the paper-style
wins (>= 2x on at least two conversion targets, >= 5x on the scans)
and commits ``BENCH_columnar_kernels.json``.
"""

from __future__ import annotations

import functools
import os
import time

from repro.core import BamConverter
from repro.formats.store import open_record_store

from .common import bam_dataset, bench_repeats, best_seconds, \
    dataset_dir, maybe_trace, report, report_json, smoke_mode

#: Targets with a vectorized columnar emitter (kernels.KERNEL_TARGETS).
TARGETS = ("bed", "bedgraph", "fasta", "fastq")


@functools.lru_cache(maxsize=None)
def preprocessed_stores() -> tuple[str, str]:
    """Preprocess the bench BAM once into both store formats."""
    with maybe_trace("columnar_preprocess"):
        bamx, _, _ = BamConverter().preprocess(
            bam_dataset(), os.path.join(dataset_dir(), "pp"))
        bamc, _, _ = BamConverter(store_format="bamc").preprocess(
            bam_dataset(), os.path.join(dataset_dir(), "ppc"))
    return bamx, bamc


def _best_wall(fn) -> float:
    """Best-of-N wall seconds of ``fn()`` (scan paths return no
    rank metrics, so this times the call directly)."""
    best = float("inf")
    for _ in range(bench_repeats()):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _compare_targets(out_root: str) -> dict[str, dict[str, float]]:
    """Single-rank BAMX-batch vs BAMC-columnar, best-of-N per target."""
    bamx, bamc = preprocessed_stores()
    stores = {"bamx": (bamx, BamConverter()),
              "bamc": (bamc, BamConverter(store_format="bamc"))}
    comparison = {}
    for target in TARGETS:
        seconds = {}
        for fmt, (store, converter) in stores.items():
            out_dir = os.path.join(out_root, f"{fmt}_{target}")
            seconds[fmt] = best_seconds(
                lambda: converter.convert(store, target, out_dir,
                                          nprocs=1).rank_metrics)
        comparison[target] = {
            "bamx_seconds": round(seconds["bamx"], 4),
            "bamc_seconds": round(seconds["bamc"], 4),
            "columnar_speedup": round(
                seconds["bamx"] / seconds["bamc"], 2),
        }
    return comparison


def _compare_scans() -> dict[str, dict[str, float]]:
    """flagstat + coverage histogram: kernels vs the record path.

    Both sides go through the same store-level entry points
    (``flagstat_store`` / ``histogram_from_store``); the BAMX reader
    takes their record branch, the BAMC reader the column kernels.
    """
    from repro.stats import histogram_from_store
    from repro.tools import flagstat_store
    bamx, bamc = preprocessed_stores()
    comparison = {}
    for name, scan in (("flagstat", flagstat_store),
                       ("histogram", histogram_from_store)):
        seconds = {}
        for fmt, store in (("record", bamx), ("kernel", bamc)):
            def run(scan=scan, store=store):
                with open_record_store(store) as reader:
                    scan(reader)
            seconds[fmt] = _best_wall(run)
        comparison[name] = {
            "record_seconds": round(seconds["record"], 4),
            "kernel_seconds": round(seconds["kernel"], 4),
            "kernel_speedup": round(
                seconds["record"] / seconds["kernel"], 2),
        }
    return comparison


def test_columnar_kernels(tmp_path):
    targets = _compare_targets(str(tmp_path))
    scans = _compare_scans()
    payload = {"targets": targets, "scans": scans}

    if smoke_mode():
        report_json("columnar_kernels", payload)
        # CI gate: columnar must never lose to the v1 pipeline.
        for target, row in targets.items():
            assert row["columnar_speedup"] >= 1.0, (target, row)
        for scan, row in scans.items():
            assert row["kernel_speedup"] >= 1.0, (scan, row)
        return

    text = "single-rank columnar speedup vs BAMX batch pipeline:\n"
    text += "\n".join(
        f"  {t:10s} {row['bamx_seconds']:8.4f}s -> "
        f"{row['bamc_seconds']:8.4f}s  ({row['columnar_speedup']}x)"
        for t, row in sorted(targets.items()))
    text += "\n\nwhole-file scans, kernel vs record path:\n"
    text += "\n".join(
        f"  {s:10s} {row['record_seconds']:8.4f}s -> "
        f"{row['kernel_seconds']:8.4f}s  ({row['kernel_speedup']}x)"
        for s, row in sorted(scans.items()))
    report("columnar_kernels", text)
    report_json("columnar_kernels", payload)

    # The tentpole's acceptance bar: decisive wins where a kernel
    # exists, >= 2x on at least two conversion targets, >= 5x scans.
    decisive = [t for t, row in targets.items()
                if row["columnar_speedup"] >= 2.0]
    assert len(decisive) >= 2, targets
    for target, row in targets.items():
        assert row["columnar_speedup"] >= 1.0, (target, row)
    for scan, row in scans.items():
        assert row["kernel_speedup"] >= 5.0, (scan, row)
