"""Table I — sequential comparison against Picard.

Paper rows (seconds, 37.5 GB SAM / 7.7 GB BAM, chr1 region):

    SAM -> FASTQ:  ours w/o preprocessing 3214, ours w/ preprocessing
                   2804, Picard 3121
    BAM -> SAM:    ours w/o preprocessing 2043, ours w/ preprocessing
                   1548, Picard 1425

Expected shape: all three sequential implementations are within a small
factor of each other; preprocessing accelerates the conversion phase
(its own cost amortizes over repeated conversions); the direct BAM
path pays for the record-object adaptation layer.
"""

from __future__ import annotations

import os

from repro.baselines import bam_to_sam, sam_to_fastq
from repro.core import BamConverter, PreprocSamConverter, SamConverter, \
    convert_bam_direct

from .common import bam_dataset, format_rows, report, sam_dataset


def _best(fn, repeats: int = 3) -> float:
    """Best-of-N wall seconds (standard noise control on a shared
    host; each repetition redoes the full conversion)."""
    return min(fn() for _ in range(repeats))


def _run_table1(out_dir: str) -> dict[str, float]:
    sam_path = sam_dataset()
    bam_path = bam_dataset()
    times: dict[str, float] = {}

    # --- SAM -> FASTQ -------------------------------------------------
    times["sam2fastq/ours_no_preproc"] = _best(
        lambda: SamConverter().convert(
            sam_path, "fastq", os.path.join(out_dir, "s2f"),
            nprocs=1).wall_seconds)

    pre = PreprocSamConverter()
    bamx_paths, pre_metrics = pre.preprocess(
        sam_path, os.path.join(out_dir, "s2f_work"), nprocs=1)
    times["sam2fastq/ours_with_preproc"] = _best(
        lambda: pre.convert(bamx_paths, "fastq",
                            os.path.join(out_dir, "s2f_pre"),
                            nprocs=1).wall_seconds)
    times["sam2fastq/preproc_cost"] = sum(
        m.total_seconds for m in pre_metrics)

    times["sam2fastq/picard_like"] = _best(
        lambda: sam_to_fastq(sam_path,
                             os.path.join(out_dir,
                                          "picard.fastq")).wall_seconds)

    # --- BAM -> SAM -----------------------------------------------------
    times["bam2sam/ours_no_preproc"] = _best(
        lambda: convert_bam_direct(
            bam_path, "sam",
            os.path.join(out_dir, "direct.sam")).wall_seconds)

    converter = BamConverter()
    bamx, baix, metrics = converter.preprocess(
        bam_path, os.path.join(out_dir, "b2s_work"))
    times["bam2sam/ours_with_preproc"] = _best(
        lambda: converter.convert(bamx, "sam",
                                  os.path.join(out_dir, "b2s_pre"),
                                  nprocs=1).wall_seconds)
    times["bam2sam/preproc_cost"] = metrics.total_seconds

    times["bam2sam/picard_like"] = _best(
        lambda: bam_to_sam(bam_path,
                           os.path.join(out_dir,
                                        "picard.sam")).wall_seconds)
    return times


def test_table1_sequential_comparison(benchmark, tmp_path):
    times = benchmark.pedantic(_run_table1, args=(str(tmp_path),),
                               rounds=1, iterations=1)
    rows = [
        ["SAM -> FASTQ",
         times["sam2fastq/ours_no_preproc"],
         times["sam2fastq/ours_with_preproc"],
         times["sam2fastq/picard_like"]],
        ["BAM -> SAM",
         times["bam2sam/ours_no_preproc"],
         times["bam2sam/ours_with_preproc"],
         times["bam2sam/picard_like"]],
    ]
    table = format_rows(
        ["conversion", "ours w/o preproc (s)", "ours w/ preproc (s)",
         "picard-like (s)"], rows)
    notes = (f"one-time preprocessing cost: SAM "
             f"{times['sam2fastq/preproc_cost']:.3f}s, BAM "
             f"{times['bam2sam/preproc_cost']:.3f}s\n"
             "paper: SAM->FASTQ 3214 / 2804 / 3121; "
             "BAM->SAM 2043 / 1548 / 1425")
    report("table1_picard", table + "\n" + notes)

    # Shape assertions from the paper's discussion.  BAM->SAM shows the
    # preprocessing win with a robust margin; for SAM->FASTQ the margin
    # is a few percent in Python (FASTQ emission, not parsing,
    # dominates), so it is asserted as no-regression plus the combined
    # total.
    assert times["bam2sam/ours_with_preproc"] < \
        times["bam2sam/ours_no_preproc"]
    assert times["sam2fastq/ours_with_preproc"] < \
        1.10 * times["sam2fastq/ours_no_preproc"]
    with_pre_total = times["sam2fastq/ours_with_preproc"] \
        + times["bam2sam/ours_with_preproc"]
    no_pre_total = times["sam2fastq/ours_no_preproc"] \
        + times["bam2sam/ours_no_preproc"]
    assert with_pre_total < no_pre_total
    # All sequential implementations are within a small factor.
    assert times["sam2fastq/ours_no_preproc"] < \
        4 * times["sam2fastq/picard_like"]
    assert times["bam2sam/ours_no_preproc"] < \
        4 * times["bam2sam/picard_like"]
