"""Ablation — BAMX padding: space overhead vs parse-time savings.

DESIGN.md calls out the BAMX trade-off the paper discusses in §V-E:
fixed-length records waste disk space on padding but remove textual
parsing from the conversion phase.  This bench quantifies both sides:
bytes on disk (SAM text vs BAM vs BAMX) and per-record decode cost
(SAM text parse vs BAMX fixed-record decode).
"""

from __future__ import annotations

import os
import time

from repro.formats.bamx import BamxReader, write_bamx
from repro.formats.bamz import BamzReader, write_bamz
from repro.formats.sam import parse_alignment, read_sam

from .common import bam_dataset, best_of, format_rows, report, \
    sam_dataset
from repro.runtime.metrics import RankMetrics


def _measure(out_root: str):
    sam_path = sam_dataset()
    bam_path = bam_dataset()
    header, records = read_sam(sam_path)
    bamx_path = os.path.join(out_root, "a.bamx")
    write_bamx(bamx_path, header, records)
    bamz_path = os.path.join(out_root, "a.bamz")
    write_bamz(bamz_path, header, records)

    sizes = {
        "sam": os.path.getsize(sam_path),
        "bam": os.path.getsize(bam_path),
        "bamx": os.path.getsize(bamx_path),
        "bamz": os.path.getsize(bamz_path),
    }

    lines = [line.rstrip("\n") for line in open(sam_path)
             if not line.startswith("@")]

    def parse_text() -> list[RankMetrics]:
        m = RankMetrics()
        t0 = time.perf_counter()
        for line in lines:
            parse_alignment(line)
        m.compute_seconds = time.perf_counter() - t0
        return [m]

    # Decode comparisons run from memory on both sides so they measure
    # pure record decoding, not page-cache behaviour.
    with BamxReader(bamx_path) as reader:
        layout = reader.layout
        rheader = reader.header
    with open(bamx_path, "rb") as fh:
        fh.seek(reader._data_offset)
        bamx_bytes = fh.read()

    def decode_bamx() -> list[RankMetrics]:
        m = RankMetrics()
        rsize = layout.record_size
        t0 = time.perf_counter()
        for off in range(0, len(records) * rsize, rsize):
            layout.decode(bamx_bytes, rheader, off)
        m.compute_seconds = time.perf_counter() - t0
        return [m]

    def decode_bamz() -> list[RankMetrics]:
        m = RankMetrics()
        with BamzReader(bamz_path) as reader:
            t0 = time.perf_counter()
            for _ in reader.read_range(0, len(reader)):
                pass
            m.compute_seconds = time.perf_counter() - t0
        return [m]

    t_text = best_of(parse_text, repeats=5)[0].compute_seconds
    t_bamx = best_of(decode_bamx, repeats=5)[0].compute_seconds
    t_bamz = best_of(decode_bamz, repeats=3)[0].compute_seconds
    return sizes, t_text, t_bamx, t_bamz, len(records)


def test_ablation_bamx_padding_tradeoff(benchmark, tmp_path):
    sizes, t_text, t_bamx, t_bamz, n = benchmark.pedantic(
        _measure, args=(str(tmp_path),), rounds=1, iterations=1)
    rows = [
        ["SAM text", sizes["sam"], t_text,
         1e6 * t_text / n],
        ["BAM (BGZF)", sizes["bam"], float("nan"), float("nan")],
        ["BAMX (padded)", sizes["bamx"], t_bamx, 1e6 * t_bamx / n],
        ["BAMZ (padded+BGZF)", sizes["bamz"], t_bamz,
         1e6 * t_bamz / n],
    ]
    text = format_rows(
        ["representation", "bytes", "full decode (s)", "us/record"],
        rows)
    text += (f"\npadding overhead vs SAM: "
             f"{sizes['bamx'] / sizes['sam']:.2f}x; decode speedup vs "
             f"text parse: {t_text / t_bamx:.2f}x; BAMZ compression: "
             f"{sizes['bamz'] / sizes['bamx']:.2f}x of BAMX")
    report("ablation_bamx", text)

    # The trade-off the paper describes: BAMX spends bytes (padding,
    # no compression) to buy cheaper record access...
    assert sizes["bamx"] > sizes["bam"]   # uncompressed, padded
    assert t_bamx < t_text                # but faster to decode
    # ...and the future-work compression claws the bytes back for a
    # modest decode surcharge.
    assert sizes["bamz"] < 0.6 * sizes["bamx"]
    assert t_bamz < 2.0 * t_bamx
