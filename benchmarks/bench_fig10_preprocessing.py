"""Figure 10 — speedup of the parallel SAM preprocessing step.

Paper (15.7 GB SAM, sequential preprocessing 2187 s): preprocessing
parallelized with Algorithm 1 scales well across nodes, though within a
single node it is bridled by the I/O bottleneck (preprocessing is the
most I/O-intensive phase: it reads all the text and writes all the
binary records).
"""

from __future__ import annotations

import os

from repro.core import PreprocSamConverter

from .common import CONVERSION_CORES, report, sam_dataset, \
    sequential_reference, speedup_curve


def _sweep(out_root: str):
    sam_path = sam_dataset()
    converter = PreprocSamConverter()
    runs = {}
    for nprocs in CONVERSION_CORES:
        _, metrics = converter.preprocess(
            sam_path, os.path.join(out_root, f"pp_{nprocs}"), nprocs)
        runs[nprocs] = metrics
    seq = sequential_reference(runs[1])
    return speedup_curve("SAM preprocessing", seq, runs)


def test_fig10_preprocessing_speedup(benchmark, tmp_path):
    curve = benchmark.pedantic(_sweep, args=(str(tmp_path),),
                               rounds=1, iterations=1)
    report("fig10_preprocessing", curve.format_table())

    speedups = curve.speedups()
    assert speedups[0] == 1.0
    # Scales through the multi-node range.
    assert speedups[3] > 5.0          # 8 cores
    assert speedups[4] > 8.0          # 16 cores
    assert speedups[-1] > speedups[3]  # still gaining at 128
    # Monotone non-degrading in the compute-bound range.
    for a, b in zip(speedups[:4], speedups[1:4]):
        assert b > a
