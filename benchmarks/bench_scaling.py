"""Dataset-size scaling check.

DESIGN.md's substitution table rests on one claim: conversion cost is
per-record, so results measured on scaled-down synthetic datasets
transfer to the paper's 125M-record inputs.  This bench verifies the
claim directly: sequential conversion time per record must stay
roughly constant while the dataset grows 8x.
"""

from __future__ import annotations

import os
import time

from repro.core import SamConverter
from repro.simdata import build_sam_dataset

from .common import dataset_dir, format_rows, report

SIZES = (2_000, 4_000, 8_000, 16_000)


def _dataset(n_templates: int) -> str:
    path = os.path.join(dataset_dir(), f"scale{n_templates}.sam")
    if not os.path.exists(path):
        build_sam_dataset(path, n_templates,
                          chromosomes=[("chr1", 40 * n_templates)],
                          seed=n_templates)
    return path


def _measure(out_root: str):
    converter = SamConverter()
    rows = []
    for n_templates in SIZES:
        sam_path = _dataset(n_templates)
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            result = converter.convert(
                sam_path, "bed",
                os.path.join(out_root, f"o{n_templates}"), nprocs=1)
            best = min(best, time.perf_counter() - t0)
        records = result.records
        rows.append([records, best, 1e6 * best / records])
    return rows


def test_scaling_is_linear_in_records(benchmark, tmp_path):
    rows = benchmark.pedantic(_measure, args=(str(tmp_path),),
                              rounds=1, iterations=1)
    text = format_rows(["records", "convert (s)", "us/record"], rows)
    report("scaling", text)

    per_record = [row[2] for row in rows]
    # Cost per record stays flat across an 8x size range: every point
    # within 40% of the median (Python timing noise allowance).
    mid = sorted(per_record)[len(per_record) // 2]
    for value in per_record:
        assert 0.6 * mid < value < 1.4 * mid, per_record
    # Total time grows with size (sanity).
    totals = [row[1] for row in rows]
    assert totals[-1] > 3.0 * totals[0]
