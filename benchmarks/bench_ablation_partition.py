"""Ablation — cost and balance of Algorithm 1 partitioning.

The SAM converter's scalability story rests on Algorithm 1 being (a)
nearly free — each rank probes a few bytes around its tentative
boundary — and (b) well balanced — partitions stay within a record of
even.  This bench measures both across core counts.
"""

from __future__ import annotations

import os
import time

from repro.runtime.partition import partition_text_file

from .common import format_rows, report, sam_dataset

CORES = (2, 8, 32, 128, 512)


def _measure():
    sam_path = sam_dataset()
    size = os.path.getsize(sam_path)
    rows = []
    for nparts in CORES:
        t0 = time.perf_counter()
        parts = partition_text_file(sam_path, nparts)
        elapsed = time.perf_counter() - t0
        lengths = [p.length for p in parts]
        imbalance = (max(lengths) - min(lengths)) / (size / nparts)
        rows.append([nparts, elapsed * 1e3, max(lengths), min(lengths),
                     f"{imbalance:.4%}"])
    return size, rows


def test_ablation_partition_overhead(benchmark):
    size, rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(
        ["parts", "partition time (ms)", "max bytes", "min bytes",
         "imbalance"], rows)
    text += f"\nfile size: {size} bytes"
    report("ablation_partition", text)

    for nparts, ms, max_b, min_b, _ in rows:
        # Partitioning is trivially cheap next to any conversion.
        assert ms < 200.0, (nparts, ms)
        # Balance: no partition deviates from even by more than one
        # record (~a few hundred bytes).
        assert max_b - min_b < 2_000, (nparts, max_b, min_b)
