"""Ablation — threaded BGZF compression (the samtools ``-@`` analogue).

zlib releases the GIL, so BGZF block compression parallelizes with
plain threads.  On this 1-core host wall-clock gains are not expected;
the bench verifies byte-identical output across thread counts and
reports the timing so multi-core hosts can see the scaling.
"""

from __future__ import annotations

import io
import time

from repro.formats.bgzf import BgzfWriter
from repro.formats.bgzf_threads import ThreadedBgzfWriter

from .common import format_rows, report, sam_dataset

THREADS = (1, 2, 4)


def _measure():
    payload = open(sam_dataset(), "rb").read()[: 6 << 20]
    t0 = time.perf_counter()
    buf = io.BytesIO()
    writer = BgzfWriter(buf)
    writer.write(payload)
    writer.close()
    reference = buf.getvalue()
    t_seq = time.perf_counter() - t0
    rows = [["sequential", t_seq, len(reference)]]
    for threads in THREADS:
        t0 = time.perf_counter()
        buf = io.BytesIO()
        writer = ThreadedBgzfWriter(buf, threads=threads)
        writer.write(payload)
        writer.close()
        elapsed = time.perf_counter() - t0
        assert buf.getvalue() == reference  # byte-identical output
        rows.append([f"{threads} thread(s)", elapsed, len(reference)])
    return rows, len(payload)


def test_ablation_threaded_bgzf(benchmark):
    rows, raw = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(["writer", "time (s)", "bgzf bytes"], rows)
    text += (f"\n{raw} raw bytes; outputs byte-identical across all "
             "writers (asserted).  This host has 1 core, so no "
             "wall-clock gain is expected here; the pipeline overhead "
             "bound is what's being measured.")
    report("ablation_bgzf_threads", text)

    t_seq = rows[0][1]
    for label, elapsed, _ in rows[1:]:
        # Thread pipeline overhead stays bounded even without spare
        # cores to exploit.
        assert elapsed < 2.5 * t_seq, (label, elapsed, t_seq)
