"""Dynamic shards vs static ranks on a skewed workload, and warm-pool
reuse over a burst of small conversions.

The paper's Algorithm 1 assigns each rank an equal *byte* range — a
static schedule that is only balanced when cost per byte is uniform.
Real data is not uniform: a region dense with short alignments costs
far more per byte (per-record parse/emit overhead) than a region of
long reads.  This bench builds exactly that skew — chr1 packed with
short records, chr2 with few long ones — and compares:

* **static**: ``--shards 1``, one task per rank, makespan = the most
  expensive rank;
* **dynamic**: ``--shards N``, each rank over-decomposed into N byte
  shards pulled longest-first by the shared worker pool (LPT).

Methodology (this host has one core): per-rank / per-shard durations
are *measured* with the traced ``simulate`` executor, then
:func:`repro.runtime.executor.simulate_schedule` *models* the makespan
over the paper's per-node worker count — the same measure-then-model
approach as the figure benches.  Real thread/process wall clocks are
reported alongside (uninformative for speedup on 1 core, but they
assert the sharded paths run end to end).

The second half measures the other launch bottleneck: a burst of small
conversions pays pool startup once with the shared executor (warm) vs
once per conversion (cold, ``reset_shared_executor`` between jobs).

Gates: dynamic over static >= 1.3x modeled (>= 1.0 in smoke mode),
warm over cold >= 2.0x (>= 1.2 in smoke mode), and dynamic outputs
byte-identical to static ones.
"""

from __future__ import annotations

import os
import time

from repro.core import SamConverter
from repro.runtime.executor import get_shared_executor, \
    reset_shared_executor, simulate_schedule
from repro.runtime.tracing import Tracer, install

from .common import dataset_dir, report, report_json, smoke_mode

#: Modeled per-node worker count (the paper's 8-core nodes would give
#: 8; 4 keeps the static skew visible at 4 ranks).
WORKERS = 4

#: Over-decomposition factor for the dynamic schedule.
SHARDS = 8

#: Burst size for the warm-pool measurement.
BURST = 4


def _skewed_sam() -> str:
    """A coordinate-sorted SAM whose cost per byte is heavily skewed.

    chr1 carries many 36 bp records (high per-byte cost), chr2 a few
    4000 bp records (low per-byte cost), so equal byte ranges get very
    unequal record counts.
    """
    if smoke_mode():
        n_short, n_long = 1500, 40
    else:
        n_short, n_long = 9000, 150
    short_len, long_len = 36, 4000
    path = os.path.join(dataset_dir(),
                        f"skewed{n_short}x{n_long}.sam")
    if os.path.exists(path):
        return path
    lines = [
        "@HD\tVN:1.6\tSO:coordinate",
        "@SQ\tSN:chr1\tLN:1000000",
        "@SQ\tSN:chr2\tLN:1000000",
    ]
    for i in range(n_short):
        pos = 1 + i * 100
        lines.append(
            f"short{i}\t0\tchr1\t{pos}\t60\t{short_len}M\t*\t0\t0\t"
            f"{'A' * short_len}\t{'I' * short_len}")
    for i in range(n_long):
        pos = 1 + i * 5000
        lines.append(
            f"long{i}\t0\tchr2\t{pos}\t60\t{long_len}M\t*\t0\t0\t"
            f"{'C' * long_len}\t{'I' * long_len}")
    with open(path, "w", encoding="ascii") as fh:
        fh.write("\n".join(lines))
        fh.write("\n")
    return path


def _traced_durations(converter: SamConverter, sam_path: str,
                      out_dir: str, span_name: str) -> list[float]:
    """Run one simulate-executor conversion under a tracer; return the
    durations of every *span_name* span (``rank`` or ``shard``)."""
    tracer = Tracer(enabled=True)
    prev = install(tracer)
    try:
        converter.convert(sam_path, "bed", out_dir, nprocs=WORKERS)
    finally:
        install(prev)
    durations = [s.duration for s in tracer.spans()
                 if s.name == span_name]
    assert durations, f"no {span_name!r} spans recorded"
    return durations


def _read_parts(out_dir: str) -> dict[str, bytes]:
    return {name: open(os.path.join(out_dir, name), "rb").read()
            for name in sorted(os.listdir(out_dir))}


def _wall(converter: SamConverter, sam_path: str, out_dir: str,
          executor: str) -> float:
    t0 = time.perf_counter()
    converter.convert(sam_path, "bed", out_dir, nprocs=WORKERS,
                      executor=executor)
    return time.perf_counter() - t0


def _dynamic_vs_static(sam_path: str, out_root: str) -> dict:
    static = SamConverter()
    dynamic = SamConverter(shards_per_rank=SHARDS)

    rank_costs = _traced_durations(
        static, sam_path, os.path.join(out_root, "static"), "rank")
    shard_costs = _traced_durations(
        dynamic, sam_path, os.path.join(out_root, "dynamic"), "shard")
    assert _read_parts(os.path.join(out_root, "dynamic")) == \
        _read_parts(os.path.join(out_root, "static")), \
        "sharded outputs differ from static outputs"

    static_makespan = simulate_schedule(rank_costs, WORKERS)
    dynamic_makespan = simulate_schedule(shard_costs, WORKERS)
    total = sum(rank_costs)
    walls = {}
    for executor in ("thread", "process"):
        walls[executor] = {
            "static_seconds": round(_wall(
                static, sam_path,
                os.path.join(out_root, f"w-s-{executor}"), executor), 4),
            "dynamic_seconds": round(_wall(
                dynamic, sam_path,
                os.path.join(out_root, f"w-d-{executor}"), executor), 4),
        }
    return {
        "workers": WORKERS,
        "shards_per_rank": SHARDS,
        "rank_seconds": [round(c, 4) for c in rank_costs],
        "shard_count": len(shard_costs),
        "static_makespan": round(static_makespan, 4),
        "dynamic_makespan": round(dynamic_makespan, 4),
        "ideal_makespan": round(total / WORKERS, 4),
        "skew": round(max(rank_costs) / (total / len(rank_costs)), 2),
        "dynamic_speedup": round(static_makespan / dynamic_makespan, 3),
        "measured_wall": walls,
    }


def _warm_pool_burst(sam_path: str, out_root: str) -> dict:
    """Total wall of BURST small process-executor conversions, cold
    (fresh pool per job) vs warm (one shared pool)."""
    converter = SamConverter()

    def one(out_dir: str) -> None:
        converter.convert(sam_path, "bed", out_dir, nprocs=2,
                          executor="process")

    cold = 0.0
    for i in range(BURST):
        reset_shared_executor()
        t0 = time.perf_counter()
        one(os.path.join(out_root, f"cold{i}"))
        cold += time.perf_counter() - t0

    reset_shared_executor()
    one(os.path.join(out_root, "warmup"))  # pay startup once, up front
    t0 = time.perf_counter()
    for i in range(BURST):
        one(os.path.join(out_root, f"warm{i}"))
    warm = time.perf_counter() - t0
    stats = get_shared_executor().stats()
    reset_shared_executor()
    assert stats["process_pool_starts"] == 1, stats
    return {
        "burst": BURST,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "warm_speedup": round(cold / warm, 2),
        "process_pool_starts_warm": int(stats["process_pool_starts"]),
    }


def _small_sam(out_root: str) -> str:
    """A tiny dataset so the burst is dominated by launch overhead."""
    from repro.simdata import build_sam_dataset
    path = os.path.join(out_root, "small.sam")
    build_sam_dataset(path, 120, seed=5)
    return path


def test_scaling_dynamic(tmp_path):
    sam_path = _skewed_sam()
    schedule = _dynamic_vs_static(sam_path, str(tmp_path))
    warm = _warm_pool_burst(_small_sam(str(tmp_path)), str(tmp_path))

    payload = {"schedule": schedule, "warm_pool": warm}
    report_json("scaling_dynamic", payload)
    report("scaling_dynamic", "\n".join([
        f"skew (max rank / mean rank): {schedule['skew']}x",
        f"static makespan:  {schedule['static_makespan']}s",
        f"dynamic makespan: {schedule['dynamic_makespan']}s "
        f"({schedule['shard_count']} shards, LPT, "
        f"{WORKERS} workers)",
        f"ideal makespan:   {schedule['ideal_makespan']}s",
        f"dynamic speedup:  {schedule['dynamic_speedup']}x",
        f"warm-pool burst:  cold {warm['cold_seconds']}s vs warm "
        f"{warm['warm_seconds']}s = {warm['warm_speedup']}x",
    ]))

    # Dynamic must never lose to static; in full mode the skewed
    # workload must show a decisive win and the warm pool must
    # amortize startup across the burst.
    if smoke_mode():
        assert schedule["dynamic_speedup"] >= 1.0, schedule
        assert warm["warm_speedup"] >= 1.2, warm
    else:
        assert schedule["dynamic_speedup"] >= 1.3, schedule
        assert warm["warm_speedup"] >= 2.0, warm
    # Dynamic can't beat the perfect schedule.
    assert schedule["dynamic_makespan"] >= \
        schedule["ideal_makespan"] * 0.999, schedule
