"""Figure 11 — speedup of parallel NL-means processing.

Paper: 16 Mbp of histogram data (25 bp bins), sigma = 10, l = 15, search
radius r in {20, 80, 320}; sequential times 10213 s / 41010 s /
163231 s.  Speedup is near-linear up to 128 cores — the only
parallelization overhead is replicating the small (r + l) halo — and
larger r scales slightly better (more compute per replicated byte).

Scaled here: bin count reduced so each sweep runs in seconds; the
per-rank work model is unchanged.
"""

from __future__ import annotations

from repro.simdata import build_histogram
from repro.stats.nlmeans_parallel import nlmeans_parallel

from .common import CONVERSION_CORES, best_of, report, \
    sequential_reference, speedup_curve

#: Scaled histogram size (paper: 16M bp / 25 bp = 640k bins).
N_BINS = 40_000

RADII = (20, 80, 320)
HALF_PATCH = 15
SIGMA = 10.0


def _sweep():
    histogram = build_histogram(N_BINS, seed=99)
    # Warm up the numpy allocator before timing anything.
    nlmeans_parallel(histogram[:4_000], 1, 20, HALF_PATCH, SIGMA)
    curves = {}
    for radius in RADII:
        runs = {}
        for nprocs in CONVERSION_CORES:
            runs[nprocs] = best_of(
                lambda: nlmeans_parallel(histogram, nprocs, radius,
                                         HALF_PATCH, SIGMA)[1])
        seq = sequential_reference(runs[1])
        curves[radius] = speedup_curve(f"NL-means r={radius}", seq, runs)
    return curves


def test_fig11_nlmeans_speedup(benchmark):
    curves = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = "\n\n".join(c.format_table() for c in curves.values())
    text += (f"\n\nscaling note: {N_BINS} bins here vs 640k bins "
             "(16 Mbp / 25 bp) in the paper; work per bin is identical")
    report("fig11_nlmeans", text)

    for radius, curve in curves.items():
        speedups = curve.speedups()
        assert speedups[0] == 1.0
        assert speedups[3] > 5.0, (radius, speedups)    # 8 cores
        assert speedups[4] > 9.0, (radius, speedups)    # 16 cores
        # Monotone (within 2% timing tolerance) while compute-bound.
        for a, b in zip(speedups[:5], speedups[1:5]):
            assert b > 0.98 * a, (radius, speedups)
    # Larger search radii (more compute per halo byte) sustain at least
    # comparable efficiency at scale.
    assert curves[320].speedups()[-1] >= 0.8 * curves[20].speedups()[-1]
    # Sequential cost ordering matches the paper: r=320 >> r=80 >> r=20
    # (theoretical ratios 4.0 each from Theta(N(2r+1)(2l+1)); asserted
    # with generous slack because long kernels absorb proportionally
    # more allocator/cache noise when the whole suite runs together).
    assert curves[320].points[0].seq_seconds > \
        1.5 * curves[80].points[0].seq_seconds
    assert curves[80].points[0].seq_seconds > \
        1.5 * curves[20].points[0].seq_seconds
