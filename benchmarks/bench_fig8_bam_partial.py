"""Figure 8 — partial-conversion performance of the BAM converter.

Paper: subsets covering 20/40/60/80/100% of a 117 GB sorted BAM are
converted to SAM on 8 to 128 cores; conversion times are approximately
proportional to the subset size because locating the region via binary
search over the BAIX is trivial next to the conversion itself.
"""

from __future__ import annotations

import os
import time

from repro.core import BamConverter
from repro.core.region import GenomicRegion
from repro.formats.bamx import BamxReader

from .bench_fig7_bam_full import preprocessed_bamx
from .common import best_of, format_rows, report
from repro.runtime.metrics import modeled_parallel_time

CORES = (8, 16, 32, 64, 128)
FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def _sweep(out_root: str):
    bamx = preprocessed_bamx()
    converter = BamConverter()
    with BamxReader(bamx) as reader:
        ref = reader.header.references[0]
    rows = []
    locate_seconds = []
    for frac in FRACTIONS:
        region = GenomicRegion(ref.name, 0,
                               max(1, int(ref.length * frac)))
        row = [f"{int(frac * 100)}%"]
        for nprocs in CORES:
            def run():
                t0 = time.perf_counter()
                result = converter.convert_region(
                    bamx, None, region, "sam",
                    os.path.join(out_root, f"{int(frac*100)}_{nprocs}"),
                    nprocs)
                locate_seconds.append(time.perf_counter() - t0
                                      - sum(m.total_seconds
                                            for m in result.rank_metrics))
                run.records = result.records
                return result.rank_metrics
            row.append(modeled_parallel_time(best_of(run, repeats=3)))
        row.append(run.records)
        rows.append(row)
    return rows, locate_seconds


def test_fig8_partial_conversion(benchmark, tmp_path):
    rows, locate_seconds = benchmark.pedantic(
        _sweep, args=(str(tmp_path),), rounds=1, iterations=1)
    headers = ["subset"] + [f"T@{c} (s)" for c in CORES] + ["records"]
    text = format_rows(headers, rows)
    text += ("\nregion-location overhead (BAIX binary search + setup): "
             f"max {max(locate_seconds):.4f}s")
    report("fig8_bam_partial", text)

    # Conversion time is approximately proportional to subset size.
    # Assert where the per-rank work is large enough to measure (8-32
    # cores on this scaled dataset): broadly monotone growth and a 2x+
    # spread between the 20% and 100% subsets.  At 64-128 cores each
    # rank holds only tens of records, so those columns are reported
    # but not asserted (per-rank setup overhead dominates).
    for col, cores in enumerate(CORES, start=1):
        if cores > 32:
            continue
        times = [row[col] for row in rows]
        for a, b in zip(times, times[1:]):
            assert b > 0.8 * a, (cores, times)
        assert times[-1] > 2.0 * times[0], (cores, times)
    # Record counts grow with the region size.
    counts = [row[-1] for row in rows]
    assert counts == sorted(counts)
