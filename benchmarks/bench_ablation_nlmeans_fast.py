"""Ablation — exact vs prefix-sum NL-means kernels.

The paper's kernel is Theta(N(2r+1)(2l+1)); the prefix-sum variant
(:mod:`repro.stats.nlmeans_fast`) removes the (2l+1) factor at the cost
of partition-dependent floating-point rounding.  This bench quantifies
the speedup across patch sizes and verifies the numerical agreement.
"""

from __future__ import annotations

import time

import numpy as np

from repro.simdata import build_histogram
from repro.stats.nlmeans import nlmeans
from repro.stats.nlmeans_fast import nlmeans_fast

from .common import format_rows, report

N_BINS = 20_000
RADIUS = 40
HALF_PATCHES = (3, 7, 15, 31)
SIGMA = 10.0


def _measure():
    signal = build_histogram(N_BINS, seed=77)
    nlmeans(signal[:2_000], RADIUS, 3, SIGMA)  # allocator warm-up
    rows = []
    for l in HALF_PATCHES:
        t_exact = float("inf")
        t_fast = float("inf")
        for _ in range(2):  # best-of-2 against GC hiccups
            t0 = time.perf_counter()
            exact = nlmeans(signal, RADIUS, l, SIGMA)
            t_exact = min(t_exact, time.perf_counter() - t0)
            t0 = time.perf_counter()
            fast = nlmeans_fast(signal, RADIUS, l, SIGMA)
            t_fast = min(t_fast, time.perf_counter() - t0)
        max_rel = float(np.max(np.abs(fast - exact)
                               / np.maximum(np.abs(exact), 1e-12)))
        rows.append([2 * l + 1, t_exact, t_fast, t_exact / t_fast,
                     f"{max_rel:.2e}"])
    return rows


def test_ablation_nlmeans_fast(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(
        ["patch size", "exact (s)", "prefix-sum (s)", "speedup",
         "max rel diff"], rows)
    text += (f"\n{N_BINS} bins, r={RADIUS}, sigma={SIGMA}; exact kernel "
             "cost grows with patch size, prefix-sum cost does not")
    report("ablation_nlmeans_fast", text)

    # The prefix-sum kernel wins, increasingly so for larger patches...
    speedups = [row[3] for row in rows]
    assert speedups[-1] > 2.0
    assert speedups[-1] > speedups[0]
    # ...and stays numerically faithful.
    for row in rows:
        assert float(row[4]) < 1e-8
    # Exact kernel cost grows with patch size; prefix-sum is ~flat.
    assert rows[-1][1] > 1.25 * rows[0][1]
    assert rows[-1][2] < 2.5 * rows[0][2]
