"""Ablation — external coordinate sort: spill behaviour and parallel
run generation.

The sort substrate (samtools-sort substitute) trades memory for spill
runs; this bench measures the in-memory vs spilled regimes and the
Algorithm-1-parallelized run-generation phase.
"""

from __future__ import annotations

import os

from repro.core.sort import parallel_sort_sam, sort_sam
from repro.runtime.metrics import modeled_parallel_time
from repro.simdata import build_sam_dataset

from .common import dataset_dir, format_rows, report

N_TEMPLATES = 4_000
CORES = (1, 2, 4, 8, 16)


def _dataset() -> str:
    path = os.path.join(dataset_dir(), "sort_input.sam")
    if not os.path.exists(path):
        build_sam_dataset(path, N_TEMPLATES,
                          chromosomes=[("chr1", 300_000)],
                          seed=4321, sort=False)
    return path


def _measure(out_root: str):
    src = _dataset()
    spill_rows = []
    for chunk in (10 ** 9, 4_000, 1_000, 250):
        result = sort_sam(src, os.path.join(out_root, f"c{chunk}.sam"),
                          chunk_records=chunk)
        spill_rows.append([chunk if chunk < 10 ** 9 else "all",
                           result.runs,
                           result.metrics.total_seconds])
    par_rows = []
    for nprocs in CORES:
        result, rank_metrics = parallel_sort_sam(
            src, os.path.join(out_root, f"p{nprocs}.sam"), nprocs,
            os.path.join(out_root, f"w{nprocs}"))
        t_runs = modeled_parallel_time(rank_metrics)
        par_rows.append([nprocs, t_runs,
                         result.metrics.total_seconds])
    return spill_rows, par_rows


def test_ablation_external_sort(benchmark, tmp_path):
    spill_rows, par_rows = benchmark.pedantic(
        _measure, args=(str(tmp_path),), rounds=1, iterations=1)
    text = format_rows(["chunk records", "spill runs", "total (s)"],
                       spill_rows)
    text += "\n\n" + format_rows(
        ["ranks", "run-gen T_par (s)", "merge (s)"], par_rows)
    report("ablation_sort", text)

    # Smaller chunks -> more spill runs; outputs already verified
    # identical by the test suite.
    runs = [row[1] for row in spill_rows]
    assert runs[0] == 0
    assert runs[1] < runs[2] < runs[3]
    # Parallel run generation scales in the compute-bound range.
    t1 = par_rows[0][1]
    t8 = par_rows[3][1]
    assert t8 < t1 / 3.0
