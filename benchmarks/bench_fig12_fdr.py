"""Figure 12 — speedup of parallel FDR computation.

Paper: 1 histogram + 80 simulation datasets of 16M bins each, up to 256
cores; sequential time 1164 s; measured speedups 8.30 / 16.60 / 33.15 /
66.16 / 132.14 / 263.94 at 8..256 cores (slightly superlinear, which
the authors attribute in part to the fused summation permutation of
Algorithm 2 saving a global synchronization).

Scaled here: fewer bins, same B = 80 simulations.  The fused-vs-unfused
ablation quantifies the summation-permutation optimization the paper
credits for the extra speedup.
"""

from __future__ import annotations

from repro.simdata import build_histogram, build_simulations
from repro.stats.fdr import fdr_parallel

from .common import FDR_CORES, format_rows, report, \
    sequential_reference, speedup_curve

N_BINS = 40_000
N_SIMULATIONS = 80
P_T = 3.0


def _sweep():
    histogram = build_histogram(N_BINS, seed=5)
    sims = build_simulations(histogram, N_SIMULATIONS, seed=6)
    fused_runs = {}
    unfused_runs = {}
    value = None
    for nprocs in FDR_CORES:
        result, metrics = fdr_parallel(histogram, sims, P_T, nprocs,
                                       fused=True)
        fused_runs[nprocs] = metrics
        result2, metrics2 = fdr_parallel(histogram, sims, P_T, nprocs,
                                         fused=False)
        unfused_runs[nprocs] = metrics2
        assert result.fdr == result2.fdr
        value = result.fdr
    seq = sequential_reference(fused_runs[1])
    fused_curve = speedup_curve("FDR (fused, Algorithm 2)", seq,
                                fused_runs)
    unfused_curve = speedup_curve("FDR (unfused two-pass)", seq,
                                  unfused_runs)
    return fused_curve, unfused_curve, value


def test_fig12_fdr_speedup(benchmark):
    fused, unfused, value = benchmark.pedantic(_sweep, rounds=1,
                                               iterations=1)
    rows = []
    for f_point, u_point in zip(fused.points, unfused.points):
        rows.append([f_point.nprocs, f_point.par_seconds,
                     f_point.speedup, u_point.par_seconds,
                     u_point.speedup])
    text = format_rows(
        ["cores", "fused T (s)", "fused speedup", "unfused T (s)",
         "unfused speedup"], rows)
    text += (f"\nFDR(p_t={P_T}) = {value:.6f}; paper speedups: 8.30 / "
             "16.60 / 33.15 / 66.16 / 132.14 / 263.94 at 8..256 cores\n"
             f"scaling note: {N_BINS} bins x {N_SIMULATIONS} simulations "
             "here vs 16M bins x 80 in the paper")
    report("fig12_fdr", text)

    speedups = fused.speedups()
    assert speedups[0] == 1.0
    assert speedups[1] > 5.5      # 8 cores
    assert speedups[2] > 10.0     # 16 cores
    assert speedups[3] > 18.0     # 32 cores
    for a, b in zip(speedups[:5], speedups[1:5]):
        assert b > a
    # The summation permutation (fused reduction) beats the two-pass
    # schedule at every core count.
    for f_point, u_point in zip(fused.points[1:], unfused.points[1:]):
        assert f_point.par_seconds < u_point.par_seconds
