"""Ablation — BGZF compression level sweep.

The paper's future work proposes compressing BAMX; this ablation
measures the underlying trade-off on our BGZF layer: compression level
vs output size vs (de)compression time for BAM-like payloads.
"""

from __future__ import annotations

import time

from repro.formats.bgzf import compress_bytes, decompress_bytes

from .common import format_rows, report, sam_dataset

LEVELS = (1, 4, 6, 9)


def _measure():
    sam_path = sam_dataset()
    payload = open(sam_path, "rb").read()[: 4 << 20]
    rows = []
    for level in LEVELS:
        t0 = time.perf_counter()
        blob = compress_bytes(payload, level)
        t_comp = time.perf_counter() - t0
        t0 = time.perf_counter()
        out = decompress_bytes(blob)
        t_decomp = time.perf_counter() - t0
        assert out == payload
        rows.append([level, len(payload), len(blob),
                     f"{len(blob) / len(payload):.3f}", t_comp,
                     t_decomp])
    return rows


def test_ablation_bgzf_levels(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = format_rows(
        ["level", "raw bytes", "bgzf bytes", "ratio", "compress (s)",
         "decompress (s)"], rows)
    report("ablation_bgzf", text)

    ratios = [float(r[3]) for r in rows]
    comp_times = [r[4] for r in rows]
    # Higher levels never compress worse...
    for a, b in zip(ratios, ratios[1:]):
        assert b <= a * 1.001
    # ...and level 9 costs more CPU than level 1.
    assert comp_times[-1] > comp_times[0]
    # BGZF framing keeps everything readable.
    assert ratios[-1] < 0.6  # SAM text compresses well
