"""Shared infrastructure for the paper-reproduction benchmarks.

Every bench module regenerates one table or figure from §V of the paper.
Datasets are synthetic (see DESIGN.md's substitution table) and scaled so
the whole suite runs in minutes; record counts are printed with every
result so the scaling is explicit.

Speedup methodology (1-core host): each rank's work is executed and
measured one rank at a time (the ``simulate`` executor), then
:func:`repro.runtime.metrics.modeled_parallel_time` converts the per-rank
measurements into a modeled wall time for the paper's cluster (8-core
nodes, shared storage saturating at ``io_streams`` concurrent streams).
Curve *shapes* — who scales, where I/O flattens the curve — come from the
measured work distribution.

Results are printed and appended to ``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import contextlib
import functools
import json
import os
import tempfile
import time

from repro.formats.bam import write_bam
from repro.runtime.metrics import ClusterModel, RankMetrics, \
    SpeedupCurve, merge_all, modeled_parallel_time
from repro.simdata import build_sam_dataset

#: Core counts used by the conversion figures (paper: 1..128).
CONVERSION_CORES = (1, 2, 4, 8, 16, 32, 64, 128)

#: Core counts used by the FDR figure (paper: up to 256).
FDR_CORES = (1, 8, 16, 32, 64, 128, 256)

#: The modeled cluster (see ClusterModel defaults: 8-core nodes).
CLUSTER = ClusterModel()

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Repo root: machine-readable BENCH_<name>.json results land here so
#: the perf trajectory is tracked across PRs.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def smoke_mode() -> bool:
    """True when ``REPRO_BENCH_SMOKE`` is set: shrink datasets, skip the
    multi-core sweeps, keep the batched-vs-record assertions (the CI
    perf-smoke job runs in this mode)."""
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def default_templates(full: int = 16_000, smoke: int = 2_000) -> int:
    """Bench dataset size: ``REPRO_BENCH_TEMPLATES`` env override, else
    *smoke* in smoke mode, else *full*."""
    env = os.environ.get("REPRO_BENCH_TEMPLATES")
    if env:
        return int(env)
    return smoke if smoke_mode() else full


@functools.lru_cache(maxsize=None)
def dataset_dir() -> str:
    """One temp directory shared by all bench datasets this session."""
    return tempfile.mkdtemp(prefix="repro-bench-")


@functools.lru_cache(maxsize=None)
def sam_dataset(n_templates: int | None = None, seed: int = 1234) -> str:
    """Build (once) and return the bench SAM dataset path."""
    if n_templates is None:
        n_templates = default_templates()
    path = os.path.join(dataset_dir(), f"bench{n_templates}.sam")
    build_sam_dataset(path, n_templates,
                      chromosomes=[("chr1", 600_000), ("chr2", 400_000)],
                      seed=seed)
    return path


@functools.lru_cache(maxsize=None)
def bam_dataset(n_templates: int | None = None, seed: int = 1234) -> str:
    """Build (once) and return the bench BAM dataset path."""
    from repro.formats.sam import read_sam
    if n_templates is None:
        n_templates = default_templates()
    sam_path = sam_dataset(n_templates, seed)
    path = os.path.join(dataset_dir(), f"bench{n_templates}.bam")
    header, records = read_sam(sam_path)
    write_bam(path, header, records)
    return path


def sequential_reference(rank_metrics: list[RankMetrics]) -> RankMetrics:
    """Collapse a 1-rank run's metrics into the sequential reference."""
    return merge_all(rank_metrics)


def speedup_curve(label: str, seq: RankMetrics,
                  runs: dict[int, list[RankMetrics]],
                  model: ClusterModel = CLUSTER) -> SpeedupCurve:
    """Build a speedup curve from per-core-count rank metrics."""
    curve = SpeedupCurve(label)
    for nprocs in sorted(runs):
        t_par = modeled_parallel_time(runs[nprocs], model)
        curve.add(nprocs, seq.total_seconds, t_par)
    return curve


def bench_repeats(default: int = 3) -> int:
    """Best-of-N repeat count: ``REPRO_BENCH_REPEATS`` env override,
    else *default* (3)."""
    env = os.environ.get("REPRO_BENCH_REPEATS")
    if env:
        return max(1, int(env))
    return default


def best_of(run, repeats: int | None = None,
            model: ClusterModel = CLUSTER) -> list[RankMetrics]:
    """Run *run()* (returning per-rank metrics) N times and keep the
    attempt with the smallest modeled parallel time.

    Single-shot max-over-ranks timing is sensitive to GC/allocator
    hiccups on a shared host; best-of-N is the standard way to measure
    the intrinsic cost.  N defaults to :func:`bench_repeats`.
    """
    if repeats is None:
        repeats = bench_repeats()
    best = None
    best_time = float("inf")
    for _ in range(repeats):
        metrics = run()
        t = modeled_parallel_time(metrics, model)
        if t < best_time:
            best, best_time = metrics, t
    assert best is not None
    return best


@contextlib.contextmanager
def maybe_trace(name: str):
    """Trace one bench section when ``REPRO_BENCH_TRACE_DIR`` is set.

    With the variable unset this is a no-op, so timing-sensitive bench
    loops pay nothing.  Otherwise the section's spans are written to
    ``$REPRO_BENCH_TRACE_DIR/<name>.json`` (Chrome trace format) and a
    tree summary is printed, giving every figure a profile to explain
    its numbers with.
    """
    trace_dir = os.environ.get("REPRO_BENCH_TRACE_DIR")
    if not trace_dir:
        yield
        return
    from repro.runtime.tracing import Tracer, format_tree, install, \
        write_trace
    tracer = Tracer(enabled=True)
    prev = install(tracer)
    try:
        with tracer.span(f"bench.{name}", "bench"):
            yield
    finally:
        install(prev)
        os.makedirs(trace_dir, exist_ok=True)
        path = os.path.join(trace_dir, f"{name}.json")
        spans = tracer.spans()
        write_trace(spans, path)
        print(f"[trace] {len(spans)} spans -> {path}")
        print(format_tree(spans))


def report(name: str, text: str) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w",
              encoding="utf-8") as fh:
        fh.write(banner)


def report_json(name: str, payload: dict) -> str:
    """Write machine-readable results to ``BENCH_<name>.json`` at the
    repo root (alongside the human-readable results/ text).

    The timestamp comes from ``REPRO_BENCH_TIMESTAMP`` when set (so CI
    runs are attributable to a commit time) and the wall clock
    otherwise.  A host-environment block (python/numpy versions, core
    count) makes cross-machine comparisons of committed numbers
    explicit.  Returns the path written.
    """
    import platform

    import numpy
    env_ts = os.environ.get("REPRO_BENCH_TIMESTAMP")
    doc = {
        "bench": name,
        "timestamp": float(env_ts) if env_ts else time.time(),
        "smoke": smoke_mode(),
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "cpu_count": os.cpu_count(),
        },
        **payload,
    }
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench-json] -> {path}")
    return path


def best_seconds(run, repeats: int | None = None) -> float:
    """Best-of-N measured seconds of ``run()`` returning rank metrics.

    Sums each attempt's per-rank wall time (compute + I/O), so for a
    single-rank run this is the rank task's wall clock.  N defaults to
    :func:`bench_repeats`.
    """
    if repeats is None:
        repeats = bench_repeats()
    best = float("inf")
    for _ in range(repeats):
        metrics = run()
        best = min(best, merge_all(metrics).total_seconds)
    return best


def curve_payload(curves: dict[str, SpeedupCurve]) -> dict:
    """JSON-friendly rendering of per-target speedup curves."""
    return {
        target: {str(p.nprocs): round(p.speedup, 3)
                 for p in curve.points}
        for target, curve in curves.items()
    }


def format_rows(headers: list[str], rows: list[list[object]]) -> str:
    """Simple fixed-width table formatter."""
    cells = [[str(h) for h in headers]] + \
        [[f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
         for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
