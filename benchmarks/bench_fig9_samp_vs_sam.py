"""Figure 9 — preprocessing-optimized vs original SAM format converter.

Paper (15.7 GB SAM -> BED/BEDGRAPH/FASTA): the "_P" bars (conversion
from preprocessed BAMX, preprocessing cost excluded) scale better and
run faster than the original SAM converter — on 128 cores the paper
measures 30.8% / 24.0% / 31.0% improvements for BED / BEDGRAPH / FASTA.

Both converters are pinned to the record-at-a-time pipeline: the figure
isolates the *preprocessing* effect (binary records skip text parsing),
which is what the paper measures.  With the batched pipeline the SAM
converter's column fastpaths skip most of the parsing too — e.g.
SAM -> FASTA becomes a near-passthrough of the SEQ column — so batching
erodes the preprocessing advantage; that interaction is measured by
fig6/fig7's pipeline comparisons, not here.
"""

from __future__ import annotations

import functools
import os

from repro.core import PreprocSamConverter, SamConverter
from repro.runtime.metrics import modeled_parallel_time

from .common import CONVERSION_CORES, best_of, dataset_dir, \
    format_rows, report, report_json, sam_dataset

CORES = CONVERSION_CORES


@functools.lru_cache(maxsize=None)
def preprocessed_parts(nprocs: int = 8) -> tuple[str, ...]:
    """Parallel-preprocess the bench SAM once (M = 8 BAMX files)."""
    paths, _ = PreprocSamConverter().preprocess(
        sam_dataset(), os.path.join(dataset_dir(), "samp"), nprocs)
    return tuple(paths)


def _sweep(out_root: str):
    sam_path = sam_dataset()
    original = SamConverter(pipeline="record")
    optimized = PreprocSamConverter(pipeline="record")
    bamx_paths = list(preprocessed_parts())
    table = {}
    for target in ("bed", "bedgraph", "fasta"):
        times = {}
        for nprocs in CORES:
            orig = best_of(lambda: original.convert(
                sam_path, target,
                os.path.join(out_root, f"o_{target}_{nprocs}"),
                nprocs).rank_metrics, repeats=3)
            opt = best_of(lambda: optimized.convert(
                bamx_paths, target,
                os.path.join(out_root, f"p_{target}_{nprocs}"),
                nprocs).rank_metrics, repeats=3)
            times[nprocs] = (modeled_parallel_time(orig),
                             modeled_parallel_time(opt))
        table[target] = times
    return table


def test_fig9_preproc_optimized_vs_original(benchmark, tmp_path):
    table = benchmark.pedantic(_sweep, args=(str(tmp_path),),
                               rounds=1, iterations=1)
    rows = []
    for target, times in table.items():
        for nprocs, (orig, opt) in sorted(times.items()):
            rows.append([target, nprocs, orig, opt,
                         f"{(orig - opt) / orig:+.1%}"])
    text = format_rows(
        ["target", "cores", "original (s)", "preproc-opt _P (s)",
         "improvement"], rows)
    text += ("\npaper @128 cores: BED +30.8%, BEDGRAPH +24.0%, "
             "FASTA +31.0%")
    report("fig9_samp_vs_sam", text)
    report_json("fig9_samp_vs_sam", {
        "pipeline": "record",
        "targets": {
            target: {str(nprocs): {"original_seconds": round(orig, 4),
                                   "preproc_opt_seconds": round(opt, 4)}
                     for nprocs, (orig, opt) in sorted(times.items())}
            for target, times in table.items()
        },
    })

    # The optimized converter's conversion phase beats the original
    # throughout the compute-bound range (it skips text parsing), and
    # wins overall; the highest core counts sit at millisecond scales
    # where individual points are noise-limited.
    for target, times in table.items():
        # No substantial regression anywhere in the compute-bound range.
        for nprocs in (1, 2, 4, 8):
            orig, opt = times[nprocs]
            assert opt < 1.25 * orig, (target, nprocs, orig, opt)
    # The preprocessing win is asserted on the aggregate, where it is
    # statistically stable on this host: summed over all targets and
    # the compute-bound core range, the _P conversion phase is faster.
    # (Per-point margins are ~5-10% in Python — str.split is already
    # C-speed — versus the paper's 24-31%; see EXPERIMENTS.md.)
    orig_total = sum(times[n][0] for times in table.values()
                     for n in (1, 2, 4, 8))
    opt_total = sum(times[n][1] for times in table.values()
                    for n in (1, 2, 4, 8))
    assert opt_total < orig_total, (orig_total, opt_total)
    wins = sum(1 for times in table.values()
               for orig, opt in times.values() if opt < orig)
    total_points = sum(len(times) for times in table.values())
    assert wins > total_points // 2, (wins, total_points)
