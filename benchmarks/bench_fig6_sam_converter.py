"""Figure 6 — conversion speedup of the SAM format converter.

Paper: a 100 GB SAM dataset converted to BED, BEDGRAPH and FASTA on 1 to
128 cores; all three conversions scale well, and SAM -> BEDGRAPH scales
slightly best because a BEDGRAPH record carries the least text, making
that conversion the least I/O-intensive.
"""

from __future__ import annotations

import os

from repro.core import SamConverter
from repro.runtime.metrics import SpeedupCurve

from .common import CONVERSION_CORES, report, sam_dataset, \
    sequential_reference, speedup_curve


def _sweep(out_root: str) -> dict[str, SpeedupCurve]:
    sam_path = sam_dataset()
    converter = SamConverter()
    curves = {}
    bytes_out = {}
    for target in ("bed", "bedgraph", "fasta"):
        runs = {}
        for nprocs in CONVERSION_CORES:
            result = converter.convert(
                sam_path, target,
                os.path.join(out_root, f"{target}_{nprocs}"), nprocs)
            runs[nprocs] = result.rank_metrics
        seq = sequential_reference(runs[1])
        bytes_out[target] = seq.bytes_written
        curves[target] = speedup_curve(f"SAM -> {target.upper()}", seq,
                                       runs)
    return curves, bytes_out


def test_fig6_sam_converter_speedup(benchmark, tmp_path):
    curves, bytes_out = benchmark.pedantic(_sweep, args=(str(tmp_path),),
                                           rounds=1, iterations=1)
    text = "\n\n".join(c.format_table() for c in curves.values())
    text += "\n\noutput bytes per target: " + ", ".join(
        f"{t}={n}" for t, n in sorted(bytes_out.items()))
    report("fig6_sam_converter", text)

    for target, curve in curves.items():
        speedups = curve.speedups()
        # Speedup grows with core count through the compute-bound range.
        assert speedups[0] == 1.0
        assert speedups[3] > speedups[1] > 1.0, target  # 8 > 2 cores
        # Meaningful parallel efficiency at 16 cores.
        sixteen = curve.points[CONVERSION_CORES.index(16)]
        assert sixteen.speedup > 6.0, (target, sixteen.speedup)
        # And the curve keeps gaining into the high-core range.
        assert speedups[-1] > speedups[3], target
    # Paper's ordering rationale: a BEDGRAPH record carries the least
    # text, making that conversion the least I/O-intensive.  Assert the
    # deterministic byte counts (the timing ordering at 128 ranks is
    # within measurement noise on this host).
    assert bytes_out["bedgraph"] < bytes_out["bed"]
    assert bytes_out["bedgraph"] < bytes_out["fasta"]
