"""Figure 6 — conversion speedup of the SAM format converter.

Paper: a 100 GB SAM dataset converted to BED, BEDGRAPH and FASTA on 1 to
128 cores; all three conversions scale well, and SAM -> BEDGRAPH scales
slightly best because a BEDGRAPH record carries the least text, making
that conversion the least I/O-intensive.

On top of the paper's multi-core sweep, this bench measures the batched
pipeline (chunk-level codecs + column fastpaths) against the
record-at-a-time pipeline on a single rank — the batched path must win
on every fastpath target.  In smoke mode (``REPRO_BENCH_SMOKE``) only
that comparison runs, on a small dataset, which is what the CI
perf-smoke job gates on.
"""

from __future__ import annotations

import os

from repro.core import SamConverter
from repro.runtime.metrics import SpeedupCurve

from .common import CONVERSION_CORES, best_seconds, curve_payload, \
    report, report_json, sam_dataset, sequential_reference, smoke_mode, \
    speedup_curve

TARGETS = ("bed", "bedgraph", "fasta")


def _compare_pipelines(out_root: str) -> dict[str, dict[str, float]]:
    """Single-rank record vs batch pipeline, best-of-3 per target."""
    sam_path = sam_dataset()
    comparison = {}
    for target in TARGETS:
        seconds = {}
        for pipeline in ("record", "batch"):
            converter = SamConverter(pipeline=pipeline)
            out_dir = os.path.join(out_root, f"pipe_{pipeline}_{target}")
            seconds[pipeline] = best_seconds(
                lambda: converter.convert(sam_path, target, out_dir,
                                          nprocs=1).rank_metrics)
        comparison[target] = {
            "record_seconds": round(seconds["record"], 4),
            "batch_seconds": round(seconds["batch"], 4),
            "batched_speedup": round(
                seconds["record"] / seconds["batch"], 2),
        }
    return comparison


def _sweep(out_root: str) -> tuple[dict[str, SpeedupCurve], dict[str, int]]:
    sam_path = sam_dataset()
    converter = SamConverter()
    curves = {}
    bytes_out = {}
    for target in TARGETS:
        runs = {}
        for nprocs in CONVERSION_CORES:
            result = converter.convert(
                sam_path, target,
                os.path.join(out_root, f"{target}_{nprocs}"), nprocs)
            runs[nprocs] = result.rank_metrics
        seq = sequential_reference(runs[1])
        bytes_out[target] = seq.bytes_written
        curves[target] = speedup_curve(f"SAM -> {target.upper()}", seq,
                                       runs)
    return curves, bytes_out


def test_fig6_sam_converter_speedup(benchmark, tmp_path):
    if smoke_mode():
        comparison = _compare_pipelines(str(tmp_path))
        report_json("fig6_sam_converter", {"pipelines": comparison})
        for target, row in comparison.items():
            # The CI gate: the batched path must not be slower.
            assert row["batched_speedup"] > 1.0, (target, row)
        return

    curves, bytes_out = benchmark.pedantic(_sweep, args=(str(tmp_path),),
                                           rounds=1, iterations=1)
    comparison = _compare_pipelines(str(tmp_path))
    text = "\n\n".join(c.format_table() for c in curves.values())
    text += "\n\noutput bytes per target: " + ", ".join(
        f"{t}={n}" for t, n in sorted(bytes_out.items()))
    text += "\n\nsingle-rank batched speedup: " + ", ".join(
        f"{t}={row['batched_speedup']}x"
        for t, row in sorted(comparison.items()))
    report("fig6_sam_converter", text)
    report_json("fig6_sam_converter", {
        "pipelines": comparison,
        "curves": curve_payload(curves),
        "bytes_out": bytes_out,
    })

    for target, curve in curves.items():
        speedups = curve.speedups()
        # Speedup grows with core count through the compute-bound range.
        assert speedups[0] == 1.0
        assert speedups[3] > speedups[1] > 1.0, target  # 8 > 2 cores
        # Meaningful parallel efficiency at 16 cores.
        sixteen = curve.points[CONVERSION_CORES.index(16)]
        assert sixteen.speedup > 6.0, (target, sixteen.speedup)
        # And the curve keeps gaining into the high-core range.
        assert speedups[-1] > speedups[3], target
    # Chunk-level codecs must beat record-at-a-time decisively.
    for target, row in comparison.items():
        assert row["batched_speedup"] >= 1.5, (target, row)
    # Paper's ordering rationale: a BEDGRAPH record carries the least
    # text, making that conversion the least I/O-intensive.  Assert the
    # deterministic byte counts (the timing ordering at 128 ranks is
    # within measurement noise on this host).
    assert bytes_out["bedgraph"] < bytes_out["bed"]
    assert bytes_out["bedgraph"] < bytes_out["fasta"]
