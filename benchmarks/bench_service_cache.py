"""Service cache — cold vs warm preprocessing and concurrent throughput.

The paper's partial-conversion result (Fig. 8) assumes the BAMX/BAIX
artifacts already exist; a batch CLI pays the sequential preprocessing
phase on every invocation.  The conversion job service amortizes it
through the content-addressed artifact cache, so this bench measures
what the cache is worth:

* **cold vs warm latency** — the first region job preprocesses the BAM
  (cache miss); every later job on the same input is a cache hit whose
  cost is one content hash + BAIX binary search + conversion;
* **concurrent throughput** — N submitter threads hammering the same
  input share a single preprocessing run (per-key build lock), so
  adding submitters must not add preprocessing runs.
"""

from __future__ import annotations

import os
import threading
import time

from repro.service import ConversionService

from .common import bam_dataset, format_rows, report

REGION = "chr1:1-300000"
WARM_REPEATS = 5
SUBMITTERS = (1, 2, 4, 8)


def _submit_region(svc: ConversionService, out_dir: str) -> dict:
    job = svc.submit("region", {"input": bam_dataset(),
                                "region": REGION,
                                "target": "bed",
                                "out_dir": out_dir})
    info = svc.wait(job.job_id)
    assert info["state"] == "done", info
    return info


def _cold_vs_warm(root: str):
    bam_dataset()   # build the dataset outside the timed section
    svc = ConversionService(os.path.join(root, "svc"), workers=2)
    try:
        t0 = time.perf_counter()
        first = _submit_region(svc, os.path.join(root, "cold"))
        cold = time.perf_counter() - t0
        assert first["result"]["cache"] == "miss"

        warm_times = []
        for i in range(WARM_REPEATS):
            t0 = time.perf_counter()
            info = _submit_region(svc, os.path.join(root, f"warm{i}"))
            warm_times.append(time.perf_counter() - t0)
            assert info["result"]["cache"] == "hit"

        snap = svc.metrics_snapshot()
        assert snap["counters"]["preprocess_runs"] == 1
        return cold, warm_times, snap
    finally:
        svc.close()


def _throughput(root: str):
    """Jobs/second with N concurrent submitters on a warm cache."""
    rows = []
    for n in SUBMITTERS:
        svc = ConversionService(os.path.join(root, f"tp{n}"), workers=4)
        try:
            _submit_region(svc, os.path.join(root, f"tp{n}", "prime"))
            jobs_each = 3
            errors = []

            def submitter(tid: int) -> None:
                try:
                    for j in range(jobs_each):
                        _submit_region(
                            svc, os.path.join(root, f"tp{n}",
                                              f"out{tid}_{j}"))
                except AssertionError as exc:   # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=submitter, args=(t,))
                       for t in range(n)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - t0
            assert not errors
            snap = svc.metrics_snapshot()
            # priming run is the only preprocessing, ever
            assert snap["counters"]["preprocess_runs"] == 1
            total = n * jobs_each
            rows.append([n, total, wall, total / wall])
        finally:
            svc.close()
    return rows


def test_service_cache(benchmark, tmp_path):
    cold, warm_times, snap = benchmark.pedantic(
        _cold_vs_warm, args=(str(tmp_path),), rounds=1, iterations=1)
    warm_best = min(warm_times)
    warm_mean = sum(warm_times) / len(warm_times)
    tp_rows = _throughput(str(tmp_path))

    lines = [
        f"input: {bam_dataset()} "
        f"({os.path.getsize(bam_dataset())} bytes), region {REGION}",
        "",
        "cold vs warm (one region job, submit -> done):",
        format_rows(
            ["path", "latency (s)"],
            [["cold (cache miss, preprocesses)", cold],
             [f"warm best-of-{WARM_REPEATS} (cache hit)", warm_best],
             [f"warm mean-of-{WARM_REPEATS}", warm_mean],
             ["speedup (cold / warm best)", cold / warm_best]]),
        "",
        f"preprocess_runs after 1 cold + {WARM_REPEATS} warm jobs: "
        f"{snap['counters']['preprocess_runs']}",
        f"preprocess_seconds: "
        f"{snap['timers']['preprocess_seconds']['total_seconds']:.3f}s "
        "(paid once)",
        "",
        "warm-cache throughput, N concurrent submitters x 3 jobs "
        "(4 workers):",
        format_rows(["submitters", "jobs", "wall (s)", "jobs/s"],
                    tp_rows),
    ]
    report("service_cache", "\n".join(lines))

    # The whole point: a warm job never pays the sequential phase.
    assert warm_best < cold
    # More submitters must not trigger more preprocessing runs; the
    # throughput table asserts preprocess_runs == 1 per pool above.
