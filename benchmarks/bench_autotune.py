"""Self-tuning scheduler: cold-model safety and warm-model wins.

The autotuner closes the tracing→scheduling loop: per-shard spans feed
a persistent :class:`repro.runtime.autotune.CostModel`, and later jobs
with ``--shards auto`` pick their over-decomposition from the learned
cost distribution instead of a hand-tuned constant.  This bench drives
that loop end to end on the skewed workload of ``bench_scaling_dynamic``
(chr1 dense with short records, chr2 sparse with long ones):

1. **cold**: an auto run against an empty model must fall back to the
   static defaults (one task per rank) — never slower than not opting
   in;
2. **warm**: a *fresh* tuner over the same model file (persistence,
   not in-memory state) must choose shards > 1 and beat the static
   schedule;
3. the warm choice must be competitive with the best hand-tuned
   static setting (no regression vs an expert picking ``--shards 8``).

Methodology (1-core host): per-rank / per-shard durations are measured
with the traced ``simulate`` executor, then ``simulate_schedule``
models the makespan over WORKERS workers — identical to
``bench_scaling_dynamic`` so the numbers compose.  All runs must be
byte-identical.

Gates: full mode — warm auto >= 1.5x over static ranks AND within
1.15x of the best static baseline, cold auto within 1.1x of static.
Smoke mode — warm auto within 1.1x of static (timing on the tiny CI
dataset is too noisy for the decisive-win gate).
"""

from __future__ import annotations

from repro.core import SamConverter
from repro.runtime.autotune import AutoTuner, CostModel
from repro.runtime.executor import simulate_schedule
from repro.runtime.tracing import Tracer, install

from .bench_scaling_dynamic import WORKERS, _read_parts, _skewed_sam
from .common import report, report_json, smoke_mode

#: Hand-tuned static baselines the warm auto run competes with.
STATIC_SHARDS = (1, 8)


def _traced_run(converter: SamConverter, sam_path: str,
                out_dir: str) -> tuple[float, dict | None]:
    """One simulate-executor conversion; returns (modeled makespan,
    autotune provenance block or None).

    The makespan is modeled from whichever leaf spans the run emitted —
    ``shard`` spans when over-decomposed, ``rank`` spans otherwise.
    """
    tracer = Tracer(enabled=True)
    prev = install(tracer)
    try:
        converter.convert(sam_path, "bed", out_dir, nprocs=WORKERS)
    finally:
        install(prev)
    spans = tracer.spans()
    costs = [s.duration for s in spans if s.name == "shard"] \
        or [s.duration for s in spans if s.name == "rank"]
    assert costs, "no rank/shard spans recorded"
    provenance = None
    for span in spans:
        if span.name == "autotune":
            provenance = span.args.get("cost_model")
    return simulate_schedule(costs, WORKERS), provenance


def test_autotune(tmp_path):
    sam_path = _skewed_sam()
    model_path = str(tmp_path / "cost-model.json")

    statics = {}
    for shards in STATIC_SHARDS:
        makespan, _ = _traced_run(
            SamConverter(shards_per_rank=shards), sam_path,
            str(tmp_path / f"static{shards}"))
        statics[shards] = makespan
    static_makespan = statics[1]
    best_static = min(statics.values())

    # Cold: fresh model file — the decision must fall back to defaults.
    cold_tuner = AutoTuner(CostModel(model_path), workers=WORKERS)
    cold_makespan, cold_prov = _traced_run(
        SamConverter(shards_per_rank="auto", tuner=cold_tuner),
        sam_path, str(tmp_path / "cold"))
    assert cold_prov is not None, "cold run recorded no autotune span"
    assert cold_prov["hit"] is False, cold_prov
    assert cold_prov["shards_per_rank"] == 1, cold_prov

    # Warm: a *fresh* tuner over the same file proves the profile
    # persisted; the learned skew should pick shards > 1.
    warm_tuner = AutoTuner(CostModel(model_path), workers=WORKERS)
    warm_makespan, warm_prov = _traced_run(
        SamConverter(shards_per_rank="auto", tuner=warm_tuner),
        sam_path, str(tmp_path / "warm"))
    assert warm_prov is not None, "warm run recorded no autotune span"
    assert warm_prov["hit"] is True, warm_prov

    reference = _read_parts(str(tmp_path / "static1"))
    for label in ["static8", "cold", "warm"]:
        assert _read_parts(str(tmp_path / label)) == reference, \
            f"{label} outputs differ from the static baseline"

    payload = {
        "workers": WORKERS,
        "static_makespans": {str(k): round(v, 4)
                             for k, v in statics.items()},
        "cold": {
            "makespan": round(cold_makespan, 4),
            "shards_per_rank": cold_prov["shards_per_rank"],
            "hit": cold_prov["hit"],
        },
        "warm": {
            "makespan": round(warm_makespan, 4),
            "shards_per_rank": warm_prov["shards_per_rank"],
            "batch_size": warm_prov["batch_size"],
            "hit": warm_prov["hit"],
        },
        "auto_speedup": round(static_makespan / warm_makespan, 3),
        "vs_best_static": round(warm_makespan / best_static, 3),
    }
    report_json("autotune", payload)
    report("autotune", "\n".join([
        f"static makespans: " + ", ".join(
            f"shards={k}: {v:.4f}s" for k, v in sorted(statics.items())),
        f"cold auto:  {cold_makespan:.4f}s "
        f"(fell back to shards={cold_prov['shards_per_rank']})",
        f"warm auto:  {warm_makespan:.4f}s "
        f"(chose shards={warm_prov['shards_per_rank']})",
        f"auto speedup over static ranks: {payload['auto_speedup']}x",
        f"warm vs best static baseline:   "
        f"{payload['vs_best_static']}x of its makespan",
    ]))

    if smoke_mode():
        # Tiny CI datasets are too noisy for the decisive-win gate;
        # hold the safety property only.
        assert warm_makespan <= static_makespan * 1.1, payload
    else:
        assert warm_prov["shards_per_rank"] > 1, warm_prov
        assert payload["auto_speedup"] >= 1.5, payload
        assert warm_makespan <= best_static * 1.15, payload
        assert cold_makespan <= static_makespan * 1.1, payload
