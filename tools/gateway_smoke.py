#!/usr/bin/env python
"""End-to-end smoke test of the TCP gateway front door.

Boots a real ``repro serve --listen 127.0.0.1:0`` subprocess, fires a
burst of concurrent conversion submits over TCP, and fails loudly on
any dropped or hung request.  This is the CI gateway-smoke job: it
exercises the daemon exactly the way a remote deployment would — over
the network, through argv, with the startup race bridged by the
client's connect retry rather than a sleep.

Checks enforced:

* every submitter gets a job id and a terminal ``done`` snapshot
  (no lost jobs, no hang — a global deadline aborts the run);
* no submit is rejected (the burst stays under the admission bound);
* a deliberately oversized frame gets a ``bad_frame`` error and the
  connection stays usable;
* results land on disk for every job.

The service metrics snapshot is written to ``GATEWAY_SMOKE_metrics.json``
at the repo root (uploaded as a CI artifact) so gateway counters are
inspectable per run.

Usage::

    REPRO_BENCH_SMOKE=1 python tools/gateway_smoke.py [--clients N]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.service import ServiceClient  # noqa: E402
from repro.service import protocol  # noqa: E402
from repro.simdata import build_sam_dataset  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_daemon(work_dir: str) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Spawn ``repro serve --listen 127.0.0.1:0``; parse the bound port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0",
         "--work-dir", os.path.join(work_dir, "svc"),
         "--workers", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=ROOT)
    # The daemon prints "repro service listening on ... tcp://H:P ..."
    # as its first line (flushed before serving).
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            proc.wait(5)
            fail(f"serve exited early (rc={proc.returncode})")
        if "tcp://" in line:
            break
    else:
        fail(f"no listening banner within 30s (last line: {line!r})")
    hostport = line.split("tcp://", 1)[1].split()[0]
    address = protocol.parse_address(hostport)
    print(f"[smoke] daemon pid={proc.pid} listening on tcp://{hostport}")
    return proc, address


def check_bad_frame(address: tuple[str, int]) -> None:
    """A garbage line must get bad_frame, not a dead connection."""
    import socket
    sock = socket.create_connection(address, timeout=10)
    try:
        stream = sock.makefile("rwb")
        stream.write(b"garbage that is not json\n")
        stream.flush()
        response = json.loads(stream.readline())
        if response.get("code") != "bad_frame":
            fail(f"expected bad_frame, got {response}")
        stream.write(protocol.encode({"op": "ping"}))
        stream.flush()
        response = json.loads(stream.readline())
        if not response.get("pong"):
            fail(f"session died after bad frame: {response}")
    finally:
        sock.close()
    print("[smoke] bad_frame handling OK (session survived)")


def run_burst(address: tuple[str, int], sam_path: str, out_root: str,
              n_clients: int, deadline_s: float) -> list[dict]:
    """N concurrent TCP submitters; returns final job snapshots."""
    results: list = [None] * n_clients
    errors: list = [None] * n_clients

    def one(i: int) -> None:
        try:
            client = ServiceClient(address, timeout=deadline_s,
                                   connect_retries=5,
                                   connect_backoff=0.1)
            with client:
                job = client.submit("convert", {
                    "input": sam_path, "target": "bed",
                    "out_dir": os.path.join(out_root, f"job{i:03d}")})
                results[i] = client.wait(job["job_id"],
                                         timeout=deadline_s)
        except BaseException as exc:  # noqa: BLE001 — reported below
            errors[i] = f"{type(exc).__name__}: {exc}"

    threads = [threading.Thread(target=one, args=(i,), daemon=True)
               for i in range(n_clients)]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join(deadline_s)
    elapsed = time.monotonic() - t0
    if any(t.is_alive() for t in threads):
        hung = sum(t.is_alive() for t in threads)
        fail(f"{hung}/{n_clients} submitters hung after {deadline_s}s")
    bad = [(i, e) for i, e in enumerate(errors) if e is not None]
    if bad:
        fail(f"{len(bad)}/{n_clients} submitters errored; first 3: "
             f"{bad[:3]}")
    print(f"[smoke] {n_clients} concurrent submitters done "
          f"in {elapsed:.1f}s")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int,
                        default=24 if os.environ.get("REPRO_BENCH_SMOKE")
                        else 64,
                        help="concurrent TCP submitters")
    parser.add_argument("--templates", type=int,
                        default=300 if os.environ.get("REPRO_BENCH_SMOKE")
                        else 2000,
                        help="synthetic dataset size")
    parser.add_argument("--deadline", type=float, default=120.0,
                        help="per-phase hang deadline in seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="gateway-smoke-") as work:
        sam_path = os.path.join(work, "smoke.sam")
        build_sam_dataset(sam_path, args.templates,
                          chromosomes=[("chr1", 60_000),
                                       ("chr2", 40_000)], seed=7)
        proc, address = start_daemon(work)
        try:
            check_bad_frame(address)
            results = run_burst(address, sam_path,
                                os.path.join(work, "out"),
                                args.clients, args.deadline)
            job_ids = {r["job_id"] for r in results}
            if len(job_ids) != args.clients:
                fail(f"{args.clients} submits produced only "
                     f"{len(job_ids)} distinct jobs (dropped work)")
            not_done = [r for r in results if r["state"] != "done"]
            if not_done:
                fail(f"{len(not_done)} jobs not done; first: "
                     f"{not_done[0]}")
            missing = [r["job_id"] for r in results
                       if not (r.get("result") or {}).get("outputs")]
            if missing:
                fail(f"jobs finished without outputs: {missing[:3]}")

            with ServiceClient(address, timeout=30) as client:
                snapshot = client.metrics()
                client.shutdown()
            counters = snapshot.get("counters", {})
            for name in ("gateway_connections_total",
                         "gateway_requests_total",
                         "gateway_bad_frames"):
                if counters.get(name, 0) < 1:
                    fail(f"metrics counter {name} missing/zero: "
                         f"{counters.get(name)}")
            if counters.get("jobs_done", 0) < args.clients:
                fail(f"jobs_done={counters.get('jobs_done')} < "
                     f"{args.clients}")

            out_path = os.path.join(ROOT, "GATEWAY_SMOKE_metrics.json")
            with open(out_path, "w", encoding="utf-8") as fh:
                json.dump({"smoke": True, "clients": args.clients,
                           "metrics": snapshot}, fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
            print(f"[smoke] metrics snapshot -> {out_path}")
            proc.wait(30)
            print(f"[smoke] PASS: {args.clients} clients, "
                  f"{counters['gateway_requests_total']} gateway "
                  f"requests, 0 dropped")
            return 0
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    sys.exit(main())
