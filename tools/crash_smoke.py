#!/usr/bin/env python
"""Crash-recovery smoke test of the journaled conversion service.

Boots ``repro serve --journal``, fires a burst of BAM conversion jobs
(through the artifact cache), SIGKILLs the daemon mid-burst, restarts
it against the same work dir and journal, and verifies the durability
contract end to end:

* every job recorded in the journal reaches a terminal state after the
  restart — zero journaled jobs are lost;
* every recovered job finishes ``done`` with output files
  byte-identical to an uninterrupted reference run;
* no quarantined or partially-built cache entry is ever served
  (``cache_quarantined`` stays 0 and the quarantine dir stays empty);
* recovered job ids keep answering status queries and new submissions
  never collide with them.

The post-recovery metrics snapshot is written to
``CRASH_SMOKE_metrics.json`` at the repo root (uploaded as a CI
artifact) so journal/recovery counters are inspectable per run.

Usage::

    REPRO_BENCH_SMOKE=1 python tools/crash_smoke.py [--jobs N]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.service import ServiceClient  # noqa: E402
from repro.service import protocol  # noqa: E402
from repro.service.journal import replay  # noqa: E402
from repro.simdata import build_bam_dataset  # noqa: E402


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_daemon(work_dir: str, journal: str,
                 env_extra: dict[str, str] | None = None,
                 ) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Spawn ``repro serve --listen 127.0.0.1:0 --journal``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0",
         "--work-dir", work_dir,
         "--journal", journal,
         "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=ROOT)
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            proc.wait(5)
            fail(f"serve exited early (rc={proc.returncode})")
        if "tcp://" in line:
            break
    else:
        fail(f"no listening banner within 30s (last line: {line!r})")
    hostport = line.split("tcp://", 1)[1].split()[0]
    address = protocol.parse_address(hostport)
    print(f"[smoke] daemon pid={proc.pid} listening on tcp://{hostport}")
    return proc, address


def submit_burst(address: tuple[str, int], bam_path: str,
                 out_root: str, n_jobs: int,
                 acked: list[str] | None = None) -> list[str]:
    """Submit *n_jobs* conversions; returns their job ids.

    Each acknowledged id is appended to *acked* as it arrives, so a
    caller that kills the daemon mid-burst still knows exactly which
    submits were acked (and therefore journaled) before the crash.
    """
    job_ids = acked if acked is not None else []
    with ServiceClient(address, timeout=30, connect_retries=5,
                       connect_backoff=0.1) as client:
        for i in range(n_jobs):
            job = client.submit("convert", {
                "input": bam_path, "target": "bed",
                "out_dir": os.path.join(out_root, f"job{i:03d}")},
                max_retries=1)
            job_ids.append(job["job_id"])
    return job_ids


def wait_all_done(address: tuple[str, int], job_ids: list[str],
                  deadline_s: float) -> dict[str, dict]:
    """Wait every job id to a terminal snapshot; returns them by id."""
    snapshots = {}
    with ServiceClient(address, timeout=deadline_s,
                       connect_retries=5,
                       connect_backoff=0.1) as client:
        for job_id in job_ids:
            snapshots[job_id] = client.wait(job_id,
                                            timeout=deadline_s)
    return snapshots


def digest_outputs(snapshot: dict) -> dict[str, str]:
    """Map output basename -> sha256 for one done job snapshot."""
    outputs = (snapshot.get("result") or {}).get("outputs") or []
    digests = {}
    for path in sorted(outputs):
        digest = hashlib.sha256()
        with open(path, "rb") as fh:
            while chunk := fh.read(1 << 20):
                digest.update(chunk)
        digests[os.path.basename(path)] = digest.hexdigest()
    if not digests:
        fail(f"job {snapshot.get('job_id')} finished without outputs")
    return digests


def reference_run(work: str, bam_path: str,
                  deadline_s: float) -> dict[str, str]:
    """Uninterrupted run establishing the expected output digests."""
    work_dir = os.path.join(work, "ref-svc")
    journal = os.path.join(work, "ref-journal.jsonl")
    proc, address = start_daemon(work_dir, journal)
    try:
        job_ids = submit_burst(address, bam_path,
                               os.path.join(work, "ref-out"), 1)
        snapshots = wait_all_done(address, job_ids, deadline_s)
        snapshot = snapshots[job_ids[0]]
        if snapshot["state"] != "done":
            fail(f"reference job not done: {snapshot}")
        with ServiceClient(address, timeout=30) as client:
            client.shutdown()
        proc.wait(30)
        expected = digest_outputs(snapshot)
        print(f"[smoke] reference outputs: "
              f"{sorted(expected)} ({len(expected)} files)")
        return expected
    finally:
        if proc.poll() is None:
            proc.kill()


def crash_mid_burst(work: str, bam_path: str, n_jobs: int,
                    deadline_s: float) -> tuple[str, str, list[str]]:
    """Submit a burst, SIGKILL the daemon once work is in flight.

    Returns (work_dir, journal_path, journaled job ids).
    """
    work_dir = os.path.join(work, "svc")
    journal = os.path.join(work, "journal.jsonl")
    proc, address = start_daemon(work_dir, journal)
    killed = False
    submitted: list[str] = []
    try:
        # Submit on a background thread and poll from here, so the
        # SIGKILL lands while jobs are genuinely in flight: ideally at
        # least one finished (terminal preservation) while others are
        # still queued or running (replay re-queues them).
        burst_done = threading.Event()

        def submitter() -> None:
            try:
                submit_burst(address, bam_path,
                             os.path.join(work, "out"), n_jobs,
                             acked=submitted)
            except Exception:
                pass  # the kill tears the connection down mid-burst
            finally:
                burst_done.set()

        thread = threading.Thread(target=submitter, daemon=True)
        thread.start()
        deadline = time.monotonic() + deadline_s
        states: list[str] = []
        with ServiceClient(address, timeout=30,
                           connect_retries=5,
                           connect_backoff=0.1) as client:
            while time.monotonic() < deadline:
                states = [job["state"] for job in client.status()]
                pending = [s for s in states
                           if s in ("queued", "running")]
                if "done" in states and pending:
                    break
                if burst_done.is_set() and states and not pending:
                    break  # burst already finished; kill anyway
                time.sleep(0.005)
        os.kill(proc.pid, signal.SIGKILL)
        killed = True
        proc.wait(10)
        thread.join(10)
        print(f"[smoke] SIGKILLed daemon mid-burst "
              f"(states at kill: {sorted(set(states))}, "
              f"{len(submitted)}/{n_jobs} submits acked)")
    finally:
        if not killed and proc.poll() is None:
            proc.kill()

    specs, stats = replay(journal)
    if not specs:
        fail("journal is empty after the crash")
    missing = [job_id for job_id in submitted if job_id not in specs]
    if missing:
        fail(f"acknowledged submits missing from the journal: "
             f"{missing}")
    print(f"[smoke] journal holds {len(specs)} jobs "
          f"({stats['records']} records, {stats['bad_lines']} torn "
          f"lines skipped)")
    return work_dir, journal, list(specs)


def recover_and_verify(work: str, work_dir: str, journal: str,
                       journaled: list[str], bam_path: str,
                       expected: dict[str, str],
                       deadline_s: float) -> dict:
    """Restart against the same journal; verify the contract."""
    proc, address = start_daemon(work_dir, journal)
    try:
        snapshots = wait_all_done(address, journaled, deadline_s)
        lost = [job_id for job_id, snap in snapshots.items()
                if snap["state"] not in ("done", "failed",
                                         "cancelled")]
        if lost:
            fail(f"{len(lost)} journaled jobs never reached a "
                 f"terminal state: {lost[:3]}")
        not_done = {job_id: snap for job_id, snap in snapshots.items()
                    if snap["state"] != "done"}
        if not_done:
            job_id, snap = next(iter(not_done.items()))
            fail(f"{len(not_done)} journaled jobs did not finish "
                 f"done; e.g. {job_id}: {snap['state']} "
                 f"({snap.get('error')})")
        for job_id, snap in snapshots.items():
            got = digest_outputs(snap)
            if got != expected:
                fail(f"job {job_id} outputs differ from the "
                     f"reference run: {got} != {expected}")
        print(f"[smoke] all {len(snapshots)} journaled jobs done, "
              f"outputs byte-identical to the reference run")

        with ServiceClient(address, timeout=30) as client:
            # New ids must not collide with any recovered id.
            fresh = client.submit("convert", {
                "input": bam_path, "target": "bed",
                "out_dir": os.path.join(work, "out", "fresh")})
            if fresh["job_id"] in snapshots:
                fail(f"new job id {fresh['job_id']} collides with a "
                     f"recovered job")
            final = client.wait(fresh["job_id"], timeout=deadline_s)
            if final["state"] != "done":
                fail(f"post-recovery submission failed: {final}")
            snapshot = client.metrics()
            client.shutdown()
        proc.wait(30)

        counters = snapshot.get("counters", {})
        if counters.get("cache_quarantined", 0) != 0:
            fail(f"cache entries were quarantined during recovery: "
                 f"{counters['cache_quarantined']}")
        quarantine_dir = os.path.join(work_dir, "cache", "quarantine")
        if os.path.isdir(quarantine_dir) \
                and os.listdir(quarantine_dir):
            fail(f"quarantine dir is not empty: "
                 f"{os.listdir(quarantine_dir)}")
        if counters.get("journal_replayed_records", 0) < 1:
            fail("journal_replayed_records is zero after recovery")
        return snapshot
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(10)
            except subprocess.TimeoutExpired:
                proc.kill()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int,
                        default=8 if os.environ.get("REPRO_BENCH_SMOKE")
                        else 16,
                        help="conversion jobs in the crashed burst")
    parser.add_argument("--templates", type=int,
                        default=300 if os.environ.get("REPRO_BENCH_SMOKE")
                        else 1200,
                        help="synthetic dataset size")
    parser.add_argument("--deadline", type=float, default=120.0,
                        help="per-phase hang deadline in seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="crash-smoke-") as work:
        bam_path = os.path.join(work, "smoke.bam")
        build_bam_dataset(bam_path, args.templates,
                          chromosomes=[("chr1", 60_000),
                                       ("chr2", 40_000)], seed=7)
        expected = reference_run(work, bam_path, args.deadline)
        work_dir, journal, journaled = crash_mid_burst(
            work, bam_path, args.jobs, args.deadline)
        snapshot = recover_and_verify(work, work_dir, journal,
                                      journaled, bam_path, expected,
                                      args.deadline)

        out_path = os.path.join(ROOT, "CRASH_SMOKE_metrics.json")
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump({"smoke": True, "jobs": args.jobs,
                       "journaled": len(journaled),
                       "metrics": snapshot}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"[smoke] metrics snapshot -> {out_path}")
        counters = snapshot.get("counters", {})
        print(f"[smoke] PASS: {len(journaled)} journaled jobs "
              f"recovered to done "
              f"(journal_replayed_records="
              f"{counters.get('journal_replayed_records')}, "
              f"jobs_recovered={counters.get('jobs_recovered', 0)}, "
              f"cache_quarantined=0)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
