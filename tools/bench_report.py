#!/usr/bin/env python
"""Aggregate committed ``BENCH_*.json`` results into one trajectory
table.

Every benchmark writes a machine-readable ``BENCH_<name>.json`` at the
repo root (see ``benchmarks/common.report_json``).  This tool collects
them all and prints one table — bench name, run date, smoke flag, and
every ``*speedup*`` metric found anywhere in the payload — so the perf
trajectory across PRs is visible at a glance.  CI runs it after the
perf-smoke job and uploads the rendered report as an artifact.

Usage::

    python tools/bench_report.py [--root DIR] [--output report.md]

Exits nonzero when no BENCH_*.json files are found (a misconfigured
checkout should fail loudly, not produce an empty report).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def walk_speedups(node: object, prefix: str = "") -> dict[str, float]:
    """Every numeric value under a key containing ``speedup``.

    The walk is recursive so nested blocks like
    ``{"schedule": {"dynamic_speedup": 1.86}}`` surface as
    ``schedule.dynamic_speedup`` without each bench having to declare
    its metrics anywhere.
    """
    found: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool) \
                    and "speedup" in str(key).lower():
                found[path] = float(value)
            else:
                found.update(walk_speedups(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            found.update(walk_speedups(value, f"{prefix}[{i}]"))
    return found


def load_results(root: str) -> list[dict]:
    """Parse every BENCH_*.json under *root* (sorted by name)."""
    results = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            results.append({"path": path, "error": f"{exc}"})
            continue
        results.append({"path": path, "doc": doc})
    return results


def format_table(headers: list[str], rows: list[list[str]],
                 markdown: bool = False) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    if markdown:
        lines = ["| " + " | ".join(h.ljust(w) for h, w in
                                   zip(headers, widths)) + " |",
                 "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
        lines += ["| " + " | ".join(c.ljust(w) for c, w in
                                    zip(row, widths)) + " |"
                  for row in rows]
    else:
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
                 "  ".join("-" * w for w in widths)]
        lines += ["  ".join(c.ljust(w) for c, w in zip(row, widths))
                  for row in rows]
    return "\n".join(lines)


def build_report(results: list[dict], markdown: bool = False) -> str:
    rows = []
    errors = []
    for item in results:
        name = os.path.basename(item["path"])
        name = name[len("BENCH_"):-len(".json")]
        if "error" in item:
            errors.append(f"{name}: unreadable ({item['error']})")
            continue
        doc = item["doc"]
        stamp = doc.get("timestamp")
        when = time.strftime("%Y-%m-%d", time.gmtime(stamp)) \
            if isinstance(stamp, (int, float)) else "?"
        smoke = "yes" if doc.get("smoke") else "no"
        speedups = walk_speedups(doc)
        if not speedups:
            rows.append([name, when, smoke, "(no speedup metrics)", ""])
            continue
        for i, key in enumerate(sorted(speedups)):
            rows.append([name if i == 0 else "", when if i == 0 else "",
                         smoke if i == 0 else "", key,
                         f"{speedups[key]:.3f}"])
    headers = ["bench", "date", "smoke", "metric", "speedup"]
    title = "Benchmark trajectory"
    parts = [f"# {title}" if markdown else title, "",
             format_table(headers, rows, markdown=markdown)]
    if errors:
        parts += ["", "Unreadable results:"] + \
            [f"- {e}" for e in errors]
    return "\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="aggregate committed BENCH_*.json results into one "
                    "trajectory table")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="directory holding BENCH_*.json "
                             "(default: the repo root)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the report (markdown) here")
    args = parser.parse_args(argv)
    results = load_results(args.root)
    if not results:
        print(f"error: no BENCH_*.json files under {args.root}",
              file=sys.stderr)
        return 1
    print(build_report(results, markdown=False))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(build_report(results, markdown=True))
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
