#!/usr/bin/env python
"""Check intra-repo markdown links.

Scans every tracked ``*.md`` file for inline links (``[text](target)``)
whose target is a relative path, and verifies the target exists in the
repository.  External links (``http(s)://``, ``mailto:``), pure
anchors (``#section``) and code spans are ignored; a ``path#anchor``
target is checked for the *path* part only.

Usage::

    python tools/check_docs.py [ROOT]

Exit status 0 when every link resolves, 1 otherwise (each broken link
is printed as ``file:line: broken link -> target``).  Also callable
from tests via :func:`find_broken_links`.
"""

from __future__ import annotations

import os
import re
import sys

#: Inline markdown link: [text](target). Images ![alt](target) match
#: too via the optional leading "!". Targets with spaces are not used
#: in this repo, so the simple no-space pattern is enough.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

_CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")

#: Directories never scanned for markdown sources.
_SKIP_DIRS = {".git", ".github", "__pycache__", ".pytest_cache",
              "node_modules", ".hypothesis", "results"}


def iter_markdown_files(root: str) -> list[str]:
    """All ``*.md`` files under *root*, skipping VCS/cache dirs."""
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return found


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "#"))


def find_broken_links(root: str) -> list[tuple[str, int, str]]:
    """Return ``(relative_file, line_number, target)`` per broken link."""
    broken = []
    for path in iter_markdown_files(root):
        rel = os.path.relpath(path, root)
        base = os.path.dirname(path)
        in_fence = False
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if _CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for match in _LINK_RE.finditer(line):
                    target = match.group(1)
                    if _is_external(target):
                        continue
                    target_path = target.split("#", 1)[0]
                    if not target_path:
                        continue
                    resolved = os.path.normpath(
                        os.path.join(base, target_path))
                    if not os.path.exists(resolved):
                        broken.append((rel, lineno, target))
    return broken


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = argv[0] if argv else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    broken = find_broken_links(root)
    for rel, lineno, target in broken:
        print(f"{rel}:{lineno}: broken link -> {target}")
    checked = len(iter_markdown_files(root))
    print(f"checked {checked} markdown files: "
          f"{len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main())
