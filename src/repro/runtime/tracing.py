"""Span-based tracing: where does the wall-clock time actually go?

The paper's whole argument is about the *distribution* of time between
the sequential preprocessing phase and the parallel conversion phase
(Figs. 3/5/10); aggregate counters cannot show that.  This module adds
the missing instrument: a lightweight tracer recording **spans** —
named, nested intervals on the monotonic clock, tagged with the rank
that executed them — plus exporters for machine analysis (JSON-lines),
the Chrome ``chrome://tracing`` / Perfetto viewer, and a human-readable
tree/flame summary.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Every instrumentation point
   costs one ``get_tracer()`` call and one ``enabled`` check; the
   disabled path allocates nothing (a shared null context manager is
   returned) and converters produce byte-identical output with and
   without tracing.
2. **Thread-safe nesting.**  The span stack is per-(tracer, thread), so
   rank tasks on the thread executor each build their own correct
   subtree of one shared tracer.
3. **Works across processes.**  Child ranks (process executor, SPMD
   process backend) record into a fresh tracer sharing the parent's
   epoch — ``time.perf_counter()`` is CLOCK_MONOTONIC, shared across
   ``fork`` — and their spans are *gathered to rank 0* with
   :meth:`Tracer.ingest`, which re-maps span ids.

Typical use::

    tracer = Tracer(enabled=True)
    prev = install(tracer)                  # make it process-global
    with tracer.span("convert", "bam", args={"nprocs": 4}):
        ...
    install(prev)
    write_trace(tracer.spans(), "out.trace.jsonl")

or, from the command line, ``repro convert --trace out.trace ...``
(see ``docs/observability.md``).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from typing import Any, Callable, Iterable

from ..errors import RuntimeLayerError

__all__ = [
    "Span", "Tracer", "get_tracer", "install", "traced",
    "spans_from_dicts", "read_jsonl", "write_jsonl",
    "to_chrome_events", "write_chrome", "write_trace",
    "format_tree", "format_summary",
]


@dataclass(slots=True)
class Span:
    """One named interval on the tracer's monotonic timeline.

    ``start``/``end`` are seconds relative to the tracer epoch;
    ``parent_id`` links nested spans into a tree; ``rank`` tags the
    parallel rank that executed the span (``None`` for driver code).
    """

    span_id: int
    parent_id: int | None
    name: str
    category: str
    start: float
    end: float | None = None
    rank: int | None = None
    thread_id: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the JSON-lines record)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "rank": self.rank,
            "thread_id": self.thread_id,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            span_id=int(data["span_id"]),
            parent_id=(None if data.get("parent_id") is None
                       else int(data["parent_id"])),
            name=str(data["name"]),
            category=str(data.get("category", "")),
            start=float(data["start"]),
            end=(None if data.get("end") is None else float(data["end"])),
            rank=(None if data.get("rank") is None
                  else int(data["rank"])),
            thread_id=int(data.get("thread_id", 0)),
            args=dict(data.get("args") or {}),
        )


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager for one live span of an enabled tracer."""

    __slots__ = ("_tracer", "_name", "_category", "_rank", "_args",
                 "_parent_id", "span")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 rank: int | None, args: dict[str, Any] | None,
                 parent_id: int | None) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._rank = rank
        self._args = args
        self._parent_id = parent_id
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer._begin(self._name, self._category,
                                        self._rank, self._args,
                                        self._parent_id)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, _tb: Any) -> bool:
        assert self.span is not None
        self._tracer._end(self.span, exc)
        return False


class Tracer:
    """Thread-safe span recorder with a monotonic-clock timeline.

    Parameters
    ----------
    enabled:
        A disabled tracer records nothing and hands every ``span()``
        call the same shared null context manager.
    epoch:
        Timeline origin as a raw ``time.perf_counter()`` value.  Child
        processes pass the parent's epoch so their spans land on the
        parent's timeline (CLOCK_MONOTONIC survives ``fork``).
    """

    def __init__(self, enabled: bool = True,
                 epoch: float | None = None) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter() if epoch is None else epoch
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- recording ---------------------------------------------------

    def span(self, name: str, category: str = "",
             rank: int | None = None,
             args: dict[str, Any] | None = None,
             parent_id: int | None = None):
        """Context manager timing one named span.

        Yields the live :class:`Span` (or ``None`` when disabled) so
        callers may attach ``args`` entries mid-flight.  *parent_id*
        overrides the implicit (per-thread stack) parent — used when a
        span logically nests under a span opened by another thread.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, category, rank, args, parent_id)

    def current_span(self) -> Span | None:
        """The calling thread's innermost open span, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _begin(self, name: str, category: str, rank: int | None,
               args: dict[str, Any] | None,
               parent_id: int | None = None) -> Span:
        stack = self._stack()
        if rank is None:
            rank = getattr(self._local, "rank", None)
        if parent_id is None:
            parent_id = stack[-1].span_id if stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            category=category,
            start=time.perf_counter() - self.epoch,
            rank=rank,
            thread_id=threading.get_ident(),
            args=dict(args) if args else {},
        )
        stack.append(span)
        return span

    def _end(self, span: Span, exc: Any = None) -> None:
        span.end = time.perf_counter() - self.epoch
        if exc is not None:
            span.args.setdefault("error", type(exc).__name__)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:          # tolerate out-of-order exits
            stack.remove(span)
        with self._lock:
            self._spans.append(span)

    @contextmanager
    def rank_context(self, rank: int | None):
        """Tag every span recorded by this thread with *rank*."""
        prev = getattr(self._local, "rank", None)
        self._local.rank = rank
        try:
            yield
        finally:
            self._local.rank = prev

    @contextmanager
    def activate(self):
        """Make this tracer the calling thread's current tracer."""
        prev = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self
        try:
            yield self
        finally:
            _ACTIVE.tracer = prev

    # -- collection --------------------------------------------------

    def spans(self) -> list[Span]:
        """Snapshot of every finished span, ordered by start time."""
        with self._lock:
            return sorted(self._spans,
                          key=lambda s: (s.start, s.span_id))

    def clear(self) -> None:
        """Drop every recorded span."""
        with self._lock:
            self._spans.clear()

    def ingest(self, span_dicts: Iterable[dict[str, Any]],
               rank: int | None = None,
               parent_id: int | None = None) -> int:
        """Merge spans gathered from another tracer (child rank).

        Span and parent ids are re-mapped onto this tracer's id space;
        spans without a rank inherit *rank*, and the gathered forest's
        roots are attached under *parent_id* (so a rank subtree hangs
        off the converter span that launched it).  Returns the number
        of spans merged.
        """
        spans = [Span.from_dict(d) for d in span_dicts]
        mapping = {s.span_id: next(self._ids) for s in spans}
        count = 0
        with self._lock:
            for span in spans:
                span.span_id = mapping[span.span_id]
                span.parent_id = mapping.get(span.parent_id, parent_id) \
                    if span.parent_id is not None else parent_id
                if span.rank is None:
                    span.rank = rank
                self._spans.append(span)
                count += 1
        return count


# -- current-tracer plumbing ----------------------------------------

_ACTIVE = threading.local()
_GLOBAL = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The calling thread's active tracer (thread-local override wins,
    then the process-global tracer; disabled by default)."""
    tracer = getattr(_ACTIVE, "tracer", None)
    return tracer if tracer is not None else _GLOBAL


def install(tracer: Tracer) -> Tracer:
    """Set the process-global tracer; returns the previous one so
    callers can restore it (``install(prev)``)."""
    global _GLOBAL
    prev = _GLOBAL
    _GLOBAL = tracer
    return prev


def traced(name: str, category: str = "") -> Callable:
    """Decorator tracing every call of a function under *name*.

    Resolves the current tracer at call time, so decorated module-level
    functions respect whatever tracer the CLI or service installs.
    """
    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = get_tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(name, category):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


def spans_from_dicts(dicts: Iterable[dict[str, Any]]) -> list[Span]:
    """Rebuild :class:`Span` objects from their dict form."""
    return [Span.from_dict(d) for d in dicts]


# -- exporters ------------------------------------------------------

def write_jsonl(spans: Iterable[Span],
                path: str | os.PathLike[str]) -> int:
    """Write spans as JSON-lines (one span object per line)."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str | os.PathLike[str]) -> list[Span]:
    """Inverse of :func:`write_jsonl`."""
    spans = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                raise RuntimeLayerError(
                    f"{os.fspath(path)}:{lineno}: bad trace line: "
                    f"{exc}") from None
    return spans


def _chrome_tid(span: Span) -> int:
    # Ranks get small stable track ids; driver threads keep their
    # (truncated) thread idents, offset so they never collide with
    # rank tracks.
    if span.rank is not None:
        return span.rank
    return 1_000_000 + span.thread_id % 1_000_000


def to_chrome_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Spans as Chrome Trace Event Format "complete" (``X``) events.

    The result (wrapped by :func:`write_chrome`) loads directly in
    ``chrome://tracing`` and Perfetto; timestamps are microseconds.
    """
    events: list[dict[str, Any]] = []
    track_names: dict[int, str] = {}
    for span in spans:
        tid = _chrome_tid(span)
        track_names.setdefault(
            tid,
            f"rank {span.rank}" if span.rank is not None else "driver")
        args = dict(span.args)
        if span.rank is not None:
            args["rank"] = span.rank
        events.append({
            "name": span.name,
            "cat": span.category or "default",
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 0,
            "tid": tid,
            "args": args,
        })
    for tid, label in sorted(track_names.items()):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": label},
        })
    return events


def write_chrome(spans: Iterable[Span],
                 path: str | os.PathLike[str]) -> int:
    """Write a ``chrome://tracing``-loadable JSON trace file."""
    events = to_chrome_events(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  fh)
    return len(events)


def write_trace(spans: Iterable[Span],
                path: str | os.PathLike[str]) -> int:
    """Write a trace file, format chosen by extension.

    ``*.json`` gets the Chrome event format; anything else (the
    conventional ``*.trace`` / ``*.jsonl``) gets JSON-lines, which
    :func:`read_jsonl` round-trips and ``to_chrome_events`` can still
    convert later.
    """
    if os.fspath(path).endswith(".json"):
        return write_chrome(spans, path)
    return write_jsonl(spans, path)


# -- human-readable summaries ---------------------------------------

def _span_forest(spans: list[Span]) -> tuple[list[Span],
                                             dict[int, list[Span]]]:
    by_id = {s.span_id: s for s in spans}
    children: dict[int, list[Span]] = defaultdict(list)
    roots = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children[span.parent_id].append(span)
        else:
            roots.append(span)
    for sibling_list in children.values():
        sibling_list.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.start, s.span_id))
    return roots, children


#: Same-named siblings beyond this count collapse to one summary row.
_TREE_GROUP_AT = 4


def format_tree(spans: Iterable[Span]) -> str:
    """Render spans as an indented tree with durations and percents.

    Percentages are relative to the enclosing root span.  Bursts of
    same-named siblings (per-block BGZF spans, per-rank spans beyond a
    handful) are collapsed into one ``name xN`` aggregate row so the
    tree stays readable.
    """
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    if not spans:
        return "(no spans recorded)"
    roots, children = _span_forest(spans)
    lines: list[str] = []

    def label(span: Span) -> str:
        rank = f" rank={span.rank}" if span.rank is not None else ""
        cat = f" [{span.category}]" if span.category else ""
        extra = ""
        if span.name == "autotune":
            # Surface the cost_model provenance block inline so the
            # trace tree explains every auto scheduling decision.
            block = span.args.get("cost_model")
            if isinstance(block, dict):
                parts = [f"{k}={block[k]}" for k in
                         ("key", "hit", "shards_per_rank",
                          "batch_size", "resplits") if k in block]
                extra = " " + " ".join(parts)
        return f"{span.name}{cat}{rank}{extra}"

    def emit(text: str, duration: float, root_total: float,
             prefix: str, connector: str) -> None:
        pct = f"{duration / root_total * 100:5.1f}%" if root_total \
            else "     -"
        lines.append(f"{prefix}{connector}{text:<40} "
                     f"{duration * 1e3:10.3f} ms  {pct}")

    def walk(span: Span, prefix: str, is_last: bool,
             root_total: float) -> None:
        connector = "" if not prefix and is_last is None else \
            ("└─ " if is_last else "├─ ")
        emit(label(span), span.duration, root_total, prefix, connector)
        child_prefix = prefix if is_last is None \
            else prefix + ("   " if is_last else "│  ")
        groups: dict[tuple[str, int | None], list[Span]] = {}
        ordered: list[tuple[str, int | None]] = []
        for child in children.get(span.span_id, []):
            key = (child.name, child.rank)
            if key not in groups:
                groups[key] = []
                ordered.append(key)
            groups[key].append(child)
        rows: list[tuple[Span | None, list[Span]]] = []
        for key in ordered:
            members = groups[key]
            if len(members) >= _TREE_GROUP_AT:
                rows.append((None, members))
            else:
                rows.extend((m, [m]) for m in members)
        for i, (single, members) in enumerate(rows):
            last = i == len(rows) - 1
            if single is not None:
                walk(single, child_prefix, last, root_total)
            else:
                total = sum(m.duration for m in members)
                emit(f"{label(members[0])} x{len(members)}", total,
                     root_total, child_prefix,
                     "└─ " if last else "├─ ")

    for root in roots:
        walk(root, "", None, root.duration)
    return "\n".join(lines)


def format_summary(spans: Iterable[Span]) -> str:
    """Flat flame summary: per span name, count / total / self time.

    *Self* time is a span's duration minus its direct children's — the
    flame-graph quantity that makes the hot leaf obvious.
    """
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    if not spans:
        return "(no spans recorded)"
    _, children = _span_forest(spans)
    wall = max((s.end or s.start) for s in spans) \
        - min(s.start for s in spans)
    agg: dict[str, list[float]] = {}   # name -> [count, total, self]
    for span in spans:
        child_total = sum(c.duration
                          for c in children.get(span.span_id, []))
        row = agg.setdefault(span.name, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.duration
        row[2] += max(0.0, span.duration - child_total)
    lines = [f"{'span':<28} {'count':>6} {'total':>12} {'self':>12} "
             f"{'self%':>7}",
             "-" * 70]
    for name, (count, total, self_time) in sorted(
            agg.items(), key=lambda kv: -kv[1][2]):
        pct = f"{self_time / wall * 100:6.1f}%" if wall else "     -"
        lines.append(f"{name:<28} {count:>6} {total * 1e3:>10.3f}ms "
                     f"{self_time * 1e3:>10.3f}ms {pct:>7}")
    lines.append(f"{'wall':<28} {'':>6} {wall * 1e3:>10.3f}ms")
    return "\n".join(lines)
