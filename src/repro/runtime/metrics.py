"""Per-rank metrics and the simulated-cluster performance model.

The paper evaluates on a 256-core Opteron cluster; this reproduction runs
on whatever cores are available (possibly one).  Functional parallelism
is real (thread/process backends), but *scalability figures* are
regenerated analytically: every rank's work is executed and measured
individually (compute seconds, I/O seconds, bytes moved), and a cluster
model turns those per-rank measurements into a modeled parallel time:

``T_par(n) = max_r(compute_r) + IO(n) + alpha * ceil(log2 n)``

where ``IO(n)`` spreads the measured single-stream I/O over at most
``io_streams`` concurrent streams (the shared-storage ceiling that makes
the paper's I/O-heavy conversions flatten at high core counts), and the
log term models the collectives/barriers.  This is the standard
load-balance analysis for bulk-synchronous programs: the *shape* of the
resulting speedup curves — who scales, where the I/O bottleneck bites —
is determined by the measured work distribution, not by invented
numbers.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import RuntimeLayerError


@dataclass(slots=True)
class RankMetrics:
    """Measured work of one rank (or of the whole sequential run)."""

    compute_seconds: float = 0.0
    io_seconds: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    records: int = 0
    emitted: int = 0

    @property
    def total_seconds(self) -> float:
        """Compute plus I/O seconds."""
        return self.compute_seconds + self.io_seconds

    def merge(self, other: "RankMetrics") -> "RankMetrics":
        """Element-wise sum (e.g. combining phases of one rank)."""
        return RankMetrics(
            self.compute_seconds + other.compute_seconds,
            self.io_seconds + other.io_seconds,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
            self.records + other.records,
            self.emitted + other.emitted,
        )

    @contextmanager
    def timed_compute(self):
        """Context manager attributing the enclosed wall time to compute."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.compute_seconds += time.perf_counter() - t0

    @contextmanager
    def timed_io(self):
        """Context manager attributing the enclosed wall time to I/O."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.io_seconds += time.perf_counter() - t0


def merge_all(metrics: list[RankMetrics]) -> RankMetrics:
    """Sum a list of metrics into one aggregate."""
    total = RankMetrics()
    for m in metrics:
        total = total.merge(m)
    return total


@dataclass(frozen=True, slots=True)
class ClusterModel:
    """Parameters of the modeled cluster.

    Defaults mirror the paper's testbed: 8-core nodes, shared storage
    whose aggregate bandwidth saturates well below 128 concurrent
    streams, and sub-millisecond collectives.

    Attributes
    ----------
    cores_per_node:
        Cores per node (8 dual-core-CPU AMD Opteron nodes in the paper).
    io_streams:
        Number of concurrent I/O streams the shared storage sustains at
        full single-stream speed; beyond this, aggregate bandwidth is
        flat and I/O time stops shrinking.
    collective_alpha:
        Seconds per ``log2`` step of a barrier/reduction.
    """

    cores_per_node: int = 8
    io_streams: int = 48
    collective_alpha: float = 2e-4

    def nodes_for(self, nprocs: int) -> int:
        """Number of nodes hosting *nprocs* ranks."""
        return max(1, math.ceil(nprocs / self.cores_per_node))


DEFAULT_CLUSTER = ClusterModel()


def modeled_parallel_time(rank_metrics: list[RankMetrics],
                          model: ClusterModel = DEFAULT_CLUSTER) -> float:
    """Modeled wall time of one bulk-synchronous parallel phase.

    ``max`` over ranks of compute (ranks compute independently), plus
    I/O spread over at most ``model.io_streams`` streams but never
    faster than the slowest single rank's own I/O, plus the collective
    term.
    """
    if not rank_metrics:
        raise RuntimeLayerError("no rank metrics to model")
    n = len(rank_metrics)
    compute = max(m.compute_seconds for m in rank_metrics)
    io_serial = sum(m.io_seconds for m in rank_metrics)
    io_max = max(m.io_seconds for m in rank_metrics)
    io_time = max(io_serial / min(n, model.io_streams), io_max)
    collective = 0.0 if n == 1 \
        else model.collective_alpha * math.ceil(math.log2(n))
    return compute + io_time + collective


def modeled_speedup(sequential: RankMetrics,
                    rank_metrics: list[RankMetrics],
                    model: ClusterModel = DEFAULT_CLUSTER) -> float:
    """Speedup of the modeled parallel run over the sequential run."""
    t_par = modeled_parallel_time(rank_metrics, model)
    if t_par <= 0:
        raise RuntimeLayerError("modeled parallel time is not positive")
    return sequential.total_seconds / t_par


@dataclass(slots=True)
class SpeedupPoint:
    """One point of a speedup curve."""

    nprocs: int
    seq_seconds: float
    par_seconds: float

    @property
    def speedup(self) -> float:
        """Sequential over parallel time."""
        return self.seq_seconds / self.par_seconds

    @property
    def efficiency(self) -> float:
        """Speedup divided by rank count."""
        return self.speedup / self.nprocs


@dataclass(slots=True)
class SpeedupCurve:
    """A labelled series of :class:`SpeedupPoint` (one figure series)."""

    label: str
    points: list[SpeedupPoint] = field(default_factory=list)

    def add(self, nprocs: int, seq_seconds: float,
            par_seconds: float) -> None:
        """Append one measurement."""
        self.points.append(SpeedupPoint(nprocs, seq_seconds, par_seconds))

    def speedups(self) -> list[float]:
        """The speedup values in order."""
        return [p.speedup for p in self.points]

    def format_table(self) -> str:
        """Human-readable table, one row per core count."""
        lines = [f"series: {self.label}",
                 f"{'cores':>6} {'T_par(s)':>12} {'speedup':>9} "
                 f"{'efficiency':>11}"]
        for p in self.points:
            lines.append(f"{p.nprocs:>6} {p.par_seconds:>12.4f} "
                         f"{p.speedup:>9.2f} {p.efficiency:>11.2%}")
        return "\n".join(lines)
