"""Per-rank metrics and the simulated-cluster performance model.

The paper evaluates on a 256-core Opteron cluster; this reproduction runs
on whatever cores are available (possibly one).  Functional parallelism
is real (thread/process backends), but *scalability figures* are
regenerated analytically: every rank's work is executed and measured
individually (compute seconds, I/O seconds, bytes moved), and a cluster
model turns those per-rank measurements into a modeled parallel time:

``T_par(n) = max_r(compute_r) + IO(n) + alpha * ceil(log2 n)``

where ``IO(n)`` spreads the measured single-stream I/O over at most
``io_streams`` concurrent streams (the shared-storage ceiling that makes
the paper's I/O-heavy conversions flatten at high core counts), and the
log term models the collectives/barriers.  This is the standard
load-balance analysis for bulk-synchronous programs: the *shape* of the
resulting speedup curves — who scales, where the I/O bottleneck bites —
is determined by the measured work distribution, not by invented
numbers.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import RuntimeLayerError


@dataclass(slots=True)
class RankMetrics:
    """Measured work of one rank (or of the whole sequential run)."""

    compute_seconds: float = 0.0
    io_seconds: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    records: int = 0
    emitted: int = 0
    #: Lines the batch pipeline degraded to the per-record path.
    fallbacks: int = 0
    #: Columnar slabs the kernel layer degraded to the record path.
    kernel_fallbacks: int = 0

    @property
    def total_seconds(self) -> float:
        """Compute plus I/O seconds."""
        return self.compute_seconds + self.io_seconds

    def merge(self, other: "RankMetrics") -> "RankMetrics":
        """Element-wise sum (e.g. combining phases of one rank)."""
        return RankMetrics(
            self.compute_seconds + other.compute_seconds,
            self.io_seconds + other.io_seconds,
            self.bytes_read + other.bytes_read,
            self.bytes_written + other.bytes_written,
            self.records + other.records,
            self.emitted + other.emitted,
            self.fallbacks + other.fallbacks,
            self.kernel_fallbacks + other.kernel_fallbacks,
        )

    @classmethod
    def merge_shards(cls, shards: "list[RankMetrics]") -> "RankMetrics":
        """Fold the metrics of one rank's shards back into rank metrics.

        Counters (bytes, records, emitted) sum — the rank moved all of
        that data.  Time fields take the **max** over shards: shards of
        one rank run concurrently on the shared pool, so the rank's
        effective wall contribution is its slowest shard, not the sum
        (summing would erase exactly the load-balancing gain the shards
        exist to model).  Order-insensitive over the counters; max is
        order-insensitive too, so the whole fold is.
        """
        if not shards:
            raise RuntimeLayerError("no shard metrics to merge")
        return cls(
            compute_seconds=max(m.compute_seconds for m in shards),
            io_seconds=max(m.io_seconds for m in shards),
            bytes_read=sum(m.bytes_read for m in shards),
            bytes_written=sum(m.bytes_written for m in shards),
            records=sum(m.records for m in shards),
            emitted=sum(m.emitted for m in shards),
            fallbacks=sum(m.fallbacks for m in shards),
            kernel_fallbacks=sum(m.kernel_fallbacks for m in shards),
        )

    @contextmanager
    def timed_compute(self):
        """Context manager attributing the enclosed wall time to compute."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.compute_seconds += time.perf_counter() - t0

    @contextmanager
    def timed_io(self):
        """Context manager attributing the enclosed wall time to I/O."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.io_seconds += time.perf_counter() - t0


def merge_all(metrics: list[RankMetrics]) -> RankMetrics:
    """Sum a list of metrics into one aggregate."""
    total = RankMetrics()
    for m in metrics:
        total = total.merge(m)
    return total


class ServiceMetrics:
    """Thread-safe counters/gauges/timers for the conversion service.

    Three families, all named by plain strings so the service layer can
    add counters without touching this class:

    * **counters** — monotonically increasing (``jobs_submitted``,
      ``cache_hits``, ...);
    * **gauges** — last-set value (``queue_depth``, ``cache_bytes``);
    * **timers** — (count, total seconds) pairs (``job_wall_seconds``).

    ``snapshot()`` returns one plain dict safe to serialize over the
    service protocol; ``format_report()`` renders it for humans.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, tuple[int, float]] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        with self._lock:
            self._gauges[name] = value

    def add_gauge(self, name: str, delta: float) -> None:
        """Adjust gauge *name* by *delta* (creating it at zero)."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + delta

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer *name*."""
        with self._lock:
            count, total = self._timers.get(name, (0, 0.0))
            self._timers[name] = (count + 1, total + seconds)

    @contextmanager
    def timed(self, name: str):
        """Context manager observing the enclosed wall time as *name*."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    def counter(self, name: str) -> int:
        """Current value of counter *name* (zero if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        """Current value of gauge *name* (zero if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def snapshot(self) -> dict:
        """One consistent, JSON-serializable view of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {"count": count, "total_seconds": total,
                           "mean_seconds": total / count if count else 0.0}
                    for name, (count, total) in self._timers.items()
                },
            }

    def format_report(self) -> str:
        """Human-readable metrics table (``repro status --metrics``)."""
        return format_metrics_snapshot(self.snapshot())


def format_metrics_snapshot(snap: dict) -> str:
    """Render a :meth:`ServiceMetrics.snapshot` dict for humans.

    Module-level so protocol clients can format a snapshot received
    over the wire without reconstructing a ServiceMetrics.
    """
    lines = []
    for name in sorted(snap.get("counters", {})):
        lines.append(f"{name:<28} {snap['counters'][name]}")
    for name in sorted(snap.get("gauges", {})):
        lines.append(f"{name:<28} {snap['gauges'][name]:g}")
    for name in sorted(snap.get("timers", {})):
        t = snap["timers"][name]
        lines.append(f"{name:<28} count={t['count']} "
                     f"total={t['total_seconds']:.3f}s "
                     f"mean={t['mean_seconds']:.3f}s")
    return "\n".join(lines) if lines else "(no metrics recorded)"


@dataclass(frozen=True, slots=True)
class ClusterModel:
    """Parameters of the modeled cluster.

    Defaults mirror the paper's testbed: 8-core nodes, shared storage
    whose aggregate bandwidth saturates well below 128 concurrent
    streams, and sub-millisecond collectives.

    Attributes
    ----------
    cores_per_node:
        Cores per node (8 dual-core-CPU AMD Opteron nodes in the paper).
    io_streams:
        Number of concurrent I/O streams the shared storage sustains at
        full single-stream speed; beyond this, aggregate bandwidth is
        flat and I/O time stops shrinking.
    collective_alpha:
        Seconds per ``log2`` step of a barrier/reduction.
    """

    cores_per_node: int = 8
    io_streams: int = 48
    collective_alpha: float = 2e-4

    def nodes_for(self, nprocs: int) -> int:
        """Number of nodes hosting *nprocs* ranks."""
        return max(1, math.ceil(nprocs / self.cores_per_node))


DEFAULT_CLUSTER = ClusterModel()


def modeled_parallel_time(rank_metrics: list[RankMetrics],
                          model: ClusterModel = DEFAULT_CLUSTER) -> float:
    """Modeled wall time of one bulk-synchronous parallel phase.

    ``max`` over ranks of compute (ranks compute independently), plus
    I/O spread over at most ``model.io_streams`` streams but never
    faster than the slowest single rank's own I/O, plus the collective
    term.
    """
    if not rank_metrics:
        raise RuntimeLayerError("no rank metrics to model")
    n = len(rank_metrics)
    compute = max(m.compute_seconds for m in rank_metrics)
    io_serial = sum(m.io_seconds for m in rank_metrics)
    io_max = max(m.io_seconds for m in rank_metrics)
    io_time = max(io_serial / min(n, model.io_streams), io_max)
    collective = 0.0 if n == 1 \
        else model.collective_alpha * math.ceil(math.log2(n))
    return compute + io_time + collective


def modeled_speedup(sequential: RankMetrics,
                    rank_metrics: list[RankMetrics],
                    model: ClusterModel = DEFAULT_CLUSTER) -> float:
    """Speedup of the modeled parallel run over the sequential run."""
    t_par = modeled_parallel_time(rank_metrics, model)
    if t_par <= 0:
        raise RuntimeLayerError("modeled parallel time is not positive")
    return sequential.total_seconds / t_par


@dataclass(slots=True)
class SpeedupPoint:
    """One point of a speedup curve."""

    nprocs: int
    seq_seconds: float
    par_seconds: float

    @property
    def speedup(self) -> float:
        """Sequential over parallel time."""
        return self.seq_seconds / self.par_seconds

    @property
    def efficiency(self) -> float:
        """Speedup divided by rank count."""
        return self.speedup / self.nprocs


@dataclass(slots=True)
class SpeedupCurve:
    """A labelled series of :class:`SpeedupPoint` (one figure series)."""

    label: str
    points: list[SpeedupPoint] = field(default_factory=list)

    def add(self, nprocs: int, seq_seconds: float,
            par_seconds: float) -> None:
        """Append one measurement."""
        self.points.append(SpeedupPoint(nprocs, seq_seconds, par_seconds))

    def speedups(self) -> list[float]:
        """The speedup values in order."""
        return [p.speedup for p in self.points]

    def format_table(self) -> str:
        """Human-readable table, one row per core count."""
        lines = [f"series: {self.label}",
                 f"{'cores':>6} {'T_par(s)':>12} {'speedup':>9} "
                 f"{'efficiency':>11}"]
        for p in self.points:
            lines.append(f"{p.nprocs:>6} {p.par_seconds:>12.4f} "
                         f"{p.speedup:>9.2f} {p.efficiency:>11.2%}")
        return "\n".join(lines)
