"""Partitioning strategies: Algorithm 1 for delimited text, and
equal-record splitting for fixed-layout (BAMX) data.

The paper's Algorithm 1 splits a SAM file into byte ranges so that every
partition starts exactly at a record (line) boundary:

1. distribute the file evenly: rank *i* tentatively owns
   ``[i * L / N, (i + 1) * L / N)``;
2. every rank except 0 scans forward from its tentative start for the
   first line breaker and moves its start just past it;
3. ``end[i] = start[i + 1]`` (rank N-1 keeps the file end);
4. barrier; recompute lengths.

Consequences worth noting (and property-tested): partitions tile the
file exactly, each partition begins immediately after a ``\\n`` (or at
offset 0), and a rank whose tentative slice contains no newline ends up
with an *empty* partition — records are never split or duplicated.

This module offers the algorithm in two forms: a pure function computing
all boundaries at once (what the converters use), and a per-rank SPMD
form exchanging boundary values over a communicator exactly as the
pseudo-code does (used to validate the distributed protocol).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import PartitionError
from .comm import Communicator
from .tracing import get_tracer

#: Default number of bytes to read per probe while scanning for a
#: delimiter.  Large enough that one probe nearly always suffices for SAM.
PROBE_SIZE = 1 << 16

LINE_BREAKER = b"\n"


@dataclass(frozen=True, slots=True)
class Partition:
    """One rank's byte range ``[start, end)`` of a file."""

    rank: int
    start: int
    end: int

    @property
    def length(self) -> int:
        """Partition size in bytes (0 for an empty partition)."""
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise PartitionError(
                f"invalid partition [{self.start}, {self.end}) "
                f"for rank {self.rank}")


def even_split(length: int, nparts: int) -> list[tuple[int, int]]:
    """Tentative even byte split: ``nparts`` ranges tiling [0, length).

    Sizes differ by at most one byte; this is the "evenly distribute"
    step of Algorithm 1.
    """
    if nparts < 1:
        raise PartitionError(f"partition count {nparts} must be >= 1")
    if length < 0:
        raise PartitionError(f"negative length {length}")
    base, extra = divmod(length, nparts)
    bounds = []
    offset = 0
    for i in range(nparts):
        size = base + (1 if i < extra else 0)
        bounds.append((offset, offset + size))
        offset += size
    return bounds


def _scan_forward(read_at, start: int, length: int,
                  probe_size: int = PROBE_SIZE) -> int:
    """Offset just past the first line breaker at or after *start*.

    *read_at(offset, size)* must return up to *size* bytes at *offset*.
    Returns *length* when no breaker exists in ``[start, length)``.
    """
    offset = start
    while offset < length:
        chunk = read_at(offset, probe_size)
        if not chunk:
            break
        found = chunk.find(LINE_BREAKER)
        if found >= 0:
            return offset + found + 1
        offset += len(chunk)
    return length


def partition_text_file(path: str | os.PathLike[str], nparts: int,
                        probe_size: int = PROBE_SIZE) -> list[Partition]:
    """Algorithm 1 over a newline-delimited file, all ranks at once.

    The returned partitions tile ``[0, file_size)``; every partition
    start (except 0) immediately follows a line breaker.
    """
    length = os.path.getsize(path)
    with get_tracer().span("partition.algorithm1", "partition",
                           args={"nparts": nparts, "bytes": length}), \
            open(path, "rb") as fh:
        def read_at(offset: int, size: int) -> bytes:
            fh.seek(offset)
            return fh.read(size)
        return partition_bytes_source(read_at, length, nparts, probe_size)


def partition_bytes(data: bytes, nparts: int,
                    probe_size: int = PROBE_SIZE) -> list[Partition]:
    """Algorithm 1 over an in-memory byte string (tests, small inputs)."""
    def read_at(offset: int, size: int) -> bytes:
        return data[offset:offset + size]
    return partition_bytes_source(read_at, len(data), nparts, probe_size)


def partition_bytes_source(read_at, length: int, nparts: int,
                           probe_size: int = PROBE_SIZE) -> list[Partition]:
    """Algorithm 1 core, over any random-access byte source."""
    tentative = even_split(length, nparts)
    # Step 2: every rank except 0 advances its start past the first
    # line breaker at or after the tentative boundary.
    starts = [0] * nparts
    for rank in range(1, nparts):
        starts[rank] = _scan_forward(read_at, tentative[rank][0], length,
                                     probe_size)
    # Step 3: end[i] = start[i+1]; the last rank keeps the file end.
    partitions = []
    for rank in range(nparts):
        end = starts[rank + 1] if rank + 1 < nparts else length
        start = min(starts[rank], end)
        partitions.append(Partition(rank, start, end))
    return partitions


def partition_rank_spmd(comm: Communicator, path: str | os.PathLike[str],
                        probe_size: int = PROBE_SIZE) -> Partition:
    """Algorithm 1 as each rank executes it, boundary exchange included.

    This mirrors the pseudo-code line by line: rank ``i > 0`` finds its
    adjusted start and sends it to rank ``i - 1``, which uses it as its
    end; a barrier separates adjustment from length computation.
    """
    with get_tracer().span("partition.rank_spmd", "partition",
                           rank=comm.rank):
        length = os.path.getsize(path)
        tentative = even_split(length, comm.size)
        start = tentative[comm.rank][0]
        if comm.rank != 0:
            with open(path, "rb") as fh:
                def read_at(offset: int, size: int) -> bytes:
                    fh.seek(offset)
                    return fh.read(size)
                start = _scan_forward(read_at, start, length, probe_size)
            comm.send(start, comm.rank - 1, tag=1)
        if comm.rank != comm.size - 1:
            end = comm.recv(comm.rank + 1, tag=1)
        else:
            end = length
        comm.barrier()
        return Partition(comm.rank, min(start, end), end)


def partition_records(count: int, nparts: int) -> list[tuple[int, int]]:
    """Equal-record split used after BAMX preprocessing (§III-B).

    Returns ``nparts`` half-open index ranges tiling ``[0, count)`` whose
    sizes differ by at most one record.
    """
    return even_split(count, nparts)
