"""Self-tuning scheduler: the persistent cost model behind ``--shards
auto`` and mid-job straggler re-splitting.

The repo has had every ingredient of adaptive scheduling except the
feedback loop: span tracing measures per-shard durations,
:func:`~repro.runtime.executor.simulate_schedule` models LPT makespans,
and ``--shards``/``--batch-size`` are hand-tuned knobs.  This module
closes the loop:

* :class:`CostModel` — a small persistent profile of *observed*
  conversion cost, keyed by ``(target, store format, pipeline,
  input-size bucket)``.  Every observation folds into per-key EWMA
  statistics (mean seconds-per-unit, hottest shard's rate, the unit
  fraction carried by hot shards, per-batch-size rates), so the file
  stays a few KiB no matter how many jobs feed it.  Updates are atomic
  (tmp + ``os.replace``) and the key count is bounded (oldest keys
  evicted), so a crash mid-save or years of use cannot corrupt or
  bloat it.

* :class:`AutoTuner` — turns the model into decisions.
  :meth:`AutoTuner.begin_job` resolves ``"auto"`` knobs: it rebuilds
  the learned two-class cost distribution for every candidate
  ``shards_per_rank`` and asks :func:`simulate_schedule` which split
  has the best predicted makespan (a cold model falls back to the
  converter defaults, so un-profiled workloads never regress).  The
  returned :class:`JobTuning` also prices each shard so the executor
  layer can detect *stragglers* — a shard whose observed elapsed time
  exceeds ``straggler_factor`` x the model's prediction (or, on the
  sequential executor, x the median of completed siblings) is asked to
  yield its remaining byte range, which is re-split through the
  existing ``split``/``merge_shards`` reducer path.  Outputs stay
  byte-identical; only the schedule changes.

The service shares one tuner (and one model file) across all jobs and
mirrors its activity as ``autotune_*`` counters; the CLI builds a tuner
per command from ``--cost-model``/``REPRO_COST_MODEL``.  Every auto
decision is recorded as a ``cost_model`` provenance block on an
``autotune`` span inside the job's trace, so ``repro status --trace
JOB`` explains what was chosen and why.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import threading
from dataclasses import dataclass, field
from typing import Any

from ..errors import RuntimeLayerError
from .executor import default_worker_count, simulate_schedule

__all__ = [
    "CostModel", "AutoTuner", "JobTuning", "make_key", "size_bucket",
    "resolve_model_path", "AUTO", "DEFAULT_ALPHA", "DEFAULT_MAX_KEYS",
    "SHARD_CANDIDATES", "SHARD_OVERHEAD_SECONDS",
    "DEFAULT_STRAGGLER_FACTOR", "MIN_STRAGGLER_BUDGET",
]

#: The sentinel value of an auto-tuned knob (``--shards auto``).
AUTO = "auto"

#: EWMA weight of the newest observation.
DEFAULT_ALPHA = 0.3

#: Keys kept in the model file; the least recently updated are evicted.
DEFAULT_MAX_KEYS = 128

#: ``shards_per_rank`` values the tuner evaluates.
SHARD_CANDIDATES = (1, 2, 4, 8, 16, 32)

#: Modeled fixed cost of dispatching one shard on the shared pool
#: (submit + pickle + span bookkeeping).  This is what stops the
#: predicted makespan from improving forever as shards shrink.
SHARD_OVERHEAD_SECONDS = 1e-3

#: A shard is a straggler once its elapsed time exceeds this factor
#: times the model's prediction (or the median of completed siblings).
DEFAULT_STRAGGLER_FACTOR = 4.0

#: Floor under straggler budgets so sub-millisecond predictions cannot
#: make every shard "late" and thrash the re-split path.
MIN_STRAGGLER_BUDGET = 0.05

#: Re-split fan-out: a straggler's remaining range splits into up to
#: this many sub-shards.
DEFAULT_RESPLIT_FACTOR = 4

#: Re-split waves per job; the final wave runs un-budgeted so a job
#: always terminates even when every shard keeps missing its budget.
MAX_RESPLIT_ROUNDS = 2

#: Environment variable naming the default cost-model file.
MODEL_PATH_ENV = "REPRO_COST_MODEL"


def resolve_model_path(explicit: str | os.PathLike[str] | None = None,
                       ) -> str:
    """The cost-model file a CLI command should use.

    Preference order: explicit ``--cost-model`` argument, the
    ``REPRO_COST_MODEL`` environment variable, then the per-user
    default under ``~/.cache/repro/``.
    """
    if explicit is not None:
        return os.fspath(explicit)
    env = os.environ.get(MODEL_PATH_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "cost-model.json")


def size_bucket(units: float) -> int:
    """Bucket an input size into power-of-4 classes.

    Jobs whose total cost units (bytes for SAM text, records for BAMX
    stores) are within a factor of 4 share one bucket, so one profile
    key covers re-runs of similar inputs without conflating a 10 KiB
    smoke file with a 10 GiB production input.
    """
    if units <= 1:
        return 0
    return int(math.log(units, 4))


def make_key(target: str, store_format: str, pipeline: str,
             units: float) -> str:
    """The model key of one workload class."""
    return f"{target}|{store_format}|{pipeline}|b{size_bucket(units)}"


def _split_key(key: str) -> tuple[str, str, str, int]:
    target, store, pipeline, bucket = key.split("|")
    return target, store, pipeline, int(bucket[1:])


class CostModel:
    """Persistent EWMA profile of observed per-unit conversion cost.

    Parameters
    ----------
    path:
        JSON file holding the profile; ``None`` keeps the model
        in-memory only (used by converters that auto-create a private
        tuner).  An existing file is loaded eagerly; a corrupt file is
        treated as empty and remembered in :attr:`load_error` rather
        than raised — a damaged profile must never break a conversion.
    alpha:
        EWMA weight of the newest observation (0 < alpha <= 1).
    max_keys:
        Bounded-history cap: beyond it, the least recently updated
        keys are evicted on save.

    Per key the model stores:

    ``rate``
        EWMA of mean seconds per cost unit (the job's total wall over
        its total units).
    ``rate_max``
        EWMA of the *hottest* shard's seconds per unit — how expensive
        the densest region of this workload class is.
    ``hot_frac``
        EWMA of the fraction of units carried by above-average-rate
        shards.  ``rate``/``rate_max``/``hot_frac`` together describe a
        two-class cost distribution the tuner can re-simulate at any
        candidate shard count.
    ``batches``
        Mean rate per observed ``batch_size``, for ``--batch-size
        auto``.
    """

    def __init__(self, path: str | os.PathLike[str] | None = None,
                 alpha: float = DEFAULT_ALPHA,
                 max_keys: int = DEFAULT_MAX_KEYS) -> None:
        if not 0.0 < alpha <= 1.0:
            raise RuntimeLayerError(
                f"alpha {alpha} must be in (0, 1]")
        if max_keys < 1:
            raise RuntimeLayerError(
                f"max_keys {max_keys} must be >= 1")
        self.path = None if path is None else os.fspath(path)
        self.alpha = alpha
        self.max_keys = max_keys
        self.load_error: str | None = None
        self._lock = threading.Lock()
        self._keys: dict[str, dict[str, Any]] = {}
        self._clock = 0
        if self.path is not None:
            self._load()

    # -- persistence -------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            keys = doc["keys"]
            if not isinstance(keys, dict):
                raise ValueError("'keys' is not an object")
        except FileNotFoundError:
            return
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.load_error = f"{type(exc).__name__}: {exc}"
            return
        with self._lock:
            self._keys = {str(k): dict(v) for k, v in keys.items()}
            self._clock = max(
                (int(e.get("updated", 0)) for e in self._keys.values()),
                default=0)

    def save(self) -> None:
        """Atomically persist the profile (no-op for in-memory models).

        The document is written to ``<path>.tmp`` and moved into place
        with ``os.replace``, so readers never see a torn file.
        """
        if self.path is None:
            return
        with self._lock:
            self._evict_locked()
            doc = {
                "version": 1,
                "alpha": self.alpha,
                "keys": {k: dict(v) for k, v in self._keys.items()},
            }
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    def reset(self) -> None:
        """Forget every key and remove the model file."""
        with self._lock:
            self._keys.clear()
            self._clock = 0
        if self.path is not None:
            try:
                os.remove(self.path)
            except FileNotFoundError:
                pass

    def _evict_locked(self) -> None:
        if len(self._keys) <= self.max_keys:
            return
        ordered = sorted(self._keys,
                         key=lambda k: self._keys[k].get("updated", 0))
        for key in ordered[:len(self._keys) - self.max_keys]:
            del self._keys[key]

    # -- observation -------------------------------------------------

    def observe(self, key: str, pairs: list[tuple[float, float]],
                batch_size: int | None = None) -> None:
        """Fold one job's per-shard ``(units, seconds)`` pairs into the
        key's EWMA statistics.

        *pairs* come from real executions — per-rank on the static
        schedule, per-shard on the dynamic one — so the model learns
        from every run, not only from tuned ones.
        """
        pairs = [(float(u), float(s)) for u, s in pairs if u > 0]
        if not pairs:
            return
        total_units = sum(u for u, _ in pairs)
        total_seconds = sum(s for _, s in pairs)
        rate = total_seconds / total_units
        rates = [s / u for u, s in pairs]
        rate_max = max(rates)
        hot_units = sum(u for (u, _), r in zip(pairs, rates) if r > rate)
        hot_frac = hot_units / total_units
        with self._lock:
            self._clock += 1
            entry = self._keys.get(key)
            if entry is None:
                entry = self._keys[key] = {
                    "rate": rate, "rate_max": rate_max,
                    "hot_frac": hot_frac, "count": 0, "batches": {},
                }
            a = self.alpha
            entry["rate"] = (1 - a) * entry["rate"] + a * rate
            entry["rate_max"] = (1 - a) * entry["rate_max"] + a * rate_max
            entry["hot_frac"] = (1 - a) * entry["hot_frac"] + a * hot_frac
            entry["count"] = int(entry.get("count", 0)) + 1
            entry["updated"] = self._clock
            if batch_size is not None:
                batches = entry.setdefault("batches", {})
                prev = batches.get(str(int(batch_size)))
                batches[str(int(batch_size))] = rate if prev is None \
                    else (1 - a) * prev + a * rate
            self._evict_locked()

    # -- lookup ------------------------------------------------------

    def lookup(self, key: str) -> dict[str, Any] | None:
        """The key's statistics, or ``None`` when cold."""
        with self._lock:
            entry = self._keys.get(key)
            return dict(entry) if entry is not None else None

    def nearest(self, key: str) -> dict[str, Any] | None:
        """A neighbouring size bucket's statistics (same target, store
        and pipeline, bucket off by one) — per-unit rates transfer well
        across a factor-of-4 size difference, so a near miss still
        beats flying blind."""
        target, store, pipeline, bucket = _split_key(key)
        with self._lock:
            for delta in (-1, 1):
                candidate = f"{target}|{store}|{pipeline}|b{bucket + delta}"
                entry = self._keys.get(candidate)
                if entry is not None:
                    return dict(entry)
        return None

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every key's statistics (for ``repro tune show`` and tests)."""
        with self._lock:
            return {k: dict(v) for k, v in self._keys.items()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)


def _candidate_costs(entry: dict[str, Any], total_units: float,
                     tasks: int) -> list[float]:
    """Per-task cost list of the learned two-class distribution.

    ``hot_frac`` of the units cost ``rate_max`` seconds each; the rest
    cost whatever keeps the total at ``rate * total_units``.  This is
    the coarsest distribution consistent with the EWMA statistics —
    enough to make skew visible to :func:`simulate_schedule` without
    storing per-shard history.
    """
    rate = float(entry["rate"])
    rate_max = max(float(entry["rate_max"]), rate)
    hot_frac = min(max(float(entry["hot_frac"]), 0.0), 1.0)
    unit = total_units / tasks
    n_hot = min(tasks, round(hot_frac * tasks))
    if 0 < n_hot < tasks:
        cold_total = rate * total_units - rate_max * n_hot * unit
        rate_cold = max(cold_total / ((tasks - n_hot) * unit), 0.0)
    else:
        n_hot = 0
        rate_cold = rate
    costs = [rate_max * unit + SHARD_OVERHEAD_SECONDS] * n_hot
    costs += [rate_cold * unit + SHARD_OVERHEAD_SECONDS] \
        * (tasks - n_hot)
    return costs


@dataclass(slots=True)
class TuneDecision:
    """What the tuner chose for one job, and why."""

    key: str
    shards_per_rank: int
    batch_size: int
    hit: bool                      #: exact model key was warm
    borrowed: bool = False         #: a neighbour bucket supplied stats
    auto_shards: bool = False
    auto_batch: bool = False
    predicted_makespan: float | None = None
    predicted_static: float | None = None
    workers: int = 1


class AutoTuner:
    """Turns :class:`CostModel` statistics into scheduling decisions.

    Parameters
    ----------
    model:
        The cost model consulted and updated by every job.
    metrics:
        Optional :class:`~repro.runtime.metrics.ServiceMetrics`; when
        given (the service), decisions and re-splits are mirrored as
        ``autotune_*`` counters and gauges.
    workers:
        Worker count the candidate makespans are modeled over;
        defaults to the shared executor's cap.
    shard_candidates:
        ``shards_per_rank`` values evaluated for ``--shards auto``.
    straggler_factor:
        ``k`` in the straggler predicate ``elapsed > k x expected``.
    budget_override:
        Fixed straggler budget in seconds, bypassing the model —
        deterministic-test hook.
    resplit_factor:
        Sub-shards a straggler's remaining range is split into.
    """

    def __init__(self, model: CostModel,
                 metrics: Any | None = None,
                 workers: int | None = None,
                 shard_candidates: tuple[int, ...] = SHARD_CANDIDATES,
                 straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
                 budget_override: float | None = None,
                 resplit_factor: int = DEFAULT_RESPLIT_FACTOR) -> None:
        if straggler_factor <= 1.0:
            raise RuntimeLayerError(
                f"straggler_factor {straggler_factor} must be > 1")
        if resplit_factor < 2:
            raise RuntimeLayerError(
                f"resplit_factor {resplit_factor} must be >= 2")
        self.model = model
        self.metrics = metrics
        self.workers = default_worker_count() if workers is None \
            else workers
        self.shard_candidates = tuple(sorted(set(shard_candidates)))
        self.straggler_factor = straggler_factor
        self.budget_override = budget_override
        self.resplit_factor = resplit_factor

    # -- decisions ---------------------------------------------------

    def begin_job(self, target: str, store_format: str, pipeline: str,
                  total_units: float, nprocs: int,
                  shards: int | str = 1,
                  batch_size: int | str = 0,
                  default_batch: int | None = None) -> "JobTuning":
        """Resolve a job's knobs and return its :class:`JobTuning`.

        ``shards``/``batch_size`` may be concrete values (kept as-is;
        the tuner still prices shards and records observations) or
        :data:`AUTO`.  *default_batch* is the fallback for a cold
        ``batch_size auto`` (the converter's default).
        """
        if default_batch is None:
            from ..formats.batch import DEFAULT_BATCH_SIZE
            default_batch = DEFAULT_BATCH_SIZE
        key = make_key(target, store_format, pipeline, total_units)
        entry = self.model.lookup(key)
        hit = entry is not None
        borrowed = False
        if entry is None:
            entry = self.model.nearest(key)
            borrowed = entry is not None
        decision = TuneDecision(
            key=key,
            shards_per_rank=1 if shards == AUTO else int(shards),
            batch_size=default_batch if batch_size == AUTO
            else int(batch_size),
            hit=hit, borrowed=borrowed,
            auto_shards=shards == AUTO, auto_batch=batch_size == AUTO,
            workers=self.workers)
        if entry is not None:
            static = simulate_schedule(
                _candidate_costs(entry, total_units, nprocs),
                self.workers)
            decision.predicted_static = static
            if shards == AUTO:
                decision.shards_per_rank, decision.predicted_makespan = \
                    self._choose_shards(entry, total_units, nprocs)
            if batch_size == AUTO:
                decision.batch_size = self._choose_batch(
                    entry, default_batch)
        if self.metrics is not None:
            self.metrics.inc("autotune_jobs")
            self.metrics.inc("autotune_model_hits" if hit
                             else "autotune_model_misses")
            if decision.auto_shards or decision.auto_batch:
                self.metrics.inc("autotune_auto_jobs")
        return JobTuning(self, decision, entry, total_units)

    def _choose_shards(self, entry: dict[str, Any], total_units: float,
                       nprocs: int) -> tuple[int, float]:
        """The candidate whose simulated LPT makespan is (near-)best.

        Among candidates within 5% of the minimum the *smallest* wins —
        extra decomposition that buys nothing just costs dispatch
        overhead and trace noise.
        """
        makespans: dict[int, float] = {}
        for n in self.shard_candidates:
            costs = _candidate_costs(entry, total_units, nprocs * n)
            makespans[n] = simulate_schedule(costs, self.workers)
        best = min(makespans.values())
        for n in self.shard_candidates:
            if makespans[n] <= best * 1.05:
                return n, makespans[n]
        return 1, makespans[1]

    @staticmethod
    def _choose_batch(entry: dict[str, Any], default_batch: int) -> int:
        batches = entry.get("batches") or {}
        rated = [(rate, int(size)) for size, rate in batches.items()]
        if not rated:
            return default_batch
        return min(rated)[1]

    # -- straggler pricing -------------------------------------------

    def shard_budget(self, entry: dict[str, Any] | None,
                     units: float) -> float | None:
        """Seconds a shard of *units* may run before it is a straggler.

        ``None`` (cold model, no override) defers to the sibling-median
        fallback where the executor supports it.
        """
        if self.budget_override is not None:
            return self.budget_override
        if entry is None:
            return None
        predicted = float(entry["rate_max"]) * units \
            + SHARD_OVERHEAD_SECONDS
        return max(self.straggler_factor * predicted,
                   MIN_STRAGGLER_BUDGET)

    def sibling_budget(self, completed: list[float]) -> float | None:
        """Straggler budget from completed siblings' durations
        (sequential-executor fallback for a cold model)."""
        if self.budget_override is not None:
            return self.budget_override
        if not completed:
            return None
        return max(self.straggler_factor * statistics.median(completed),
                   MIN_STRAGGLER_BUDGET)


@dataclass(slots=True)
class JobTuning:
    """One job's resolved knobs, straggler pricing, and feedback sink.

    Converters create this via :meth:`AutoTuner.begin_job`, build their
    specs with :attr:`shards_per_rank`/:attr:`batch_size`, pass it to
    ``execute_rank_tasks``, and call :meth:`finish` when done.
    """

    tuner: AutoTuner
    decision: TuneDecision
    entry: dict[str, Any] | None
    total_units: float
    resplits: int = 0
    resplit_shards: int = 0
    observed: list[tuple[float, float]] = field(default_factory=list)
    observed_makespan: float = 0.0

    @property
    def shards_per_rank(self) -> int:
        """The resolved over-decomposition factor."""
        return self.decision.shards_per_rank

    @property
    def batch_size(self) -> int:
        """The resolved batch size."""
        return self.decision.batch_size

    @property
    def resplit_factor(self) -> int:
        """Sub-shards a straggler's remainder splits into."""
        return self.tuner.resplit_factor

    def budget_for(self, units: float) -> float | None:
        """Model-predicted straggler budget for a shard of *units*."""
        return self.tuner.shard_budget(self.entry, units)

    def sibling_budget(self, completed: list[float]) -> float | None:
        """Sibling-median straggler budget (see :class:`AutoTuner`)."""
        return self.tuner.sibling_budget(completed)

    def note_resplit(self, sub_shards: int) -> None:
        """Count one straggler re-split producing *sub_shards* pieces."""
        self.resplits += 1
        self.resplit_shards += sub_shards
        if self.tuner.metrics is not None:
            self.tuner.metrics.inc("autotune_resplits")

    def note_completion(self, elapsed: float) -> None:
        """Record one shard's completion time since dispatch started."""
        if elapsed > self.observed_makespan:
            self.observed_makespan = elapsed

    def observe(self, pairs: list[tuple[float, float]]) -> None:
        """Collect measured ``(units, seconds)`` pairs for the model."""
        self.observed.extend(pairs)

    def finish(self) -> None:
        """Fold the job's observations into the model and persist it."""
        if self.observed:
            self.tuner.model.observe(self.decision.key, self.observed,
                                     batch_size=self.decision.batch_size)
            self.observed.clear()
            try:
                self.tuner.model.save()
            except OSError:
                # A read-only or vanished model directory must not
                # fail the conversion that produced correct output.
                pass
        if self.tuner.metrics is not None:
            self.tuner.metrics.set_gauge("autotune_model_keys",
                                         len(self.tuner.model))

    def provenance(self) -> dict[str, Any]:
        """The ``cost_model`` block recorded in traced job spans."""
        d = self.decision
        block: dict[str, Any] = {
            "path": self.tuner.model.path,
            "key": d.key,
            "hit": d.hit,
            "borrowed": d.borrowed,
            "shards_per_rank": d.shards_per_rank,
            "batch_size": d.batch_size,
            "auto_shards": d.auto_shards,
            "auto_batch": d.auto_batch,
            "workers": d.workers,
            "resplits": self.resplits,
        }
        if d.predicted_makespan is not None:
            block["predicted_makespan"] = round(d.predicted_makespan, 6)
        if d.predicted_static is not None:
            block["predicted_static"] = round(d.predicted_static, 6)
        if self.observed_makespan:
            block["observed_makespan"] = round(self.observed_makespan, 6)
        return block
