"""MPI-style communicator abstraction.

The paper's system is C++/MPI; this module provides the same programming
model — ``rank``/``size``, point-to-point ``send``/``recv``, and the
collectives the converters and Algorithm 2 need — over three backends:

* :class:`SerialComm` — size 1, for sequential execution;
* :class:`ThreadComm` — ranks as threads in one process (shared memory);
* a process backend in :mod:`repro.runtime.spmd` for real parallelism.

Only blocking operations are provided because the paper's algorithms are
bulk-synchronous: communicate at phase boundaries, barrier, proceed.
"""

from __future__ import annotations

import queue
import threading
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any

from ..errors import RuntimeLayerError


def _check_rank(rank: int, size: int, label: str) -> None:
    if not 0 <= rank < size:
        raise RuntimeLayerError(f"{label} {rank} outside [0, {size})")


class Communicator(ABC):
    """Abstract bulk-synchronous communicator (MPI subset)."""

    #: This process's 0-based rank.
    rank: int
    #: Number of ranks in the world.
    size: int

    @abstractmethod
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send of a picklable object to rank *dest*."""

    @abstractmethod
    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of the next object from rank *source*."""

    @abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""

    # -- collectives built on point-to-point ------------------------------

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast *obj* from *root*; every rank returns the value."""
        _check_rank(root, self.size, "root")
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=-1)
            return obj
        return self.recv(root, tag=-1)

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one value per rank from *root*'s sequence."""
        _check_rank(root, self.size, "root")
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise RuntimeLayerError(
                    "scatter requires exactly one value per rank at root")
            for dest in range(self.size):
                if dest != root:
                    self.send(values[dest], dest, tag=-2)
            return values[root]
        return self.recv(root, tag=-2)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather every rank's value at *root* (None elsewhere)."""
        _check_rank(root, self.size, "root")
        if self.rank == root:
            out = [None] * self.size
            out[root] = obj
            for source in range(self.size):
                if source != root:
                    out[source] = self.recv(source, tag=-3)
            return out
        self.send(obj, root, tag=-3)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather every rank's value on every rank."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any],
               root: int = 0) -> Any | None:
        """Reduce values with binary *op* at *root* (None elsewhere)."""
        gathered = self.gather(value, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce on rank 0 then broadcast the result to everyone."""
        reduced = self.reduce(value, op, root=0)
        return self.bcast(reduced, root=0)


class SerialComm(Communicator):
    """The trivial single-rank world."""

    rank = 0
    size = 1

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        raise RuntimeLayerError("cannot send in a single-rank world")

    def recv(self, source: int, tag: int = 0) -> Any:
        raise RuntimeLayerError("cannot recv in a single-rank world")

    def barrier(self) -> None:
        return

    def bcast(self, obj: Any, root: int = 0) -> Any:
        _check_rank(root, 1, "root")
        return obj

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        _check_rank(root, 1, "root")
        if values is None or len(values) != 1:
            raise RuntimeLayerError("scatter requires one value per rank")
        return values[0]

    def gather(self, obj: Any, root: int = 0) -> list[Any]:
        _check_rank(root, 1, "root")
        return [obj]


class _ThreadWorld:
    """Shared state for one :class:`ThreadComm` world."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise RuntimeLayerError(f"world size {size} must be >= 1")
        self.size = size
        # mailboxes[dest][source] keeps per-pair FIFO ordering.
        self.mailboxes = [
            [queue.SimpleQueue() for _ in range(size)] for _ in range(size)]
        self.barrier = threading.Barrier(size)


class ThreadComm(Communicator):
    """One rank of a threads-in-one-process world.

    Create the shared world once with :meth:`create_world`, then hand one
    communicator to each rank's thread.
    """

    def __init__(self, world: _ThreadWorld, rank: int) -> None:
        _check_rank(rank, world.size, "rank")
        self._world = world
        self.rank = rank
        self.size = world.size

    @classmethod
    def create_world(cls, size: int) -> list["ThreadComm"]:
        """Build a world of *size* communicators sharing mailboxes."""
        world = _ThreadWorld(size)
        return [cls(world, rank) for rank in range(size)]

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        _check_rank(dest, self.size, "dest")
        if dest == self.rank:
            raise RuntimeLayerError("send to self would deadlock")
        self._world.mailboxes[dest][self.rank].put((tag, obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        _check_rank(source, self.size, "source")
        if source == self.rank:
            raise RuntimeLayerError("recv from self would deadlock")
        got_tag, obj = self._world.mailboxes[self.rank][source].get()
        if got_tag != tag:
            raise RuntimeLayerError(
                f"rank {self.rank} expected tag {tag} from {source}, "
                f"got {got_tag} (mismatched protocol)")
        return obj

    def barrier(self) -> None:
        self._world.barrier.wait()
