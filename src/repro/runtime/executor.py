"""Persistent shared worker pool with dynamic task dispatch.

The paper removes the *sequential* bottleneck; this module removes the
*launch* bottleneck that was left behind: every ``execute_rank_tasks``
call used to build a fresh thread pool or fork a fresh process pool,
pay its startup cost, and tear it down again — and the job service paid
that price once per job.  htslib's answer (the long-lived shared thread
pool of "Twelve years of SAMtools and BCFtools", Danecek et al. 2021)
is the production shape: **one** lazily-started pool per process, warm
across calls, many small work items pulled dynamically.

:class:`SharedExecutor` provides exactly that:

* lazily-created thread *and* forked-process pools, reused across
  calls (``stats()["process_pool_starts"]`` stays at 1 over a burst of
  conversions);
* worker counts capped at ``os.cpu_count()`` by default — never one
  thread per rank;
* ``fork`` start method where the platform has it, transparent
  fallback to ``spawn`` elsewhere (work is always submitted as
  ``fn(item)`` with picklable module-level functions, which both
  start methods can ship);
* idle-timeout shutdown: pools that sit unused are torn down by a
  timer and lazily recreated on the next call;
* dynamic dispatch: :meth:`SharedExecutor.map_tasks` submits items in
  descending cost order (longest-shard-first), so whichever worker
  frees up pulls the next-largest remaining item — the classic LPT
  greedy schedule;
* crash containment: a worker dying mid-task surfaces as
  :class:`ExecutorFailure` naming the task's label (shard id), the
  broken pool is discarded, and the next call gets a fresh one.

Ordinary exceptions *raised by* a task propagate unchanged (the pool
is unharmed); :class:`ExecutorFailure` is reserved for the pool
machinery itself breaking under a task.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_EXCEPTION, BrokenExecutor, \
    Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Any

from ..errors import RuntimeLayerError

__all__ = [
    "ExecutorFailure", "SharedExecutor", "get_shared_executor",
    "reset_shared_executor", "shared_executor_stats",
    "resolve_start_method", "simulate_schedule",
    "default_worker_count", "DEFAULT_IDLE_TIMEOUT", "POOL_KINDS",
]

#: Pool kinds :meth:`SharedExecutor.map_tasks` accepts.
POOL_KINDS = ("thread", "process")

#: Seconds an unused pool survives before the idle timer reclaims it.
DEFAULT_IDLE_TIMEOUT = 120.0


class ExecutorFailure(RuntimeLayerError):
    """A pool worker died (or the pool broke) while running a task.

    Mirrors :class:`~repro.runtime.spmd.SpmdFailure`: the message names
    the failing work item (its rank/shard label) and the underlying
    cause, so a crash inside one shard of one rank is attributable.
    """

    def __init__(self, label: str, detail: str) -> None:
        self.label = label
        self.detail = detail
        super().__init__(f"worker pool task [{label}] failed: {detail}")


def _pool_worker_init() -> None:
    """Worker initializer: disabled tracer, SIGINT ignored.

    A forked worker inherits whatever tracer the parent had installed
    at pool-creation time; traced runs always ship spans explicitly
    (child tracer + epoch in the payload), so the inherited global must
    not also record.  Ctrl-C is the parent's to handle: a terminal
    SIGINT reaches the whole foreground process group, and an idle
    warm worker would die printing a KeyboardInterrupt traceback while
    the parent shuts the pool down cleanly.  Module-level so ``spawn``
    can pickle it.
    """
    import signal
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from .tracing import Tracer, install
    install(Tracer(enabled=False))


def default_worker_count() -> int:
    """The worker cap a default-constructed :class:`SharedExecutor`
    would use: ``REPRO_EXECUTOR_WORKERS`` when set (validated the same
    way), else ``os.cpu_count()``.

    Lets schedule modeling (the autotuner) know the pool width without
    forcing the global executor into existence.
    """
    env = os.environ.get("REPRO_EXECUTOR_WORKERS")
    if not env:
        return os.cpu_count() or 1
    try:
        workers = int(env)
    except ValueError:
        raise RuntimeLayerError(
            f"invalid REPRO_EXECUTOR_WORKERS value {env!r}: expected "
            f"a positive integer") from None
    if workers < 1:
        raise RuntimeLayerError(
            f"invalid REPRO_EXECUTOR_WORKERS value {env!r}: must be "
            f">= 1")
    return workers


def resolve_start_method(start_method: str | None = None) -> str:
    """The multiprocessing start method the process pool will use.

    Preference order: explicit argument, ``REPRO_EXECUTOR_START_METHOD``
    environment variable, ``fork`` when the platform offers it, else
    ``spawn`` (the fork-unsafe-platform fallback).
    """
    if start_method is None:
        start_method = os.environ.get("REPRO_EXECUTOR_START_METHOD") \
            or None
    available = mp.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in available else "spawn"
    if start_method not in available:
        raise RuntimeLayerError(
            f"start method {start_method!r} unavailable on this "
            f"platform; choose from {available}")
    return start_method


class SharedExecutor:
    """Lazily-started, reusable thread + process pools behind one front.

    Parameters
    ----------
    max_workers:
        Worker cap per pool; defaults to ``REPRO_EXECUTOR_WORKERS`` or
        ``os.cpu_count()``.  Ranks/shards beyond the cap queue inside
        the pool — never one thread per spec.
    idle_timeout:
        Seconds of disuse after which live pools are shut down (they
        are recreated lazily on the next call).  ``None`` or ``<= 0``
        disables the timer; defaults to ``REPRO_EXECUTOR_IDLE_TIMEOUT``
        or :data:`DEFAULT_IDLE_TIMEOUT`.
    start_method:
        Multiprocessing start method; see :func:`resolve_start_method`.
    """

    def __init__(self, max_workers: int | None = None,
                 idle_timeout: float | None = None,
                 start_method: str | None = None) -> None:
        if max_workers is None:
            # Validates REPRO_EXECUTOR_WORKERS with a friendly error
            # naming the bad value instead of a raw int() traceback.
            max_workers = default_worker_count()
        if max_workers < 1:
            raise RuntimeLayerError(
                f"max_workers {max_workers} must be >= 1")
        if idle_timeout is None:
            env = os.environ.get("REPRO_EXECUTOR_IDLE_TIMEOUT")
            idle_timeout = float(env) if env else DEFAULT_IDLE_TIMEOUT
        self.max_workers = max_workers
        self.idle_timeout = idle_timeout
        self.start_method = resolve_start_method(start_method)
        self._lock = threading.RLock()
        self._thread_pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._timer: threading.Timer | None = None
        self._active_calls = 0
        self._last_used = time.monotonic()
        self._counters = {
            "calls": 0,
            "tasks_completed": 0,
            "tasks_failed": 0,
            "thread_pool_starts": 0,
            "process_pool_starts": 0,
            "idle_shutdowns": 0,
        }

    # -- pool lifecycle ----------------------------------------------

    def _get_pool(self, kind: str):
        # Called with the lock held.
        if kind == "thread":
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-exec")
                self._counters["thread_pool_starts"] += 1
            return self._thread_pool
        if self._process_pool is None:
            ctx = mp.get_context(self.start_method)
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=ctx,
                initializer=_pool_worker_init)
            self._counters["process_pool_starts"] += 1
        return self._process_pool

    def _take_pools(self) -> list[Any]:
        # Called with the lock held; detaches live pools for shutdown.
        pools = [p for p in (self._thread_pool, self._process_pool)
                 if p is not None]
        self._thread_pool = None
        self._process_pool = None
        return pools

    def _discard_process_pool(self) -> None:
        """Drop a broken process pool so the next call starts fresh."""
        with self._lock:
            pool, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=False)

    def _arm_idle_timer(self) -> None:
        with self._lock:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            if not self.idle_timeout or self.idle_timeout <= 0:
                return
            if self._thread_pool is None and self._process_pool is None:
                return
            timer = threading.Timer(self.idle_timeout, self._idle_check)
            timer.daemon = True
            timer.start()
            self._timer = timer

    def _idle_check(self) -> None:
        with self._lock:
            idle_for = time.monotonic() - self._last_used
            expired = (self._active_calls == 0
                       and idle_for >= self.idle_timeout)
            pools = self._take_pools() if expired else []
            if pools:
                self._counters["idle_shutdowns"] += 1
                self._timer = None
        if pools:
            for pool in pools:
                pool.shutdown(wait=False)
        else:
            self._arm_idle_timer()

    def shutdown(self, wait_for_tasks: bool = True) -> None:
        """Stop both pools (they are recreated lazily if used again)."""
        with self._lock:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            pools = self._take_pools()
        for pool in pools:
            pool.shutdown(wait=wait_for_tasks)

    # -- dispatch ----------------------------------------------------

    def map_tasks(self, fn: Callable[[Any], Any], items: Sequence[Any],
                  kind: str, labels: Sequence[str] | None = None,
                  costs: Sequence[float] | None = None,
                  progress: Callable[[int, Any, float], None] | None
                  = None) -> list[Any]:
        """Run ``fn(item)`` for every item on the *kind* pool.

        Items are submitted in descending *costs* order
        (longest-first), so the pool's work queue realizes a dynamic
        LPT schedule: whichever worker frees up pulls the largest
        remaining item.  Results come back in **input order**
        regardless.

        *progress*, when given, is invoked as ``progress(index, result,
        elapsed)`` once per successfully completed item — *index* is
        the item's input position and *elapsed* the seconds since
        dispatch began.  Callbacks run on pool/callback threads as
        items finish (not in input order) and must be cheap and
        exception-free; the autotuner uses them to watch a wave
        complete in real time.  Failed or cancelled items produce no
        callback.

        A task raising an ordinary exception propagates that exception
        unchanged after the remaining futures settle.  A worker *crash*
        (broken pool) raises :class:`ExecutorFailure` carrying the
        first affected item's label; the broken pool is discarded so
        the executor survives for the next call.
        """
        if kind not in POOL_KINDS:
            raise RuntimeLayerError(
                f"unknown pool kind {kind!r}; choose from {POOL_KINDS}")
        items = list(items)
        if not items:
            return []
        order = list(range(len(items)))
        if costs is not None:
            if len(costs) != len(items):
                raise RuntimeLayerError(
                    f"{len(costs)} costs for {len(items)} items")
            order.sort(key=lambda i: -costs[i])
        with self._lock:
            pool = self._get_pool(kind)
            self._active_calls += 1
            self._counters["calls"] += 1
        dispatch_start = time.monotonic()

        def _notify(index: int) -> Callable[[Future], None]:
            def _done(future: Future) -> None:
                if future.cancelled() or future.exception() is not None:
                    return
                try:
                    progress(index, future.result(),
                             time.monotonic() - dispatch_start)
                except Exception:
                    pass  # observer must never poison the schedule
            return _done

        try:
            futures: dict[int, Future] = {}
            try:
                for i in order:
                    futures[i] = pool.submit(fn, items[i])
                    if progress is not None:
                        futures[i].add_done_callback(_notify(i))
            except BrokenExecutor as exc:
                for future in futures.values():
                    future.cancel()
                self._fail(kind, self._label(labels, order[len(futures)]),
                           exc)
            wait(futures.values(), return_when=FIRST_EXCEPTION)
            failed = [i for i in order
                      if futures[i].done() and not futures[i].cancelled()
                      and futures[i].exception() is not None]
            if failed:
                for future in futures.values():
                    future.cancel()
                wait(futures.values())  # let in-flight tasks settle
                first = failed[0]
                exc = futures[first].exception()
                assert exc is not None
                if isinstance(exc, BrokenExecutor):
                    self._fail(kind, self._label(labels, first), exc)
                raise exc
            results = [futures[i].result() for i in range(len(items))]
            with self._lock:
                self._counters["tasks_completed"] += len(items)
            return results
        finally:
            with self._lock:
                self._active_calls -= 1
                self._last_used = time.monotonic()
            self._arm_idle_timer()

    def _fail(self, kind: str, label: str, exc: BaseException) -> None:
        with self._lock:
            self._counters["tasks_failed"] += 1
        if kind == "process":
            self._discard_process_pool()
        raise ExecutorFailure(
            label, f"{type(exc).__name__}: {exc}") from exc

    @staticmethod
    def _label(labels: Sequence[str] | None, index: int) -> str:
        if labels is not None and index < len(labels):
            return labels[index]
        return f"task {index}"

    # -- introspection -----------------------------------------------

    def stats(self) -> dict[str, float]:
        """Counters plus live-pool gauges (for tests and service
        metrics)."""
        with self._lock:
            out: dict[str, float] = dict(self._counters)
            out["max_workers"] = self.max_workers
            out["thread_pool_alive"] = int(self._thread_pool is not None)
            out["process_pool_alive"] = int(
                self._process_pool is not None)
            out["active_calls"] = self._active_calls
        return out


# -- the process-global instance ------------------------------------

_SHARED: SharedExecutor | None = None
_SHARED_LOCK = threading.Lock()


def get_shared_executor() -> SharedExecutor:
    """The process-global executor, created lazily on first use."""
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            _SHARED = SharedExecutor()
        return _SHARED


def reset_shared_executor() -> None:
    """Shut down and forget the process-global executor.

    Test/bench hook: the next :func:`get_shared_executor` call builds a
    cold one, which is how per-call pool startup is measured.
    """
    global _SHARED
    with _SHARED_LOCK:
        shared, _SHARED = _SHARED, None
    if shared is not None:
        shared.shutdown()


def shared_executor_stats() -> dict[str, float]:
    """Stats of the global executor *without* creating it (empty dict
    when no call has started it yet)."""
    with _SHARED_LOCK:
        shared = _SHARED
    return shared.stats() if shared is not None else {}


# -- schedule modeling ----------------------------------------------

def simulate_schedule(costs: Sequence[float], workers: int,
                      longest_first: bool = True) -> float:
    """Makespan of greedy list scheduling of *costs* over *workers*.

    With ``longest_first=True`` this is the LPT schedule
    :meth:`SharedExecutor.map_tasks` realizes (items sorted by
    descending cost, each assigned to the earliest-free worker); with
    ``False`` the given order is kept (the arrival-order schedule).
    Used by the scaling bench to model dynamic-shard vs static-rank
    makespans from measured per-item durations, the same
    measure-then-model methodology as the figure benches, and by the
    autotuner to compare candidate shard counts.

    The makespan contract (asserted by tests/test_executor.py):

    * an empty cost list returns ``0.0`` — no work takes no time;
    * ``workers > len(costs)`` behaves as ``workers == len(costs)``:
      every task gets its own worker and the makespan is
      ``max(costs)``;
    * zero-cost tasks are legal and contribute nothing;
    * ``workers == 1`` degenerates to ``sum(costs)`` regardless of
      ``longest_first``;
    * ``workers < 1`` raises :class:`~repro.errors.RuntimeLayerError`.
    """
    if workers < 1:
        raise RuntimeLayerError(f"workers {workers} must be >= 1")
    seq = sorted(costs, reverse=True) if longest_first else list(costs)
    if not seq:
        return 0.0
    free = [0.0] * min(workers, len(seq))
    heapq.heapify(free)
    for cost in seq:
        heapq.heappush(free, heapq.heappop(free) + float(cost))
    return max(free)
