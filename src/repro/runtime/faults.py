"""Deterministic fault injection for the service's recovery paths.

Crash recovery, cache quarantine and journal replay are only real if
something exercises them.  This module provides a process-global
registry of *named injection points* compiled into the code paths that
must survive faults; a disarmed point costs one module-global boolean
check, so production runs pay nothing.

Points are armed through the ``REPRO_FAULTS`` environment variable (or
:func:`arm` directly)::

    REPRO_FAULTS="cache.fetch:partial-write:1.0:7,journal.append:delay"

Each comma-separated spec is ``point:kind[:prob[:seed]]``:

``point``
    One of the catalog in :data:`POINTS` (arming an unknown point is
    an error — a typo must not silently disarm a test).
``kind``
    * ``exception`` — raise :class:`~repro.errors.FaultInjectedError`;
    * ``delay`` — sleep :data:`DELAY_SECONDS`, then continue;
    * ``partial-write`` — truncate the bytes being written (only at
      write-shaped call sites; elsewhere it degrades to ``exception``);
    * ``crash`` — ``os._exit(CRASH_EXIT_CODE)``, simulating SIGKILL.
``prob``
    Per-evaluation fire probability (default 1.0).
``seed``
    Seed of the point's private :class:`random.Random` (default 0), so
    a given spec fires on exactly the same evaluation sequence in
    every run.

Call sites use :func:`fire` (control-flow faults) and
:func:`corrupt` / :func:`should_corrupt` (data faults)::

    faults.fire("scheduler.attempt")
    payload = faults.corrupt("journal.append", payload)

The registry is armed from the environment at import time, so armed
subprocesses (``repro serve`` under the crash smoke test) need no code
changes, and :func:`snapshot` reports evaluation/fire counters per
point for assertions.
"""

from __future__ import annotations

import os
import random
import threading
import time

from ..errors import FaultInjectedError, ReproError

#: Catalog of injection points compiled into the codebase.
POINTS = (
    "cache.build",        # ArtifactCache._build, after the builder ran
    "cache.fetch",        # ArtifactCache verification on every fetch
    "journal.append",     # JobJournal.append, around the write
    "scheduler.attempt",  # WorkerPool, at the start of each attempt
    "gateway.dispatch",   # Dispatcher.dispatch, before op routing
    "shard.batch",        # SAM batch pipeline, once per record batch
)

#: Fault kinds a point can be armed with.
KINDS = ("exception", "delay", "partial-write", "crash")

#: Sleep injected by ``delay`` faults.
DELAY_SECONDS = 0.05

#: Exit code of ``crash`` faults (distinguishable from real crashes).
CRASH_EXIT_CODE = 86


class _ArmedPoint:
    """Mutable state of one armed injection point."""

    __slots__ = ("point", "kind", "prob", "seed", "rng",
                 "evaluations", "fires")

    def __init__(self, point: str, kind: str, prob: float,
                 seed: int) -> None:
        self.point = point
        self.kind = kind
        self.prob = prob
        self.seed = seed
        self.rng = random.Random(seed)
        self.evaluations = 0
        self.fires = 0

    def should_fire(self) -> bool:
        self.evaluations += 1
        if self.prob >= 1.0 or self.rng.random() < self.prob:
            self.fires += 1
            return True
        return False


_lock = threading.Lock()
_points: dict[str, _ArmedPoint] = {}
#: Fast-path flag: the *only* thing a disarmed :func:`fire` reads.
_armed = False


def parse_spec(text: str) -> list[tuple[str, str, float, int]]:
    """Parse a ``REPRO_FAULTS`` value into (point, kind, prob, seed)
    tuples; raises :class:`~repro.errors.ReproError` on any typo."""
    out = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) < 2 or len(fields) > 4:
            raise ReproError(
                f"bad fault spec {part!r}; want "
                f"point:kind[:prob[:seed]]")
        point, kind = fields[0], fields[1]
        if point not in POINTS:
            raise ReproError(
                f"unknown fault point {point!r}; choose from {POINTS}")
        if kind not in KINDS:
            raise ReproError(
                f"unknown fault kind {kind!r}; choose from {KINDS}")
        try:
            prob = float(fields[2]) if len(fields) > 2 else 1.0
            seed = int(fields[3]) if len(fields) > 3 else 0
        except ValueError as exc:
            raise ReproError(f"bad fault spec {part!r}: {exc}") \
                from None
        if not 0.0 <= prob <= 1.0:
            raise ReproError(
                f"bad fault spec {part!r}: prob {prob} not in [0, 1]")
        out.append((point, kind, prob, seed))
    return out


def arm(spec: str) -> None:
    """Arm the registry from a ``REPRO_FAULTS``-style spec string.

    Replaces any previous arming (one coherent configuration at a
    time); an empty spec disarms.
    """
    global _armed
    parsed = parse_spec(spec)
    with _lock:
        _points.clear()
        for point, kind, prob, seed in parsed:
            _points[point] = _ArmedPoint(point, kind, prob, seed)
        _armed = bool(_points)


def arm_from_env() -> None:
    """Arm from ``REPRO_FAULTS`` if set (no-op otherwise)."""
    spec = os.environ.get("REPRO_FAULTS")
    if spec:
        arm(spec)


def disarm() -> None:
    """Disarm every point (restores zero-overhead operation)."""
    global _armed
    with _lock:
        _points.clear()
        _armed = False


def is_armed(point: str | None = None) -> bool:
    """Whether anything (or a specific *point*) is armed."""
    if not _armed:
        return False
    with _lock:
        return bool(_points) if point is None else point in _points


def fire(point: str) -> None:
    """Evaluate injection point *point* for control-flow faults.

    No-op unless the registry is armed at this point and the point's
    probability fires.  ``partial-write`` does not trigger here — data
    corruption only makes sense where bytes flow through
    :func:`corrupt`/:func:`should_corrupt`; a ``partial-write`` spec
    still fires at byte-level call sites only.
    """
    if not _armed:
        return
    with _lock:
        armed = _points.get(point)
        if armed is None or armed.kind == "partial-write" \
                or not armed.should_fire():
            return
        kind = armed.kind
    if kind == "exception":
        raise FaultInjectedError(f"injected fault at {point}")
    if kind == "delay":
        time.sleep(DELAY_SECONDS)
        return
    # kind == "crash": die the way SIGKILL would — no cleanup, no
    # atexit, no flushing; recovery must cope with exactly this.
    os._exit(CRASH_EXIT_CODE)


def should_corrupt(point: str) -> bool:
    """Whether a ``partial-write`` fault fires at *point* right now.

    For call sites that corrupt their own storage (e.g. truncating an
    artifact file) rather than a byte payload.
    """
    if not _armed:
        return False
    with _lock:
        armed = _points.get(point)
        return armed is not None and armed.kind == "partial-write" \
            and armed.should_fire()


def corrupt(point: str, data: bytes) -> bytes:
    """Return *data* truncated when a ``partial-write`` fault fires.

    The truncation length is drawn from the point's deterministic RNG
    (strictly shorter than the payload, possibly empty), simulating a
    torn write interrupted by a crash.
    """
    if not _armed or not data:
        return data
    with _lock:
        armed = _points.get(point)
        if armed is None or armed.kind != "partial-write" \
                or not armed.should_fire():
            return data
        cut = armed.rng.randrange(len(data))
    return data[:cut]


def snapshot() -> dict[str, dict]:
    """Per-point counters for test assertions and diagnostics."""
    with _lock:
        return {
            name: {"kind": p.kind, "prob": p.prob, "seed": p.seed,
                   "evaluations": p.evaluations, "fires": p.fires}
            for name, p in _points.items()
        }


# Arm automatically so REPRO_FAULTS reaches spawned daemons (the crash
# smoke test and the CI fault-injection job) without plumbing.
arm_from_env()
