"""SPMD launcher: run one function on every rank of a world.

``run_spmd(fn, size)`` plays the role of ``mpiexec -n size``: *fn* is
called as ``fn(comm, *args)`` on every rank and the per-rank return
values come back as a list.  Three backends:

* ``"serial"`` — size must be 1; runs inline.
* ``"thread"`` — one thread per rank (shared memory; correct semantics,
  no speedup under the GIL).
* ``"process"`` — one OS process per rank via :mod:`multiprocessing`
  pipes (true parallelism where cores exist; *fn* and its arguments must
  be picklable).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import traceback
from collections.abc import Callable
from typing import Any

from ..errors import RuntimeLayerError
from .comm import Communicator, SerialComm, ThreadComm
from .tracing import Tracer, get_tracer

#: Backends accepted by :func:`run_spmd`.
BACKENDS = ("serial", "thread", "process")


class SpmdFailure(RuntimeLayerError):
    """One or more ranks raised; carries per-rank tracebacks."""

    def __init__(self, failures: dict[int, str]) -> None:
        self.failures = failures
        ranks = ", ".join(str(r) for r in sorted(failures))
        detail = "\n".join(f"--- rank {r} ---\n{tb}"
                           for r, tb in sorted(failures.items()))
        super().__init__(f"SPMD ranks [{ranks}] failed:\n{detail}")


def _thread_backend(fn: Callable[..., Any], size: int,
                    args: tuple[Any, ...]) -> list[Any]:
    comms = ThreadComm.create_world(size)
    results: list[Any] = [None] * size
    failures: dict[int, str] = {}
    tracer = get_tracer()
    caller = tracer.current_span() if tracer.enabled else None
    parent_id = caller.span_id if caller is not None else None

    def runner(rank: int) -> None:
        try:
            if tracer.enabled:
                with tracer.activate(), tracer.rank_context(rank), \
                        tracer.span("spmd.rank", "spmd", rank=rank,
                                    args={"fn": fn.__name__},
                                    parent_id=parent_id):
                    results[rank] = fn(comms[rank], *args)
            else:
                results[rank] = fn(comms[rank], *args)
        except Exception:  # noqa: BLE001 - reported collectively below
            failures[rank] = traceback.format_exc()
            comms[rank]._world.barrier.abort()

    threads = [threading.Thread(target=runner, args=(rank,), daemon=True)
               for rank in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise SpmdFailure(failures)
    return results


class _PipeComm(Communicator):
    """Communicator over multiprocessing pipes (one per ordered pair)."""

    def __init__(self, rank: int, size: int, conns: dict[int, Any],
                 barrier: Any) -> None:
        self.rank = rank
        self.size = size
        self._conns = conns   # peer rank -> Connection
        self._barrier = barrier
        self._pending: dict[tuple[int, int], list[Any]] = {}

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if dest == self.rank:
            raise RuntimeLayerError("send to self would deadlock")
        if not 0 <= dest < self.size:
            raise RuntimeLayerError(f"dest {dest} outside [0, {self.size})")
        self._conns[dest].send((tag, obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        if source == self.rank:
            raise RuntimeLayerError("recv from self would deadlock")
        if not 0 <= source < self.size:
            raise RuntimeLayerError(
                f"source {source} outside [0, {self.size})")
        stash = self._pending.get((source, tag))
        if stash:
            return stash.pop(0)
        while True:
            got_tag, obj = self._conns[source].recv()
            if got_tag == tag:
                return obj
            self._pending.setdefault((source, got_tag), []).append(obj)

    def barrier(self) -> None:
        self._barrier.wait()


def _process_worker(fn: Callable[..., Any], rank: int, size: int,
                    conns: dict[int, Any], barrier: Any, result_conn: Any,
                    args: tuple[Any, ...],
                    trace_epoch: float | None = None) -> None:
    comm = _PipeComm(rank, size, conns, barrier)
    try:
        if trace_epoch is not None:
            # CLOCK_MONOTONIC survives fork, so the child tracer shares
            # the parent's epoch and its spans line up in one timeline.
            child = Tracer(enabled=True, epoch=trace_epoch)
            with child.activate(), child.rank_context(rank), \
                    child.span("spmd.rank", "spmd", rank=rank,
                               args={"fn": fn.__name__}):
                result = fn(comm, *args)
            spans = [s.to_dict() for s in child.spans()]
        else:
            result = fn(comm, *args)
            spans = []
        result_conn.send(("ok", result, spans))
    except Exception:  # noqa: BLE001 - reported collectively by parent
        result_conn.send(("error", traceback.format_exc(), []))


def _process_backend(fn: Callable[..., Any], size: int,
                     args: tuple[Any, ...]) -> list[Any]:
    ctx = mp.get_context("fork" if hasattr(mp, "get_context") else None)
    # One duplex pipe per unordered pair of ranks.
    pair_conns: dict[int, dict[int, Any]] = {r: {} for r in range(size)}
    for a in range(size):
        for b in range(a + 1, size):
            ca, cb = ctx.Pipe(duplex=True)
            pair_conns[a][b] = ca
            pair_conns[b][a] = cb
    barrier = ctx.Barrier(size)
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(size)]
    tracer = get_tracer()
    trace_epoch = tracer.epoch if tracer.enabled else None
    caller = tracer.current_span() if tracer.enabled else None
    parent_id = caller.span_id if caller is not None else None
    procs = []
    for rank in range(size):
        p = ctx.Process(
            target=_process_worker,
            args=(fn, rank, size, pair_conns[rank], barrier,
                  result_pipes[rank][1], args, trace_epoch))
        p.start()
        procs.append(p)
    results: list[Any] = [None] * size
    failures: dict[int, str] = {}
    for rank, (recv_end, _) in enumerate(result_pipes):
        status, payload, spans = recv_end.recv()
        if spans:
            tracer.ingest(spans, rank=rank, parent_id=parent_id)
        if status == "ok":
            results[rank] = payload
        else:
            failures[rank] = payload
    for p in procs:
        p.join()
    if failures:
        raise SpmdFailure(failures)
    return results


def run_spmd(fn: Callable[..., Any], size: int, *args: Any,
             backend: str = "thread") -> list[Any]:
    """Run ``fn(comm, *args)`` on *size* ranks; return per-rank results.

    Parameters
    ----------
    fn:
        The rank program.  Receives a :class:`Communicator` first.
    size:
        World size (>= 1).
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docs).
    """
    if size < 1:
        raise RuntimeLayerError(f"world size {size} must be >= 1")
    if backend not in BACKENDS:
        raise RuntimeLayerError(
            f"unknown backend {backend!r}; choose from {BACKENDS}")
    if backend == "serial" or size == 1:
        if backend == "serial" and size != 1:
            raise RuntimeLayerError("serial backend requires size == 1")
        return [fn(SerialComm(), *args)] if size == 1 else []
    if backend == "thread":
        return _thread_backend(fn, size, args)
    return _process_backend(fn, size, args)
