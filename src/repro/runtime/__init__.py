"""Parallel runtime substrate: communicators, SPMD launch, partitioning,
buffered metered I/O, and the simulated-cluster performance model."""

from .buffers import BufferedBinaryWriter, BufferedTextWriter, \
    RangeLineReader
from .comm import Communicator, SerialComm, ThreadComm
from .metrics import DEFAULT_CLUSTER, ClusterModel, RankMetrics, \
    ServiceMetrics, SpeedupCurve, SpeedupPoint, \
    format_metrics_snapshot, merge_all, modeled_parallel_time, \
    modeled_speedup
from .partition import Partition, even_split, partition_bytes, \
    partition_rank_spmd, partition_records, partition_text_file
from .spmd import BACKENDS, SpmdFailure, run_spmd

__all__ = [
    "Communicator", "SerialComm", "ThreadComm",
    "run_spmd", "SpmdFailure", "BACKENDS",
    "Partition", "even_split", "partition_bytes", "partition_text_file",
    "partition_rank_spmd", "partition_records",
    "RangeLineReader", "BufferedTextWriter", "BufferedBinaryWriter",
    "RankMetrics", "ServiceMetrics", "format_metrics_snapshot",
    "ClusterModel", "DEFAULT_CLUSTER", "merge_all",
    "modeled_parallel_time", "modeled_speedup",
    "SpeedupCurve", "SpeedupPoint",
]
