"""Parallel runtime substrate: communicators, SPMD launch, partitioning,
buffered metered I/O, and the simulated-cluster performance model."""

from .buffers import BufferedBinaryWriter, BufferedTextWriter, \
    RangeLineReader
from .comm import Communicator, SerialComm, ThreadComm
from .executor import DEFAULT_IDLE_TIMEOUT, POOL_KINDS, \
    ExecutorFailure, SharedExecutor, get_shared_executor, \
    reset_shared_executor, resolve_start_method, \
    shared_executor_stats, simulate_schedule
from .metrics import DEFAULT_CLUSTER, ClusterModel, RankMetrics, \
    ServiceMetrics, SpeedupCurve, SpeedupPoint, \
    format_metrics_snapshot, merge_all, modeled_parallel_time, \
    modeled_speedup
from .partition import Partition, even_split, partition_bytes, \
    partition_rank_spmd, partition_records, partition_text_file
from .spmd import BACKENDS, SpmdFailure, run_spmd
from .tracing import Span, Tracer, format_summary, format_tree, \
    get_tracer, install, read_jsonl, to_chrome_events, traced, \
    write_chrome, write_jsonl, write_trace

__all__ = [
    "Communicator", "SerialComm", "ThreadComm",
    "run_spmd", "SpmdFailure", "BACKENDS",
    "SharedExecutor", "ExecutorFailure", "get_shared_executor",
    "reset_shared_executor", "shared_executor_stats",
    "resolve_start_method", "simulate_schedule",
    "POOL_KINDS", "DEFAULT_IDLE_TIMEOUT",
    "Span", "Tracer", "get_tracer", "install", "traced",
    "read_jsonl", "write_jsonl", "to_chrome_events", "write_chrome",
    "write_trace", "format_tree", "format_summary",
    "Partition", "even_split", "partition_bytes", "partition_text_file",
    "partition_rank_spmd", "partition_records",
    "RangeLineReader", "BufferedTextWriter", "BufferedBinaryWriter",
    "RankMetrics", "ServiceMetrics", "format_metrics_snapshot",
    "ClusterModel", "DEFAULT_CLUSTER", "merge_all",
    "modeled_parallel_time", "modeled_speedup",
    "SpeedupCurve", "SpeedupPoint",
]
