"""Buffered, metered I/O: the runtime's read and write buffers.

The paper's runtime "schedules repeated loading of partitioned data into
memory via the read buffer" and sends converted objects "to the write
buffer".  These classes implement that double-ended buffering and, when
given a :class:`~repro.runtime.metrics.RankMetrics`, attribute wall time
and byte counts to the I/O phase so the cost model can separate compute
from I/O.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterator

from ..errors import PartitionError
from .metrics import RankMetrics

#: Default read-buffer capacity (4 MiB).
DEFAULT_READ_CHUNK = 4 << 20

#: Default write-buffer flush threshold (4 MiB).
DEFAULT_WRITE_CHUNK = 4 << 20


class RangeLineReader:
    """Iterate the complete text lines of a byte range of a file.

    The range must start at a line boundary (Algorithm 1 guarantees
    this); the final line may lack a trailing newline only if the range
    ends at end-of-file.  Lines are yielded *without* their newline.
    """

    def __init__(self, path: str | os.PathLike[str], start: int, end: int,
                 chunk_size: int = DEFAULT_READ_CHUNK,
                 metrics: RankMetrics | None = None) -> None:
        if start < 0 or end < start:
            raise PartitionError(f"invalid byte range [{start}, {end})")
        self.path = os.fspath(path)
        self.start = start
        self.end = end
        self.chunk_size = chunk_size
        self.metrics = metrics or RankMetrics()

    def __iter__(self) -> Iterator[str]:
        remaining = self.end - self.start
        if remaining == 0:
            return
        tail = b""
        with open(self.path, "rb") as fh:
            fh.seek(self.start)
            while remaining > 0:
                t0 = time.perf_counter()
                chunk = fh.read(min(self.chunk_size, remaining))
                self.metrics.io_seconds += time.perf_counter() - t0
                if not chunk:
                    break
                self.metrics.bytes_read += len(chunk)
                remaining -= len(chunk)
                data = tail + chunk
                lines = data.split(b"\n")
                tail = lines.pop()
                for line in lines:
                    yield line.decode("ascii")
        if tail:
            yield tail.decode("ascii")

    def iter_batches(self, batch_size: int) -> Iterator[list[str]]:
        """Yield lists of up to *batch_size* complete lines.

        The batched counterpart of ``__iter__``: each disk chunk is
        decoded and split in one pass (both C-speed) instead of
        decoding line by line, and lines reach the caller in lists so
        the per-line Python iteration happens once, in the codec.
        """
        if batch_size < 1:
            raise PartitionError(f"batch size must be >= 1, "
                                 f"got {batch_size}")
        remaining = self.end - self.start
        if remaining == 0:
            return
        tail = ""
        pending: list[str] = []
        with open(self.path, "rb") as fh:
            fh.seek(self.start)
            while remaining > 0:
                t0 = time.perf_counter()
                chunk = fh.read(min(self.chunk_size, remaining))
                self.metrics.io_seconds += time.perf_counter() - t0
                if not chunk:
                    break
                self.metrics.bytes_read += len(chunk)
                remaining -= len(chunk)
                lines = (tail + chunk.decode("ascii")).split("\n")
                tail = lines.pop()
                pending.extend(lines)
                while len(pending) >= batch_size:
                    yield pending[:batch_size]
                    del pending[:batch_size]
        if tail:
            pending.append(tail)
        if pending:
            yield pending


class BufferedTextWriter:
    """Accumulate text and flush to disk in large metered writes."""

    def __init__(self, path: str | os.PathLike[str],
                 chunk_size: int = DEFAULT_WRITE_CHUNK,
                 metrics: RankMetrics | None = None) -> None:
        self.path = os.fspath(path)
        self.chunk_size = chunk_size
        self.metrics = metrics or RankMetrics()
        self._fh = open(self.path, "wb")  # noqa: SIM115
        self._buffer: list[bytes] = []
        self._buffered = 0

    def __enter__(self) -> "BufferedTextWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def write_line(self, line: str) -> None:
        """Queue one line (newline appended) for the next flush."""
        data = line.encode("ascii") + b"\n"
        self._buffer.append(data)
        self._buffered += len(data)
        if self._buffered >= self.chunk_size:
            self.flush()

    def write_lines(self, lines: list[str]) -> None:
        """Queue a batch of lines in one join + encode.

        Byte-identical to calling :meth:`write_line` per line, but the
        newline joining and ASCII encoding run once per batch.
        """
        if not lines:
            return
        data = ("\n".join(lines) + "\n").encode("ascii")
        self._buffer.append(data)
        self._buffered += len(data)
        if self._buffered >= self.chunk_size:
            self.flush()

    def write_text(self, text: str) -> None:
        """Queue raw text (no newline added)."""
        data = text.encode("ascii")
        self._buffer.append(data)
        self._buffered += len(data)
        if self._buffered >= self.chunk_size:
            self.flush()

    def flush(self) -> None:
        """Write the queued data in one OS call, metering it."""
        if not self._buffer:
            return
        blob = b"".join(self._buffer)
        self._buffer.clear()
        self._buffered = 0
        t0 = time.perf_counter()
        self._fh.write(blob)
        self.metrics.io_seconds += time.perf_counter() - t0
        self.metrics.bytes_written += len(blob)

    def close(self) -> None:
        """Flush and close the file."""
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()


class BufferedBinaryWriter:
    """Binary sibling of :class:`BufferedTextWriter` (BAMX output)."""

    def __init__(self, path: str | os.PathLike[str],
                 chunk_size: int = DEFAULT_WRITE_CHUNK,
                 metrics: RankMetrics | None = None) -> None:
        self.path = os.fspath(path)
        self.chunk_size = chunk_size
        self.metrics = metrics or RankMetrics()
        self._fh = open(self.path, "wb")  # noqa: SIM115
        self._buffer: list[bytes] = []
        self._buffered = 0

    def __enter__(self) -> "BufferedBinaryWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def write(self, data: bytes) -> None:
        """Queue bytes for the next flush."""
        self._buffer.append(data)
        self._buffered += len(data)
        if self._buffered >= self.chunk_size:
            self.flush()

    def flush(self) -> None:
        """Write queued bytes in one OS call, metering it."""
        if not self._buffer:
            return
        blob = b"".join(self._buffer)
        self._buffer.clear()
        self._buffered = 0
        t0 = time.perf_counter()
        self._fh.write(blob)
        self.metrics.io_seconds += time.perf_counter() - t0
        self.metrics.bytes_written += len(blob)

    def tell(self) -> int:
        """Logical write position including still-buffered bytes."""
        return self._fh.tell() + self._buffered

    def close(self) -> None:
        """Flush and close the file."""
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()
