"""Dataset utilities: flag statistics and structural validation
(samtools-flagstat and Picard-ValidateSamFile equivalents)."""

from .flagstat import FlagStats, flagstat, flagstat_parallel
from .validate import ValidationIssue, ValidationReport, validate_file

__all__ = ["FlagStats", "flagstat", "flagstat_parallel",
           "ValidationIssue", "ValidationReport", "validate_file"]
