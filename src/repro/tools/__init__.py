"""Dataset utilities: flag statistics and structural validation
(samtools-flagstat and Picard-ValidateSamFile equivalents)."""

from .flagstat import FlagStats, flagstat, flagstat_parallel, \
    flagstat_store
from .validate import ValidationIssue, ValidationReport, validate_file

__all__ = ["FlagStats", "flagstat", "flagstat_parallel",
           "flagstat_store",
           "ValidationIssue", "ValidationReport", "validate_file"]
