"""Structural validation of SAM/BAM datasets (Picard ValidateSamFile
equivalent).

Checks performed, each yielding a coded :class:`ValidationIssue`:

==============================  ==========================================
code                            meaning
==============================  ==========================================
``RECORD_INVALID``              a record fails AlignmentRecord.validate()
``UNKNOWN_REFERENCE``           RNAME/RNEXT not in the header dictionary
``POS_BEYOND_REFERENCE``        POS (or end) exceeds the reference length
``MISSING_HEADER``              mapped records but no @SQ dictionary
``NOT_COORDINATE_SORTED``       @HD says coordinate but records are not
``MATE_INCONSISTENT``           paired primary mates disagree on position
``DUPLICATE_PRIMARY``           >2 primary lines for one template
==============================  ==========================================

Validation is streaming except for mate cross-checks, which buffer one
small entry per template name.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass, field

from ..errors import FormatError, SamFormatError
from ..formats.flags import Flag, is_primary
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One finding: severity ("error"/"warning"), code, context."""

    severity: str
    code: str
    message: str
    record_index: int | None = None


@dataclass(slots=True)
class ValidationReport:
    """All findings plus summary counters."""

    issues: list[ValidationIssue] = field(default_factory=list)
    records_checked: int = 0

    @property
    def errors(self) -> list[ValidationIssue]:
        """Only the error-severity findings."""
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        """Only the warning-severity findings."""
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings allowed)."""
        return not self.errors

    def add(self, severity: str, code: str, message: str,
            record_index: int | None = None) -> None:
        """Record one finding."""
        self.issues.append(ValidationIssue(severity, code, message,
                                           record_index))

    def format_report(self, limit: int = 20) -> str:
        """Human-readable summary (first *limit* findings)."""
        lines = [f"checked {self.records_checked} records: "
                 f"{len(self.errors)} errors, "
                 f"{len(self.warnings)} warnings"]
        for issue in self.issues[:limit]:
            where = "" if issue.record_index is None \
                else f" [record {issue.record_index}]"
            lines.append(f"  {issue.severity.upper()} {issue.code}"
                         f"{where}: {issue.message}")
        if len(self.issues) > limit:
            lines.append(f"  ... and {len(self.issues) - limit} more")
        return "\n".join(lines)


@dataclass(slots=True)
class _MateInfo:
    rname: str
    pos: int
    pnext: int
    rnext: str
    reverse: bool
    mate_reverse: bool


def validate_records(records: Iterable[AlignmentRecord],
                     header: SamHeader,
                     check_mates: bool = True) -> ValidationReport:
    """Validate an in-memory record stream against *header*."""
    report = ValidationReport()
    ref_lengths = {r.name: r.length for r in header.references}
    sorted_claim = header.sort_order == "coordinate"
    last_key: tuple[int, int] | None = None
    mates: dict[tuple[str, int], _MateInfo] = {}
    primary_seen: dict[tuple[str, int], int] = {}
    for index, record in enumerate(records):
        report.records_checked += 1
        try:
            record.validate()
        except (SamFormatError, FormatError) as exc:
            report.add("error", "RECORD_INVALID", str(exc), index)
            continue
        if record.rname != "*":
            if not ref_lengths:
                report.add("error", "MISSING_HEADER",
                           "mapped record but no @SQ reference "
                           "dictionary", index)
            elif record.rname not in ref_lengths:
                report.add("error", "UNKNOWN_REFERENCE",
                           f"RNAME {record.rname!r} not in header",
                           index)
            else:
                length = ref_lengths[record.rname]
                if record.pos >= length or record.end > length:
                    report.add("error", "POS_BEYOND_REFERENCE",
                               f"{record.rname}:{record.pos} (end "
                               f"{record.end}) beyond length {length}",
                               index)
                if sorted_claim and record.pos >= 0:
                    key = (header.ref_id(record.rname), record.pos)
                    if last_key is not None and key < last_key:
                        report.add("error", "NOT_COORDINATE_SORTED",
                                   "@HD SO:coordinate but records are "
                                   "out of order", index)
                        sorted_claim = False  # report once
                    last_key = key
        if record.rnext not in ("*", "=") and ref_lengths \
                and record.rnext not in ref_lengths:
            report.add("error", "UNKNOWN_REFERENCE",
                       f"RNEXT {record.rnext!r} not in header", index)
        if check_mates and record.is_paired and is_primary(record.flag):
            mate_no = record.mate_number
            if mate_no in (1, 2):
                own = (record.qname, mate_no)
                count = primary_seen.get(own, 0) + 1
                primary_seen[own] = count
                if count > 1:
                    report.add("error", "DUPLICATE_PRIMARY",
                               f"template {record.qname!r} has {count} "
                               f"primary read{mate_no} lines", index)
                other = (record.qname, 3 - mate_no)
                if other in mates:
                    _check_mate_pair(record, mates.pop(other), index,
                                     report)
                else:
                    rn = record.rname if record.is_mapped else "*"
                    mates[(record.qname, mate_no)] = _MateInfo(
                        rn, record.pos, record.pnext, record.rnext,
                        record.is_reverse,
                        bool(record.flag & Flag.MATE_REVERSE))
    return report


def _check_mate_pair(record: AlignmentRecord, other: _MateInfo,
                     index: int, report: ValidationReport) -> None:
    """Cross-check one primary pair's mutual mate fields."""
    if not record.is_mapped or other.rname == "*":
        return  # unmapped sides carry no coordinates to cross-check
    if record.pnext != other.pos:
        report.add("error", "MATE_INCONSISTENT",
                   f"template {record.qname!r}: PNEXT {record.pnext} != "
                   f"mate POS {other.pos}", index)
    if other.pnext != record.pos:
        report.add("error", "MATE_INCONSISTENT",
                   f"template {record.qname!r}: mate PNEXT "
                   f"{other.pnext} != POS {record.pos}", index)
    if bool(record.flag & Flag.MATE_REVERSE) != other.reverse:
        report.add("warning", "MATE_INCONSISTENT",
                   f"template {record.qname!r}: MATE_REVERSE flag "
                   f"disagrees with mate orientation", index)


def validate_file(path: str | os.PathLike[str],
                  check_mates: bool = True) -> ValidationReport:
    """Validate a SAM or BAM file on disk."""
    lowered = os.fspath(path).lower()
    if lowered.endswith(".bam"):
        from ..formats.bam import BamReader
        with BamReader(path) as reader:
            return validate_records(reader, reader.header, check_mates)
    from ..formats.sam import SamReader
    with SamReader(path) as reader:
        return validate_records(reader, reader.header, check_mates)
