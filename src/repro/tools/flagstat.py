"""Flag statistics: the ``samtools flagstat`` equivalent.

Counts the standard thirteen categories over a SAM/BAM dataset, and —
in the spirit of the paper — offers a parallel version built on the
same Algorithm-1 partitioning as the SAM converter, with a final
element-wise reduction (flagstat is a pure map-reduce).
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable
from dataclasses import dataclass, fields

from ..core.base import execute_rank_tasks, finish_rank_metrics
from ..core.sam_converter import partition_alignments, scan_header
from ..formats.flags import Flag
from ..formats.record import AlignmentRecord
from ..formats.sam import parse_alignment
from ..runtime.buffers import RangeLineReader
from ..runtime.metrics import RankMetrics


@dataclass(slots=True)
class FlagStats:
    """Counts of the samtools-flagstat categories."""

    total: int = 0
    secondary: int = 0
    supplementary: int = 0
    duplicates: int = 0
    mapped: int = 0
    paired: int = 0
    read1: int = 0
    read2: int = 0
    properly_paired: int = 0
    with_mate_mapped: int = 0
    singletons: int = 0
    mate_on_different_chr: int = 0
    mate_on_different_chr_mapq5: int = 0

    def add(self, record: AlignmentRecord) -> None:
        """Accumulate one record."""
        flag = record.flag
        self.total += 1
        if flag & Flag.SECONDARY:
            self.secondary += 1
        if flag & Flag.SUPPLEMENTARY:
            self.supplementary += 1
        if flag & Flag.DUPLICATE:
            self.duplicates += 1
        if not flag & Flag.UNMAPPED:
            self.mapped += 1
        # Pair categories only count primary lines, as samtools does.
        if flag & (Flag.SECONDARY | Flag.SUPPLEMENTARY):
            return
        if flag & Flag.PAIRED:
            self.paired += 1
            if flag & Flag.READ1:
                self.read1 += 1
            if flag & Flag.READ2:
                self.read2 += 1
            if flag & Flag.PROPER_PAIR and not flag & Flag.UNMAPPED:
                self.properly_paired += 1
            if not flag & Flag.UNMAPPED:
                if not flag & Flag.MATE_UNMAPPED:
                    self.with_mate_mapped += 1
                    if record.rnext not in ("=", "*", record.rname):
                        self.mate_on_different_chr += 1
                        if record.mapq >= 5:
                            self.mate_on_different_chr_mapq5 += 1
                else:
                    self.singletons += 1

    def merge(self, other: "FlagStats") -> "FlagStats":
        """Element-wise sum (the reduction operator)."""
        out = FlagStats()
        for f in fields(FlagStats):
            setattr(out, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        return out

    def format_report(self) -> str:
        """Human-readable report in samtools-flagstat layout."""
        def pct(part: int, whole: int) -> str:
            if whole == 0:
                return "N/A"
            return f"{100.0 * part / whole:.2f}%"
        return "\n".join([
            f"{self.total} in total",
            f"{self.secondary} secondary",
            f"{self.supplementary} supplementary",
            f"{self.duplicates} duplicates",
            f"{self.mapped} mapped ({pct(self.mapped, self.total)})",
            f"{self.paired} paired in sequencing",
            f"{self.read1} read1",
            f"{self.read2} read2",
            f"{self.properly_paired} properly paired "
            f"({pct(self.properly_paired, self.paired)})",
            f"{self.with_mate_mapped} with itself and mate mapped",
            f"{self.singletons} singletons "
            f"({pct(self.singletons, self.paired)})",
            f"{self.mate_on_different_chr} with mate mapped to a "
            f"different chr",
            f"{self.mate_on_different_chr_mapq5} with mate mapped to a "
            f"different chr (mapQ>=5)",
        ])


def flagstat_records(records: Iterable[AlignmentRecord]) -> FlagStats:
    """Flag statistics over an in-memory record iterable."""
    stats = FlagStats()
    for record in records:
        stats.add(record)
    return stats


def flagstat_store(reader) -> FlagStats:
    """Flag statistics over an open record store.

    A columnar store (BAMC) is counted with the vectorized
    :func:`repro.formats.kernels.flagstat_slab` kernel — no record ever
    materializes; row stores fall back to the record path.
    """
    if hasattr(reader, "read_column_batches"):
        from ..formats.kernels import flagstat_slab
        stats = FlagStats()
        for slab in reader.read_column_batches(0, len(reader)):
            counts = flagstat_slab(slab)
            for name, value in counts.items():
                setattr(stats, name, getattr(stats, name) + value)
        return stats
    return flagstat_records(reader)


def flagstat(path: str | os.PathLike[str]) -> FlagStats:
    """Sequential flag statistics over a SAM, BAM or record-store file."""
    lowered = os.fspath(path).lower()
    if lowered.endswith(".bam"):
        from ..formats.bam import BamReader
        with BamReader(path) as reader:
            return flagstat_records(reader)
    if lowered.endswith((".bamx", ".bamz", ".bamc")):
        from ..formats.store import open_record_store
        with open_record_store(path) as reader:
            return flagstat_store(reader)
    from ..formats.sam import SamReader
    with SamReader(path) as reader:
        return flagstat_records(reader)


@dataclass(frozen=True, slots=True)
class _FlagstatSpec:
    sam_path: str
    start: int
    end: int


def _flagstat_rank_task(spec: _FlagstatSpec,
                        ) -> tuple[RankMetrics, FlagStats]:
    t0 = time.perf_counter()
    metrics = RankMetrics()
    reader = RangeLineReader(spec.sam_path, spec.start, spec.end,
                             metrics=metrics)
    stats = FlagStats()
    for line in reader:
        if not line or line.startswith("@"):
            continue
        stats.add(parse_alignment(line))
    metrics.records = stats.total
    return finish_rank_metrics(metrics, t0), stats


def flagstat_parallel(sam_path: str | os.PathLike[str], nprocs: int = 1,
                      executor: str = "simulate",
                      shards_per_rank: int = 1,
                      ) -> tuple[FlagStats, list[RankMetrics]]:
    """Parallel flagstat over a SAM file: Algorithm-1 partitions,
    per-rank counting, element-wise reduction.  *shards_per_rank* is
    accepted for interface symmetry; flagstat specs don't decompose,
    so the schedule stays static."""
    sam_path = os.fspath(sam_path)
    _, header_end = scan_header(sam_path)
    partitions = partition_alignments(sam_path, nprocs, header_end)
    specs = [_FlagstatSpec(sam_path, p.start, p.end) for p in partitions]
    outcomes = execute_rank_tasks(_flagstat_rank_task, specs, executor,
                                  shards_per_rank=shards_per_rank)
    total = FlagStats()
    metrics = []
    for rank_metrics, stats in outcomes:
        total = total.merge(stats)
        metrics.append(rank_metrics)
    return total, metrics
