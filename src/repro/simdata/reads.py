"""Illumina-like paired-end read simulator.

Models the paper's input data — HiSeq 2000 paired-end 90 bp reads —
closely enough to exercise every conversion code path: fragment sizes
are normal, per-cycle quality decays along the read the way real
Illumina profiles do, substitution errors are drawn from those
qualities, read 2 is the reverse complement of the fragment end, and a
configurable fraction of reads is junk (unmappable), producing unmapped
records downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..formats.seq import reverse_complement
from .genome import Genome

_BASES = "ACGT"
_OTHER = {"A": "CGT", "C": "AGT", "G": "ACT", "T": "ACG"}


@dataclass(frozen=True, slots=True)
class ReadSimConfig:
    """Read-simulation parameters (defaults follow the paper's data)."""

    read_length: int = 90
    fragment_mean: float = 300.0
    fragment_sd: float = 40.0
    quality_start: int = 38      # Phred at cycle 0
    quality_end: int = 22        # Phred at the last cycle
    junk_fraction: float = 0.01  # templates that are random sequence
    indel_rate: float = 0.0      # P(one small indel) per read
    max_indel: int = 3           # indel length drawn from [1, max_indel]

    def __post_init__(self) -> None:
        if self.read_length < 1:
            raise ReproError("read_length must be >= 1")
        if self.fragment_mean < self.read_length:
            raise ReproError("fragment_mean must be >= read_length")
        if not 0.0 <= self.junk_fraction <= 1.0:
            raise ReproError("junk_fraction outside [0, 1]")
        if not 0.0 <= self.indel_rate <= 1.0:
            raise ReproError("indel_rate outside [0, 1]")
        if not 1 <= self.max_indel <= 10:
            raise ReproError("max_indel outside [1, 10]")


@dataclass(slots=True)
class SimulatedRead:
    """One sequenced read plus its ground truth for aligner validation."""

    name: str
    sequence: str
    quality: str
    mate: int              # 1 or 2
    true_chrom: str | None  # None for junk reads
    true_pos: int           # 0-based leftmost position of this read
    true_reverse: bool
    mate_pos: int           # 0-based leftmost position of the mate
    tlen: int               # signed template length
    #: Ground-truth CIGAR in *reference forward orientation* relative to
    #: true_pos; None means a plain full-length match.
    true_cigar: list[tuple[int, str]] | None = None


class ReadSimulator:
    """Draws read pairs from a :class:`Genome`."""

    def __init__(self, genome: Genome, config: ReadSimConfig | None = None,
                 seed: int = 0) -> None:
        self.genome = genome
        self.config = config or ReadSimConfig()
        self._rng = np.random.default_rng(seed)
        lengths = np.array([len(c.sequence)
                            for c in genome.chromosomes], dtype=float)
        self._chrom_p = lengths / lengths.sum()
        self._qualities = self._quality_profile()

    def _quality_profile(self) -> np.ndarray:
        """Per-cycle Phred scores: linear decay plus mild noise."""
        c = self.config
        base = np.linspace(c.quality_start, c.quality_end, c.read_length)
        return np.clip(base, 2, 41).astype(int)

    def _apply_errors(self, seq: str) -> tuple[str, str]:
        """Draw per-base errors from the quality profile.

        Returns the (possibly mutated) sequence and its quality string.
        """
        quals = self._qualities + self._rng.integers(
            -2, 3, size=len(self._qualities))
        quals = np.clip(quals, 2, 41)
        error_p = 10.0 ** (-quals / 10.0)
        hits = self._rng.random(len(seq)) < error_p
        if hits.any():
            chars = list(seq)
            for i in np.flatnonzero(hits):
                chars[i] = _OTHER[chars[i]][self._rng.integers(3)]
            seq = "".join(chars)
        quality = "".join(chr(int(q) + 33) for q in quals)
        return seq, quality

    def _random_sequence(self, length: int) -> str:
        codes = self._rng.integers(4, size=length)
        return "".join(_BASES[c] for c in codes)

    def _segment_with_indel(self, chrom_seq: str, pos: int,
                            ) -> tuple[str, list[tuple[int, str]] | None]:
        """Extract a read-length reference segment at *pos*, possibly
        carrying one small indel.

        Returns the (forward-orientation) read bases and the
        ground-truth CIGAR, or None for a plain match.  The read length
        is always exactly ``config.read_length`` — insertions displace
        reference bases, deletions consume extra ones.
        """
        c = self.config
        length = c.read_length
        if self._rng.random() >= c.indel_rate or length < 30:
            return chrom_seq[pos:pos + length], None
        k = int(self._rng.integers(1, c.max_indel + 1))
        a = int(self._rng.integers(10, length - 10 - k))
        if self._rng.random() < 0.5 \
                and pos + length + k <= len(chrom_seq):
            # Deletion: the read skips k reference bases after a.
            seq = chrom_seq[pos:pos + a] \
                + chrom_seq[pos + a + k:pos + length + k]
            cigar = [(a, "M"), (k, "D"), (length - a, "M")]
        else:
            # Insertion: k novel bases inside the read.
            seq = chrom_seq[pos:pos + a] + self._random_sequence(k) \
                + chrom_seq[pos + a:pos + length - k]
            cigar = [(a, "M"), (k, "I"), (length - k - a, "M")]
        return seq, cigar

    def simulate_pair(self, template_id: int,
                      ) -> tuple[SimulatedRead, SimulatedRead]:
        """Simulate one template: returns its two reads."""
        c = self.config
        name = f"tpl{template_id:08d}"
        if self._rng.random() < c.junk_fraction:
            seq1, qual1 = self._apply_errors(
                self._random_sequence(c.read_length))
            seq2, qual2 = self._apply_errors(
                self._random_sequence(c.read_length))
            r1 = SimulatedRead(name, seq1, qual1, 1, None, -1, False, -1, 0)
            r2 = SimulatedRead(name, seq2, qual2, 2, None, -1, True, -1, 0)
            return r1, r2
        chrom_i = self._rng.choice(len(self._chrom_p), p=self._chrom_p)
        chrom = self.genome.chromosomes[chrom_i]
        frag_len = int(self._rng.normal(c.fragment_mean, c.fragment_sd))
        frag_len = max(c.read_length, min(frag_len, len(chrom.sequence)))
        start = int(self._rng.integers(0,
                                       len(chrom.sequence) - frag_len + 1))
        pos1 = start
        pos2 = start + frag_len - c.read_length
        fwd, cigar1 = self._segment_with_indel(chrom.sequence, pos1)
        rev_src, cigar2 = self._segment_with_indel(chrom.sequence, pos2)
        rev = reverse_complement(rev_src)
        seq1, qual1 = self._apply_errors(fwd)
        seq2, qual2 = self._apply_errors(rev)
        r1 = SimulatedRead(name, seq1, qual1, 1, chrom.name, pos1, False,
                           pos2, frag_len, cigar1)
        r2 = SimulatedRead(name, seq2, qual2, 2, chrom.name, pos2, True,
                           pos1, -frag_len, cigar2)
        return r1, r2

    def simulate(self, n_templates: int,
                 ) -> list[tuple[SimulatedRead, SimulatedRead]]:
        """Simulate *n_templates* read pairs."""
        if n_templates < 0:
            raise ReproError("n_templates must be >= 0")
        return [self.simulate_pair(i) for i in range(n_templates)]
