"""Seed-and-extend read aligner: the BWA stand-in.

Builds an exact k-mer hash index over the reference and aligns each
read by seeding at several offsets, voting candidate positions, and
scoring full-length Hamming extensions.  Substitution-only alignment is
exactly what the read simulator produces, so the aligner recovers the
simulated positions with high fidelity (verified in tests); reads
overhanging chromosome ends are soft-clipped, junk reads come out
unmapped — giving conversion tests the full variety of record shapes.

MAPQ follows the classic two-best-hits heuristic: the score gap between
the best and second-best candidate, capped at 60.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..errors import ReproError
from ..formats.flags import Flag
from ..formats.header import SamHeader
from ..formats.record import UNMAPPED_POS, AlignmentRecord
from ..formats.seq import reverse_complement
from ..formats.tags import Tag
from .genome import Genome
from .reads import SimulatedRead


@dataclass(frozen=True, slots=True)
class AlignerConfig:
    """Aligner parameters."""

    k: int = 21                  # seed length
    seeds_per_read: int = 4      # evenly spaced seed offsets
    max_mismatch_frac: float = 0.25  # reject alignments worse than this
    gapped: bool = False         # banded-DP refinement (I/D CIGARs)
    band: int = 5                # diagonal slack for gapped alignment

    def __post_init__(self) -> None:
        if self.k < 8:
            raise ReproError("seed length k must be >= 8")
        if self.seeds_per_read < 1:
            raise ReproError("seeds_per_read must be >= 1")
        if not 1 <= self.band <= 16:
            raise ReproError("band must be in [1, 16]")


@dataclass(slots=True)
class _Hit:
    chrom_i: int
    pos: int
    mismatches: int


class KmerIndex:
    """Exact k-mer -> positions index over a genome."""

    def __init__(self, genome: Genome, k: int) -> None:
        self.genome = genome
        self.k = k
        self._table: dict[str, list[tuple[int, int]]] = defaultdict(list)
        for chrom_i, chrom in enumerate(genome.chromosomes):
            seq = chrom.sequence
            for pos in range(0, len(seq) - k + 1):
                self._table[seq[pos:pos + k]].append((chrom_i, pos))

    def lookup(self, kmer: str) -> list[tuple[int, int]]:
        """All (chromosome index, position) occurrences of *kmer*."""
        return self._table.get(kmer, [])


def banded_semiglobal(read: str, window: str,
                      ) -> tuple[int, int, list[tuple[int, str]]]:
    """Semi-global edit-distance alignment of *read* inside *window*.

    The whole read must align; leading and trailing reference bases in
    the window are free.  Unit costs for mismatch, insertion (read base
    not in reference) and deletion (reference base skipped).

    Returns ``(distance, read_start_offset_in_window, cigar)`` where the
    CIGAR uses M (match/mismatch), I and D, and the offset locates the
    first aligned reference base.
    """
    n, m = len(read), len(window)
    if n == 0:
        return 0, 0, []
    inf = 1 << 30
    # dist[i][j]: best cost aligning read[:i] ending at window[:j].
    width = m + 1
    dist = [[0] * width for _ in range(n + 1)]
    move = [[0] * width for _ in range(n + 1)]  # 1=diag 2=up(I) 3=left(D)
    for j in range(width):
        dist[0][j] = 0  # free leading reference
    for i in range(1, n + 1):
        row = dist[i]
        prev = dist[i - 1]
        mrow = move[i]
        ri = read[i - 1]
        row[0] = i  # read prefix unmatched -> insertions
        mrow[0] = 2
        for j in range(1, width):
            diag = prev[j - 1] + (0 if ri == window[j - 1] else 1)
            up = prev[j] + 1
            left = row[j - 1] + 1
            best = diag
            code = 1
            if up < best:
                best, code = up, 2
            if left < best:
                best, code = left, 3
            row[j] = best
            mrow[j] = code
    end_j = min(range(width), key=lambda j: dist[n][j])
    distance = dist[n][end_j]
    # Traceback to recover the CIGAR and the alignment start.
    ops: list[str] = []
    i, j = n, end_j
    while i > 0:
        code = move[i][j]
        if code == 1:
            ops.append("M")
            i -= 1
            j -= 1
        elif code == 2:
            ops.append("I")
            i -= 1
        else:
            ops.append("D")
            j -= 1
    ops.reverse()
    cigar: list[tuple[int, str]] = []
    for op in ops:
        if cigar and cigar[-1][1] == op:
            cigar[-1] = (cigar[-1][0] + 1, op)
        else:
            cigar.append((1, op))
    if distance >= inf:  # pragma: no cover - defensive
        raise ReproError("banded alignment overflow")
    return distance, j, cigar


def _hamming(a: str, b: str, limit: int) -> int:
    """Mismatch count between equal-length strings, early-exit at
    *limit* (returns limit + 1 when exceeded)."""
    mismatches = 0
    for x, y in zip(a, b):
        if x != y:
            mismatches += 1
            if mismatches > limit:
                return limit + 1
    return mismatches


class Aligner:
    """Align simulated reads against a genome, producing SAM records."""

    #: Read-group id stamped on every aligned record (RG tag + @RG).
    READ_GROUP = "sim1"

    def __init__(self, genome: Genome,
                 config: AlignerConfig | None = None) -> None:
        self.genome = genome
        self.config = config or AlignerConfig()
        self.index = KmerIndex(genome, self.config.k)
        self.header = SamHeader.from_references(genome.references,
                                                sort_order="unsorted")
        from ..formats.header import HeaderLine
        self.header.lines.append(HeaderLine(
            "RG", [("ID", self.READ_GROUP), ("SM", "sample1"),
                   ("PL", "ILLUMINA")]))
        self.header.lines.append(HeaderLine(
            "PG", [("ID", "repro-aligner"), ("PN", "repro"),
                   ("VN", "1.0")]))

    # -- single-end core ---------------------------------------------------

    def _candidates(self, seq: str, keep_all: bool = False) -> list[_Hit]:
        """Seed, vote, and extend; return scored candidate placements.

        With *keep_all* (the gapped path), candidates above the Hamming
        limit are kept — an indel shifts every downstream base, so the
        Hamming score over-counts and the banded DP must re-score.
        """
        cfg = self.config
        k = cfg.k
        n = len(seq)
        if n < k:
            return []
        offsets = [int(i * (n - k) / max(1, cfg.seeds_per_read - 1))
                   for i in range(cfg.seeds_per_read)]
        votes: dict[tuple[int, int], int] = defaultdict(int)
        for off in dict.fromkeys(offsets):
            for chrom_i, pos in self.index.lookup(seq[off:off + k]):
                votes[(chrom_i, pos - off)] += 1
        limit = int(cfg.max_mismatch_frac * n)
        hamming_cap = n if keep_all else limit
        hits = []
        for (chrom_i, start) in sorted(votes,
                                       key=lambda c: -votes[c])[:16]:
            chrom_seq = self.genome.chromosomes[chrom_i].sequence
            lo = max(0, start)
            hi = min(len(chrom_seq), start + n)
            if hi - lo < k:
                continue
            mism = _hamming(seq[lo - start:hi - start], chrom_seq[lo:hi],
                            hamming_cap)
            # Overhanging bases count as clipped, not mismatched.
            if mism <= hamming_cap:
                hits.append(_Hit(chrom_i, start, mism))
        hits.sort(key=lambda h: h.mismatches)
        return hits

    def _align_one(self, seq: str) -> tuple[_Hit | None, int, bool]:
        """Best placement of *seq* on either strand.

        Returns ``(hit, mapq, is_reverse)``; hit None means unmapped.
        """
        fwd = self._candidates(seq)
        rev = self._candidates(reverse_complement(seq))
        best: _Hit | None = None
        second: _Hit | None = None
        best_rev = False
        for hit, is_rev in ([(h, False) for h in fwd[:2]]
                            + [(h, True) for h in rev[:2]]):
            if best is None or hit.mismatches < best.mismatches:
                second = best
                best, best_rev = hit, is_rev
            elif second is None or hit.mismatches < second.mismatches:
                second = hit
        if best is None:
            return None, 0, False
        if second is None:
            mapq = 60
        else:
            mapq = min(60, max(0, 6 * (second.mismatches - best.mismatches)))
        return best, mapq, best_rev

    def _build_cigar(self, pos: int, read_len: int,
                     chrom_len: int) -> tuple[list[tuple[int, str]], int]:
        """CIGAR with soft-clips for reference overhang.

        Returns the ops and the clipped (final) 0-based position.
        """
        left_clip = max(0, -pos)
        right_clip = max(0, pos + read_len - chrom_len)
        matched = read_len - left_clip - right_clip
        ops: list[tuple[int, str]] = []
        if left_clip:
            ops.append((left_clip, "S"))
        ops.append((matched, "M"))
        if right_clip:
            ops.append((right_clip, "S"))
        return ops, max(0, pos)

    # -- paired-end API ----------------------------------------------------

    def align_pair(self, read1: SimulatedRead, read2: SimulatedRead,
                   ) -> tuple[AlignmentRecord, AlignmentRecord]:
        """Align a template's two reads and cross-link the mate fields."""
        rec1 = self._align_read(read1)
        rec2 = self._align_read(read2)
        _pair_up(rec1, rec2)
        return rec1, rec2

    def _align_one_gapped(self, seq: str,
                          ) -> tuple[int, int, list[tuple[int, str]],
                                     int, int, bool] | None:
        """Banded-DP alignment of *seq* on either strand.

        Returns ``(chrom_i, pos, cigar, distance, mapq, is_reverse)`` or
        None when no placement passes the edit-distance limit.
        """
        cfg = self.config
        limit = int(cfg.max_mismatch_frac * len(seq))
        best: tuple[int, int, int, list[tuple[int, str]], bool] | None \
            = None  # (dist, chrom_i, pos, cigar, is_rev)
        second: int | None = None
        for is_rev, oriented in ((False, seq),
                                 (True, reverse_complement(seq))):
            for hit in self._candidates(oriented, keep_all=True)[:3]:
                chrom_seq = \
                    self.genome.chromosomes[hit.chrom_i].sequence
                w_lo = max(0, hit.pos - cfg.band)
                w_hi = min(len(chrom_seq),
                           hit.pos + len(oriented) + cfg.band)
                if w_hi - w_lo < len(oriented):
                    continue  # window clipped by a chromosome edge
                dist, off, cigar = banded_semiglobal(
                    oriented, chrom_seq[w_lo:w_hi])
                pos = w_lo + off
                if best is not None and hit.chrom_i == best[1] \
                        and pos == best[2]:
                    continue  # same placement found via another diagonal
                if best is None or dist < best[0]:
                    second = best[0] if best is not None else None
                    best = (dist, hit.chrom_i, pos, cigar, is_rev)
                elif second is None or dist < second:
                    second = dist
        if best is None or best[0] > limit:
            return None
        mapq = 60 if second is None \
            else min(60, max(0, 6 * (second - best[0])))
        dist, chrom_i, pos, cigar, is_rev = best
        return chrom_i, pos, cigar, dist, mapq, is_rev

    def _align_read(self, read: SimulatedRead) -> AlignmentRecord:
        if self.config.gapped:
            return self._align_read_gapped(read)
        hit, mapq, is_rev = self._align_one(read.sequence)
        flag = int(Flag.PAIRED)
        flag |= int(Flag.READ1 if read.mate == 1 else Flag.READ2)
        if hit is None:
            flag |= int(Flag.UNMAPPED)
            return AlignmentRecord(
                qname=read.name, flag=flag, rname="*", pos=UNMAPPED_POS,
                mapq=0, cigar=[], rnext="*", pnext=UNMAPPED_POS, tlen=0,
                seq=read.sequence, qual=read.quality, tags=[])
        chrom = self.genome.chromosomes[hit.chrom_i]
        cigar, pos = self._build_cigar(hit.pos, len(read.sequence),
                                       len(chrom.sequence))
        seq = read.sequence
        qual = read.quality
        if is_rev:
            flag |= int(Flag.REVERSE)
            seq = reverse_complement(seq)
            qual = qual[::-1]
            cigar = list(reversed(cigar))
        return AlignmentRecord(
            qname=read.name, flag=flag, rname=chrom.name, pos=pos,
            mapq=mapq, cigar=cigar, rnext="*", pnext=UNMAPPED_POS, tlen=0,
            seq=seq, qual=qual,
            tags=[Tag("NM", "i", hit.mismatches),
                  Tag("AS", "i", len(read.sequence) - hit.mismatches),
                  Tag("RG", "Z", self.READ_GROUP)])

    def _align_read_gapped(self, read: SimulatedRead) -> AlignmentRecord:
        """Gapped-mode alignment producing M/I/D CIGARs."""
        result = self._align_one_gapped(read.sequence)
        flag = int(Flag.PAIRED)
        flag |= int(Flag.READ1 if read.mate == 1 else Flag.READ2)
        if result is None:
            flag |= int(Flag.UNMAPPED)
            return AlignmentRecord(
                qname=read.name, flag=flag, rname="*", pos=UNMAPPED_POS,
                mapq=0, cigar=[], rnext="*", pnext=UNMAPPED_POS, tlen=0,
                seq=read.sequence, qual=read.quality, tags=[])
        chrom_i, pos, cigar, dist, mapq, is_rev = result
        chrom = self.genome.chromosomes[chrom_i]
        seq = read.sequence
        qual = read.quality
        if is_rev:
            flag |= int(Flag.REVERSE)
            seq = reverse_complement(seq)
            qual = qual[::-1]
        return AlignmentRecord(
            qname=read.name, flag=flag, rname=chrom.name, pos=pos,
            mapq=mapq, cigar=cigar, rnext="*", pnext=UNMAPPED_POS,
            tlen=0, seq=seq, qual=qual,
            tags=[Tag("NM", "i", dist),
                  Tag("AS", "i", len(read.sequence) - dist),
                  Tag("RG", "Z", self.READ_GROUP)])

    def align_all(self, pairs: list[tuple[SimulatedRead, SimulatedRead]],
                  ) -> list[AlignmentRecord]:
        """Align every pair; records come out in template order."""
        records = []
        for read1, read2 in pairs:
            rec1, rec2 = self.align_pair(read1, read2)
            records.append(rec1)
            records.append(rec2)
        return records


def _pair_up(rec1: AlignmentRecord, rec2: AlignmentRecord) -> None:
    """Fill mutual mate fields and the proper-pair/TLEN bookkeeping."""
    for rec, mate in ((rec1, rec2), (rec2, rec1)):
        if mate.is_mapped:
            rec.rnext = "=" if (rec.is_mapped
                                and mate.rname == rec.rname) else mate.rname
            rec.pnext = mate.pos
            if mate.is_reverse:
                rec.flag |= int(Flag.MATE_REVERSE)
        else:
            rec.flag |= int(Flag.MATE_UNMAPPED)
            rec.rnext = "*"
            rec.pnext = UNMAPPED_POS
    if (rec1.is_mapped and rec2.is_mapped
            and rec1.rname == rec2.rname
            and rec1.is_reverse != rec2.is_reverse):
        left, right = (rec1, rec2) if rec1.pos <= rec2.pos else (rec2, rec1)
        span = right.end - left.pos
        if 0 < span < 10_000 and not left.is_reverse and right.is_reverse:
            rec1.flag |= int(Flag.PROPER_PAIR)
            rec2.flag |= int(Flag.PROPER_PAIR)
            left.tlen = span
            right.tlen = -span


def coordinate_sort(records: list[AlignmentRecord],
                    header: SamHeader) -> list[AlignmentRecord]:
    """Sort records by (reference id, position); unplaced records last.

    This is what samtools sort does and what BAI/BAIX building needs.
    """
    def key(record: AlignmentRecord) -> tuple[int, int]:
        if record.rname == "*" or record.pos < 0:
            return (1 << 30, 0)
        return (header.ref_id(record.rname), record.pos)
    return sorted(records, key=key)
