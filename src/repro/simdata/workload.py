"""End-to-end workload builders for tests, examples, and benchmarks.

These wrap genome synthesis -> read simulation -> alignment -> SAM/BAM
writing into one call, standing in for the paper's externally produced
datasets (mouse WGS aligned with BWA).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..formats.bam import write_bam
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord
from ..formats.sam import write_sam
from .aligner import Aligner, AlignerConfig, coordinate_sort
from .genome import Genome
from .reads import ReadSimConfig, ReadSimulator


@dataclass(slots=True)
class Workload:
    """A fully built synthetic dataset."""

    genome: Genome
    header: SamHeader
    records: list[AlignmentRecord]
    sam_path: str | None = None
    bam_path: str | None = None
    extras: dict[str, str] = field(default_factory=dict)


def build_alignments(n_templates: int,
                     chromosomes: list[tuple[str, int]] | None = None,
                     seed: int = 0, sort: bool = True,
                     read_config: ReadSimConfig | None = None,
                     aligner_config: AlignerConfig | None = None,
                     ) -> tuple[Genome, SamHeader, list[AlignmentRecord]]:
    """Simulate and align *n_templates* read pairs.

    Returns ``(genome, header, records)``; records are coordinate-sorted
    when *sort* is true (required for BAI/BAIX index building).
    """
    chromosomes = chromosomes or [("chr1", 60_000), ("chr2", 40_000)]
    genome = Genome.synthesize(chromosomes, seed=seed)
    simulator = ReadSimulator(genome, read_config, seed=seed + 1)
    aligner = Aligner(genome, aligner_config)
    records = aligner.align_all(simulator.simulate(n_templates))
    header = aligner.header
    if sort:
        records = coordinate_sort(records, header)
        header = header.with_sort_order("coordinate")
    return genome, header, records


def build_sam_dataset(path: str | os.PathLike[str], n_templates: int,
                      chromosomes: list[tuple[str, int]] | None = None,
                      seed: int = 0, sort: bool = True) -> Workload:
    """Build a workload and write it as a SAM file at *path*."""
    genome, header, records = build_alignments(n_templates, chromosomes,
                                               seed, sort)
    write_sam(path, header, records)
    return Workload(genome, header, records, sam_path=os.fspath(path))


def build_bam_dataset(path: str | os.PathLike[str], n_templates: int,
                      chromosomes: list[tuple[str, int]] | None = None,
                      seed: int = 0, sort: bool = True) -> Workload:
    """Build a workload and write it as a BAM file at *path*."""
    genome, header, records = build_alignments(n_templates, chromosomes,
                                               seed, sort)
    write_bam(path, header, records)
    return Workload(genome, header, records, bam_path=os.fspath(path))


def build_histogram(n_bins: int, seed: int = 0, n_peaks: int | None = None,
                    noise_sd: float = 2.0,
                    baseline: float = 5.0) -> np.ndarray:
    """Synthetic binned coverage histogram for the statistics module.

    The signal is a flat sequencing background plus Gaussian-shaped
    enriched regions (ChIP-seq-like peaks) plus counting noise — the
    kind of data Han et al. denoise with NL-means and threshold with
    FDR.  Values are non-negative floats.
    """
    rng = np.random.default_rng(seed)
    if n_peaks is None:
        n_peaks = max(1, n_bins // 500)
    signal = np.full(n_bins, baseline, dtype=np.float64)
    centers = rng.integers(0, n_bins, size=n_peaks)
    heights = rng.uniform(20.0, 80.0, size=n_peaks)
    widths = rng.uniform(5.0, 30.0, size=n_peaks)
    x = np.arange(n_bins, dtype=np.float64)
    for center, height, width in zip(centers, heights, widths):
        signal += height * np.exp(-0.5 * ((x - center) / width) ** 2)
    noisy = signal + rng.normal(0.0, noise_sd, size=n_bins) \
        + rng.poisson(1.0, size=n_bins)
    return np.clip(noisy, 0.0, None)


def build_simulations(histogram: np.ndarray, n_simulations: int,
                      seed: int = 0) -> np.ndarray:
    """Random simulation datasets for FDR (shape ``(B, M)``).

    Each simulation permutes the observed histogram — the standard
    randomization null that preserves the read-count distribution while
    destroying positional enrichment (Han et al. §FDR).
    """
    rng = np.random.default_rng(seed)
    sims = np.empty((n_simulations, len(histogram)), dtype=histogram.dtype)
    for b in range(n_simulations):
        sims[b] = rng.permutation(histogram)
    return sims
