"""Synthetic reference genomes.

Stands in for the paper's mouse reference (mm9): random nucleotide
sequences with a configurable GC content, deterministic under a seed.
Sizes are scaled down so the full pipeline runs in seconds, which is
valid because every downstream cost is per-record/per-base, not
organism-specific.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..formats.fasta import FastaRecord

#: Alphabet used for simulated references.
BASES = np.frombuffer(b"ACGT", dtype=np.uint8)


def synthesize_chromosome(name: str, length: int, rng: np.random.Generator,
                          gc_content: float = 0.42) -> FastaRecord:
    """Generate one chromosome of *length* random bases.

    *gc_content* sets P(G) + P(C); A/T and G/C are split evenly.
    """
    if length <= 0:
        raise ReproError(f"chromosome length {length} must be positive")
    if not 0.0 <= gc_content <= 1.0:
        raise ReproError(f"GC content {gc_content} outside [0, 1]")
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    codes = rng.choice(4, size=length, p=[at, gc, gc, at])
    seq = BASES[codes].tobytes().decode("ascii")
    return FastaRecord(name, seq)


class Genome:
    """A set of named chromosomes with convenience accessors."""

    def __init__(self, chromosomes: list[FastaRecord]) -> None:
        if not chromosomes:
            raise ReproError("genome needs at least one chromosome")
        self.chromosomes = chromosomes
        self._by_name = {c.name: c for c in chromosomes}
        if len(self._by_name) != len(chromosomes):
            raise ReproError("duplicate chromosome names")

    @classmethod
    def synthesize(cls, spec: list[tuple[str, int]], seed: int = 0,
                   gc_content: float = 0.42) -> "Genome":
        """Generate a genome from ``[(name, length), ...]``."""
        rng = np.random.default_rng(seed)
        return cls([synthesize_chromosome(name, length, rng, gc_content)
                    for name, length in spec])

    @property
    def names(self) -> list[str]:
        """Chromosome names in declaration order."""
        return [c.name for c in self.chromosomes]

    @property
    def references(self) -> list[tuple[str, int]]:
        """``(name, length)`` pairs for building SAM headers."""
        return [(c.name, len(c.sequence)) for c in self.chromosomes]

    @property
    def total_length(self) -> int:
        """Sum of chromosome lengths."""
        return sum(len(c.sequence) for c in self.chromosomes)

    def sequence(self, name: str) -> str:
        """Full sequence of chromosome *name*."""
        try:
            return self._by_name[name].sequence
        except KeyError:
            raise ReproError(f"no chromosome named {name!r}") from None

    def fetch(self, name: str, start: int, end: int) -> str:
        """Subsequence ``[start, end)`` of chromosome *name*."""
        seq = self.sequence(name)
        if not 0 <= start <= end <= len(seq):
            raise ReproError(
                f"range [{start}, {end}) outside {name!r} "
                f"of length {len(seq)}")
        return seq[start:end]
