"""Synthetic-workload substrate: genome synthesis, Illumina-like read
simulation, a seed-and-extend aligner (BWA stand-in), and one-call
dataset builders."""

from .aligner import Aligner, AlignerConfig, KmerIndex, coordinate_sort
from .genome import Genome, synthesize_chromosome
from .reads import ReadSimConfig, ReadSimulator, SimulatedRead
from .workload import Workload, build_alignments, build_bam_dataset, \
    build_histogram, build_sam_dataset, build_simulations

__all__ = [
    "Genome", "synthesize_chromosome",
    "ReadSimulator", "ReadSimConfig", "SimulatedRead",
    "Aligner", "AlignerConfig", "KmerIndex", "coordinate_sort",
    "Workload", "build_alignments", "build_sam_dataset",
    "build_bam_dataset", "build_histogram", "build_simulations",
]
