"""Parallel coverage-histogram construction.

§IV opens with: "By using the sequence data format converter, the user
is able to convert aligned sequence data in SAM/BAM format into
histogram data ... in parallel."  This module is that step: the SAM
input is partitioned with Algorithm 1, each rank accumulates a partial
binned histogram for every reference, and the partials are summed —
coverage accumulation is a commutative reduction, so the result is
exactly the sequential histogram (asserted in tests).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..core.base import execute_rank_tasks, finish_rank_metrics
from ..core.sam_converter import partition_alignments, scan_header
from ..errors import ReproError
from ..formats.header import SamHeader
from ..formats.sam import parse_alignment
from ..runtime.buffers import RangeLineReader
from ..runtime.comm import Communicator
from ..runtime.metrics import RankMetrics
from .histogram import bin_coverage, coverage_depth


@dataclass(frozen=True, slots=True)
class _HistogramSpec:
    sam_path: str
    start: int
    end: int
    header_text: str
    bin_size: int


def _partial_histogram(records, header: SamHeader, bin_size: int,
                       ) -> dict[str, np.ndarray]:
    records = list(records)
    out = {}
    for ref in header.references:
        depth = coverage_depth(records, ref.name, ref.length)
        out[ref.name] = bin_coverage(depth, bin_size)
    return out


def _histogram_rank_task(spec: _HistogramSpec,
                         ) -> tuple[RankMetrics, dict[str, np.ndarray]]:
    t0 = time.perf_counter()
    metrics = RankMetrics()
    header = SamHeader.from_text(spec.header_text)
    reader = RangeLineReader(spec.sam_path, spec.start, spec.end,
                             metrics=metrics)

    def records():
        for line in reader:
            if not line or line.startswith("@"):
                continue
            metrics.records += 1
            yield parse_alignment(line)

    partial = _partial_histogram(records(), header, spec.bin_size)
    return finish_rank_metrics(metrics, t0), partial


def histogram_parallel(sam_path: str | os.PathLike[str],
                       bin_size: int = 25, nprocs: int = 1,
                       executor: str = "simulate",
                       shards_per_rank: int = 1,
                       ) -> tuple[dict[str, np.ndarray],
                                  list[RankMetrics]]:
    """Binned coverage histograms for every reference, in parallel.

    Returns ``({chrom: bins}, per-rank metrics)``; identical to
    :func:`repro.stats.histogram.histogram_from_records` over the same
    file.  *shards_per_rank* is accepted for interface symmetry;
    histogram specs don't decompose, so the schedule stays static.
    """
    if nprocs < 1:
        raise ReproError(f"nprocs {nprocs} must be >= 1")
    sam_path = os.fspath(sam_path)
    header, header_end = scan_header(sam_path)
    if not header.references:
        raise ReproError(
            "histogram construction needs an @SQ reference dictionary")
    partitions = partition_alignments(sam_path, nprocs, header_end)
    specs = [_HistogramSpec(sam_path, p.start, p.end, header.to_text(),
                            bin_size) for p in partitions]
    outcomes = execute_rank_tasks(_histogram_rank_task, specs, executor,
                                  shards_per_rank=shards_per_rank)
    totals: dict[str, np.ndarray] = {}
    metrics = []
    for rank_metrics, partial in outcomes:
        metrics.append(rank_metrics)
        for chrom, bins in partial.items():
            if chrom in totals:
                totals[chrom] += bins
            else:
                totals[chrom] = bins.copy()
    return totals, metrics


def histogram_spmd(comm: Communicator,
                   sam_path: str | os.PathLike[str],
                   bin_size: int = 25,
                   ) -> dict[str, np.ndarray] | None:
    """SPMD variant: every rank takes its Algorithm-1 partition, builds
    partials, and rank 0 reduces them (returned on rank 0 only)."""
    sam_path = os.fspath(sam_path)
    header, header_end = scan_header(sam_path)
    partitions = partition_alignments(sam_path, comm.size, header_end)
    spec = _HistogramSpec(sam_path, partitions[comm.rank].start,
                          partitions[comm.rank].end, header.to_text(),
                          bin_size)
    _, partial = _histogram_rank_task(spec)
    gathered = comm.gather(partial, root=0)
    if comm.rank != 0:
        return None
    assert gathered is not None
    totals: dict[str, np.ndarray] = {}
    for part in gathered:
        for chrom, bins in part.items():
            if chrom in totals:
                totals[chrom] += bins
            else:
                totals[chrom] = bins.copy()
    return totals
