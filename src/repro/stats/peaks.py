"""Enriched-region (peak) detection: the end of the Han et al. workflow.

The paper parallelizes two pieces of Han et al. (2012) — NL-means
denoising and FDR computation — whose purpose is peak calling on
ChIP-seq-style histograms.  This module composes them into the full
workflow: denoise, compute empirical per-bin p-values against random
simulations, sweep candidate thresholds, select the loosest threshold
meeting a target FDR, and report contiguous enriched regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError
from .fdr import FdrResult, fdr_parallel
from .nlmeans_parallel import nlmeans_parallel


@dataclass(frozen=True, slots=True)
class Peak:
    """One enriched region, in bin coordinates (half-open)."""

    start: int
    end: int
    max_value: float
    mean_value: float

    @property
    def width(self) -> int:
        """Region width in bins."""
        return self.end - self.start


@dataclass(slots=True)
class PeakCallResult:
    """Outcome of a peak-calling run."""

    peaks: list[Peak]
    threshold: float              # selected p_t
    fdr: FdrResult
    sweep: list[FdrResult] = field(default_factory=list)
    denoised: np.ndarray | None = None

    @property
    def n_peaks(self) -> int:
        """Number of called regions."""
        return len(self.peaks)


def empirical_pvalues(histogram: np.ndarray,
                      simulations: np.ndarray) -> np.ndarray:
    """Eq. 4's p_i for every bin: #(simulations >= observed)."""
    return (histogram[None, :] <= simulations).sum(axis=0)


def regions_from_mask(mask: np.ndarray, values: np.ndarray,
                      min_width: int = 1,
                      merge_gap: int = 0) -> list[Peak]:
    """Contiguous True runs of *mask* as :class:`Peak` regions.

    Runs separated by at most *merge_gap* False bins are merged; runs
    narrower than *min_width* are dropped.
    """
    if len(mask) != len(values):
        raise ReproError("mask and value arrays differ in length")
    raw: list[tuple[int, int]] = []
    start = None
    for i, hit in enumerate(mask):
        if hit and start is None:
            start = i
        elif not hit and start is not None:
            raw.append((start, i))
            start = None
    if start is not None:
        raw.append((start, len(mask)))
    merged: list[tuple[int, int]] = []
    for lo, hi in raw:
        if merged and lo - merged[-1][1] <= merge_gap:
            merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    peaks = []
    for lo, hi in merged:
        if hi - lo < min_width:
            continue
        segment = values[lo:hi]
        peaks.append(Peak(lo, hi, float(segment.max()),
                          float(segment.mean())))
    return peaks


def call_peaks(histogram: np.ndarray, simulations: np.ndarray,
               target_fdr: float = 0.05,
               thresholds: list[float] | None = None,
               denoise: bool = True, search_radius: int = 20,
               half_patch: int = 15, sigma: float | None = None,
               nprocs: int = 1, min_width: int = 1,
               merge_gap: int = 0) -> PeakCallResult:
    """Full pipeline: (optionally) denoise, sweep p_t, call regions.

    Parameters mirror the paper's: NL-means uses ``(r, l, sigma)``
    (sigma defaults to a patch-scaled noise estimate); FDR uses the
    given *simulations* (shape ``(B, M)``); the loosest threshold whose
    FDR stays at or below *target_fdr* is selected, falling back to the
    strictest candidate when none qualifies.
    """
    histogram = np.asarray(histogram, dtype=np.float64)
    if not 0.0 <= target_fdr <= 1.0:
        raise ReproError(f"target FDR {target_fdr} outside [0, 1]")
    signal = histogram
    if denoise:
        if sigma is None:
            noise = float(np.std(np.diff(histogram))) or 1.0
            sigma = noise * (2 * half_patch + 1) ** 0.5
        signal, _ = nlmeans_parallel(histogram, nprocs, search_radius,
                                     half_patch, sigma)
    n_sims = simulations.shape[0]
    if thresholds is None:
        thresholds = sorted({0.0, 1.0, 2.0,
                             round(0.01 * n_sims, 3),
                             round(0.05 * n_sims, 3),
                             round(0.10 * n_sims, 3),
                             round(0.25 * n_sims, 3)})
    sweep: list[FdrResult] = []
    chosen: FdrResult | None = None
    for p_t in thresholds:
        result, _ = fdr_parallel(signal, simulations, p_t, nprocs)
        sweep.append(result)
        if result.fdr <= target_fdr and result.denominator > 0:
            if chosen is None or p_t > chosen.threshold:
                chosen = result
    if chosen is None:
        chosen = min(sweep, key=lambda r: (r.fdr, r.threshold))
    p = empirical_pvalues(signal, simulations)
    mask = p <= chosen.threshold
    peaks = regions_from_mask(mask, signal, min_width, merge_gap)
    return PeakCallResult(peaks, chosen.threshold, chosen, sweep,
                          signal if denoise else None)
