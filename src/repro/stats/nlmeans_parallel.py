"""Parallel NL-means with halo replication (§IV-A).

The paper's three-step strategy:

1. evenly divide the 1-D histogram into one partition per core;
2. expand each partition with a fixed-size ``r + l`` region replicated
   from each neighbour (edge replication at the global ends, matching
   the sequential kernel's padding);
3. run NL-means over the enlarged partition but emit only the original
   partition's points, so replicated data is never *output*.

Because :func:`repro.stats.nlmeans.nlmeans_core` is partition-invariant,
the concatenated rank outputs are bitwise identical to the sequential
result — asserted in the tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..runtime.comm import Communicator
from ..runtime.metrics import RankMetrics
from ..runtime.partition import even_split
from .nlmeans import _validate, nlmeans_core


@dataclass(slots=True)
class NlmeansRankResult:
    """One rank's denoised slice plus its measured work."""

    start: int
    values: np.ndarray
    metrics: RankMetrics


def halo_partition(values: np.ndarray, nparts: int, halo: int,
                   ) -> list[tuple[int, int, np.ndarray]]:
    """Split *values* into enlarged partitions.

    Returns one ``(core_start_global, core_len, enlarged_array)`` per
    rank, where *enlarged_array* carries exactly *halo* context points
    on each side of the core (replicated from neighbours, or
    edge-replicated at the global boundaries).
    """
    if halo < 0:
        raise ReproError(f"halo {halo} must be >= 0")
    padded = np.pad(values, halo, mode="edge")
    parts = []
    for start, end in even_split(len(values), nparts):
        # Core [start, end) sits at [start + halo, end + halo) in padded.
        enlarged = padded[start:end + 2 * halo]
        parts.append((start, end - start, enlarged))
    return parts


def nlmeans_rank_work(core_start: int, core_len: int,
                      enlarged: np.ndarray, search_radius: int,
                      half_patch: int, sigma: float) -> NlmeansRankResult:
    """Denoise one enlarged partition; used by all execution modes."""
    t0 = time.perf_counter()
    metrics = RankMetrics()
    if core_len == 0:
        values = np.empty(0)
    else:
        halo = search_radius + half_patch
        values = nlmeans_core(enlarged, halo, core_len, search_radius,
                              half_patch, sigma)
    metrics.compute_seconds = time.perf_counter() - t0
    metrics.records = core_len
    metrics.bytes_read = enlarged.nbytes
    metrics.bytes_written = values.nbytes
    return NlmeansRankResult(core_start, values, metrics)


def nlmeans_parallel(values: np.ndarray, nprocs: int,
                     search_radius: int = 20, half_patch: int = 15,
                     sigma: float = 10.0,
                     ) -> tuple[np.ndarray, list[RankMetrics]]:
    """Run the halo-partitioned NL-means, ranks executed in sequence.

    Returns the reassembled result and per-rank metrics (feeding the
    simulated-cluster model).  Output is bitwise identical to
    :func:`repro.stats.nlmeans.nlmeans`.
    """
    v = _validate(values, search_radius, half_patch, sigma)
    if nprocs < 1:
        raise ReproError(f"nprocs {nprocs} must be >= 1")
    halo = search_radius + half_patch
    out = np.empty(len(v))
    metrics = []
    for core_start, core_len, enlarged in halo_partition(v, nprocs, halo):
        result = nlmeans_rank_work(core_start, core_len, enlarged,
                                   search_radius, half_patch, sigma)
        out[core_start:core_start + core_len] = result.values
        metrics.append(result.metrics)
    return out, metrics


def nlmeans_spmd(comm: Communicator, values: np.ndarray | None,
                 search_radius: int = 20, half_patch: int = 15,
                 sigma: float = 10.0) -> np.ndarray | None:
    """True SPMD variant: rank 0 scatters enlarged partitions, every
    rank denoises its core, rank 0 gathers and reassembles.

    Demonstrates the distributed protocol (scatter / compute / gather)
    over any communicator backend.  Returns the full denoised histogram
    on rank 0, None elsewhere.
    """
    if comm.rank == 0:
        if values is None:
            raise ReproError("rank 0 must provide the histogram")
        v = _validate(values, search_radius, half_patch, sigma)
        halo = search_radius + half_patch
        parts = halo_partition(v, comm.size, halo)
        total_len = len(v)
    else:
        parts = None
        total_len = 0
    my_part = comm.scatter(parts, root=0)
    core_start, core_len, enlarged = my_part
    result = nlmeans_rank_work(core_start, core_len, enlarged,
                               search_radius, half_patch, sigma)
    gathered = comm.gather((core_start, result.values), root=0)
    if comm.rank != 0:
        return None
    out = np.empty(total_len)
    assert gathered is not None
    for start, piece in gathered:
        out[start:start + len(piece)] = piece
    return out
