"""Coverage histograms: from alignments to binned peaks.

§IV of the paper: "the histogram is calculated by aligning multiple
sequence reads to a reference genome and accumulating the frequencies
overlapped along the genome segments into binned peaks".  This module
computes exactly that — per-base read depth via a difference array,
then fixed-width bin accumulation — and converts between the dense
array form the statistics kernels use and the BED/BEDGRAPH records the
converter emits.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import ReproError
from ..formats.bedgraph import BedGraphInterval, compress_runs
from ..formats.header import SamHeader
from ..formats.record import AlignmentRecord


def coverage_depth(records: Iterable[AlignmentRecord], chrom: str,
                   length: int) -> np.ndarray:
    """Per-base read depth over ``[0, length)`` of chromosome *chrom*.

    Uses the difference-array trick: +1 at each read start, -1 past each
    read end, then a prefix sum — O(records + length).
    """
    if length <= 0:
        raise ReproError(f"chromosome length {length} must be positive")
    diff = np.zeros(length + 1, dtype=np.int64)
    for record in records:
        if record.rname != chrom or not record.is_mapped or record.pos < 0:
            continue
        start = min(record.pos, length)
        end = min(record.end, length)
        if end > start:
            diff[start] += 1
            diff[end] -= 1
    return np.cumsum(diff[:-1])


def bin_coverage(depth: np.ndarray, bin_size: int) -> np.ndarray:
    """Accumulate per-base depth into fixed-width bins (sum per bin).

    The last bin may cover fewer bases; it still sums what is there.
    """
    if bin_size <= 0:
        raise ReproError(f"bin size {bin_size} must be positive")
    n = len(depth)
    n_bins = (n + bin_size - 1) // bin_size
    padded = np.zeros(n_bins * bin_size, dtype=np.float64)
    padded[:n] = depth
    return padded.reshape(n_bins, bin_size).sum(axis=1)


def histogram_from_records(records: Iterable[AlignmentRecord],
                           header: SamHeader, bin_size: int = 25,
                           ) -> dict[str, np.ndarray]:
    """Binned coverage for every reference in *header*.

    The default 25 bp bin size is the one the paper's NL-means
    experiment uses.
    """
    records = list(records)
    out = {}
    for ref in header.references:
        depth = coverage_depth(records, ref.name, ref.length)
        out[ref.name] = bin_coverage(depth, bin_size)
    return out


def histogram_from_store(reader, bin_size: int = 25,
                         ) -> dict[str, np.ndarray]:
    """Binned coverage for every reference of an open record store.

    A columnar store (BAMC) accumulates the difference arrays straight
    from the position/end columns via
    :func:`repro.formats.kernels.add_coverage_events` — no record or
    CIGAR is ever decoded; row stores fall back to
    :func:`histogram_from_records`.
    """
    header = reader.header
    if not hasattr(reader, "read_column_batches"):
        return histogram_from_records(iter(reader), header, bin_size)
    from ..formats.kernels import add_coverage_events
    diffs = {ref.name: np.zeros(ref.length + 1, dtype=np.int64)
             for ref in header.references}
    ref_ids = {ref.name: header.ref_id(ref.name)
               for ref in header.references}
    lengths = {ref.name: ref.length for ref in header.references}
    for slab in reader.read_column_batches(0, len(reader)):
        for name, diff in diffs.items():
            add_coverage_events(slab, ref_ids[name], lengths[name], diff)
    return {name: bin_coverage(np.cumsum(diff[:-1]), bin_size)
            for name, diff in diffs.items()}


def histogram_to_bedgraph(histogram: np.ndarray, chrom: str,
                          bin_size: int) -> list[BedGraphInterval]:
    """Render one chromosome's binned histogram as BEDGRAPH intervals
    (equal-value neighbouring bins are collapsed; zero runs kept)."""
    intervals = []
    for iv in compress_runs(chrom, histogram.tolist()):
        intervals.append(BedGraphInterval(chrom, iv.start * bin_size,
                                          iv.end * bin_size, iv.value))
    return intervals


def bedgraph_to_histogram(intervals: Iterable[BedGraphInterval],
                          chrom: str, n_bins: int,
                          bin_size: int) -> np.ndarray:
    """Inverse of :func:`histogram_to_bedgraph` for one chromosome."""
    out = np.zeros(n_bins, dtype=np.float64)
    for iv in intervals:
        if iv.chrom != chrom:
            continue
        if iv.start % bin_size or iv.end % bin_size:
            raise ReproError(
                f"interval {iv.chrom}:{iv.start}-{iv.end} not aligned to "
                f"bin size {bin_size}")
        out[iv.start // bin_size:iv.end // bin_size] = iv.value
    return out
