"""Statistical analysis module: coverage histograms, NL-means denoising,
and FDR threshold computation — sequential references, vectorized
kernels, and the paper's parallelizations."""

from .fdr import FdrResult, fdr_parallel, fdr_reference, fdr_sorted, \
    fdr_spmd, fdr_vectorized
from .histogram import bedgraph_to_histogram, bin_coverage, \
    coverage_depth, histogram_from_records, histogram_from_store, \
    histogram_to_bedgraph
from .histogram_parallel import histogram_parallel, histogram_spmd
from .nlmeans import nlmeans, nlmeans_core, nlmeans_reference
from .nlmeans_fast import nlmeans_auto, nlmeans_fast
from .nlmeans_parallel import halo_partition, nlmeans_parallel, \
    nlmeans_spmd
from .peaks import Peak, PeakCallResult, call_peaks, empirical_pvalues, \
    regions_from_mask

__all__ = [
    "coverage_depth", "bin_coverage", "histogram_from_records",
    "histogram_from_store",
    "histogram_to_bedgraph", "bedgraph_to_histogram",
    "histogram_parallel", "histogram_spmd",
    "nlmeans", "nlmeans_core", "nlmeans_reference",
    "nlmeans_fast", "nlmeans_auto",
    "halo_partition", "nlmeans_parallel", "nlmeans_spmd",
    "FdrResult", "fdr_reference", "fdr_vectorized", "fdr_sorted",
    "fdr_parallel", "fdr_spmd",
    "Peak", "PeakCallResult", "call_peaks", "empirical_pvalues",
    "regions_from_mask",
]
