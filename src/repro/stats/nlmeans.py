"""1-D non-local means denoising (§IV-A; Buades et al. 2005, applied to
NGS histograms by Han et al. 2012).

Given a histogram ``v``, each point is replaced by a weighted average of
the points in its search range (radius ``r``); the weight between two
points is a Gaussian of the squared L2 distance between the length-
``2l+1`` patches centred on them::

    NL[v_i]  = sum_{j in R} w(i, j) v_j
    w(i, j)  = exp(-||N(v_i) - N(v_j)||^2 / (2 sigma^2)) / Z(i)

(The paper writes ``||.||`` without the exponent; we follow the original
NL-means definition and Han et al. in using the squared distance.)

Boundaries are edge-replicated so every point has a full patch and
search range — the same convention the parallel version's halo
replication needs at global ends.

Complexity is Theta(N (2r+1) (2l+1)), matching the paper.  The
vectorized kernel computes the patch-distance array for one search
offset at a time with a sliding-window sum; window sums are computed
*per window* (not via a running prefix), so results are bitwise
identical no matter how the signal is partitioned — which lets the test
suite assert exact equality between the sequential and parallel
versions.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ReproError


def _validate(values: np.ndarray, search_radius: int, half_patch: int,
              sigma: float) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ReproError("NL-means input must be 1-dimensional")
    if len(values) == 0:
        raise ReproError("NL-means input is empty")
    if search_radius < 1:
        raise ReproError(f"search radius {search_radius} must be >= 1")
    if half_patch < 0:
        raise ReproError(f"half patch size {half_patch} must be >= 0")
    if sigma <= 0:
        raise ReproError(f"filtering parameter sigma {sigma} must be > 0")
    return values


def nlmeans_reference(values: np.ndarray, search_radius: int = 20,
                      half_patch: int = 15,
                      sigma: float = 10.0) -> np.ndarray:
    """Literal triple-loop implementation of Equations 1-3.

    Only suitable for small inputs; exists as the ground truth the
    vectorized kernel is verified against.
    """
    v = _validate(values, search_radius, half_patch, sigma)
    r, l = search_radius, half_patch
    pad = r + l
    p = np.pad(v, pad, mode="edge")
    n = len(v)
    out = np.empty(n)
    for i in range(n):
        ci = i + pad
        num = 0.0
        z = 0.0
        for d in range(-r, r + 1):
            dist = 0.0
            for k in range(-l, l + 1):
                diff = p[ci + k] - p[ci + d + k]
                dist += diff * diff
            w = np.exp(-dist / (2.0 * sigma * sigma))
            num += w * p[ci + d]
            z += w
        out[i] = num / z
    return out


def nlmeans_core(padded: np.ndarray, core_start: int, core_len: int,
                 search_radius: int, half_patch: int,
                 sigma: float) -> np.ndarray:
    """Denoise ``padded[core_start : core_start + core_len]`` given that
    *padded* already contains ``search_radius + half_patch`` context
    points on both sides of the core region.

    This is the kernel both the sequential wrapper (edge-padded input)
    and each parallel rank (halo-replicated partition) call, so the two
    paths produce bitwise-identical output.
    """
    r, l = search_radius, half_patch
    halo = r + l
    if core_start < halo or core_start + core_len + halo > len(padded):
        raise ReproError(
            f"core [{core_start}, {core_start + core_len}) lacks the "
            f"{halo}-point context on both sides")
    width = 2 * l + 1
    inv = -1.0 / (2.0 * sigma * sigma)
    numerator = np.zeros(core_len)
    z = np.zeros(core_len)
    # Patch windows around each core centre c span [c - l, c + l]; for a
    # search offset d the shifted windows span [c + d - l, c + d + l].
    base = padded[core_start - l:core_start + core_len + l]
    centre_vals_from = core_start
    for d in range(-r, r + 1):
        shifted = padded[core_start + d - l:
                         core_start + d + core_len + l]
        sq = (base - shifted) ** 2
        # One independent sum per window: partition-invariant rounding.
        dist = sliding_window_view(sq, width).sum(axis=1)
        w = np.exp(inv * dist)
        numerator += w * padded[centre_vals_from + d:
                                centre_vals_from + d + core_len]
        z += w
    return numerator / z


def nlmeans(values: np.ndarray, search_radius: int = 20,
            half_patch: int = 15, sigma: float = 10.0) -> np.ndarray:
    """Sequential vectorized NL-means over a whole histogram."""
    v = _validate(values, search_radius, half_patch, sigma)
    halo = search_radius + half_patch
    padded = np.pad(v, halo, mode="edge")
    return nlmeans_core(padded, halo, len(v), search_radius, half_patch,
                        sigma)
