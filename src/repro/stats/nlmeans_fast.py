"""O(N(2r+1)) NL-means via prefix-sum sliding windows.

The paper's kernel (and :mod:`repro.stats.nlmeans`) costs
Theta(N (2r+1) (2l+1)): for each of the 2r+1 search offsets, every
patch distance is a fresh (2l+1)-term sum.  Those sums overlap — the
distance at centre i+1 reuses 2l of centre i's terms — so a running
prefix sum removes the (2l+1) factor entirely.

The price is *partition variance*: a prefix sum accumulates in array
order, so the floating-point rounding of a given window depends on
where the partition started.  Results therefore match the exact kernel
to ~1e-9 relative tolerance rather than bitwise, which is why this
lives beside the reference kernel instead of replacing it (the parallel
converter asserts bitwise equality).  The speed difference is
quantified in ``benchmarks/bench_ablation_nlmeans_fast.py``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .nlmeans import _validate


def nlmeans_fast(values: np.ndarray, search_radius: int = 20,
                 half_patch: int = 15, sigma: float = 10.0) -> np.ndarray:
    """Prefix-sum NL-means; numerically ~equal to :func:`nlmeans`."""
    v = _validate(values, search_radius, half_patch, sigma)
    r, l = search_radius, half_patch
    halo = r + l
    padded = np.pad(v, halo, mode="edge")
    n = len(v)
    width = 2 * l + 1
    inv = -1.0 / (2.0 * sigma * sigma)
    numerator = np.zeros(n)
    z = np.zeros(n)
    core = halo  # index of v[0] inside padded
    for d in range(-r, r + 1):
        # Squared differences for every aligned pair this offset needs:
        # window centres span [core - l, core + n - 1 + l].
        base = padded[core - l:core + n + l]
        shifted = padded[core + d - l:core + d + n + l]
        sq = (base - shifted) ** 2
        # Sliding 2l+1 sums via one prefix-sum pass: O(n) per offset.
        csum = np.empty(len(sq) + 1)
        csum[0] = 0.0
        np.cumsum(sq, out=csum[1:])
        dist = csum[width:] - csum[:-width]
        w = np.exp(inv * dist)
        numerator += w * padded[core + d:core + d + n]
        z += w
    return numerator / z


def nlmeans_auto(values: np.ndarray, search_radius: int = 20,
                 half_patch: int = 15, sigma: float = 10.0,
                 exact: bool = False) -> np.ndarray:
    """Pick the kernel: exact (partition-invariant) or fast prefix-sum.

    ``exact=True`` routes to :func:`repro.stats.nlmeans.nlmeans`.
    """
    if exact:
        from .nlmeans import nlmeans
        return nlmeans(values, search_radius, half_patch, sigma)
    if half_patch < 0:
        raise ReproError(f"half patch size {half_patch} must be >= 0")
    return nlmeans_fast(values, search_radius, half_patch, sigma)
