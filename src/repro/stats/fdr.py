"""False discovery rate computation (§IV-B; Han et al. 2012).

Given an observed histogram ``r`` (M bins) and B random simulation
datasets ``r*``, the FDR of a candidate threshold ``p_t`` is::

    p_i      = sum_b  I(r_i <= r*_ib)                      (Eq. 4)
    d_b      = sum_i  I( sum_b' I(r*_ib <= r*_ib') <= p_t) (Eq. 5)
    FDR(p_t) = (B^-1 sum_b d_b) / sum_i I(p_i <= p_t)      (Eq. 6)

Implementations, slowest to fastest:

* :func:`fdr_reference` — literal loops over the equations (tests only);
* :func:`fdr_vectorized` — NumPy broadcasting, O(M B^2) like the paper;
* :func:`fdr_sorted` — an O(M B log B) extension using per-bin sorting
  (cross-checked against the quadratic version);
* :func:`fdr_parallel` — the paper's Algorithm 2: bin-direction
  partitioning, fused local sums ``sum_diamond`` / ``sum_star``
  computed concurrently, a single global reduction.  The *unfused*
  two-step variant (separate numerator and denominator reductions, one
  extra barrier) is provided for the Fig. 12 ablation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..runtime.comm import Communicator
from ..runtime.metrics import RankMetrics
from ..runtime.partition import even_split

#: Bins per broadcasting chunk in the vectorized kernels; bounds the
#: B x B x chunk boolean intermediate to a few tens of MiB.
CHUNK_BINS = 2048


def _validate(histogram: np.ndarray, simulations: np.ndarray,
              ) -> tuple[np.ndarray, np.ndarray]:
    histogram = np.asarray(histogram, dtype=np.float64)
    simulations = np.asarray(simulations, dtype=np.float64)
    if histogram.ndim != 1:
        raise ReproError("histogram must be 1-dimensional")
    if simulations.ndim != 2:
        raise ReproError("simulations must be 2-dimensional (B, M)")
    if simulations.shape[1] != len(histogram):
        raise ReproError(
            f"simulations have {simulations.shape[1]} bins, histogram "
            f"has {len(histogram)}")
    if simulations.shape[0] < 1:
        raise ReproError("need at least one simulation dataset")
    return histogram, simulations


@dataclass(slots=True)
class FdrResult:
    """FDR value plus the intermediate sums (for inspection/tests)."""

    fdr: float
    numerator: float      # B^-1 * sum_b d_b  ==  sum_i sum_diamond_i / B
    denominator: float    # sum_i I(p_i <= p_t)
    threshold: float


def fdr_reference(histogram: np.ndarray, simulations: np.ndarray,
                  p_t: float) -> FdrResult:
    """Direct transcription of Equations 4-6 (O(M B^2), loops)."""
    hist, sims = _validate(histogram, simulations)
    n_sims, n_bins = sims.shape
    p = np.zeros(n_bins)
    for i in range(n_bins):
        for b in range(n_sims):
            if hist[i] <= sims[b, i]:
                p[i] += 1
    d = np.zeros(n_sims)
    for b in range(n_sims):
        for i in range(n_bins):
            rank = 0
            for b2 in range(n_sims):
                if sims[b, i] <= sims[b2, i]:
                    rank += 1
            if rank <= p_t:
                d[b] += 1
    denominator = float(np.sum(p <= p_t))
    numerator = float(d.sum() / n_sims)
    return FdrResult(_safe_ratio(numerator, denominator), numerator,
                     denominator, p_t)


def _local_sums_quadratic(hist: np.ndarray, sims: np.ndarray,
                          p_t: float) -> tuple[float, float]:
    """Fused sum_diamond / sum_star over one bin chunk (Eqs. 7-8),
    via B x B broadcasting."""
    # ranks[b, i] = #(b' : sims[b, i] <= sims[b', i])
    ranks = (sims[:, None, :] <= sims[None, :, :]).sum(axis=1)
    sum_diamond = float((ranks <= p_t).sum())
    p = (hist[None, :] <= sims).sum(axis=0)
    sum_star = float((p <= p_t).sum())
    return sum_diamond, sum_star


def _local_sums_sorted(hist: np.ndarray, sims: np.ndarray,
                       p_t: float) -> tuple[float, float]:
    """Fused local sums in O(B log B) per bin via per-column sorting.

    ``rank_ib = #(b': sims_bi <= sims_b'i) = B - lower_bound(col, x)``
    where the column is sorted ascending; ties are handled by the
    left-side search, matching the <= comparison.
    """
    n_sims = sims.shape[0]
    ordered = np.sort(sims, axis=0)
    sum_diamond = 0.0
    for i in range(sims.shape[1]):
        lo = np.searchsorted(ordered[:, i], sims[:, i], side="left")
        ranks = n_sims - lo
        sum_diamond += float((ranks <= p_t).sum())
    p = (hist[None, :] <= sims).sum(axis=0)
    sum_star = float((p <= p_t).sum())
    return sum_diamond, sum_star


def _safe_ratio(numerator: float, denominator: float) -> float:
    """FDR with the 0-denominator convention: no selected bins -> 0."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def _fdr_chunked(histogram: np.ndarray, simulations: np.ndarray,
                 p_t: float, local_sums, chunk_bins: int) -> FdrResult:
    hist, sims = _validate(histogram, simulations)
    n_sims, n_bins = sims.shape
    sum_diamond = 0.0
    sum_star = 0.0
    for start in range(0, n_bins, chunk_bins):
        stop = min(start + chunk_bins, n_bins)
        d, s = local_sums(hist[start:stop], sims[:, start:stop], p_t)
        sum_diamond += d
        sum_star += s
    numerator = sum_diamond / n_sims
    return FdrResult(_safe_ratio(numerator, sum_star), numerator,
                     sum_star, p_t)


def fdr_vectorized(histogram: np.ndarray, simulations: np.ndarray,
                   p_t: float, chunk_bins: int = CHUNK_BINS) -> FdrResult:
    """Vectorized O(M B^2) computation (the paper's complexity)."""
    return _fdr_chunked(histogram, simulations, p_t,
                        _local_sums_quadratic, chunk_bins)


def fdr_sorted(histogram: np.ndarray, simulations: np.ndarray,
               p_t: float, chunk_bins: int = CHUNK_BINS) -> FdrResult:
    """O(M B log B) extension via per-bin sorting."""
    return _fdr_chunked(histogram, simulations, p_t,
                        _local_sums_sorted, chunk_bins)


# -- Algorithm 2: parallel FDR ------------------------------------------


@dataclass(slots=True)
class FdrRankSums:
    """One rank's local sums and measured work."""

    sum_diamond: float
    sum_star: float
    metrics: RankMetrics


def fdr_rank_work(hist_part: np.ndarray, sims_part: np.ndarray,
                  p_t: float, method: str = "quadratic") -> FdrRankSums:
    """Compute one bin partition's fused local sums (Eqs. 7-8)."""
    t0 = time.perf_counter()
    metrics = RankMetrics()
    local_sums = _local_sums_quadratic if method == "quadratic" \
        else _local_sums_sorted
    sum_diamond = 0.0
    sum_star = 0.0
    for start in range(0, len(hist_part), CHUNK_BINS):
        stop = min(start + CHUNK_BINS, len(hist_part))
        d, s = local_sums(hist_part[start:stop],
                          sims_part[:, start:stop], p_t)
        sum_diamond += d
        sum_star += s
    metrics.compute_seconds = time.perf_counter() - t0
    metrics.records = len(hist_part)
    metrics.bytes_read = hist_part.nbytes + sims_part.nbytes
    return FdrRankSums(sum_diamond, sum_star, metrics)


def fdr_parallel(histogram: np.ndarray, simulations: np.ndarray,
                 p_t: float, nprocs: int, method: str = "quadratic",
                 fused: bool = True,
                 ) -> tuple[FdrResult, list[RankMetrics]]:
    """Algorithm 2 with ranks executed in sequence (simulated cluster).

    *fused* selects the paper's optimization: compute ``sum_diamond``
    and ``sum_star`` concurrently and reduce once.  ``fused=False``
    models the unoptimized two-step schedule — numerator pass, global
    synchronization, denominator pass — whose extra barrier/reduction
    cost is charged by the cluster model (the Fig. 12 ablation).
    """
    hist, sims = _validate(histogram, simulations)
    if nprocs < 1:
        raise ReproError(f"nprocs {nprocs} must be >= 1")
    n_sims = sims.shape[0]
    rank_sums: list[FdrRankSums] = []
    for start, stop in even_split(len(hist), nprocs):
        rank_sums.append(fdr_rank_work(hist[start:stop],
                                       sims[:, start:stop], p_t, method))
    if not fused:
        # The two-pass schedule does the same arithmetic twice over the
        # partition (one pass per sum); charge the second sweep's rank
        # time so the model sees the real cost difference.
        second_pass = []
        for (start, stop), sums in zip(even_split(len(hist), nprocs),
                                       rank_sums):
            repeat = fdr_rank_work(hist[start:stop], sims[:, start:stop],
                                   p_t, method)
            merged = sums.metrics.merge(repeat.metrics)
            second_pass.append(FdrRankSums(sums.sum_diamond, sums.sum_star,
                                           merged))
        rank_sums = second_pass
    sum_diamond = sum(r.sum_diamond for r in rank_sums)
    sum_star = sum(r.sum_star for r in rank_sums)
    numerator = sum_diamond / n_sims
    result = FdrResult(_safe_ratio(numerator, sum_star), numerator,
                       sum_star, p_t)
    return result, [r.metrics for r in rank_sums]


def fdr_spmd(comm: Communicator, histogram: np.ndarray | None,
             simulations: np.ndarray | None, p_t: float,
             method: str = "quadratic") -> FdrResult | None:
    """Algorithm 2 verbatim over a communicator.

    Rank 0 scatters bin-direction partitions, every rank computes its
    fused local sums, a barrier separates the local and global phases,
    and rank 0 (the master) reduces and computes the FDR value.
    Returns the result on rank 0, None elsewhere.
    """
    if comm.rank == 0:
        if histogram is None or simulations is None:
            raise ReproError("rank 0 must provide histogram and "
                             "simulations")
        hist, sims = _validate(histogram, simulations)
        bounds = even_split(len(hist), comm.size)
        parts = [(hist[a:b], sims[:, a:b]) for a, b in bounds]
        n_sims = sims.shape[0]
    else:
        parts = None
        n_sims = 0
    hist_part, sims_part = comm.scatter(parts, root=0)
    sums = fdr_rank_work(hist_part, sims_part, p_t, method)
    comm.barrier()
    gathered = comm.gather((sums.sum_diamond, sums.sum_star), root=0)
    if comm.rank != 0:
        return None
    assert gathered is not None
    sum_diamond = sum(d for d, _ in gathered)
    sum_star = sum(s for _, s in gathered)
    numerator = sum_diamond / n_sims
    return FdrResult(_safe_ratio(numerator, sum_star), numerator,
                     sum_star, p_t)
