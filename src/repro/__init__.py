"""repro: parallel NGS sequence-data format conversion and statistical
analysis.

A from-scratch Python reproduction of "Removing Sequential Bottlenecks
in Analysis of Next-Generation Sequencing Data" (Wang, Ozer, Agrawal,
Huang — IPDPS workshops 2014): three parallel converter instances (SAM,
BAM, preprocessing-optimized SAM) over the paper's BAMX/BAIX random-
access formats, partial (region) conversion, and parallelized NL-means
denoising and FDR computation, together with every substrate they need
(SAM/BAM/BGZF/BAI codecs, an MPI-style runtime, a read simulator and
aligner, and a Picard-like sequential baseline).

Quick start::

    from repro import simdata, core
    wl = simdata.build_sam_dataset("sample.sam", n_templates=1000)
    result = core.SamConverter().convert("sample.sam", "bed", "out/",
                                         nprocs=4)
"""

from . import baselines, core, formats, runtime, simdata, stats, tools
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["formats", "runtime", "core", "stats", "simdata", "baselines",
           "tools", "ReproError", "__version__"]
