"""The canonical in-memory alignment record.

This is the "alignment object" of the paper's runtime/user-program split:
every reader (SAM, BAM, BAMX) parses into :class:`AlignmentRecord`, and
every target-format plugin consumes it.  Field names follow the SAM
mandatory columns; coordinates are stored 0-based internally (``pos``)
and converted to/from 1-based at the text boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SamFormatError
from . import cigar as _cigar
from . import flags as _flags
from . import seq as _seq
from .tags import Tag

#: Sentinel for "no reference" / "no position" in 0-based coordinates.
UNMAPPED_POS = -1


@dataclass(slots=True)
class AlignmentRecord:
    """One sequence alignment.

    Attributes
    ----------
    qname:
        Query (read) name; ``*`` means unavailable.
    flag:
        SAM FLAG bitfield (see :mod:`repro.formats.flags`).
    rname:
        Reference sequence name, or ``*`` if unmapped.
    pos:
        0-based leftmost mapping position; ``-1`` if unavailable
        (serialized as SAM POS ``0``).
    mapq:
        Mapping quality, 255 meaning unavailable.
    cigar:
        ``[(length, op), ...]``; empty list means SAM ``*``.
    rnext, pnext:
        Mate reference name (``*``/``=`` conventions preserved) and
        0-based mate position.
    tlen:
        Observed template length (signed).
    seq:
        Segment sequence, or ``*``.
    qual:
        Phred+33 quality string, or ``*``.
    tags:
        Optional fields in order of appearance.
    """

    qname: str
    flag: int
    rname: str
    pos: int
    mapq: int
    cigar: list[tuple[int, str]]
    rnext: str
    pnext: int
    tlen: int
    seq: str
    qual: str
    tags: list[Tag] = field(default_factory=list)

    # -- derived properties ----------------------------------------------

    @property
    def is_mapped(self) -> bool:
        """True when the UNMAPPED flag bit is clear."""
        return _flags.is_mapped(self.flag)

    @property
    def is_reverse(self) -> bool:
        """True when SEQ is stored reverse-complemented."""
        return _flags.is_reverse(self.flag)

    @property
    def is_paired(self) -> bool:
        """True when the template has multiple segments."""
        return _flags.is_paired(self.flag)

    @property
    def mate_number(self) -> int:
        """1, 2, or 0 (see :func:`repro.formats.flags.mate_number`)."""
        return _flags.mate_number(self.flag)

    @property
    def query_length(self) -> int:
        """Length of SEQ, derived from CIGAR when SEQ is ``*``."""
        if self.seq != "*":
            return len(self.seq)
        return _cigar.query_length(self.cigar)

    @property
    def reference_span(self) -> int:
        """Number of reference positions covered (0 if no CIGAR)."""
        return _cigar.reference_span(self.cigar)

    @property
    def end(self) -> int:
        """0-based exclusive end position on the reference.

        For a record without a CIGAR the span is taken as 1 so that the
        record still occupies its anchor position (the samtools
        convention for indexing placed-but-unaligned records).
        """
        if self.pos == UNMAPPED_POS:
            return UNMAPPED_POS
        span = self.reference_span
        return self.pos + (span if span > 0 else 1)

    def original_sequence(self) -> str:
        """SEQ in original (instrument) orientation."""
        if self.seq == "*" or not self.is_reverse:
            return self.seq
        return _seq.reverse_complement(self.seq)

    def original_qualities(self) -> str:
        """QUAL in original (instrument) orientation."""
        if self.qual == "*" or not self.is_reverse:
            return self.qual
        return self.qual[::-1]

    def get_tag(self, name: str) -> Tag | None:
        """Return the first tag called *name*, or None."""
        for tag in self.tags:
            if tag.name == name:
                return tag
        return None

    def validate(self) -> None:
        """Check internal consistency; raise SamFormatError on violation."""
        try:
            _flags.validate_flag(self.flag)
        except ValueError as exc:
            raise SamFormatError(str(exc)) from None
        if not self.qname or "\t" in self.qname or " " in self.qname:
            raise SamFormatError(f"invalid QNAME {self.qname!r}")
        if len(self.qname) > 254:
            raise SamFormatError("QNAME longer than 254 characters")
        if not 0 <= self.mapq <= 255:
            raise SamFormatError(f"MAPQ {self.mapq} outside [0, 255]")
        if self.pos < UNMAPPED_POS:
            raise SamFormatError(f"invalid position {self.pos}")
        if self.pnext < UNMAPPED_POS:
            raise SamFormatError(f"invalid mate position {self.pnext}")
        try:
            _seq.validate_seq(self.seq)
        except SamFormatError:
            raise
        except Exception as exc:
            raise SamFormatError(str(exc)) from None
        if self.cigar:
            _cigar.validate_cigar(
                self.cigar,
                len(self.seq) if self.seq != "*" else None)
        if self.seq != "*" and self.qual != "*" \
                and len(self.qual) != len(self.seq):
            raise SamFormatError(
                f"QUAL length {len(self.qual)} != SEQ length {len(self.seq)}")
