"""BAIX ("BAI eXtended"): the paper's index over a BAMX file.

A BAIX file stores every alignment's *starting position* together with
its *record index* in the associated BAMX file, sorted by genomic
coordinate (Fig. 4 of the paper: positions ascending, indices in
whatever order the records landed in the BAMX).  A user-specified region
maps to a contiguous BAIX subrange via binary search; the subrange is
then split evenly across processors for partial conversion.

On-disk layout::

    magic "BAIX\\x01"
    u64 entry_count
    i32[entry_count]  ref ids        )
    i32[entry_count]  positions      )  columnar, numpy-friendly
    i64[entry_count]  record indices )

Unplaced records (no reference / no position) are excluded from the
index, mirroring BAI behaviour.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterable

import numpy as np

from ..errors import IndexError_
from .bamx import BamxReader
from .header import SamHeader
from .record import AlignmentRecord

MAGIC = b"BAIX\x01"


class BaixIndex:
    """Sorted (ref, pos) -> BAMX record index mapping."""

    def __init__(self, ref_ids: np.ndarray, positions: np.ndarray,
                 indices: np.ndarray) -> None:
        if not (len(ref_ids) == len(positions) == len(indices)):
            raise IndexError_("BAIX column lengths disagree")
        self.ref_ids = np.ascontiguousarray(ref_ids, dtype=np.int32)
        self.positions = np.ascontiguousarray(positions, dtype=np.int32)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        # Composite sort key: ref id in the high bits, position low.
        self._keys = (self.ref_ids.astype(np.int64) << 32) \
            | self.positions.astype(np.int64)
        if len(self._keys) > 1 and np.any(np.diff(self._keys) < 0):
            raise IndexError_("BAIX entries are not coordinate-sorted")

    def __len__(self) -> int:
        return len(self.indices)

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[tuple[int, AlignmentRecord]],
              header: SamHeader) -> "BaixIndex":
        """Build from ``(record_index, record)`` pairs in any order."""
        ref_ids = []
        positions = []
        indices = []
        for index, record in records:
            if record.rname == "*" or record.pos < 0:
                continue
            ref_ids.append(header.ref_id(record.rname))
            positions.append(record.pos)
            indices.append(index)
        ref_arr = np.asarray(ref_ids, dtype=np.int32)
        pos_arr = np.asarray(positions, dtype=np.int32)
        idx_arr = np.asarray(indices, dtype=np.int64)
        order = np.lexsort((idx_arr, pos_arr, ref_arr))
        return cls(ref_arr[order], pos_arr[order], idx_arr[order])

    @classmethod
    def from_bamx(cls, reader: BamxReader) -> "BaixIndex":
        """Index every placed record of an open BAMX reader."""
        return cls.build(enumerate(reader), reader.header)

    # -- (de)serialization -------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the columnar on-disk layout."""
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<Q", len(self.indices)))
            fh.write(self.ref_ids.astype("<i4").tobytes())
            fh.write(self.positions.astype("<i4").tobytes())
            fh.write(self.indices.astype("<i8").tobytes())

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "BaixIndex":
        """Parse an on-disk BAIX file."""
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise IndexError_(f"bad BAIX magic in {os.fspath(path)}")
            (count,) = struct.unpack("<Q", fh.read(8))
            ref_ids = np.frombuffer(fh.read(4 * count), dtype="<i4")
            positions = np.frombuffer(fh.read(4 * count), dtype="<i4")
            indices = np.frombuffer(fh.read(8 * count), dtype="<i8")
        if len(indices) != count:
            raise IndexError_(f"truncated BAIX file {os.fspath(path)}")
        return cls(ref_ids, positions, indices)

    # -- queries -----------------------------------------------------------

    def locate(self, ref_id: int, start: int, end: int) -> tuple[int, int]:
        """Return the BAIX entry subrange ``[lo, hi)`` whose records
        *start* within ``[start, end)`` on reference *ref_id*.

        This is the binary search of §III-B: both region boundaries are
        located over the sorted starting positions.  (Like the paper, the
        region selects by record start position, the quantity BAIX
        stores.)
        """
        if start < 0 or end < start:
            raise IndexError_(f"invalid region [{start}, {end})")
        lo_key = (ref_id << 32) | start
        hi_key = (ref_id << 32) | end
        lo = int(np.searchsorted(self._keys, lo_key, side="left"))
        hi = int(np.searchsorted(self._keys, hi_key, side="left"))
        return lo, hi

    def record_indices(self, lo: int, hi: int) -> np.ndarray:
        """BAMX record indices for BAIX entries ``[lo, hi)``."""
        if not 0 <= lo <= hi <= len(self.indices):
            raise IndexError_(
                f"BAIX subrange [{lo}, {hi}) outside [0, {len(self.indices)})")
        return self.indices[lo:hi]

    def ref_span(self, ref_id: int) -> tuple[int, int]:
        """Entry subrange covering all of reference *ref_id*."""
        return self.locate(ref_id, 0, 1 << 31)


def default_index_path(bamx_path: str | os.PathLike[str]) -> str:
    """The conventional sibling index path, ``<bamx>.baix``."""
    return os.fspath(bamx_path) + ".baix"
