"""BAMC ("BAM Columnar"): the columnar BAMX v2 record store.

BAMX (v1) keeps every record in one fixed-size row, so any consumer —
even a BED conversion that needs three fields — walks the full record
stride.  BAMC transposes the layout: records are grouped into slabs of
``slab_records`` records, and each slab stores the fixed-width fields
as contiguous little-endian *columns* (numpy-ready), with the
variable-length fields (name, CIGAR, sequence, qualities, tags) packed
into per-slab blobs addressed by ``u32`` offset tables.  Downstream
kernels (:mod:`repro.formats.kernels`) then run filters, flagstat,
histograms and target emission as vectorized array operations without
materializing a single :class:`~repro.formats.record.AlignmentRecord`.

File layout::

    magic "BAMC\\x01"
    u32  data_offset            (bytes before the first slab; patched)
    u32  name_cap  u32 cigar_cap  u32 seq_cap  u32 tag_cap
    u64  record_count           (patched on close)
    u32  slab_records           (records per slab; last slab partial)
    u64  footer_offset          (patched on close)
    u32  sam_header_text_length
    ...  SAM header text (ASCII, carries the reference dictionary)
    ...  slabs
    footer:
        u32  slab_count
        u64[slab_count]  slab byte offsets
        u32[slab_count]  slab record counts

Slab layout for ``n`` records (all little-endian, tightly packed)::

    i32[n] ref_id      i32[n] pos       i32[n] end_pos
    i32[n] next_ref    i32[n] next_pos  i32[n] tlen   i32[n] l_seq
    u16[n] flag        u8[n]  mapq
    5 x variable sections, each:  u32[n+1] byte offsets, blob bytes
        name   ASCII read names
        cigar  BAM-packed u32 CIGAR words (len<<4 | op)
        seq    BAM 4-bit nybbles, (l_seq+1)//2 bytes per record
        qual   raw Phred bytes, l_seq per record (0xFF fill = absent)
        tags   BAM tag encoding

``end_pos`` is *derived* — ``record.end`` precomputed at write time
(``-1`` for unplaced records) — so interval targets (BED, BEDGRAPH)
and the coverage kernels never touch the CIGAR blob at read time.  The
decode path ignores it; round-trips are governed by the other columns.

The caps in the header are the same capacities a BAMX layout would
plan; BAMC enforces them at write time for error parity (a record that
would raise :class:`~repro.errors.CapacityError` in a BAMX writer
raises it here too) and exposes them through ``reader.layout`` so
record-size-based accounting keeps working unchanged.
"""

from __future__ import annotations

import io
import os
import struct
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import BamxFormatError, CapacityError
from .bamx import BamxLayout
from .cigar import decode_ops, encode_ops
from .header import SamHeader
from .record import UNMAPPED_POS, AlignmentRecord
from .seq import pack_sequence, qual_bytes_to_text, qual_text_to_bytes, \
    unpack_sequence
from .tags import decode_tags, encode_tags

MAGIC = b"BAMC\x01"

#: Default records per slab.  Big enough that per-slab numpy dispatch
#: overhead vanishes, small enough that a slab stays cache-friendly.
DEFAULT_SLAB_RECORDS = 4096

_HEADER = struct.Struct("<IIIIIQIQI")
# data_offset, name_cap, cigar_cap, seq_cap, tag_cap,
# record_count, slab_records, footer_offset, text_len
_COUNT_OFFSET = len(MAGIC) + 20          # u64 record_count
_FOOTER_OFFSET = len(MAGIC) + 20 + 8 + 4  # u64 footer_offset


@dataclass(slots=True)
class ColumnSlab:
    """One slab's columns: numpy views plus blob bytes.

    Fixed fields are numpy arrays of length :attr:`count`; each
    variable field has per-record ``lo``/``hi`` byte ranges into its
    blob (``blob[lo[i]:hi[i]]`` is record *i*'s field).  ``start`` is
    the global index of the first record, or ``-1`` for a gathered
    (fancy-indexed) slab where the records are not contiguous.
    """

    start: int
    count: int
    ref_id: np.ndarray
    pos: np.ndarray
    end_pos: np.ndarray
    next_ref: np.ndarray
    next_pos: np.ndarray
    tlen: np.ndarray
    l_seq: np.ndarray
    flag: np.ndarray
    mapq: np.ndarray
    name_lo: np.ndarray
    name_hi: np.ndarray
    cigar_lo: np.ndarray
    cigar_hi: np.ndarray
    seq_lo: np.ndarray
    seq_hi: np.ndarray
    qual_lo: np.ndarray
    qual_hi: np.ndarray
    tag_lo: np.ndarray
    tag_hi: np.ndarray
    name_blob: bytes
    cigar_blob: bytes
    seq_blob: bytes
    qual_blob: bytes
    tag_blob: bytes

    def window(self, a: int, b: int, start: int) -> "ColumnSlab":
        """A zero-copy view of records ``[a, b)`` of this slab."""
        return ColumnSlab(
            start, b - a,
            self.ref_id[a:b], self.pos[a:b], self.end_pos[a:b],
            self.next_ref[a:b], self.next_pos[a:b], self.tlen[a:b],
            self.l_seq[a:b], self.flag[a:b], self.mapq[a:b],
            self.name_lo[a:b], self.name_hi[a:b],
            self.cigar_lo[a:b], self.cigar_hi[a:b],
            self.seq_lo[a:b], self.seq_hi[a:b],
            self.qual_lo[a:b], self.qual_hi[a:b],
            self.tag_lo[a:b], self.tag_hi[a:b],
            self.name_blob, self.cigar_blob, self.seq_blob,
            self.qual_blob, self.tag_blob)

    def take(self, idx: np.ndarray) -> "ColumnSlab":
        """A gathered slab of the (slab-local) records in *idx*.

        Preserves the order of *idx*, which is what lets the partial
        conversion path keep the caller's record order byte-for-byte.
        """
        return ColumnSlab(
            -1, len(idx),
            self.ref_id[idx], self.pos[idx], self.end_pos[idx],
            self.next_ref[idx], self.next_pos[idx], self.tlen[idx],
            self.l_seq[idx], self.flag[idx], self.mapq[idx],
            self.name_lo[idx], self.name_hi[idx],
            self.cigar_lo[idx], self.cigar_hi[idx],
            self.seq_lo[idx], self.seq_hi[idx],
            self.qual_lo[idx], self.qual_hi[idx],
            self.tag_lo[idx], self.tag_hi[idx],
            self.name_blob, self.cigar_blob, self.seq_blob,
            self.qual_blob, self.tag_blob)

    def decode(self, i: int, header: SamHeader) -> AlignmentRecord:
        """Decode record *i* of this slab, matching BAMX decode exactly."""
        ref_id = int(self.ref_id[i])
        pos = int(self.pos[i])
        next_ref = int(self.next_ref[i])
        next_pos = int(self.next_pos[i])
        l_seq = int(self.l_seq[i])
        name = str(self.name_blob[self.name_lo[i]:self.name_hi[i]],
                   "ascii")
        words = np.frombuffer(
            self.cigar_blob[self.cigar_lo[i]:self.cigar_hi[i]], "<u4")
        if l_seq:
            seq = unpack_sequence(
                self.seq_blob[self.seq_lo[i]:self.seq_hi[i]], l_seq)
            qual_raw = self.qual_blob[self.qual_lo[i]:self.qual_hi[i]]
            qual = "*" if not qual_raw.strip(b"\xff") \
                else qual_bytes_to_text(qual_raw)
        else:
            seq = qual = "*"
        tags = decode_tags(self.tag_blob[self.tag_lo[i]:self.tag_hi[i]])
        rname = "*" if ref_id < 0 else header.ref_name(ref_id)
        if next_ref < 0:
            rnext = "*"
        elif next_ref == ref_id:
            rnext = "="
        else:
            rnext = header.ref_name(next_ref)
        return AlignmentRecord(
            qname=name, flag=int(self.flag[i]), rname=rname,
            pos=pos if pos >= 0 else UNMAPPED_POS,
            mapq=int(self.mapq[i]),
            cigar=decode_ops([int(w) for w in words]),
            rnext=rnext,
            pnext=next_pos if next_pos >= 0 else UNMAPPED_POS,
            tlen=int(self.tlen[i]), seq=seq, qual=qual, tags=tags)

    def decode_all(self, header: SamHeader) -> Iterator[AlignmentRecord]:
        """Decode every record of this slab in order."""
        for i in range(self.count):
            yield self.decode(i, header)


def _parse_slab(buf: bytes, start: int, count: int) -> ColumnSlab:
    """Build a :class:`ColumnSlab` over one raw slab buffer."""
    off = 0

    def fixed(dtype: str, width: int) -> np.ndarray:
        nonlocal off
        arr = np.frombuffer(buf, dtype, count, off)
        off += width * count
        return arr

    ref_id = fixed("<i4", 4)
    pos = fixed("<i4", 4)
    end_pos = fixed("<i4", 4)
    next_ref = fixed("<i4", 4)
    next_pos = fixed("<i4", 4)
    tlen = fixed("<i4", 4)
    l_seq = fixed("<i4", 4)
    flag = fixed("<u2", 2)
    mapq = fixed("u1", 1)

    sections = []
    for _ in range(5):
        offsets = np.frombuffer(buf, "<u4", count + 1, off)
        off += 4 * (count + 1)
        blob_len = int(offsets[count])
        blob = buf[off:off + blob_len]
        if len(blob) != blob_len:
            raise BamxFormatError("truncated BAMC slab")
        off += blob_len
        sections.append((offsets[:-1], offsets[1:], blob))
    (name_lo, name_hi, name_blob), (cigar_lo, cigar_hi, cigar_blob), \
        (seq_lo, seq_hi, seq_blob), (qual_lo, qual_hi, qual_blob), \
        (tag_lo, tag_hi, tag_blob) = sections
    return ColumnSlab(
        start, count, ref_id, pos, end_pos, next_ref, next_pos, tlen,
        l_seq, flag, mapq, name_lo, name_hi, cigar_lo, cigar_hi,
        seq_lo, seq_hi, qual_lo, qual_hi, tag_lo, tag_hi,
        name_blob, cigar_blob, seq_blob, qual_blob, tag_blob)


class BamcWriter:
    """Write a BAMC file with a pre-planned :class:`BamxLayout`.

    Mirrors :class:`~repro.formats.bamx.BamxWriter`: ``write`` /
    ``write_batch`` (returning the first record index, for BAIX
    building) / ``write_all`` / ``close``, with the same capacity
    validation and :class:`~repro.errors.CapacityError` behaviour.
    """

    def __init__(self, target: str | os.PathLike[str], header: SamHeader,
                 layout: BamxLayout,
                 slab_records: int = DEFAULT_SLAB_RECORDS) -> None:
        if slab_records < 1:
            raise BamxFormatError(
                f"slab_records {slab_records} must be >= 1")
        self._fh: io.BufferedWriter = open(target, "wb")  # noqa: SIM115
        self.header = header
        self.layout = layout
        self.slab_records = slab_records
        self.records_written = 0
        self._pending: list[AlignmentRecord] = []
        self._slab_offsets: list[int] = []
        self._slab_counts: list[int] = []
        text = header.to_text().encode("ascii")
        self._fh.write(MAGIC)
        self._fh.write(_HEADER.pack(
            0, layout.name_cap, layout.cigar_cap, layout.seq_cap,
            layout.tag_cap, 0, slab_records, 0, len(text)))
        self._fh.write(text)
        self._data_offset = self._fh.tell()

    def __enter__(self) -> "BamcWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def write(self, record: AlignmentRecord) -> int:
        """Append one record; return its 0-based record index."""
        index = self.records_written
        self._pending.append(record)
        self.records_written += 1
        if len(self._pending) >= self.slab_records:
            self._flush_slab()
        return index

    def write_batch(self, records: list[AlignmentRecord]) -> int:
        """Append a batch; return the first record's index."""
        first = self.records_written
        for record in records:
            self._pending.append(record)
            self.records_written += 1
            if len(self._pending) >= self.slab_records:
                self._flush_slab()
        return first

    def write_all(self, records: Iterable[AlignmentRecord]) -> int:
        """Append every record; return the count written by this call."""
        n = 0
        for record in records:
            self.write(record)
            n += 1
        return n

    def _flush_slab(self) -> None:
        records, self._pending = self._pending, []
        if not records:
            return
        self._slab_offsets.append(self._fh.tell())
        self._slab_counts.append(len(records))
        self._fh.write(self._encode_slab(records))

    def _encode_slab(self, records: list[AlignmentRecord]) -> bytes:
        layout, header = self.layout, self.header
        n = len(records)
        ref_ids = [0] * n
        poss = [0] * n
        ends = [0] * n
        next_refs = [0] * n
        next_poss = [0] * n
        tlens = [0] * n
        l_seqs = [0] * n
        flags = [0] * n
        mapqs = [0] * n
        names: list[bytes] = []
        cigars: list[bytes] = []
        seqs: list[bytes] = []
        quals: list[bytes] = []
        tags: list[bytes] = []
        for i, record in enumerate(records):
            name = record.qname.encode("ascii")
            if len(name) > layout.name_cap:
                raise CapacityError(
                    f"read name of {len(name)} bytes exceeds layout "
                    f"capacity {layout.name_cap}")
            words = encode_ops(record.cigar)
            if len(words) > layout.cigar_cap:
                raise CapacityError(
                    f"{len(words)} CIGAR ops exceed layout capacity "
                    f"{layout.cigar_cap}")
            l_seq = 0 if record.seq == "*" else len(record.seq)
            if l_seq > layout.seq_cap:
                raise CapacityError(
                    f"sequence of {l_seq} bases exceeds layout "
                    f"capacity {layout.seq_cap}")
            tag_block = encode_tags(record.tags)
            if len(tag_block) > layout.tag_cap:
                raise CapacityError(
                    f"tag block of {len(tag_block)} bytes exceeds "
                    f"layout capacity {layout.tag_cap}")
            ref_id = -1 if record.rname == "*" \
                else header.ref_id(record.rname)
            if record.rnext == "*":
                next_ref = -1
            elif record.rnext == "=":
                next_ref = ref_id
            else:
                next_ref = header.ref_id(record.rnext)
            ref_ids[i] = ref_id
            poss[i] = record.pos
            ends[i] = record.end
            next_refs[i] = next_ref
            next_poss[i] = record.pnext
            tlens[i] = record.tlen
            l_seqs[i] = l_seq
            flags[i] = record.flag
            mapqs[i] = record.mapq
            names.append(name)
            cigars.append(struct.pack(f"<{len(words)}I", *words))
            if l_seq:
                seqs.append(pack_sequence(record.seq))
                if record.qual == "*":
                    quals.append(b"\xff" * l_seq)
                else:
                    if len(record.qual) != l_seq:
                        raise BamxFormatError(
                            f"QUAL length {len(record.qual)} != SEQ "
                            f"length {l_seq}")
                    quals.append(qual_text_to_bytes(record.qual))
            else:
                seqs.append(b"")
                quals.append(b"")
            tags.append(tag_block)
        parts = [
            np.array(ref_ids, "<i4").tobytes(),
            np.array(poss, "<i4").tobytes(),
            np.array(ends, "<i4").tobytes(),
            np.array(next_refs, "<i4").tobytes(),
            np.array(next_poss, "<i4").tobytes(),
            np.array(tlens, "<i4").tobytes(),
            np.array(l_seqs, "<i4").tobytes(),
            np.array(flags, "<u2").tobytes(),
            np.array(mapqs, "u1").tobytes(),
        ]
        for blobs in (names, cigars, seqs, quals, tags):
            offsets = np.zeros(n + 1, "<u4")
            offsets[1:] = np.cumsum([len(b) for b in blobs])
            parts.append(offsets.tobytes())
            parts.append(b"".join(blobs))
        return b"".join(parts)

    def close(self) -> None:
        """Flush the tail slab, write the footer, patch the header."""
        if self._fh.closed:
            return
        self._flush_slab()
        footer_offset = self._fh.tell()
        self._fh.write(struct.pack("<I", len(self._slab_offsets)))
        self._fh.write(np.array(self._slab_offsets, "<u8").tobytes())
        self._fh.write(np.array(self._slab_counts, "<u4").tobytes())
        self._fh.seek(len(MAGIC))
        self._fh.write(struct.pack("<I", self._data_offset))
        self._fh.seek(_COUNT_OFFSET)
        self._fh.write(struct.pack("<Q", self.records_written))
        self._fh.seek(_FOOTER_OFFSET)
        self._fh.write(struct.pack("<Q", footer_offset))
        self._fh.close()


class BamcReader:
    """Random-access BAMC reader.

    Exposes the :class:`~repro.formats.bamx.BamxReader` surface —
    ``len()``, ``[i]``, ``read_range``, iteration, ``.header``,
    ``.layout`` — plus the columnar access the kernels run on:
    :meth:`read_column_batches` (contiguous ranges) and
    :meth:`read_column_picks` (explicit indices, order-preserving).
    It deliberately does *not* provide ``read_raw_batches``: raw-slab
    consumers assume the v1 row layout.
    """

    def __init__(self, source: str | os.PathLike[str]) -> None:
        self.source_name = os.fspath(source)
        self._fh: io.BufferedReader = open(source, "rb")  # noqa: SIM115
        magic = self._fh.read(len(MAGIC))
        if magic != MAGIC:
            raise BamxFormatError("bad BAMC magic",
                                  source=self.source_name)
        (self._data_offset, name_cap, cigar_cap, seq_cap, tag_cap,
         self._count, self.slab_records, footer_offset,
         text_len) = _HEADER.unpack(self._fh.read(_HEADER.size))
        self.layout = BamxLayout(name_cap, cigar_cap, seq_cap, tag_cap)
        text = self._fh.read(text_len).decode("ascii")
        self.header = SamHeader.from_text(text)
        size = os.fstat(self._fh.fileno()).st_size
        if footer_offset < self._data_offset or footer_offset + 4 > size:
            raise BamxFormatError("bad BAMC footer offset",
                                  source=self.source_name)
        self._fh.seek(footer_offset)
        (n_slabs,) = struct.unpack("<I", self._fh.read(4))
        directory = self._fh.read(n_slabs * 12)
        if len(directory) != n_slabs * 12:
            raise BamxFormatError("truncated BAMC footer",
                                  source=self.source_name)
        self._slab_offsets = np.frombuffer(directory, "<u8", n_slabs)
        self._slab_counts = np.frombuffer(directory, "<u4", n_slabs,
                                          8 * n_slabs)
        self._footer_offset = footer_offset
        # Global index of each slab's first record; one extra entry so
        # _slab_starts[i + 1] bounds slab i.
        self._slab_starts = np.zeros(n_slabs + 1, dtype=np.int64)
        np.cumsum(self._slab_counts, out=self._slab_starts[1:])
        if int(self._slab_starts[-1]) != self._count:
            raise BamxFormatError(
                f"slab directory sums to {int(self._slab_starts[-1])} "
                f"records but header says {self._count}",
                source=self.source_name)
        self._cached_slab: ColumnSlab | None = None
        self._cached_index = -1

    def __enter__(self) -> "BamcReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying file."""
        self._fh.close()

    def __len__(self) -> int:
        return self._count

    def _slab_of(self, index: int) -> int:
        """Slab number holding global record *index*."""
        return int(np.searchsorted(self._slab_starts, index,
                                   side="right")) - 1

    def _load_slab(self, slab_index: int) -> ColumnSlab:
        """Parse (and cache) slab *slab_index*."""
        if slab_index == self._cached_index \
                and self._cached_slab is not None:
            return self._cached_slab
        offset = int(self._slab_offsets[slab_index])
        end = int(self._slab_offsets[slab_index + 1]) \
            if slab_index + 1 < len(self._slab_offsets) \
            else self._footer_offset
        self._fh.seek(offset)
        buf = self._fh.read(end - offset)
        if len(buf) != end - offset:
            raise BamxFormatError("truncated BAMC slab",
                                  source=self.source_name)
        slab = _parse_slab(buf, int(self._slab_starts[slab_index]),
                           int(self._slab_counts[slab_index]))
        self._cached_slab, self._cached_index = slab, slab_index
        return slab

    def __getitem__(self, index: int) -> AlignmentRecord:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"record index {index} out of range "
                             f"[0, {self._count})")
        slab = self._load_slab(self._slab_of(index))
        return slab.decode(index - slab.start, self.header)

    def read_column_batches(self, start: int, stop: int,
                            ) -> Iterator[ColumnSlab]:
        """Yield :class:`ColumnSlab` windows covering ``[start, stop)``.

        The columnar analogue of ``BamxReader.read_raw_batches``: the
        fixed columns of each yielded slab are zero-copy numpy views.
        """
        if not 0 <= start <= stop <= self._count:
            raise BamxFormatError(
                f"record range [{start}, {stop}) outside "
                f"[0, {self._count})")
        index = start
        while index < stop:
            slab_index = self._slab_of(index)
            slab = self._load_slab(slab_index)
            a = index - slab.start
            b = min(stop - slab.start, slab.count)
            yield slab if (a == 0 and b == slab.count) \
                else slab.window(a, b, index)
            index = slab.start + b

    def read_column_picks(self, indices: Sequence[int],
                          ) -> Iterator[ColumnSlab]:
        """Yield gathered slabs for explicit *indices*, in order.

        Consecutive indices living in the same slab are grouped into
        one fancy-indexed :class:`ColumnSlab`; the overall record
        order is exactly the order of *indices*, which is what keeps
        partial conversion byte-identical to the v1 pick path.
        """
        n = len(indices)
        i = 0
        while i < n:
            index = indices[i]
            if not 0 <= index < self._count:
                raise BamxFormatError(
                    f"record index {index} outside [0, {self._count})",
                    source=self.source_name)
            slab_index = self._slab_of(index)
            slab = self._load_slab(slab_index)
            lo, hi = slab.start, slab.start + slab.count
            j = i + 1
            while j < n and lo <= indices[j] < hi:
                j += 1
            local = np.asarray(indices[i:j], dtype=np.int64) - lo
            yield slab.take(local)
            i = j

    def read_range(self, start: int, stop: int,
                   ) -> Iterator[AlignmentRecord]:
        """Yield records ``start <= i < stop`` slab by slab."""
        for slab in self.read_column_batches(start, stop):
            yield from slab.decode_all(self.header)

    def __iter__(self) -> Iterator[AlignmentRecord]:
        return self.read_range(0, self._count)


def write_bamc(path: str | os.PathLike[str], header: SamHeader,
               records: list[AlignmentRecord],
               layout: BamxLayout | None = None,
               slab_records: int = DEFAULT_SLAB_RECORDS) -> BamxLayout:
    """Write *records* to a BAMC file, planning the layout if not given.

    Returns the layout actually used.
    """
    if layout is None:
        from .bamx import plan_layout
        layout = plan_layout(records)
    with BamcWriter(path, header, layout,
                    slab_records=slab_records) as writer:
        writer.write_all(records)
    return layout


def read_bamc(path: str | os.PathLike[str],
              ) -> tuple[SamHeader, list[AlignmentRecord]]:
    """Read an entire BAMC file into memory: ``(header, records)``."""
    with BamcReader(path) as reader:
        return reader.header, list(reader)
