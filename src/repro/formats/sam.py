"""SAM text format: parse and emit alignment lines and whole files.

The parser maps each tab-delimited alignment line onto the canonical
:class:`~repro.formats.record.AlignmentRecord`; the writer is its exact
inverse, so ``format_alignment(parse_alignment(line)) == line`` for any
spec-conforming line (this round-trip is property-tested).
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator

from ..errors import SamFormatError
from .cigar import format_cigar, parse_cigar
from .header import SamHeader
from .record import UNMAPPED_POS, AlignmentRecord
from .tags import format_tags, parse_tags

#: Number of mandatory columns in a SAM alignment line.
MANDATORY_COLUMNS = 11


def parse_alignment(line: str, *, lineno: int | None = None,
                    validate: bool = False) -> AlignmentRecord:
    """Parse one SAM alignment line (no trailing newline required).

    Parameters
    ----------
    line:
        The raw text line.
    lineno:
        Optional line number for error messages.
    validate:
        When True, run full structural validation on the parsed record
        (slower; parsing alone only checks field syntax).
    """
    cols = line.rstrip("\n").split("\t")
    if len(cols) < MANDATORY_COLUMNS:
        raise SamFormatError(
            f"alignment line has {len(cols)} columns, "
            f"expected >= {MANDATORY_COLUMNS}", lineno=lineno)
    try:
        flag = int(cols[1])
        pos1 = int(cols[3])
        mapq = int(cols[4])
        pnext1 = int(cols[7])
        tlen = int(cols[8])
    except ValueError as exc:
        raise SamFormatError(f"non-integer numeric column: {exc}",
                             lineno=lineno) from None
    record = AlignmentRecord(
        qname=cols[0],
        flag=flag,
        rname=cols[2],
        pos=pos1 - 1 if pos1 > 0 else UNMAPPED_POS,
        mapq=mapq,
        cigar=parse_cigar(cols[5]),
        rnext=cols[6],
        pnext=pnext1 - 1 if pnext1 > 0 else UNMAPPED_POS,
        tlen=tlen,
        seq=cols[9],
        qual=cols[10],
        tags=parse_tags(cols[MANDATORY_COLUMNS:]),
    )
    if validate:
        record.validate()
    return record


def format_alignment(record: AlignmentRecord) -> str:
    """Render a record as a SAM alignment line (no trailing newline)."""
    cols = [
        record.qname,
        str(record.flag),
        record.rname,
        str(record.pos + 1 if record.pos != UNMAPPED_POS else 0),
        str(record.mapq),
        format_cigar(record.cigar),
        record.rnext,
        str(record.pnext + 1 if record.pnext != UNMAPPED_POS else 0),
        str(record.tlen),
        record.seq,
        record.qual,
    ]
    tag_text = format_tags(record.tags)
    if tag_text:
        cols.append(tag_text)
    return "\t".join(cols)


class SamReader:
    """Streaming reader over a SAM file or text stream.

    Iterating yields :class:`AlignmentRecord`; the header (if present) is
    parsed eagerly on construction and exposed as :attr:`header`.

    Can be used as a context manager when constructed from a path.
    """

    def __init__(self, source: str | os.PathLike[str] | io.TextIOBase,
                 *, validate: bool = False) -> None:
        if isinstance(source, (str, os.PathLike)):
            self._stream: io.TextIOBase = open(source, "r",  # noqa: SIM115
                                               encoding="ascii", newline="")
            self._owns_stream = True
            self.source_name = os.fspath(source)
        else:
            self._stream = source
            self._owns_stream = False
            self.source_name = getattr(source, "name", "<stream>")
        self._validate = validate
        self._lineno = 0
        self._pending: str | None = None
        header_lines = []
        for line in self._stream:
            self._lineno += 1
            if line.startswith("@"):
                header_lines.append(line)
            else:
                self._pending = line
                break
        self.header = SamHeader.from_text("".join(header_lines))

    def __enter__(self) -> "SamReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __iter__(self) -> Iterator[AlignmentRecord]:
        if self._pending is not None:
            line, self._pending = self._pending, None
            if line.strip():
                yield parse_alignment(line, lineno=self._lineno,
                                      validate=self._validate)
        for line in self._stream:
            self._lineno += 1
            if not line.strip():
                continue
            yield parse_alignment(line, lineno=self._lineno,
                                  validate=self._validate)


class SamWriter:
    """Streaming writer producing a SAM file (header first, then records).

    Can be used as a context manager when constructed from a path.
    """

    def __init__(self, target: str | os.PathLike[str] | io.TextIOBase,
                 header: SamHeader | None = None) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._stream: io.TextIOBase = open(target, "w",  # noqa: SIM115
                                               encoding="ascii", newline="")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        if header is not None:
            self._stream.write(header.to_text())
        self.records_written = 0

    def __enter__(self) -> "SamWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def write(self, record: AlignmentRecord) -> None:
        """Append one alignment line."""
        self._stream.write(format_alignment(record))
        self._stream.write("\n")
        self.records_written += 1

    def write_all(self, records: Iterable[AlignmentRecord]) -> int:
        """Append every record; return the count written by this call."""
        n = 0
        for record in records:
            self.write(record)
            n += 1
        return n

    def close(self) -> None:
        """Flush and close the underlying stream if owned."""
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()


def read_sam(path: str | os.PathLike[str], *, validate: bool = False,
             ) -> tuple[SamHeader, list[AlignmentRecord]]:
    """Read an entire SAM file into memory: ``(header, records)``."""
    with SamReader(path, validate=validate) as reader:
        return reader.header, list(reader)


def write_sam(path: str | os.PathLike[str], header: SamHeader | None,
              records: Iterable[AlignmentRecord]) -> int:
    """Write *records* (with optional header) to *path*; return count."""
    with SamWriter(path, header) as writer:
        return writer.write_all(records)
