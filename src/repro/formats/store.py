"""Record-store opener: BAMX, BAMZ and BAMC behind one interface.

All readers expose ``len``, ``[i]``, ``read_range``, iteration,
``.header`` and ``.layout``; converters call :func:`open_record_store`
and never care which physical format backs the store.  The columnar
BAMC reader additionally offers ``read_column_batches`` /
``read_column_picks``, which the converters feature-detect to run the
vectorized kernels.
"""

from __future__ import annotations

import os
from typing import Union

from ..errors import BamxFormatError
from . import bamc as _bamc
from . import bamx as _bamx
from .bamc import BamcReader
from .bamx import BamxReader
from .bamz import BamzReader

RecordStore = Union[BamxReader, BamzReader, BamcReader]

#: Record-store formats a converter can write.
STORE_FORMATS = ("bamx", "bamc")


def open_record_store(path: str | os.PathLike[str]) -> RecordStore:
    """Open a BAMX, BAMC or BAMZ file, dispatching on its magic bytes."""
    with open(path, "rb") as fh:
        head = fh.read(len(_bamx.MAGIC))
    if head == _bamx.MAGIC:
        return BamxReader(path)
    if head == _bamc.MAGIC:
        return BamcReader(path)
    # BAMZ files are BGZF streams; their magic is inside the first
    # block, so sniff by extension/BGZF framing instead.
    from .bgzf import is_bgzf
    if is_bgzf(path):
        return BamzReader(path)
    raise BamxFormatError(
        "not a BAMX, BAMC or BAMZ file", source=os.fspath(path))


def store_extension(compress: bool,
                    store_format: str = "bamx") -> str:
    """Canonical extension for a record store."""
    if store_format not in STORE_FORMATS:
        raise BamxFormatError(
            f"unknown store format {store_format!r}; choose one of "
            f"{STORE_FORMATS}")
    if store_format == "bamc":
        if compress:
            raise BamxFormatError(
                "BAMC does not support BGZF compression; use "
                "store_format='bamx' with compress=True for BAMZ")
        return ".bamc"
    return ".bamz" if compress else ".bamx"
