"""Record-store opener: BAMX and BAMZ behind one interface.

Both readers expose ``len``, ``[i]``, ``read_range``, iteration,
``.header`` and ``.layout``; converters call :func:`open_record_store`
and never care which physical format backs the store.
"""

from __future__ import annotations

import os
from typing import Union

from ..errors import BamxFormatError
from . import bamx as _bamx
from .bamx import BamxReader
from .bamz import BamzReader

RecordStore = Union[BamxReader, BamzReader]


def open_record_store(path: str | os.PathLike[str]) -> RecordStore:
    """Open a BAMX or BAMZ file, dispatching on its magic bytes."""
    with open(path, "rb") as fh:
        head = fh.read(len(_bamx.MAGIC))
    if head == _bamx.MAGIC:
        return BamxReader(path)
    # BAMZ files are BGZF streams; their magic is inside the first
    # block, so sniff by extension/BGZF framing instead.
    from .bgzf import is_bgzf
    if is_bgzf(path):
        return BamzReader(path)
    raise BamxFormatError(
        "not a BAMX or BAMZ file", source=os.fspath(path))


def store_extension(compress: bool) -> str:
    """Canonical extension for a record store."""
    return ".bamz" if compress else ".bamx"
