"""CIGAR string handling (SAM column 6, BAM packed representation).

A CIGAR is a sequence of ``(length, op)`` pairs.  The nine operations and
their BAM integer codes are fixed by the SAM/BAM specification:

====  ====  =========================================  =========  =========
code  char  meaning                                    query      reference
====  ====  =========================================  =========  =========
0     M     alignment match or mismatch                yes        yes
1     I     insertion to the reference                 yes        no
2     D     deletion from the reference                no         yes
3     N     skipped region (intron)                    no         yes
4     S     soft clipping                              yes        no
5     H     hard clipping                              no         no
6     P     padding                                    no         no
7     =     sequence match                             yes        yes
8     X     sequence mismatch                          yes        yes
====  ====  =========================================  =========  =========
"""

from __future__ import annotations

import re

from ..errors import SamFormatError

#: CIGAR operation characters indexed by their BAM op code.
CIGAR_OPS = "MIDNSHP=X"

#: Operations that consume bases of the query sequence.
QUERY_CONSUMING = frozenset("MIS=X")

#: Operations that consume positions on the reference.
REF_CONSUMING = frozenset("MDN=X")

#: Maximum operation length representable in BAM (28-bit length field).
MAX_OP_LEN = (1 << 28) - 1

_OP_TO_CODE = {c: i for i, c in enumerate(CIGAR_OPS)}
_CIGAR_RE = re.compile(r"(\d+)([MIDNSHP=X])")

Cigar = list[tuple[int, str]]


def parse_cigar(text: str) -> Cigar:
    """Parse a SAM CIGAR string into ``[(length, op), ...]``.

    The placeholder ``*`` (no alignment information) parses to an empty
    list.

    Raises
    ------
    SamFormatError
        If the string contains anything but a well-formed run of
        ``<int><op>`` groups, or an operation length of zero.
    """
    if text == "*":
        return []
    pos = 0
    out: Cigar = []
    for m in _CIGAR_RE.finditer(text):
        if m.start() != pos:
            raise SamFormatError(f"malformed CIGAR string {text!r}")
        length = int(m.group(1))
        if length == 0:
            raise SamFormatError(f"zero-length CIGAR op in {text!r}")
        if length > MAX_OP_LEN:
            raise SamFormatError(
                f"CIGAR op length {length} exceeds BAM limit {MAX_OP_LEN}")
        out.append((length, m.group(2)))
        pos = m.end()
    if pos != len(text) or not out:
        raise SamFormatError(f"malformed CIGAR string {text!r}")
    return out


def format_cigar(ops: Cigar) -> str:
    """Render ``[(length, op), ...]`` back to SAM text (``*`` if empty)."""
    if not ops:
        return "*"
    return "".join(f"{n}{op}" for n, op in ops)


def encode_ops(ops: Cigar) -> list[int]:
    """Encode to BAM packed form: one uint32 per op, ``len<<4 | code``."""
    encoded = []
    for n, op in ops:
        try:
            code = _OP_TO_CODE[op]
        except KeyError:
            raise SamFormatError(f"unknown CIGAR op {op!r}") from None
        if not 0 < n <= MAX_OP_LEN:
            raise SamFormatError(f"CIGAR op length {n} out of range")
        encoded.append((n << 4) | code)
    return encoded


def decode_ops(packed: list[int] | tuple[int, ...]) -> Cigar:
    """Decode BAM packed uint32 ops back to ``[(length, op), ...]``."""
    out: Cigar = []
    for word in packed:
        code = word & 0xF
        if code >= len(CIGAR_OPS):
            raise SamFormatError(f"invalid CIGAR op code {code}")
        out.append((word >> 4, CIGAR_OPS[code]))
    return out


def query_length(ops: Cigar) -> int:
    """Number of query bases implied by the CIGAR (length of SEQ)."""
    return sum(n for n, op in ops if op in QUERY_CONSUMING)


def reference_span(ops: Cigar) -> int:
    """Number of reference positions the alignment covers."""
    return sum(n for n, op in ops if op in REF_CONSUMING)


def validate_cigar(ops: Cigar, seq_len: int | None = None) -> None:
    """Validate structural rules of a CIGAR.

    Checks performed (all from the SAM spec):

    * ``H`` may only be the first and/or last operation;
    * ``S`` may only have ``H`` between it and the end of the string;
    * if *seq_len* is given (and the sequence was stored), the sum of
      query-consuming op lengths must equal it.

    Raises
    ------
    SamFormatError
        On any violation.
    """
    for i, (_, op) in enumerate(ops):
        if op == "H" and i not in (0, len(ops) - 1):
            raise SamFormatError("H op may only appear at CIGAR ends")
        if op == "S":
            left_ok = i == 0 or all(o == "H" for _, o in ops[:i])
            right_ok = (i == len(ops) - 1
                        or all(o == "H" for _, o in ops[i + 1:]))
            if not (left_ok or right_ok):
                raise SamFormatError(
                    "S op must be at CIGAR end (modulo H clipping)")
    if seq_len is not None and ops:
        qlen = query_length(ops)
        if qlen != seq_len:
            raise SamFormatError(
                f"CIGAR query length {qlen} != sequence length {seq_len}")
