"""SAM FLAG bitfield (column 2 of an alignment line).

The twelve flag bits defined by the SAM specification v1.4, plus helper
predicates.  The integer values are part of the on-disk format for both SAM
and BAM, so they are fixed constants here rather than auto-numbered.
"""

from __future__ import annotations

import enum


class Flag(enum.IntFlag):
    """SAM alignment FLAG bits (SAM spec v1.4 §1.4)."""

    PAIRED = 0x1            #: template has multiple segments in sequencing
    PROPER_PAIR = 0x2       #: each segment properly aligned per the aligner
    UNMAPPED = 0x4          #: segment unmapped
    MATE_UNMAPPED = 0x8     #: next segment in the template unmapped
    REVERSE = 0x10          #: SEQ is reverse complemented
    MATE_REVERSE = 0x20     #: SEQ of the next segment reverse complemented
    READ1 = 0x40            #: first segment in the template
    READ2 = 0x80            #: last segment in the template
    SECONDARY = 0x100       #: secondary alignment
    QC_FAIL = 0x200         #: not passing filters (platform/vendor QC)
    DUPLICATE = 0x400       #: PCR or optical duplicate
    SUPPLEMENTARY = 0x800   #: supplementary alignment

MAX_FLAG = 0xFFF


def is_paired(flag: int) -> bool:
    """Return True if the template has multiple segments."""
    return bool(flag & Flag.PAIRED)


def is_unmapped(flag: int) -> bool:
    """Return True if this segment is unmapped."""
    return bool(flag & Flag.UNMAPPED)


def is_mapped(flag: int) -> bool:
    """Return True if this segment is mapped."""
    return not flag & Flag.UNMAPPED


def is_reverse(flag: int) -> bool:
    """Return True if SEQ is stored reverse-complemented."""
    return bool(flag & Flag.REVERSE)


def is_primary(flag: int) -> bool:
    """Return True for a primary alignment line (neither secondary nor
    supplementary)."""
    return not flag & (Flag.SECONDARY | Flag.SUPPLEMENTARY)


def is_read1(flag: int) -> bool:
    """Return True if this is the first segment of its template."""
    return bool(flag & Flag.READ1)


def is_read2(flag: int) -> bool:
    """Return True if this is the last segment of its template."""
    return bool(flag & Flag.READ2)


def mate_number(flag: int) -> int:
    """Return 1 or 2 for paired reads, 0 for unpaired.

    A read with both or neither of READ1/READ2 set (a linear fragment of a
    multi-segment template) is reported as 0, matching the convention used
    by FASTQ splitters.
    """
    r1 = bool(flag & Flag.READ1)
    r2 = bool(flag & Flag.READ2)
    if r1 and not r2:
        return 1
    if r2 and not r1:
        return 2
    return 0


def validate_flag(flag: int) -> int:
    """Validate that *flag* fits the 12 defined bits; return it unchanged.

    Raises
    ------
    ValueError
        If the value is negative or uses undefined bits.
    """
    if not 0 <= flag <= MAX_FLAG:
        raise ValueError(f"FLAG value {flag} outside [0, {MAX_FLAG}]")
    return flag


def describe(flag: int) -> list[str]:
    """Return the list of flag-bit names set in *flag* (for diagnostics)."""
    return [f.name for f in Flag if flag & f and f.name is not None]
