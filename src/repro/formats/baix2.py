"""BAIX v2: overlap-capable extension of the BAIX index.

The paper's conclusions propose "more sophisticated indexing techniques
to the BAIX structure design for supporting more partial conversion
types".  Version 1 (:mod:`repro.formats.baix`) answers exactly one
query: *records whose start lies inside a region*.  Version 2 adds the
query genome browsers and pileup tools actually need — *records whose
alignment span overlaps a region* — by additionally storing each
record's end position and the maximum span per reference.

Overlap query (classic max-span trick): a record overlapping
``[qstart, qend)`` must start in ``[qstart - max_span, qend)``; binary
search gives that candidate subrange, then a vectorized filter on the
stored ends keeps actual overlappers.  Cost: O(log n + candidates).

On-disk layout (magic ``BAIX\\x02``)::

    u64 entry_count
    i32[n] ref ids   i32[n] starts   i32[n] ends   i64[n] record indices
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterable

import numpy as np

from ..errors import IndexError_
from .header import SamHeader
from .record import AlignmentRecord

MAGIC = b"BAIX\x02"


class BaixOverlapIndex:
    """Coordinate-sorted (ref, start, end) -> record-index mapping with
    both start-within and overlap queries."""

    def __init__(self, ref_ids: np.ndarray, starts: np.ndarray,
                 ends: np.ndarray, indices: np.ndarray) -> None:
        n = len(indices)
        if not (len(ref_ids) == len(starts) == len(ends) == n):
            raise IndexError_("BAIX2 column lengths disagree")
        self.ref_ids = np.ascontiguousarray(ref_ids, dtype=np.int32)
        self.starts = np.ascontiguousarray(starts, dtype=np.int32)
        self.ends = np.ascontiguousarray(ends, dtype=np.int32)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._keys = (self.ref_ids.astype(np.int64) << 32) \
            | self.starts.astype(np.int64)
        if n > 1 and np.any(np.diff(self._keys) < 0):
            raise IndexError_("BAIX2 entries are not coordinate-sorted")
        if np.any(self.ends < self.starts):
            raise IndexError_("BAIX2 entry with end < start")
        # Maximum alignment span per reference drives the overlap
        # candidate window.
        self._max_span: dict[int, int] = {}
        for ref_id in np.unique(self.ref_ids):
            mask = self.ref_ids == ref_id
            spans = self.ends[mask] - self.starts[mask]
            self._max_span[int(ref_id)] = int(spans.max()) if len(spans) \
                else 0

    def __len__(self) -> int:
        return len(self.indices)

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[tuple[int, AlignmentRecord]],
              header: SamHeader) -> "BaixOverlapIndex":
        """Build from ``(record_index, record)`` pairs in any order."""
        ref_ids = []
        starts = []
        ends = []
        indices = []
        for index, record in records:
            if record.rname == "*" or record.pos < 0:
                continue
            ref_ids.append(header.ref_id(record.rname))
            starts.append(record.pos)
            ends.append(record.end)
            indices.append(index)
        ref_arr = np.asarray(ref_ids, dtype=np.int32)
        start_arr = np.asarray(starts, dtype=np.int32)
        end_arr = np.asarray(ends, dtype=np.int32)
        idx_arr = np.asarray(indices, dtype=np.int64)
        order = np.lexsort((idx_arr, start_arr, ref_arr))
        return cls(ref_arr[order], start_arr[order], end_arr[order],
                   idx_arr[order])

    # -- (de)serialization -------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the columnar v2 layout."""
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<Q", len(self.indices)))
            fh.write(self.ref_ids.astype("<i4").tobytes())
            fh.write(self.starts.astype("<i4").tobytes())
            fh.write(self.ends.astype("<i4").tobytes())
            fh.write(self.indices.astype("<i8").tobytes())

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "BaixOverlapIndex":
        """Parse an on-disk v2 index."""
        with open(path, "rb") as fh:
            magic = fh.read(len(MAGIC))
            if magic != MAGIC:
                raise IndexError_(
                    f"bad BAIX2 magic in {os.fspath(path)}")
            (count,) = struct.unpack("<Q", fh.read(8))
            ref_ids = np.frombuffer(fh.read(4 * count), dtype="<i4")
            starts = np.frombuffer(fh.read(4 * count), dtype="<i4")
            ends = np.frombuffer(fh.read(4 * count), dtype="<i4")
            indices = np.frombuffer(fh.read(8 * count), dtype="<i8")
        if len(indices) != count:
            raise IndexError_(f"truncated BAIX2 file {os.fspath(path)}")
        return cls(ref_ids, starts, ends, indices)

    # -- queries -----------------------------------------------------------

    def locate_starts(self, ref_id: int, start: int, end: int,
                      ) -> tuple[int, int]:
        """v1 semantics: entry subrange whose records *start* within
        ``[start, end)``."""
        if start < 0 or end < start:
            raise IndexError_(f"invalid region [{start}, {end})")
        lo = int(np.searchsorted(self._keys, (ref_id << 32) | start,
                                 side="left"))
        hi = int(np.searchsorted(self._keys, (ref_id << 32) | end,
                                 side="left"))
        return lo, hi

    def locate_overlaps(self, ref_id: int, start: int, end: int,
                        ) -> np.ndarray:
        """Record indices whose alignment span overlaps ``[start, end)``.

        May be non-contiguous in the index; returned in coordinate
        order.
        """
        if start < 0 or end < start:
            raise IndexError_(f"invalid region [{start}, {end})")
        span = self._max_span.get(int(ref_id), 0)
        lo, hi = self.locate_starts(ref_id, max(0, start - span), end)
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        candidate_ends = self.ends[lo:hi]
        keep = candidate_ends > start
        return self.indices[lo:hi][keep]


def default_index_path(store_path: str | os.PathLike[str]) -> str:
    """The conventional sibling path, ``<store>.baix2``."""
    return os.fspath(store_path) + ".baix2"
