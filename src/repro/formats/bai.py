"""BAI: the standard BAM index (SAM spec §4.2).

A BAI file stores, per reference, an R-tree-flavoured binning index
(bin number -> list of virtual-offset chunks) plus a 16 kbp linear index
used to prune chunks that end before a query region could start.  This
module can build a BAI from any coordinate-sorted BAM, serialize/parse the
on-disk format, and drive region queries against a
:class:`~repro.formats.bam.BamReader`.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterator
from dataclasses import dataclass, field

from ..errors import BamFormatError, IndexError_
from .bam import BamReader
from .binning import LINEAR_SHIFT, reg2bin, reg2bins
from .record import AlignmentRecord

MAGIC = b"BAI\x01"

#: A chunk is a half-open range of virtual offsets [beg, end).
Chunk = tuple[int, int]


@dataclass(slots=True)
class RefIndex:
    """Index data for one reference sequence."""

    bins: dict[int, list[Chunk]] = field(default_factory=dict)
    linear: list[int] = field(default_factory=list)

    def add(self, bin_no: int, chunk: Chunk) -> None:
        """Record *chunk* under *bin_no*, merging with a touching tail."""
        chunks = self.bins.setdefault(bin_no, [])
        if chunks and chunks[-1][1] == chunk[0]:
            chunks[-1] = (chunks[-1][0], chunk[1])
        else:
            chunks.append(chunk)

    def note_linear(self, window: int, voffset: int) -> None:
        """Record the smallest record start offset for a linear window."""
        if window >= len(self.linear):
            self.linear.extend([0] * (window + 1 - len(self.linear)))
        if self.linear[window] == 0 or voffset < self.linear[window]:
            self.linear[window] = voffset


class BaiIndex:
    """Whole-file BAM index: one :class:`RefIndex` per reference."""

    def __init__(self, refs: list[RefIndex]) -> None:
        self.refs = refs

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, reader: BamReader) -> "BaiIndex":
        """Build an index by scanning *reader* from its current position.

        The BAM must be coordinate-sorted; unsorted input raises
        :class:`~repro.errors.IndexError_` because chunk merging and the
        linear index are only meaningful on sorted data.
        """
        refs = [RefIndex() for _ in reader.header.references]
        last_key: tuple[int, int] | None = None
        for voffset, record in reader.iter_with_offsets():
            if record.rname == "*" or record.pos < 0:
                continue  # unplaced records are not indexed
            ref_id = reader.header.ref_id(record.rname)
            key = (ref_id, record.pos)
            if last_key is not None and key < last_key:
                raise IndexError_(
                    "cannot build BAI over a BAM that is not "
                    "coordinate-sorted")
            last_key = key
            end = record.end
            bin_no = reg2bin(record.pos, end)
            # The record occupies [voffset, next record's voffset); using
            # the BGZF cursor after decode as the chunk end is exact.
            next_off = reader._bgzf.tell()
            ref = refs[ref_id]
            ref.add(bin_no, (voffset, next_off))
            for window in range(record.pos >> LINEAR_SHIFT,
                                ((max(end, record.pos + 1) - 1)
                                 >> LINEAR_SHIFT) + 1):
                ref.note_linear(window, voffset)
        return cls(refs)

    @classmethod
    def from_bam(cls, path: str | os.PathLike[str]) -> "BaiIndex":
        """Open *path* and build its index."""
        with BamReader(path) as reader:
            return cls.build(reader)

    # -- (de)serialization -------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the index in the standard on-disk BAI layout."""
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<i", len(self.refs)))
            for ref in self.refs:
                fh.write(struct.pack("<i", len(ref.bins)))
                for bin_no in sorted(ref.bins):
                    chunks = ref.bins[bin_no]
                    fh.write(struct.pack("<Ii", bin_no, len(chunks)))
                    for beg, end in chunks:
                        fh.write(struct.pack("<QQ", beg, end))
                fh.write(struct.pack("<i", len(ref.linear)))
                for voffset in ref.linear:
                    fh.write(struct.pack("<Q", voffset))

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "BaiIndex":
        """Parse an on-disk BAI file."""
        with open(path, "rb") as fh:
            data = fh.read()
        if data[:4] != MAGIC:
            raise BamFormatError("bad BAI magic", source=os.fspath(path))
        off = 4
        (n_ref,) = struct.unpack_from("<i", data, off)
        off += 4
        refs = []
        for _ in range(n_ref):
            ref = RefIndex()
            (n_bin,) = struct.unpack_from("<i", data, off)
            off += 4
            for _ in range(n_bin):
                bin_no, n_chunk = struct.unpack_from("<Ii", data, off)
                off += 8
                chunks = []
                for _ in range(n_chunk):
                    beg, end = struct.unpack_from("<QQ", data, off)
                    off += 16
                    chunks.append((beg, end))
                ref.bins[bin_no] = chunks
            (n_intv,) = struct.unpack_from("<i", data, off)
            off += 4
            ref.linear = list(struct.unpack_from(f"<{n_intv}Q", data, off))
            off += 8 * n_intv
            refs.append(ref)
        return cls(refs)

    # -- queries -----------------------------------------------------------

    def candidate_chunks(self, ref_id: int, beg: int, end: int,
                         ) -> list[Chunk]:
        """Merged, sorted chunks that may contain records overlapping
        ``[beg, end)`` on reference *ref_id*."""
        if not 0 <= ref_id < len(self.refs):
            raise IndexError_(f"reference id {ref_id} not in index")
        ref = self.refs[ref_id]
        window = beg >> LINEAR_SHIFT
        min_off = ref.linear[window] if window < len(ref.linear) else 0
        chunks = []
        for bin_no in reg2bins(beg, end):
            for chunk in ref.bins.get(bin_no, ()):
                if chunk[1] > min_off:
                    chunks.append(chunk)
        chunks.sort()
        merged: list[Chunk] = []
        for chunk in chunks:
            if merged and chunk[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], chunk[1]))
            else:
                merged.append(chunk)
        return merged

    def fetch(self, reader: BamReader, rname: str, beg: int, end: int,
              ) -> Iterator[AlignmentRecord]:
        """Yield records overlapping ``[beg, end)`` (0-based half-open) on
        reference *rname*, using *reader* for the actual record I/O."""
        ref_id = reader.header.ref_id(rname)
        for chunk_beg, chunk_end in self.candidate_chunks(ref_id, beg, end):
            reader.seek_virtual(chunk_beg)
            while reader._bgzf.tell() < chunk_end:
                record = reader._read_one()
                if record is None:
                    break
                if record.rname != rname:
                    continue
                if record.pos >= end:
                    break
                if record.end > beg:
                    yield record


def default_index_path(bam_path: str | os.PathLike[str]) -> str:
    """The conventional sibling index path, ``<bam>.bai``."""
    return os.fspath(bam_path) + ".bai"
