"""BAM binary format (SAM spec §4): reader and writer over BGZF.

The writer encodes :class:`~repro.formats.record.AlignmentRecord` to the
exact on-disk layout (little-endian, 4-bit packed sequence, packed CIGAR,
binary tags); the reader is the inverse.  Record virtual offsets are
surfaced so BAI construction and the paper's sequential-preprocessing
phase can be built on top.

Like BamTools — the C++ library the paper wraps — this reader only decodes
the stream *sequentially*: without an index there is no way to find record
boundaries mid-stream, which is exactly why the paper's BAM converter
needs its preprocessing phase.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterable, Iterator

from ..errors import BamFormatError
from .bgzf import BgzfReader, BgzfWriter
from .binning import reg2bin
from .cigar import decode_ops, encode_ops
from .header import Reference, SamHeader
from .record import UNMAPPED_POS, AlignmentRecord
from .seq import pack_sequence, qual_bytes_to_text, qual_text_to_bytes, \
    unpack_sequence
from .tags import decode_tags, encode_tags

MAGIC = b"BAM\x01"

_FIXED = struct.Struct("<iiBBHHHiiii")  # refID..tlen after block_size


def encode_record(record: AlignmentRecord, header: SamHeader) -> bytes:
    """Encode one alignment to its BAM byte representation, including the
    leading ``block_size`` field."""
    ref_id = -1 if record.rname == "*" else header.ref_id(record.rname)
    if record.rnext == "*":
        next_ref = -1
    elif record.rnext == "=":
        next_ref = ref_id
    else:
        next_ref = header.ref_id(record.rnext)
    name = record.qname.encode("ascii") + b"\x00"
    if len(name) > 255:
        raise BamFormatError(f"QNAME {record.qname!r} longer than 254 bytes")
    cigar_words = encode_ops(record.cigar)
    seq = b"" if record.seq == "*" else pack_sequence(record.seq)
    l_seq = 0 if record.seq == "*" else len(record.seq)
    if record.qual == "*":
        qual = b"\xff" * l_seq
    else:
        if len(record.qual) != l_seq:
            raise BamFormatError(
                f"QUAL length {len(record.qual)} != SEQ length {l_seq}")
        qual = qual_text_to_bytes(record.qual)
    tag_block = encode_tags(record.tags)
    bin_no = reg2bin(record.pos, record.end) if record.pos != UNMAPPED_POS \
        else 4680
    fixed = _FIXED.pack(
        ref_id,
        record.pos,
        len(name),
        record.mapq,
        bin_no,
        len(cigar_words),
        record.flag,
        l_seq,
        next_ref,
        record.pnext,
        record.tlen,
    )
    body = (fixed + name
            + struct.pack(f"<{len(cigar_words)}I", *cigar_words)
            + seq + qual + tag_block)
    return struct.pack("<i", len(body)) + body


def decode_record(body: bytes, header: SamHeader) -> AlignmentRecord:
    """Decode one alignment from its BAM body (without ``block_size``)."""
    if len(body) < _FIXED.size:
        raise BamFormatError("truncated BAM alignment record")
    (ref_id, pos, l_read_name, mapq, _bin, n_cigar, flag, l_seq,
     next_ref, next_pos, tlen) = _FIXED.unpack_from(body, 0)
    off = _FIXED.size
    name = body[off:off + l_read_name - 1].decode("ascii")
    if body[off + l_read_name - 1] != 0:
        raise BamFormatError("read name is not NUL-terminated")
    off += l_read_name
    cigar_words = struct.unpack_from(f"<{n_cigar}I", body, off)
    off += 4 * n_cigar
    seq_bytes = (l_seq + 1) // 2
    seq = unpack_sequence(body[off:off + seq_bytes], l_seq) if l_seq else "*"
    off += seq_bytes
    qual_raw = body[off:off + l_seq]
    off += l_seq
    if l_seq == 0 or not qual_raw.strip(b"\xff"):
        qual = "*"
    else:
        qual = qual_bytes_to_text(qual_raw)
    tags = decode_tags(body[off:])
    rname = "*" if ref_id < 0 else header.ref_name(ref_id)
    if next_ref < 0:
        rnext = "*"
    elif next_ref == ref_id:
        rnext = "="
    else:
        rnext = header.ref_name(next_ref)
    return AlignmentRecord(
        qname=name,
        flag=flag,
        rname=rname,
        pos=pos if pos >= 0 else UNMAPPED_POS,
        mapq=mapq,
        cigar=decode_ops(list(cigar_words)),
        rnext=rnext,
        pnext=next_pos if next_pos >= 0 else UNMAPPED_POS,
        tlen=tlen,
        seq=seq,
        qual=qual,
        tags=tags,
    )


class BamWriter:
    """Write a BAM file: header block, then alignments in call order."""

    def __init__(self, target: str | os.PathLike[str], header: SamHeader,
                 level: int = 6) -> None:
        self._bgzf = BgzfWriter(target, level=level)
        self.header = header
        text = header.to_text().encode("ascii")
        out = bytearray(MAGIC)
        out += struct.pack("<i", len(text))
        out += text
        out += struct.pack("<i", len(header.references))
        for ref in header.references:
            name = ref.name.encode("ascii") + b"\x00"
            out += struct.pack("<i", len(name))
            out += name
            out += struct.pack("<i", ref.length)
        self._bgzf.write(bytes(out))
        self.records_written = 0

    def __enter__(self) -> "BamWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def tell(self) -> int:
        """Virtual offset at which the next record will start."""
        return self._bgzf.tell()

    def write(self, record: AlignmentRecord) -> int:
        """Append one record; return the virtual offset where it starts."""
        voffset = self._bgzf.tell()
        self._bgzf.write(encode_record(record, self.header))
        self.records_written += 1
        return voffset

    def write_all(self, records: Iterable[AlignmentRecord]) -> int:
        """Append every record; return the count written by this call."""
        n = 0
        for record in records:
            self.write(record)
            n += 1
        return n

    def close(self) -> None:
        """Flush blocks, write the BGZF EOF marker, close the file."""
        self._bgzf.close()


class BamReader:
    """Sequential BAM reader; yields records (or records with offsets)."""

    def __init__(self, source: str | os.PathLike[str]) -> None:
        self._bgzf = BgzfReader(source)
        self.source_name = os.fspath(source) if isinstance(
            source, (str, os.PathLike)) else "<stream>"
        magic = self._bgzf.read(4)
        if magic != MAGIC:
            raise BamFormatError("bad BAM magic", source=self.source_name)
        (l_text,) = struct.unpack("<i", self._bgzf.read_exactly(4))
        text = self._bgzf.read_exactly(l_text).decode("ascii")
        (n_ref,) = struct.unpack("<i", self._bgzf.read_exactly(4))
        references = []
        for _ in range(n_ref):
            (l_name,) = struct.unpack("<i", self._bgzf.read_exactly(4))
            raw = self._bgzf.read_exactly(l_name)
            (l_ref,) = struct.unpack("<i", self._bgzf.read_exactly(4))
            references.append(Reference(raw[:-1].decode("ascii"), l_ref))
        header = SamHeader.from_text(text.rstrip("\x00"))
        if header.references:
            # Consistency: binary reference list must match @SQ lines.
            if [(r.name, r.length) for r in header.references] != \
                    [(r.name, r.length) for r in references]:
                raise BamFormatError(
                    "binary reference list disagrees with @SQ header lines",
                    source=self.source_name)
            self.header = header
        else:
            self.header = SamHeader.from_references(references)
            # Preserve original header lines (e.g. @PG/@CO) if any.
            self.header.lines = header.lines + self.header.lines[1:]
        self._after_header = self._bgzf.tell()

    def __enter__(self) -> "BamReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying BGZF stream."""
        self._bgzf.close()

    def _read_one(self) -> AlignmentRecord | None:
        size_raw = self._bgzf.read(4)
        if not size_raw:
            return None
        if len(size_raw) != 4:
            raise BamFormatError("truncated record length",
                                 source=self.source_name)
        (block_size,) = struct.unpack("<i", size_raw)
        body = self._bgzf.read_exactly(block_size)
        return decode_record(body, self.header)

    def __iter__(self) -> Iterator[AlignmentRecord]:
        while True:
            record = self._read_one()
            if record is None:
                return
            yield record

    def iter_with_offsets(self) -> Iterator[tuple[int, AlignmentRecord]]:
        """Yield ``(virtual_offset, record)`` pairs for index building."""
        while True:
            voffset = self._bgzf.tell()
            record = self._read_one()
            if record is None:
                return
            yield voffset, record

    def seek_virtual(self, voffset: int) -> None:
        """Jump to a record boundary previously obtained from
        :meth:`iter_with_offsets` or an index."""
        self._bgzf.seek_virtual(voffset)

    def rewind(self) -> None:
        """Return to the first alignment record."""
        self._bgzf.seek_virtual(self._after_header)


def read_bam(path: str | os.PathLike[str],
             ) -> tuple[SamHeader, list[AlignmentRecord]]:
    """Read an entire BAM file into memory: ``(header, records)``."""
    with BamReader(path) as reader:
        return reader.header, list(reader)


def write_bam(path: str | os.PathLike[str], header: SamHeader,
              records: Iterable[AlignmentRecord], level: int = 6) -> int:
    """Write *records* to a BAM file at *path*; return the count."""
    with BamWriter(path, header, level=level) as writer:
        return writer.write_all(records)
