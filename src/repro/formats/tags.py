"""SAM optional fields ("tags") and their BAM binary encoding.

A SAM optional field is ``TAG:TYPE:VALUE`` where TAG is two characters and
TYPE is one of:

====  ==========================================================
A     single printable character
i     signed 32-bit integer (SAM accepts any int; BAM narrows it)
f     single-precision float
Z     printable string
H     hex-encoded byte array
B     numeric array: subtype in ``cCsSiIf`` then comma values
====  ==========================================================

BAM additionally stores integers in the narrowest of ``cCsSiI`` when
writing, and readers widen everything back to Python ``int``; this module
is careful to round-trip SAM->BAM->SAM losslessly at the *value* level
(the integer width chosen on disk is an encoding detail).
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass

from ..errors import SamFormatError

_TAG_RE = re.compile(r"^[A-Za-z][A-Za-z0-9]$")
_ARRAY_SUBTYPES = "cCsSiIf"
_STRUCT_OF = {"c": "b", "C": "B", "s": "h", "S": "H", "i": "i", "I": "I",
              "f": "f"}
_INT_BOUNDS = {
    "c": (-(1 << 7), (1 << 7) - 1),
    "C": (0, (1 << 8) - 1),
    "s": (-(1 << 15), (1 << 15) - 1),
    "S": (0, (1 << 16) - 1),
    "i": (-(1 << 31), (1 << 31) - 1),
    "I": (0, (1 << 32) - 1),
}


@dataclass(frozen=True, slots=True)
class Tag:
    """One optional field: two-char *name*, one-char *type*, Python value.

    Value types by tag type: ``A``->str(1), ``i``->int, ``f``->float,
    ``Z``->str, ``H``->bytes, ``B``->(subtype, tuple-of-numbers).
    """

    name: str
    type: str
    value: object

    def to_sam(self) -> str:
        """Render as the SAM text column ``TAG:TYPE:VALUE``."""
        t, v = self.type, self.value
        if t == "A":
            body = str(v)
        elif t == "i":
            body = str(int(v))  # type: ignore[call-overload]
        elif t == "f":
            body = repr(float(v))  # type: ignore[arg-type]
        elif t == "Z":
            body = str(v)
        elif t == "H":
            assert isinstance(v, (bytes, bytearray))
            body = v.hex().upper()
        elif t == "B":
            sub, values = v  # type: ignore[misc]
            parts = [sub]
            for x in values:
                parts.append(repr(float(x)) if sub == "f" else str(int(x)))
            body = ",".join(parts)
        else:  # pragma: no cover - constructor prevents this
            raise SamFormatError(f"unknown tag type {t!r}")
        return f"{self.name}:{t}:{body}"


def parse_tag(field: str) -> Tag:
    """Parse one ``TAG:TYPE:VALUE`` SAM column into a :class:`Tag`."""
    parts = field.split(":", 2)
    if len(parts) != 3:
        raise SamFormatError(f"malformed optional field {field!r}")
    name, t, body = parts
    if not _TAG_RE.match(name):
        raise SamFormatError(f"invalid tag name {name!r}")
    if t == "A":
        if len(body) != 1 or not body.isprintable():
            raise SamFormatError(f"invalid A-type value {body!r}")
        value: object = body
    elif t == "i":
        try:
            value = int(body)
        except ValueError:
            raise SamFormatError(f"invalid integer tag value {body!r}") from None
    elif t == "f":
        try:
            value = float(body)
        except ValueError:
            raise SamFormatError(f"invalid float tag value {body!r}") from None
    elif t == "Z":
        value = body
    elif t == "H":
        if len(body) % 2:
            raise SamFormatError(f"odd-length hex tag value {body!r}")
        try:
            value = bytes.fromhex(body)
        except ValueError:
            raise SamFormatError(f"invalid hex tag value {body!r}") from None
    elif t == "B":
        items = body.split(",")
        sub = items[0]
        if sub not in _ARRAY_SUBTYPES:
            raise SamFormatError(f"invalid B-array subtype {sub!r}")
        try:
            if sub == "f":
                values = tuple(float(x) for x in items[1:])
            else:
                values = tuple(int(x) for x in items[1:])
        except ValueError:
            raise SamFormatError(f"invalid B-array body {body!r}") from None
        if sub != "f":
            lo, hi = _INT_BOUNDS[sub]
            for x in values:
                if not lo <= x <= hi:
                    raise SamFormatError(
                        f"B-array value {x} out of range for subtype {sub}")
        value = (sub, values)
    else:
        raise SamFormatError(f"unknown tag type {t!r}")
    return Tag(name, t, value)


def _narrowest_int_type(v: int) -> str:
    """Pick the narrowest BAM integer code that can hold *v*."""
    for code in ("c", "C", "s", "S", "i", "I"):
        lo, hi = _INT_BOUNDS[code]
        if lo <= v <= hi:
            return code
    raise SamFormatError(f"integer tag value {v} does not fit in 32 bits")


def encode_tag(tag: Tag) -> bytes:
    """Encode one tag to its BAM binary representation."""
    name = tag.name.encode("ascii")
    t, v = tag.type, tag.value
    if t == "A":
        return name + b"A" + str(v).encode("ascii")
    if t == "i":
        code = _narrowest_int_type(int(v))  # type: ignore[call-overload]
        return (name + code.encode("ascii")
                + struct.pack("<" + _STRUCT_OF[code], v))
    if t == "f":
        return name + b"f" + struct.pack("<f", v)
    if t == "Z":
        return name + b"Z" + str(v).encode("ascii") + b"\x00"
    if t == "H":
        assert isinstance(v, (bytes, bytearray))
        return name + b"H" + v.hex().upper().encode("ascii") + b"\x00"
    if t == "B":
        sub, values = v  # type: ignore[misc]
        fmt = "<" + _STRUCT_OF[sub] * len(values)
        return (name + b"B" + sub.encode("ascii")
                + struct.pack("<i", len(values)) + struct.pack(fmt, *values))
    raise SamFormatError(f"unknown tag type {t!r}")  # pragma: no cover


def decode_tags(data: bytes) -> list[Tag]:
    """Decode the trailing tag block of a BAM alignment record."""
    try:
        return _decode_tags(data)
    except (struct.error, IndexError, ValueError) as exc:
        if isinstance(exc, SamFormatError):
            raise
        raise SamFormatError(f"truncated or corrupt BAM tag block: "
                             f"{exc}") from None


#: Pre-compiled Struct per scalar tag code (hot path of _decode_tags).
_TAG_STRUCTS = {code: struct.Struct("<" + fmt)
                for code, fmt in _STRUCT_OF.items()}


def _decode_tags(data: bytes) -> list[Tag]:
    tags: list[Tag] = []
    off = 0
    n = len(data)
    while off < n:
        if off + 3 > n:
            raise SamFormatError("truncated BAM tag block")
        name = data[off:off + 2].decode("ascii")
        code = chr(data[off + 2])
        off += 3
        if code == "A":
            tags.append(Tag(name, "A", chr(data[off])))
            off += 1
        elif code in _INT_BOUNDS:
            s = _TAG_STRUCTS[code]
            (v,) = s.unpack_from(data, off)
            tags.append(Tag(name, "i", v))
            off += s.size
        elif code == "f":
            (v,) = _TAG_STRUCTS["f"].unpack_from(data, off)
            tags.append(Tag(name, "f", v))
            off += 4
        elif code in ("Z", "H"):
            end = data.index(b"\x00", off)
            body = data[off:end].decode("ascii")
            if code == "Z":
                tags.append(Tag(name, "Z", body))
            else:
                tags.append(Tag(name, "H", bytes.fromhex(body)))
            off = end + 1
        elif code == "B":
            sub = chr(data[off])
            if sub not in _ARRAY_SUBTYPES:
                raise SamFormatError(f"invalid B-array subtype {sub!r}")
            (count,) = struct.unpack_from("<i", data, off + 1)
            off += 5
            fmt = "<" + _STRUCT_OF[sub] * count
            values = struct.unpack_from(fmt, data, off)
            off += struct.calcsize(fmt)
            tags.append(Tag(name, "B", (sub, tuple(values))))
        else:
            raise SamFormatError(f"unknown BAM tag type code {code!r}")
    return tags


def encode_tags(tags: list[Tag]) -> bytes:
    """Encode a tag list into one contiguous BAM tag block."""
    return b"".join(encode_tag(t) for t in tags)


def parse_tags(fields: list[str]) -> list[Tag]:
    """Parse the optional columns of a SAM line (columns 12+)."""
    return [parse_tag(f) for f in fields]


def format_tags(tags: list[Tag]) -> str:
    """Render tags back to tab-joined SAM text (empty string if none)."""
    return "\t".join(t.to_sam() for t in tags)
