"""Multi-threaded BGZF compression (the ``samtools -@ N`` analogue).

BGZF blocks are compressed independently, and CPython's :mod:`zlib`
releases the GIL while deflating, so block compression parallelizes
with plain threads even in pure Python.  :class:`ThreadedBgzfWriter`
keeps the exact on-disk format of
:class:`~repro.formats.bgzf.BgzfWriter` — byte-identical output for the
same input — while pipelining compression across a worker pool.

Design: `write()` slices the payload into 64 KiB blocks and submits
each to a thread pool; a bounded window of in-flight futures provides
back-pressure; completed blocks are written to disk strictly in
submission order, so `tell()` virtual offsets remain exact.
"""

from __future__ import annotations

import io
import os
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor

from ..errors import BgzfError
from ..runtime.tracing import get_tracer
from .bgzf import EOF_MARKER, MAX_BLOCK_DATA, compress_block, \
    make_virtual_offset


class ThreadedBgzfWriter(io.RawIOBase):
    """Drop-in BgzfWriter with a compression thread pool.

    Parameters
    ----------
    threads:
        Worker threads compressing blocks (>= 1).
    level:
        zlib compression level, as in the sequential writer.
    max_pending:
        In-flight block limit (back-pressure); defaults to
        ``4 * threads``.
    """

    def __init__(self, target: str | os.PathLike[str] | io.RawIOBase,
                 threads: int = 2, level: int = 6,
                 max_pending: int | None = None) -> None:
        if threads < 1:
            raise BgzfError(f"thread count {threads} must be >= 1")
        if isinstance(target, (str, os.PathLike)):
            self._raw: io.RawIOBase = open(target, "wb")  # noqa: SIM115
            self._owns = True
        else:
            self._raw = target
            self._owns = False
        self._level = level
        self._pool = ThreadPoolExecutor(max_workers=threads)
        self._pending: deque[Future[bytes]] = deque()
        self._max_pending = max_pending or 4 * threads
        self._buffer = bytearray()
        self._coffset = 0       # compressed bytes fully written
        self._uoffset_base = 0  # uncompressed bytes already submitted
        self._closed = False

    def writable(self) -> bool:  # noqa: D102 - io.RawIOBase API
        return True

    def write(self, data: bytes) -> int:  # type: ignore[override]
        """Buffer *data*, submitting full blocks to the pool."""
        self._buffer.extend(data)
        while len(self._buffer) >= MAX_BLOCK_DATA:
            self._submit(bytes(self._buffer[:MAX_BLOCK_DATA]))
            del self._buffer[:MAX_BLOCK_DATA]
        return len(data)

    def _submit(self, payload: bytes) -> None:
        while len(self._pending) >= self._max_pending:
            self._drain_one()
        tracer = get_tracer()
        if not tracer.enabled:
            self._pending.append(
                self._pool.submit(compress_block, payload, self._level))
            return
        # Pool threads have no span stack; re-attach each block span to
        # the span active at submit time.
        caller = tracer.current_span()
        parent_id = caller.span_id if caller is not None else None

        def job(data: bytes = payload, level: int = self._level) -> bytes:
            with tracer.span("compress", "bgzf",
                             args={"bytes": len(data), "threaded": True},
                             parent_id=parent_id):
                return compress_block(data, level)

        self._pending.append(self._pool.submit(job))

    def _drain_one(self) -> None:
        block = self._pending.popleft().result()
        self._raw.write(block)
        self._coffset += len(block)

    def _drain_all(self) -> None:
        while self._pending:
            self._drain_one()

    def flush_block(self) -> None:
        """Submit the partial block and wait for everything in flight."""
        if self._buffer:
            self._submit(bytes(self._buffer))
            self._buffer.clear()
        self._drain_all()

    def tell(self) -> int:
        """Virtual offset of the next byte to be written.

        Requires no blocks in flight (within-block offsets are only
        defined once preceding blocks' compressed sizes are known), so
        it drains the pipeline first — callers that interleave tell()
        with every record (index builders) lose the pipelining benefit,
        which is why index construction prefers the sequential writer.
        """
        self._drain_all()
        return make_virtual_offset(self._coffset, len(self._buffer))

    def close(self) -> None:
        """Flush everything, append the EOF marker, shut the pool."""
        if self._closed:
            return
        self._closed = True
        self.flush_block()
        self._raw.write(EOF_MARKER)
        self._pool.shutdown()
        if self._owns:
            self._raw.close()
        else:
            self._raw.flush()
        super().close()


def compress_file(src: str | os.PathLike[str],
                  dst: str | os.PathLike[str], threads: int = 2,
                  level: int = 6, chunk: int = 4 << 20) -> int:
    """BGZF-compress a whole file with *threads* workers.

    Returns the number of uncompressed bytes processed.
    """
    total = 0
    writer = ThreadedBgzfWriter(dst, threads=threads, level=level)
    try:
        with open(src, "rb") as fh:
            while True:
                data = fh.read(chunk)
                if not data:
                    break
                writer.write(data)
                total += len(data)
    finally:
        writer.close()
    return total
