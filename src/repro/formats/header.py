"""SAM header model (the ``@``-prefixed comment lines).

A header is an ordered list of records; each record has a two-character
type (``HD``, ``SQ``, ``RG``, ``PG``, ``CO``) and, except for ``CO``
(free-text comment), a list of ``KE:value`` fields.  The header carries the
reference-sequence dictionary (``@SQ`` lines) that BAM, BAI and BAIX all
key on, so :class:`SamHeader` exposes the reference names/lengths in their
declaration order.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import SamFormatError

_TYPE_RE = re.compile(r"^@([A-Za-z][A-Za-z])$")
_KEY_RE = re.compile(r"^[A-Za-z][A-Za-z0-9]$")

#: Header record types defined by the SAM specification.
KNOWN_TYPES = ("HD", "SQ", "RG", "PG", "CO")


@dataclass(slots=True)
class HeaderLine:
    """One header record: *type* plus ordered *fields* (or comment text)."""

    type: str
    fields: list[tuple[str, str]] = field(default_factory=list)
    comment: str = ""

    def get(self, key: str) -> str | None:
        """Return the first value of *key*, or None."""
        for k, v in self.fields:
            if k == key:
                return v
        return None

    def to_sam(self) -> str:
        """Render back to a SAM header line (including leading ``@``)."""
        if self.type == "CO":
            return f"@CO\t{self.comment}"
        cols = "\t".join(f"{k}:{v}" for k, v in self.fields)
        return f"@{self.type}\t{cols}" if cols else f"@{self.type}"


@dataclass(slots=True)
class Reference:
    """One reference sequence from an ``@SQ`` line: name and length."""

    name: str
    length: int


class SamHeader:
    """Ordered SAM header with a derived reference dictionary.

    Parameters
    ----------
    lines:
        Parsed :class:`HeaderLine` records, in file order.
    """

    def __init__(self, lines: list[HeaderLine] | None = None) -> None:
        self.lines: list[HeaderLine] = list(lines or [])
        self._refresh_references()

    def _refresh_references(self) -> None:
        self.references: list[Reference] = []
        self._ref_index: dict[str, int] = {}
        for line in self.lines:
            if line.type != "SQ":
                continue
            name = line.get("SN")
            length = line.get("LN")
            if name is None or length is None:
                raise SamFormatError("@SQ line missing SN or LN field")
            try:
                ln = int(length)
            except ValueError:
                raise SamFormatError(
                    f"@SQ LN value {length!r} is not an integer") from None
            if ln <= 0:
                raise SamFormatError(f"@SQ LN value {ln} must be positive")
            if name in self._ref_index:
                raise SamFormatError(f"duplicate @SQ reference {name!r}")
            self._ref_index[name] = len(self.references)
            self.references.append(Reference(name, ln))

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "SamHeader":
        """Parse a block of ``@`` lines (as found at the top of a SAM file
        or in the ``text`` field of a BAM header)."""
        lines = []
        for lineno, raw in enumerate(text.splitlines(), 1):
            if not raw:
                continue
            lines.append(parse_header_line(raw, lineno=lineno))
        return cls(lines)

    @classmethod
    def from_references(cls, references: list[Reference] | list[tuple[str, int]],
                        sort_order: str = "unknown") -> "SamHeader":
        """Build a minimal header (``@HD`` + one ``@SQ`` per reference)."""
        lines = [HeaderLine("HD", [("VN", "1.4"), ("SO", sort_order)])]
        for ref in references:
            if isinstance(ref, tuple):
                name, length = ref
            else:
                name, length = ref.name, ref.length
            lines.append(HeaderLine("SQ", [("SN", name), ("LN", str(length))]))
        return cls(lines)

    # -- queries ----------------------------------------------------------

    def ref_id(self, name: str) -> int:
        """Return the 0-based reference id of *name* (BAM refID)."""
        try:
            return self._ref_index[name]
        except KeyError:
            raise SamFormatError(f"unknown reference {name!r}") from None

    def ref_name(self, ref_id: int) -> str:
        """Return the reference name for a 0-based BAM refID."""
        if not 0 <= ref_id < len(self.references):
            raise SamFormatError(f"reference id {ref_id} out of range")
        return self.references[ref_id].name

    def has_reference(self, name: str) -> bool:
        """Return True if *name* appears in the reference dictionary."""
        return name in self._ref_index

    @property
    def sort_order(self) -> str:
        """The ``@HD SO`` value, defaulting to ``unknown``."""
        for line in self.lines:
            if line.type == "HD":
                return line.get("SO") or "unknown"
        return "unknown"

    def with_sort_order(self, order: str) -> "SamHeader":
        """Return a copy whose ``@HD SO`` field is *order*."""
        lines = [HeaderLine(l.type, list(l.fields), l.comment)
                 for l in self.lines]
        for line in lines:
            if line.type == "HD":
                line.fields = [(k, order if k == "SO" else v)
                               for k, v in line.fields]
                if line.get("SO") is None:
                    line.fields.append(("SO", order))
                break
        else:
            lines.insert(0, HeaderLine("HD", [("VN", "1.4"), ("SO", order)]))
        return SamHeader(lines)

    # -- output -----------------------------------------------------------

    def to_text(self) -> str:
        """Render the header block; empty string for an empty header,
        otherwise newline-terminated."""
        if not self.lines:
            return ""
        return "\n".join(l.to_sam() for l in self.lines) + "\n"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SamHeader):
            return NotImplemented
        return self.to_text() == other.to_text()

    def __repr__(self) -> str:
        return (f"SamHeader({len(self.lines)} lines, "
                f"{len(self.references)} references)")


def parse_header_line(raw: str, *, lineno: int | None = None) -> HeaderLine:
    """Parse one ``@``-prefixed SAM header line."""
    if not raw.startswith("@"):
        raise SamFormatError("header line must start with '@'", lineno=lineno)
    cols = raw.rstrip("\n").split("\t")
    m = _TYPE_RE.match(cols[0])
    if not m:
        raise SamFormatError(f"invalid header record type {cols[0]!r}",
                             lineno=lineno)
    rtype = m.group(1)
    if rtype == "CO":
        return HeaderLine("CO", comment="\t".join(cols[1:]))
    fields: list[tuple[str, str]] = []
    for col in cols[1:]:
        if ":" not in col:
            raise SamFormatError(
                f"header field {col!r} is not KEY:value", lineno=lineno)
        key, value = col.split(":", 1)
        if not _KEY_RE.match(key):
            raise SamFormatError(f"invalid header field key {key!r}",
                                 lineno=lineno)
        fields.append((key, value))
    return HeaderLine(rtype, fields)
