"""WIG (wiggle) format: fixedStep and variableStep numeric tracks.

Included as the extension format mentioned in the paper's background
section.  WIG is 1-based inclusive on disk; this module converts to and
from the library's 0-based half-open convention.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator

from ..errors import FormatError
from .bedgraph import BedGraphInterval


def write_fixed_step(path: str | os.PathLike[str], chrom: str,
                     values: Iterable[float], start: int = 0,
                     step: int = 1, span: int = 1) -> int:
    """Write a fixedStep track; *start* is 0-based. Returns value count."""
    n = 0
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"fixedStep chrom={chrom} start={start + 1} "
                 f"step={step} span={span}\n")
        for value in values:
            v = int(value) if float(value).is_integer() else value
            fh.write(f"{v}\n")
            n += 1
    return n


def iter_wig(stream: io.TextIOBase) -> Iterator[BedGraphInterval]:
    """Parse a WIG stream into scored intervals (both step styles)."""
    mode = None
    chrom = ""
    pos = 0
    step = 1
    span = 1
    for lineno, line in enumerate(stream, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "track", "browser")):
            continue
        if stripped.startswith(("fixedStep", "variableStep")):
            fields = dict(part.split("=", 1)
                          for part in stripped.split()[1:])
            if "chrom" not in fields:
                raise FormatError("WIG declaration missing chrom",
                                  lineno=lineno)
            chrom = fields["chrom"]
            span = int(fields.get("span", "1"))
            if stripped.startswith("fixedStep"):
                mode = "fixed"
                if "start" not in fields:
                    raise FormatError("fixedStep missing start",
                                      lineno=lineno)
                pos = int(fields["start"]) - 1
                step = int(fields.get("step", "1"))
            else:
                mode = "variable"
            continue
        if mode is None:
            raise FormatError("WIG data before any step declaration",
                              lineno=lineno)
        if mode == "fixed":
            value = float(stripped)
            yield BedGraphInterval(chrom, pos, pos + span, value)
            pos += step
        else:
            cols = stripped.split()
            if len(cols) != 2:
                raise FormatError("variableStep line needs 'pos value'",
                                  lineno=lineno)
            p = int(cols[0]) - 1
            yield BedGraphInterval(chrom, p, p + span, float(cols[1]))


def read_wig(path: str | os.PathLike[str]) -> list[BedGraphInterval]:
    """Read a whole WIG file into scored intervals."""
    with open(path, "r", encoding="ascii") as fh:
        return list(iter_wig(fh))
