"""Format registry: canonical names, extensions, and capability lookup.

The converter CLI and the target-plugin machinery resolve user-facing
format names ("sam", "bed", ...) through this table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConversionError


@dataclass(frozen=True, slots=True)
class FormatInfo:
    """Static description of a supported format."""

    name: str
    extensions: tuple[str, ...]
    binary: bool
    description: str


_FORMATS = {
    info.name: info for info in (
        FormatInfo("sam", (".sam",), False,
                   "Sequence Alignment/Map text format"),
        FormatInfo("bam", (".bam",), True,
                   "Binary Alignment/Map (BGZF-compressed)"),
        FormatInfo("bamx", (".bamx",), True,
                   "BAM eXtended: fixed-record-length random-access binary"),
        FormatInfo("bamc", (".bamc",), True,
                   "BAM Columnar: slab-columnar BAMX v2 read through "
                   "vectorized kernels"),
        FormatInfo("bed", (".bed",), False, "Browser Extensible Data"),
        FormatInfo("bedgraph", (".bedgraph", ".bdg"), False,
                   "Scored genome intervals"),
        FormatInfo("fasta", (".fasta", ".fa", ".fna"), False,
                   "Nucleotide sequences"),
        FormatInfo("fastq", (".fastq", ".fq"), False,
                   "Sequences with Phred qualities"),
        FormatInfo("wig", (".wig",), False, "Wiggle numeric track"),
        FormatInfo("gff", (".gff", ".gff3"), False,
                   "Generic Feature Format v3"),
        FormatInfo("json", (".json", ".jsonl"), False,
                   "JSON-Lines alignment objects"),
        FormatInfo("yaml", (".yaml", ".yml"), False,
                   "Multi-document YAML alignment objects"),
    )
}

#: Formats a converter can read alignments from.
SOURCE_FORMATS = ("sam", "bam", "bamx", "bamc")

#: Formats a converter can write (the paper's §I list plus GFF).
TARGET_FORMATS = ("sam", "bam", "bed", "bedgraph", "fasta", "fastq",
                  "gff", "json", "yaml")


def get_format(name: str) -> FormatInfo:
    """Look up a format by canonical name (case-insensitive)."""
    try:
        return _FORMATS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_FORMATS))
        raise ConversionError(
            f"unknown format {name!r}; known formats: {known}") from None


def detect_format(path: str) -> FormatInfo:
    """Guess a format from a file extension."""
    lowered = path.lower()
    for info in _FORMATS.values():
        if any(lowered.endswith(ext) for ext in info.extensions):
            return info
    raise ConversionError(f"cannot detect format of {path!r} from extension")


def list_formats() -> list[FormatInfo]:
    """All registered formats, sorted by name."""
    return sorted(_FORMATS.values(), key=lambda f: f.name)
