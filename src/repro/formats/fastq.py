"""FASTQ format: four-line records bundling sequence and Phred quality."""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..errors import FormatError


@dataclass(slots=True)
class FastqRecord:
    """One FASTQ entry: *name*, *sequence*, Phred+33 *quality* string."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.quality):
            raise FormatError(
                f"FASTQ record {self.name!r}: sequence length "
                f"{len(self.sequence)} != quality length {len(self.quality)}")


def format_record(record: FastqRecord) -> str:
    """Render one record as its canonical four lines."""
    return (f"@{record.name}\n{record.sequence}\n"
            f"+\n{record.quality}\n")


def iter_fastq(stream: io.TextIOBase) -> Iterator[FastqRecord]:
    """Parse records from an open text stream (strict four-line layout)."""
    lineno = 0
    while True:
        head = stream.readline()
        if not head:
            return
        lineno += 1
        head = head.rstrip("\n")
        if not head:
            continue
        if not head.startswith("@"):
            raise FormatError(f"expected '@' record header, got {head!r}",
                              lineno=lineno)
        seq = stream.readline().rstrip("\n")
        plus = stream.readline().rstrip("\n")
        qual = stream.readline().rstrip("\n")
        lineno += 3
        if not plus.startswith("+"):
            raise FormatError(f"expected '+' separator, got {plus!r}",
                              lineno=lineno - 1)
        yield FastqRecord(head[1:], seq, qual)


def read_fastq(path: str | os.PathLike[str]) -> list[FastqRecord]:
    """Read every record of a FASTQ file into memory."""
    with open(path, "r", encoding="ascii") as fh:
        return list(iter_fastq(fh))


def write_fastq(path: str | os.PathLike[str],
                records: Iterable[FastqRecord]) -> int:
    """Write records to *path*; return the count written."""
    n = 0
    with open(path, "w", encoding="ascii") as fh:
        for record in records:
            fh.write(format_record(record))
            n += 1
    return n
