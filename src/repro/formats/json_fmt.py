"""JSON serialization of alignment records (JSON-Lines output target).

Each alignment becomes one JSON object per line — the streaming-friendly
convention — with SAM field names as keys and 1-based text-style
coordinates, so downstream JSON consumers see the same values a SAM line
would carry.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Iterator

from ..errors import FormatError
from .cigar import format_cigar, parse_cigar
from .record import UNMAPPED_POS, AlignmentRecord
from .tags import Tag


def record_to_dict(record: AlignmentRecord) -> dict[str, object]:
    """Map a record onto a plain dict with SAM column names."""
    out: dict[str, object] = {
        "qname": record.qname,
        "flag": record.flag,
        "rname": record.rname,
        "pos": record.pos + 1 if record.pos != UNMAPPED_POS else 0,
        "mapq": record.mapq,
        "cigar": format_cigar(record.cigar),
        "rnext": record.rnext,
        "pnext": record.pnext + 1 if record.pnext != UNMAPPED_POS else 0,
        "tlen": record.tlen,
        "seq": record.seq,
        "qual": record.qual,
    }
    if record.tags:
        tags: dict[str, object] = {}
        for tag in record.tags:
            if tag.type == "H":
                assert isinstance(tag.value, (bytes, bytearray))
                tags[tag.name] = {"type": "H",
                                  "value": tag.value.hex().upper()}
            elif tag.type == "B":
                sub, values = tag.value  # type: ignore[misc]
                tags[tag.name] = {"type": "B", "subtype": sub,
                                  "value": list(values)}
            else:
                tags[tag.name] = {"type": tag.type, "value": tag.value}
        out["tags"] = tags
    return out


def dict_to_record(data: dict[str, object]) -> AlignmentRecord:
    """Inverse of :func:`record_to_dict`."""
    try:
        pos = int(data["pos"])  # type: ignore[arg-type]
        pnext = int(data["pnext"])  # type: ignore[arg-type]
        tags: list[Tag] = []
        for name, spec in (data.get("tags") or {}).items():  # type: ignore[union-attr]
            ttype = spec["type"]
            value = spec["value"]
            if ttype == "H":
                value = bytes.fromhex(value)
            elif ttype == "B":
                value = (spec["subtype"], tuple(value))
            tags.append(Tag(name, ttype, value))
        return AlignmentRecord(
            qname=str(data["qname"]),
            flag=int(data["flag"]),  # type: ignore[arg-type]
            rname=str(data["rname"]),
            pos=pos - 1 if pos > 0 else UNMAPPED_POS,
            mapq=int(data["mapq"]),  # type: ignore[arg-type]
            cigar=parse_cigar(str(data["cigar"])),
            rnext=str(data["rnext"]),
            pnext=pnext - 1 if pnext > 0 else UNMAPPED_POS,
            tlen=int(data["tlen"]),  # type: ignore[arg-type]
            seq=str(data["seq"]),
            qual=str(data["qual"]),
            tags=tags,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"malformed alignment JSON object: {exc}") from None


def format_record(record: AlignmentRecord) -> str:
    """One compact JSON object (no trailing newline)."""
    return json.dumps(record_to_dict(record), separators=(",", ":"))


def iter_json(stream) -> Iterator[AlignmentRecord]:
    """Parse a JSON-Lines stream of alignment objects."""
    for lineno, line in enumerate(stream, 1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise FormatError(f"invalid JSON: {exc}", lineno=lineno) from None
        yield dict_to_record(obj)


def read_json(path: str | os.PathLike[str]) -> list[AlignmentRecord]:
    """Read a JSON-Lines alignment file into memory."""
    with open(path, "r", encoding="utf-8") as fh:
        return list(iter_json(fh))


def write_json(path: str | os.PathLike[str],
               records: Iterable[AlignmentRecord]) -> int:
    """Write records as JSON-Lines; return the count written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(format_record(record))
            fh.write("\n")
            n += 1
    return n
