"""Chunk-level codecs: batched record conversion and zero-copy fastpaths.

The per-record pipeline materializes every alignment as an
:class:`~repro.formats.record.AlignmentRecord` — a dataclass built from
a fully parsed CIGAR and tag list — even when the target format needs
three of its eleven columns.  This module is the batched alternative the
converters' hot loops run by default (``pipeline="batch"``):

* **SAM column fastpaths** — one tab-split per line, then a per-target
  emitter over the raw columns.  Only the columns the target consumes
  are converted (``int`` on FLAG/POS, a span scan over the CIGAR text);
  no record object is built.  Anything the fast emitter cannot prove it
  handles byte-identically (non-canonical CIGAR/tag text, short lines)
  falls back to the record path *for that line*, so output — and error
  behaviour for lines the fastpath touches — matches the per-record
  pipeline exactly.
* **BAMX field fastpaths** — emitters over the raw fixed-layout record
  bytes of a BAMX/BAMZ store.  Fields are sliced straight out of a
  ``memoryview`` of the slab (zero copies until a field is actually
  rendered); a BED conversion never unpacks the sequence, qualities or
  tags at all.
* **Batch encode** — :func:`encode_bamx_batch` packs many records into
  one preallocated ``bytearray`` so writers issue one large write per
  batch instead of one small write per record.

Record filters apply on both fastpaths without materialization:
:class:`~repro.core.filters.RecordFilter` only reads FLAG and MAPQ, and
both are available before any other field is decoded.

Targets without a registered fastpath (GFF needs tags; JSON/YAML need
every field) still run batched — parsed record-at-a-time but emitted
through the same chunked writers — via the ``*_record`` drivers here.

One behavioural caveat, by design: the fastpaths validate only the
fields a target consumes, so a malformed column in a line the fast
emitter never inspects (e.g. a corrupt tag in a SAM -> BEDGRAPH run) is
not diagnosed.  ``pipeline="record"`` keeps the strict
parse-everything behaviour.
"""

from __future__ import annotations

import re
import struct
from collections.abc import Iterable

from .bamx import _FIXED, BamxLayout
from .cigar import REF_CONSUMING
from .header import SamHeader
from .record import AlignmentRecord
from .sam import MANDATORY_COLUMNS, parse_alignment
from .seq import qual_bytes_to_text, reverse_complement, unpack_sequence

#: Pipeline names accepted by the converters.
PIPELINES = ("batch", "record")

#: Default records per batch through the converter hot loops.
DEFAULT_BATCH_SIZE = 4096


class FallbackToRecord(Exception):
    """Raised by a fast emitter when a line needs the full record path."""


# --------------------------------------------------------------------------
# SAM column fastpaths: one emitter per target, fn(cols) -> str | None.
# Each must produce exactly ``target.emit(parse_alignment(line))`` or
# raise FallbackToRecord.
# --------------------------------------------------------------------------

#: Canonical CIGAR text: what format_cigar(parse_cigar(s)) == s implies.
#: Lengths are capped at 8 digits so every match is < MAX_OP_LEN.
_CANON_CIGAR = re.compile(r"(?:[1-9][0-9]{0,7}[MIDNSHP=X])+\Z")
_CIGAR_OPS_RE = re.compile(r"([0-9]+)([MIDNSHP=X])")

#: Canonical tag columns: exactly the forms to_sam(parse_tag(s)) == s
#: guarantees.  f/B/H-lowercase and any other shape fall back.
_CANON_TAG = re.compile(
    r"[A-Za-z][A-Za-z0-9]:"
    r"(?:A:[ -~]"
    r"|i:(?:0|-?[1-9][0-9]*)"
    r"|Z:[ -~]*"
    r"|H:(?:[0-9A-F]{2})*)\Z")


def _cigar_ref_span(text: str) -> int:
    """Reference span of a canonical CIGAR string (``*`` spans 0)."""
    if text == "*":
        return 0
    if not _CANON_CIGAR.match(text):
        raise FallbackToRecord
    span = 0
    for n, op in _CIGAR_OPS_RE.findall(text):
        if op in REF_CONSUMING:
            span += int(n)
    return span


def _mate_suffix(flag: int) -> str:
    """``/1``, ``/2`` or empty — mirror of flags.mate_number."""
    read1 = flag & 0x40
    read2 = flag & 0x80
    if read1 and not read2:
        return "/1"
    if read2 and not read1:
        return "/2"
    return ""


def _sam_fast_bed(cols: list[str]) -> str | None:
    flag = int(cols[1])
    if flag & 0x4:
        return None
    pos1 = int(cols[3])
    if pos1 <= 0:
        return None
    pos = pos1 - 1
    span = _cigar_ref_span(cols[5])
    end = pos + (span if span > 0 else 1)
    score = min(int(cols[4]), 1000)
    strand = "-" if flag & 0x10 else "+"
    return f"{cols[2]}\t{pos}\t{end}\t{cols[0]}\t{score}\t{strand}"


def _sam_fast_bedgraph(cols: list[str]) -> str | None:
    flag = int(cols[1])
    if flag & 0x4:
        return None
    pos1 = int(cols[3])
    if pos1 <= 0:
        return None
    pos = pos1 - 1
    span = _cigar_ref_span(cols[5])
    return f"{cols[2]}\t{pos}\t{pos + (span if span > 0 else 1)}\t1"


def _sam_fast_fasta(cols: list[str]) -> str | None:
    seq = cols[9]
    if seq == "*":
        return None
    flag = int(cols[1])
    if flag & 0x10:
        seq = reverse_complement(seq)
    return f">{cols[0]}{_mate_suffix(flag)}\n{seq}"


def _sam_fast_fastq(cols: list[str]) -> str | None:
    flag = int(cols[1])
    if flag & 0x900:  # SECONDARY | SUPPLEMENTARY
        return None
    seq = cols[9]
    if seq == "*":
        return None
    qual = cols[10]
    if flag & 0x10:
        seq = reverse_complement(seq)
        if qual != "*":
            qual = qual[::-1]
    if qual == "*":
        qual = "!" * len(seq)
    return f"@{cols[0]}{_mate_suffix(flag)}\n{seq}\n+\n{qual}"


def _sam_fast_sam(cols: list[str]) -> str:
    """Identity transcode: normalize numerics, pass canonical text
    through untouched."""
    cigar = cols[5]
    if cigar != "*" and not _CANON_CIGAR.match(cigar):
        raise FallbackToRecord
    for tag in cols[MANDATORY_COLUMNS:]:
        if not _CANON_TAG.match(tag):
            raise FallbackToRecord
    pos1 = int(cols[3])
    pnext1 = int(cols[7])
    out = [
        cols[0],
        str(int(cols[1])),
        cols[2],
        str(pos1) if pos1 > 0 else "0",
        str(int(cols[4])),
        cigar,
        cols[6],
        str(pnext1) if pnext1 > 0 else "0",
        str(int(cols[8])),
        cols[9],
        cols[10],
    ]
    out.extend(cols[MANDATORY_COLUMNS:])
    return "\t".join(out)


_SAM_FASTPATHS = {
    "bed": _sam_fast_bed,
    "bedgraph": _sam_fast_bedgraph,
    "fasta": _sam_fast_fasta,
    "fastq": _sam_fast_fastq,
    "sam": _sam_fast_sam,
}


def sam_fastpath_for(target) -> object | None:
    """Column fast emitter for *target*, or None if it needs records."""
    if getattr(target, "mode", "text") != "text":
        return None
    return _SAM_FASTPATHS.get(getattr(target, "name", None))


def convert_sam_lines(lines: Iterable[str], target, fast_emit,
                      record_filter, out: list[str],
                      ) -> tuple[int, int, int]:
    """Drive one batch of SAM text lines through a column fastpath.

    Appends emitted lines to *out*; returns
    ``(records_seen, lines_emitted, fallback_lines)`` where *seen*
    counts records that passed the filter (matching the per-record
    pipeline's metrics).
    """
    seen = emitted = fallbacks = 0
    flt = record_filter if record_filter is not None \
        and not record_filter.is_noop else None
    for line in lines:
        if not line or line[0] == "@":
            continue
        try:
            cols = line.split("\t")
            if len(cols) < MANDATORY_COLUMNS:
                raise FallbackToRecord
            if flt is not None and not flt.matches_flag_mapq(
                    int(cols[1]), int(cols[4])):
                continue
            res = fast_emit(cols)
        except (FallbackToRecord, ValueError, IndexError):
            # The record path reproduces the canonical output — or the
            # canonical error — for anything the fastpath cannot prove.
            fallbacks += 1
            record = parse_alignment(line)
            if flt is not None and not flt.matches(record):
                continue
            res = target.emit(record)
        seen += 1
        if res is not None:
            out.append(res)
            emitted += 1
    return seen, emitted, fallbacks


def convert_sam_lines_record(lines: Iterable[str], target, record_filter,
                             out: list[str]) -> tuple[int, int]:
    """Record-at-a-time batch driver for targets without a fastpath."""
    seen = emitted = 0
    flt = record_filter if record_filter is not None \
        and not record_filter.is_noop else None
    emit = target.emit
    for line in lines:
        if not line or line[0] == "@":
            continue
        record = parse_alignment(line)
        if flt is not None and not flt.matches(record):
            continue
        res = emit(record)
        seen += 1
        if res is not None:
            out.append(res)
            emitted += 1
    return seen, emitted


def parse_sam_lines(lines: Iterable[str]) -> list[AlignmentRecord]:
    """Parse a batch of SAM lines (header/blank lines skipped)."""
    return [parse_alignment(line) for line in lines
            if line and line[0] != "@"]


# --------------------------------------------------------------------------
# BAMX field fastpaths: emitters over raw fixed-layout record bytes.
# fn(buf, off, fixed) -> str | None where *fixed* is the unpacked
# _FIXED tuple for the record at *off*.
# --------------------------------------------------------------------------

#: ref-consuming flag per BAM CIGAR op code (padded: invalid codes are
#: treated as non-consuming, matching a span of 0 for corrupt data).
_REF_CONSUMING_CODE = tuple(op in REF_CONSUMING for op in "MIDNSHP=X") \
    + (False,) * 7

_U32_STRUCTS: dict[int, struct.Struct] = {}


def _cigar_words(buf, off: int, n: int) -> tuple[int, ...]:
    s = _U32_STRUCTS.get(n)
    if s is None:
        s = _U32_STRUCTS[n] = struct.Struct(f"<{n}I")
    return s.unpack_from(buf, off)


def _words_ref_span(words: tuple[int, ...]) -> int:
    span = 0
    for w in words:
        if _REF_CONSUMING_CODE[w & 0xF]:
            span += w >> 4
    return span


def _make_bamx_bed(layout: BamxLayout, header: SamHeader):
    off_name = _FIXED.size
    off_cigar = off_name + layout.name_cap
    refs = [r.name for r in header.references]

    def emit(buf, off: int, fixed) -> str | None:
        ref_id, pos, mapq, name_len, flag, n_cigar = fixed[:6]
        if flag & 0x4 or pos < 0:
            return None
        span = _words_ref_span(
            _cigar_words(buf, off + off_cigar, n_cigar)) if n_cigar else 0
        end = pos + (span if span > 0 else 1)
        rname = refs[ref_id] if ref_id >= 0 else "*"
        name = str(buf[off + off_name:off + off_name + name_len], "ascii")
        strand = "-" if flag & 0x10 else "+"
        return f"{rname}\t{pos}\t{end}\t{name}\t{min(mapq, 1000)}\t{strand}"

    return emit


def _make_bamx_bedgraph(layout: BamxLayout, header: SamHeader):
    off_cigar = _FIXED.size + layout.name_cap
    refs = [r.name for r in header.references]

    def emit(buf, off: int, fixed) -> str | None:
        ref_id, pos, _mapq, _name_len, flag, n_cigar = fixed[:6]
        if flag & 0x4 or pos < 0:
            return None
        span = _words_ref_span(
            _cigar_words(buf, off + off_cigar, n_cigar)) if n_cigar else 0
        rname = refs[ref_id] if ref_id >= 0 else "*"
        return f"{rname}\t{pos}\t{pos + (span if span > 0 else 1)}\t1"

    return emit


def _make_bamx_fasta(layout: BamxLayout, header: SamHeader):
    off_name = _FIXED.size
    off_seq = off_name + layout.name_cap + 4 * layout.cigar_cap

    def emit(buf, off: int, fixed) -> str | None:
        name_len, flag = fixed[3], fixed[4]
        l_seq = fixed[6]
        if l_seq == 0:
            return None
        seq = unpack_sequence(
            buf[off + off_seq:off + off_seq + (l_seq + 1) // 2], l_seq)
        if flag & 0x10:
            seq = reverse_complement(seq)
        name = str(buf[off + off_name:off + off_name + name_len], "ascii")
        return f">{name}{_mate_suffix(flag)}\n{seq}"

    return emit


def _make_bamx_fastq(layout: BamxLayout, header: SamHeader):
    off_name = _FIXED.size
    off_seq = off_name + layout.name_cap + 4 * layout.cigar_cap
    off_qual = off_seq + (layout.seq_cap + 1) // 2

    def emit(buf, off: int, fixed) -> str | None:
        name_len, flag = fixed[3], fixed[4]
        if flag & 0x900:
            return None
        l_seq = fixed[6]
        if l_seq == 0:
            return None
        seq = unpack_sequence(
            buf[off + off_seq:off + off_seq + (l_seq + 1) // 2], l_seq)
        qual_raw = bytes(buf[off + off_qual:off + off_qual + l_seq])
        if flag & 0x10:
            seq = reverse_complement(seq)
        if not qual_raw.strip(b"\xff"):
            qual = "!" * l_seq
        else:
            qual = qual_bytes_to_text(qual_raw)
            if flag & 0x10:
                qual = qual[::-1]
        name = str(buf[off + off_name:off + off_name + name_len], "ascii")
        return f"@{name}{_mate_suffix(flag)}\n{seq}\n+\n{qual}"

    return emit


_BAMX_FASTPATH_MAKERS = {
    "bed": _make_bamx_bed,
    "bedgraph": _make_bamx_bedgraph,
    "fasta": _make_bamx_fasta,
    "fastq": _make_bamx_fastq,
}


def bamx_fastpath_for(target, layout: BamxLayout, header: SamHeader):
    """Field fast emitter for *target* over *layout*, or None."""
    if getattr(target, "mode", "text") != "text":
        return None
    maker = _BAMX_FASTPATH_MAKERS.get(getattr(target, "name", None))
    if maker is None:
        return None
    return maker(layout, header)


def convert_bamx_slab(buf, count: int, layout: BamxLayout, fast_emit,
                      record_filter, out: list[str]) -> tuple[int, int]:
    """Drive one raw slab of *count* fixed-size records through a field
    fastpath.  Appends emitted lines to *out*; returns
    ``(records_seen, lines_emitted)`` (seen = post-filter)."""
    seen = emitted = 0
    flt = record_filter if record_filter is not None \
        and not record_filter.is_noop else None
    rsize = layout.record_size
    unpack_fixed = _FIXED.unpack_from
    off = 0
    for _ in range(count):
        fixed = unpack_fixed(buf, off)
        if flt is not None and not flt.matches_flag_mapq(fixed[4],
                                                         fixed[2]):
            off += rsize
            continue
        res = fast_emit(buf, off, fixed)
        seen += 1
        if res is not None:
            out.append(res)
            emitted += 1
        off += rsize
    return seen, emitted


def convert_bamx_slab_record(buf, count: int, layout: BamxLayout,
                             header: SamHeader, target, record_filter,
                             out: list[str]) -> tuple[int, int]:
    """Record-at-a-time slab driver for targets without a fastpath."""
    seen = emitted = 0
    flt = record_filter if record_filter is not None \
        and not record_filter.is_noop else None
    rsize = layout.record_size
    emit = target.emit
    for i in range(count):
        record = layout.decode(buf, header, i * rsize)
        if flt is not None and not flt.matches(record):
            continue
        res = emit(record)
        seen += 1
        if res is not None:
            out.append(res)
            emitted += 1
    return seen, emitted


# --------------------------------------------------------------------------
# Batch BAMX encode
# --------------------------------------------------------------------------

def encode_bamx_batch(records: list[AlignmentRecord], header: SamHeader,
                      layout: BamxLayout) -> bytearray:
    """Encode *records* into one preallocated buffer of
    ``len(records) * layout.record_size`` bytes."""
    rsize = layout.record_size
    out = bytearray(len(records) * rsize)
    off = 0
    for record in records:
        layout.encode_into(record, header, out, off)
        off += rsize
    return out


def decode_bamx_batch(buf, count: int, layout: BamxLayout,
                      header: SamHeader) -> list[AlignmentRecord]:
    """Decode *count* records from a raw slab (memoryview-friendly)."""
    rsize = layout.record_size
    return [layout.decode(buf, header, i * rsize) for i in range(count)]
