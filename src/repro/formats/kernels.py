"""Vectorized numpy kernels over BAMC column slabs.

Every operation the converter hot loops run per record — filter
predicates, flagstat category counts, coverage/MAPQ histograms, target
emission — has a columnar formulation here that touches whole arrays
at once.  The contracts are strict:

* **Filters** are exactly :meth:`RecordFilter.matches_flag_mapq` as
  boolean array ops.
* **Flagstat** counts are exactly what :class:`FlagStats.add` would
  accumulate record by record (the mate-on-different-chr categories
  use the ``next_ref``/``ref_id`` columns, which is the integer form
  of the record path's ``rnext not in ("=", "*", rname)`` test —
  reference names are unique, so the two are equivalent).
* **Emitters** produce byte-identical lines to the v1 BAMX fastpaths
  in :mod:`repro.formats.batch` (and therefore to the per-record
  pipeline); the interval targets read the precomputed ``end_pos``
  column instead of re-walking CIGARs.

Targets without a kernel (SAM needs canonical CIGAR/tag text; GFF
needs tags; JSON/YAML need everything) fall back per slab to the
decoded-record path — the converters count those slabs as
``kernel_fallbacks`` so a silently-degraded columnar run is visible in
the service metrics.
"""

from __future__ import annotations

import numpy as np

from .bamc import ColumnSlab
from .batch import _mate_suffix
from .header import SamHeader
from .seq import qual_blob_to_text, reverse_complement, \
    unpack_sequence_blob


class KernelFallback(Exception):
    """Raised by a kernel emitter when a slab needs the record path."""


#: Mate suffix by the (READ1, READ2) bit pair — index with
#: ``(flag >> 6) & 3``.  Both-set and neither-set read as unpaired,
#: matching :func:`repro.formats.batch._mate_suffix`.
_MATE_SUFFIX = ("", "/1", "/2", "")
assert tuple(_mate_suffix(f << 6) for f in range(4)) == _MATE_SUFFIX


def filter_mask(flag: np.ndarray, mapq: np.ndarray,
                record_filter) -> np.ndarray:
    """Boolean mask of records passing *record_filter*.

    Vectorized :meth:`~repro.core.filters.RecordFilter.matches_flag_mapq`
    over FLAG/MAPQ columns.
    """
    mask = np.ones(len(flag), dtype=bool)
    if record_filter.require_flags:
        mask &= (flag & record_filter.require_flags) \
            == record_filter.require_flags
    if record_filter.exclude_flags:
        mask &= (flag & record_filter.exclude_flags) == 0
    if record_filter.primary_only:
        mask &= (flag & 0x900) == 0
    if record_filter.mapped_only:
        mask &= (flag & 0x4) == 0
    if record_filter.min_mapq:
        mask &= mapq >= record_filter.min_mapq
    return mask


def slab_filter_mask(slab: ColumnSlab, record_filter) -> np.ndarray | None:
    """:func:`filter_mask` over a slab, or ``None`` for a no-op filter."""
    if record_filter is None or record_filter.is_noop:
        return None
    return filter_mask(slab.flag, slab.mapq, record_filter)


# --------------------------------------------------------------------------
# Flagstat
# --------------------------------------------------------------------------

def flagstat_counts(flag: np.ndarray, mapq: np.ndarray,
                    ref_id: np.ndarray, next_ref: np.ndarray,
                    ) -> dict[str, int]:
    """samtools-flagstat category counts from columns.

    Field-for-field mirror of :meth:`repro.tools.flagstat.FlagStats.add`
    accumulated over the whole slab at once.
    """
    n = len(flag)
    mapped = (flag & 0x4) == 0
    primary = (flag & 0x900) == 0
    paired = primary & ((flag & 0x1) != 0)
    paired_mapped = paired & mapped
    mate_mapped = paired_mapped & ((flag & 0x8) == 0)
    diff_chr = mate_mapped & (next_ref >= 0) & (next_ref != ref_id)
    return {
        "total": n,
        "secondary": int(np.count_nonzero((flag & 0x100) != 0)),
        "supplementary": int(np.count_nonzero((flag & 0x800) != 0)),
        "duplicates": int(np.count_nonzero((flag & 0x400) != 0)),
        "mapped": int(np.count_nonzero(mapped)),
        "paired": int(np.count_nonzero(paired)),
        "read1": int(np.count_nonzero(paired & ((flag & 0x40) != 0))),
        "read2": int(np.count_nonzero(paired & ((flag & 0x80) != 0))),
        "properly_paired": int(np.count_nonzero(
            paired_mapped & ((flag & 0x2) != 0))),
        "with_mate_mapped": int(np.count_nonzero(mate_mapped)),
        "singletons": int(np.count_nonzero(
            paired_mapped & ((flag & 0x8) != 0))),
        "mate_on_different_chr": int(np.count_nonzero(diff_chr)),
        "mate_on_different_chr_mapq5": int(np.count_nonzero(
            diff_chr & (mapq >= 5))),
    }


def flagstat_slab(slab: ColumnSlab) -> dict[str, int]:
    """:func:`flagstat_counts` over one slab."""
    return flagstat_counts(slab.flag, slab.mapq, slab.ref_id,
                           slab.next_ref)


# --------------------------------------------------------------------------
# Histograms
# --------------------------------------------------------------------------

def mapq_histogram(slab: ColumnSlab,
                   mask: np.ndarray | None = None) -> np.ndarray:
    """256-bin MAPQ histogram of one slab (optionally masked)."""
    mapq = slab.mapq if mask is None else slab.mapq[mask]
    return np.bincount(mapq, minlength=256)


def add_coverage_events(slab: ColumnSlab, ref_id: int, length: int,
                        diff: np.ndarray) -> None:
    """Accumulate one slab's coverage starts/ends into *diff*.

    *diff* is a difference array of ``length + 1`` int64 slots;
    ``np.cumsum(diff[:-1])`` afterwards yields per-base depth.  The
    selection mirrors :func:`repro.stats.histogram.coverage_depth`:
    mapped records on *ref_id* with a placed position, intervals
    clipped to ``[0, length)``, empty intervals dropped.  ``end_pos``
    is the precomputed ``record.end`` column, so no CIGAR is decoded.
    """
    mask = (slab.ref_id == ref_id) & ((slab.flag & 0x4) == 0) \
        & (slab.pos >= 0)
    if not mask.any():
        return
    starts = np.minimum(slab.pos[mask], length)
    ends = np.minimum(slab.end_pos[mask], length)
    valid = ends > starts
    if not valid.any():
        return
    diff[:length + 1] += np.bincount(starts[valid],
                                     minlength=length + 1)
    diff[:length + 1] -= np.bincount(ends[valid], minlength=length + 1)


def coverage_depth_columns(slabs, ref_id: int,
                           length: int) -> np.ndarray:
    """Per-base depth over ``[0, length)`` from an iterable of slabs."""
    diff = np.zeros(length + 1, dtype=np.int64)
    for slab in slabs:
        add_coverage_events(slab, ref_id, length, diff)
    return np.cumsum(diff[:-1])


# --------------------------------------------------------------------------
# Columnar target emitters.  Each maker returns
# ``fn(slab, record_filter) -> (lines, seen)`` where *seen* counts
# post-filter records (matching the v1 pipeline's metrics) and *lines*
# are byte-identical to the v1 fastpath output.
# --------------------------------------------------------------------------

def _base_and_seen(slab: ColumnSlab, record_filter,
                   ) -> tuple[np.ndarray | None, int]:
    base = slab_filter_mask(slab, record_filter)
    seen = slab.count if base is None else int(np.count_nonzero(base))
    return base, seen


def _names(slab: ColumnSlab, idx: np.ndarray) -> list[str]:
    """Read names for *idx*: one blob decode, then string slices."""
    text = slab.name_blob.decode("ascii")
    lo = slab.name_lo[idx].tolist()
    hi = slab.name_hi[idx].tolist()
    return [text[a:b] for a, b in zip(lo, hi)]


def _rnames(refs: list[str], ref_id: list[int]) -> list[str]:
    return [refs[r] if r >= 0 else "*" for r in ref_id]


def _make_bed(header: SamHeader):
    refs = [r.name for r in header.references]

    def emit(slab: ColumnSlab, record_filter) -> tuple[list[str], int]:
        base, seen = _base_and_seen(slab, record_filter)
        keep = ((slab.flag & 0x4) == 0) & (slab.pos >= 0)
        if base is not None:
            keep &= base
        idx = np.flatnonzero(keep)
        if not idx.size:
            return [], seen
        names = _names(slab, idx)
        rnames = _rnames(refs, slab.ref_id[idx].tolist())
        pos = slab.pos[idx].tolist()
        end = slab.end_pos[idx].tolist()
        mapq = slab.mapq[idx].tolist()  # u8: min(mapq, 1000) == mapq
        flag = slab.flag[idx].tolist()
        return [f"{r}\t{p}\t{e}\t{n}\t{q}\t"
                f"{'-' if f & 0x10 else '+'}"
                for r, p, e, n, q, f
                in zip(rnames, pos, end, names, mapq, flag)], seen

    return emit


def _make_bedgraph(header: SamHeader):
    refs = [r.name for r in header.references]

    def emit(slab: ColumnSlab, record_filter) -> tuple[list[str], int]:
        base, seen = _base_and_seen(slab, record_filter)
        keep = ((slab.flag & 0x4) == 0) & (slab.pos >= 0)
        if base is not None:
            keep &= base
        idx = np.flatnonzero(keep)
        if not idx.size:
            return [], seen
        rnames = _rnames(refs, slab.ref_id[idx].tolist())
        pos = slab.pos[idx].tolist()
        end = slab.end_pos[idx].tolist()
        return [f"{r}\t{p}\t{e}\t1"
                for r, p, e in zip(rnames, pos, end)], seen

    return emit


def _sequences(slab: ColumnSlab, idx: np.ndarray,
               lengths: list[int]) -> list[str]:
    """Decode the selected packed sequences with one blob-wide pass."""
    lo = slab.seq_lo[idx]
    hi = slab.seq_hi[idx]
    return unpack_sequence_blob(slab.seq_blob, lo.tolist(), hi.tolist(),
                                lengths)


def _make_fasta(header: SamHeader):
    def emit(slab: ColumnSlab, record_filter) -> tuple[list[str], int]:
        base, seen = _base_and_seen(slab, record_filter)
        keep = slab.l_seq > 0
        if base is not None:
            keep &= base
        idx = np.flatnonzero(keep)
        if not idx.size:
            return [], seen
        lengths = slab.l_seq[idx].tolist()
        seqs = _sequences(slab, idx, lengths)
        names = _names(slab, idx)
        flags = slab.flag[idx].tolist()
        return [
            f">{n}{_MATE_SUFFIX[(f >> 6) & 3]}\n"
            f"{reverse_complement(s) if f & 0x10 else s}"
            for n, f, s in zip(names, flags, seqs)], seen

    return emit


def _make_fastq(header: SamHeader):
    def emit(slab: ColumnSlab, record_filter) -> tuple[list[str], int]:
        base, seen = _base_and_seen(slab, record_filter)
        keep = ((slab.flag & 0x900) == 0) & (slab.l_seq > 0)
        if base is not None:
            keep &= base
        idx = np.flatnonzero(keep)
        if not idx.size:
            return [], seen
        lengths = slab.l_seq[idx].tolist()
        seqs = _sequences(slab, idx, lengths)
        lo = slab.qual_lo[idx].tolist()
        hi = slab.qual_hi[idx].tolist()
        quals = qual_blob_to_text(slab.qual_blob, lo, hi)
        names = _names(slab, idx)
        flags = slab.flag[idx].tolist()
        lines = []
        qual_blob = slab.qual_blob
        for i, (n, f, s, q) in enumerate(zip(names, flags, seqs,
                                             quals)):
            # 0xFF translates to "\xff": all-0xFF means absent quals,
            # exactly the BAMX decode rule.
            if q[0] == "\xff" \
                    and not qual_blob[lo[i]:hi[i]].strip(b"\xff"):
                q = "!" * len(s)
            elif f & 0x10:
                q = q[::-1]
            if f & 0x10:
                s = reverse_complement(s)
            lines.append(f"@{n}{_MATE_SUFFIX[(f >> 6) & 3]}\n{s}\n+\n{q}")
        return lines, seen

    return emit


_KERNEL_MAKERS = {
    "bed": _make_bed,
    "bedgraph": _make_bedgraph,
    "fasta": _make_fasta,
    "fastq": _make_fastq,
}

#: Target names with a columnar kernel emitter.
KERNEL_TARGETS = tuple(sorted(_KERNEL_MAKERS))


def kernel_emitter_for(target, header: SamHeader):
    """Columnar emitter for *target*, or ``None`` if it needs records."""
    if getattr(target, "mode", "text") != "text":
        return None
    maker = _KERNEL_MAKERS.get(getattr(target, "name", None))
    if maker is None:
        return None
    return maker(header)


def convert_slab_record(slab: ColumnSlab, header: SamHeader, target,
                        record_filter,
                        out: list[str]) -> tuple[int, int]:
    """Record-at-a-time slab driver for targets without a kernel."""
    seen = emitted = 0
    flt = record_filter if record_filter is not None \
        and not record_filter.is_noop else None
    emit = target.emit
    for record in slab.decode_all(header):
        if flt is not None and not flt.matches(record):
            continue
        res = emit(record)
        seen += 1
        if res is not None:
            out.append(res)
            emitted += 1
    return seen, emitted
