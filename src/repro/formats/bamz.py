"""BAMZ: BGZF-compressed BAMX (the paper's future work, §VII).

The paper's conclusions propose "utiliz[ing] certain compression
techniques during the BAMX/BAIX file generation".  BAMZ implements
that: the same fixed-length records as BAMX, but stored inside a BGZF
stream so the padding costs (almost) nothing on disk.  Random access is
preserved with a sidecar ``.bzi`` index holding each record's BGZF
virtual offset (8 bytes per record) — record *i* is one
``seek_virtual`` plus one fixed-size read away.

File layout (all inside the BGZF stream)::

    magic "BAMZ\\x01"
    u32 name_cap  u32 cigar_cap  u32 seq_cap  u32 tag_cap
    u64 record_count
    u32 sam_header_text_length
    ... SAM header text
    ... records, each layout.record_size bytes

Sidecar ``<path>.bzi``::

    magic "BZI\\x01"
    u64 record_count
    u64[record_count] virtual offsets

:class:`BamzReader` exposes the same interface as
:class:`~repro.formats.bamx.BamxReader` (``len``, ``[i]``,
``read_range``, iteration, ``.header``, ``.layout``), so converters can
use either store interchangeably.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterable, Iterator

import numpy as np

from ..errors import BamxFormatError, IndexError_
from .bamx import BamxLayout, plan_layout
from .bgzf import BgzfReader, BgzfWriter
from .header import SamHeader
from .record import AlignmentRecord

MAGIC = b"BAMZ\x01"
INDEX_MAGIC = b"BZI\x01"

_HEAD = struct.Struct("<IIIIQI")


def index_path_for(bamz_path: str | os.PathLike[str]) -> str:
    """The conventional sidecar index path, ``<bamz>.bzi``."""
    return os.fspath(bamz_path) + ".bzi"


class BamzWriter:
    """Write a BAMZ file plus its ``.bzi`` virtual-offset index."""

    def __init__(self, target: str | os.PathLike[str], header: SamHeader,
                 layout: BamxLayout, level: int = 6) -> None:
        self.path = os.fspath(target)
        self.header = header
        self.layout = layout
        self._bgzf = BgzfWriter(self.path, level=level)
        self._voffsets: list[int] = []
        text = header.to_text().encode("ascii")
        head = MAGIC + _HEAD.pack(layout.name_cap, layout.cigar_cap,
                                  layout.seq_cap, layout.tag_cap,
                                  0, len(text))
        self._bgzf.write(head)
        self._bgzf.write(text)
        self.records_written = 0

    def __enter__(self) -> "BamzWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def write(self, record: AlignmentRecord) -> int:
        """Append one record; return its 0-based record index."""
        self._voffsets.append(self._bgzf.tell())
        self._bgzf.write(self.layout.encode(record, self.header))
        index = self.records_written
        self.records_written += 1
        return index

    def write_all(self, records: Iterable[AlignmentRecord]) -> int:
        """Append every record; return the count written by this call."""
        n = 0
        for record in records:
            self.write(record)
            n += 1
        return n

    def close(self) -> None:
        """Finish the BGZF stream and write the sidecar index.

        The record count inside the BGZF header cannot be patched after
        compression, so the authoritative count lives in the index; the
        reader cross-checks the two.
        """
        if self._bgzf.closed:
            return
        self._bgzf.close()
        with open(index_path_for(self.path), "wb") as fh:
            fh.write(INDEX_MAGIC)
            fh.write(struct.pack("<Q", len(self._voffsets)))
            fh.write(np.asarray(self._voffsets,
                                dtype="<u8").tobytes())


class BamzReader:
    """Random-access BAMZ reader (BamxReader-compatible interface)."""

    def __init__(self, source: str | os.PathLike[str],
                 index_path: str | os.PathLike[str] | None = None) -> None:
        self.source_name = os.fspath(source)
        self._bgzf = BgzfReader(source)
        magic = self._bgzf.read(len(MAGIC))
        if magic != MAGIC:
            raise BamxFormatError("bad BAMZ magic",
                                  source=self.source_name)
        (name_cap, cigar_cap, seq_cap, tag_cap, _count,
         text_len) = _HEAD.unpack(self._bgzf.read_exactly(_HEAD.size))
        self.layout = BamxLayout(name_cap, cigar_cap, seq_cap, tag_cap)
        text = self._bgzf.read_exactly(text_len).decode("ascii")
        self.header = SamHeader.from_text(text)
        self._first_voffset = self._bgzf.tell()
        if index_path is None:
            index_path = index_path_for(source)
        self._voffsets = _load_index(index_path)
        self._count = len(self._voffsets)
        if self._count and self._voffsets[0] != self._first_voffset:
            raise IndexError_(
                f"index {os.fspath(index_path)} does not match "
                f"{self.source_name} (first record offset differs)")

    def __enter__(self) -> "BamzReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying BGZF stream."""
        self._bgzf.close()

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> AlignmentRecord:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"record index {index} out of range "
                             f"[0, {self._count})")
        self._bgzf.seek_virtual(int(self._voffsets[index]))
        data = self._bgzf.read_exactly(self.layout.record_size)
        return self.layout.decode(data, self.header)

    def read_raw(self, index: int) -> bytes:
        """Read the raw :attr:`record_size` bytes of record *index*."""
        if not 0 <= index < self._count:
            raise BamxFormatError(
                f"record index {index} outside [0, {self._count})",
                source=self.source_name)
        self._bgzf.seek_virtual(int(self._voffsets[index]))
        return self._bgzf.read_exactly(self.layout.record_size)

    def read_raw_batches(self, start: int, stop: int,
                         batch_size: int = 0,
                         ) -> Iterator[tuple[memoryview, int]]:
        """Yield ``(slab, count)`` raw-record slabs for ``[start, stop)``.

        Same contract as
        :meth:`~repro.formats.bamx.BamxReader.read_raw_batches`:
        records are contiguous in the decompressed stream, so one seek
        plus sequential slab reads suffices.
        """
        if not 0 <= start <= stop <= self._count:
            raise BamxFormatError(
                f"record range [{start}, {stop}) outside "
                f"[0, {self._count})")
        if start == stop:
            return
        rsize = self.layout.record_size
        per_slab = batch_size if batch_size > 0 \
            else max(1, (4 << 20) // max(rsize, 1))
        self._bgzf.seek_virtual(int(self._voffsets[start]))
        remaining = stop - start
        while remaining > 0:
            n = min(per_slab, remaining)
            yield memoryview(self._bgzf.read_exactly(n * rsize)), n
            remaining -= n

    def read_range(self, start: int, stop: int,
                   ) -> Iterator[AlignmentRecord]:
        """Yield records ``start <= i < stop``, decoding sequentially
        from one seek."""
        rsize = self.layout.record_size
        for data, n in self.read_raw_batches(start, stop):
            # Full decode touches every field; see BamxReader.read_range.
            data = bytes(data)
            for i in range(n):
                yield self.layout.decode(data, self.header, i * rsize)

    def __iter__(self) -> Iterator[AlignmentRecord]:
        return self.read_range(0, self._count)


def _load_index(path: str | os.PathLike[str]) -> np.ndarray:
    with open(path, "rb") as fh:
        magic = fh.read(len(INDEX_MAGIC))
        if magic != INDEX_MAGIC:
            raise IndexError_(f"bad BZI magic in {os.fspath(path)}")
        (count,) = struct.unpack("<Q", fh.read(8))
        data = np.frombuffer(fh.read(8 * count), dtype="<u8")
    if len(data) != count:
        raise IndexError_(f"truncated BZI index {os.fspath(path)}")
    return data


def write_bamz(path: str | os.PathLike[str], header: SamHeader,
               records: list[AlignmentRecord],
               layout: BamxLayout | None = None,
               level: int = 6) -> BamxLayout:
    """Write *records* to a BAMZ file (+ index), planning the layout if
    not given.  Returns the layout used."""
    if layout is None:
        layout = plan_layout(records)
    with BamzWriter(path, header, layout, level=level) as writer:
        writer.write_all(records)
    return layout


def read_bamz(path: str | os.PathLike[str],
              ) -> tuple[SamHeader, list[AlignmentRecord]]:
    """Read an entire BAMZ file into memory: ``(header, records)``."""
    with BamzReader(path) as reader:
        return reader.header, list(reader)
