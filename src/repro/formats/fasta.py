"""FASTA format: records, reader/writer, and a ``.fai``-style index.

A FASTA record is a ``>``-prefixed description line followed by wrapped
sequence lines.  The index (:class:`FastaIndex`) mirrors the samtools
``faidx`` layout — (name, length, offset, line bases, line width) — and
supports random subsequence extraction, which the read simulator and
aligner use heavily.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..errors import FormatError

#: Default sequence-line wrap width.
DEFAULT_WIDTH = 70


@dataclass(slots=True)
class FastaRecord:
    """One FASTA entry: *name* (first word), *description* (full line
    after ``>``), and the concatenated *sequence*."""

    name: str
    sequence: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.description:
            self.description = self.name


def format_record(record: FastaRecord, width: int = DEFAULT_WIDTH) -> str:
    """Render one record, wrapped to *width* columns, trailing newline."""
    if width <= 0:
        raise ValueError("wrap width must be positive")
    lines = [f">{record.description}"]
    seq = record.sequence
    lines.extend(seq[i:i + width] for i in range(0, len(seq), width))
    if not seq:
        lines.append("")
    return "\n".join(lines) + "\n"


def iter_fasta(stream: io.TextIOBase) -> Iterator[FastaRecord]:
    """Parse records from an open text stream."""
    name: str | None = None
    description = ""
    chunks: list[str] = []
    for lineno, line in enumerate(stream, 1):
        line = line.rstrip("\n")
        if line.startswith(">"):
            if name is not None:
                yield FastaRecord(name, "".join(chunks), description)
            description = line[1:]
            name = description.split()[0] if description.split() else ""
            if not name:
                raise FormatError("empty FASTA record name", lineno=lineno)
            chunks = []
        elif line.startswith(";"):
            continue  # legacy comment lines
        else:
            if name is None and line:
                raise FormatError("sequence data before first '>' header",
                                  lineno=lineno)
            chunks.append(line.strip())
    if name is not None:
        yield FastaRecord(name, "".join(chunks), description)


def read_fasta(path: str | os.PathLike[str]) -> list[FastaRecord]:
    """Read every record of a FASTA file into memory."""
    with open(path, "r", encoding="ascii") as fh:
        return list(iter_fasta(fh))


def write_fasta(path: str | os.PathLike[str],
                records: Iterable[FastaRecord],
                width: int = DEFAULT_WIDTH) -> int:
    """Write records to *path*; return the count written."""
    n = 0
    with open(path, "w", encoding="ascii") as fh:
        for record in records:
            fh.write(format_record(record, width))
            n += 1
    return n


@dataclass(slots=True)
class FaiEntry:
    """One line of a ``.fai`` index."""

    name: str
    length: int
    offset: int       # byte offset of the first sequence byte
    line_bases: int   # bases per full sequence line
    line_width: int   # bytes per full sequence line (incl. newline)


class FastaIndex:
    """samtools-faidx-compatible index enabling random subsequence reads.

    Only uniformly-wrapped FASTA files can be indexed (the same
    restriction samtools imposes).
    """

    def __init__(self, entries: list[FaiEntry]) -> None:
        self.entries = entries
        self._by_name = {e.name: e for e in entries}

    @classmethod
    def build(cls, path: str | os.PathLike[str]) -> "FastaIndex":
        """Scan a FASTA file and build its index."""
        entries: list[FaiEntry] = []
        with open(path, "rb") as fh:
            name = None
            length = 0
            offset = 0
            line_bases = 0
            line_width = 0
            pos = 0
            uniform = True
            last_len = None
            for raw in fh:
                line = raw.rstrip(b"\n")
                if raw.startswith(b">"):
                    if name is not None:
                        entries.append(FaiEntry(name, length, offset,
                                                line_bases, line_width))
                    desc = line[1:].decode("ascii")
                    name = desc.split()[0] if desc.split() else ""
                    if not name:
                        raise FormatError("empty FASTA record name",
                                          source=os.fspath(path))
                    length = 0
                    offset = pos + len(raw)
                    line_bases = 0
                    line_width = 0
                    uniform = True
                    last_len = None
                elif name is not None and line:
                    if last_len is not None and last_len != line_bases:
                        uniform = False
                    if not uniform:
                        raise FormatError(
                            f"cannot index FASTA with ragged line lengths "
                            f"in record {name!r}", source=os.fspath(path))
                    if line_bases == 0:
                        line_bases = len(line)
                        line_width = len(raw)
                    last_len = len(line)
                    length += len(line)
                pos += len(raw)
            if name is not None:
                entries.append(FaiEntry(name, length, offset,
                                        line_bases, line_width))
        return cls(entries)

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the index in .fai tab-separated layout."""
        with open(path, "w", encoding="ascii") as fh:
            for e in self.entries:
                fh.write(f"{e.name}\t{e.length}\t{e.offset}"
                         f"\t{e.line_bases}\t{e.line_width}\n")

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "FastaIndex":
        """Parse an on-disk .fai file."""
        entries = []
        with open(path, "r", encoding="ascii") as fh:
            for lineno, line in enumerate(fh, 1):
                cols = line.rstrip("\n").split("\t")
                if len(cols) != 5:
                    raise FormatError("malformed .fai line", lineno=lineno,
                                      source=os.fspath(path))
                entries.append(FaiEntry(cols[0], int(cols[1]), int(cols[2]),
                                        int(cols[3]), int(cols[4])))
        return cls(entries)

    def length(self, name: str) -> int:
        """Sequence length of record *name*."""
        return self._entry(name).length

    def _entry(self, name: str) -> FaiEntry:
        try:
            return self._by_name[name]
        except KeyError:
            raise FormatError(f"no FASTA record named {name!r}") from None

    def fetch(self, fasta_path: str | os.PathLike[str], name: str,
              start: int, end: int) -> str:
        """Extract bases ``[start, end)`` (0-based) of record *name*."""
        e = self._entry(name)
        if not 0 <= start <= end <= e.length:
            raise FormatError(
                f"range [{start}, {end}) outside record {name!r} "
                f"of length {e.length}")
        if start == end:
            return ""
        first = e.offset + (start // e.line_bases) * e.line_width \
            + start % e.line_bases
        last = e.offset + ((end - 1) // e.line_bases) * e.line_width \
            + (end - 1) % e.line_bases
        with open(fasta_path, "rb") as fh:
            fh.seek(first)
            raw = fh.read(last - first + 1)
        return raw.replace(b"\n", b"").decode("ascii")
