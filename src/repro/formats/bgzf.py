"""BGZF: the blocked-gzip framing used by BAM (SAM spec §4.1).

A BGZF file is a series of gzip members ("blocks"), each at most 64 KiB of
uncompressed data, carrying a ``BC`` extra subfield that records the
compressed block size.  Because block boundaries are discoverable from the
headers alone, BGZF supports *virtual offsets*::

    voffset = (compressed_block_start << 16) | offset_within_block

which BAI/BAIX indices use for random access.  Crucially, without an index
a BGZF stream can only be decoded front-to-back — the property that forces
the paper's sequential-preprocessing phase for BAM input.
"""

from __future__ import annotations

import io
import os
import struct
import zlib

from ..errors import BgzfError
from ..runtime.tracing import get_tracer

#: Fixed 18-byte BGZF member header prefix (through XLEN), less BSIZE.
_HEADER = struct.Struct("<4BI2BH2BH")
_MAGIC = b"\x1f\x8b\x08\x04"

#: Maximum uncompressed payload per block (samtools convention, keeps the
#: compressed block under 64 KiB even for incompressible data).
MAX_BLOCK_DATA = 0xFF00

#: The 28-byte empty block that marks proper end-of-file.
EOF_MARKER = bytes.fromhex(
    "1f8b08040000000000ff0600424302001b0003000000000000000000")


def make_virtual_offset(coffset: int, uoffset: int) -> int:
    """Combine a compressed block start and an in-block offset."""
    if not 0 <= uoffset < 1 << 16:
        raise ValueError(f"within-block offset {uoffset} outside [0, 65536)")
    if not 0 <= coffset < 1 << 48:
        raise ValueError(f"block offset {coffset} outside 48-bit range")
    return (coffset << 16) | uoffset


def split_virtual_offset(voffset: int) -> tuple[int, int]:
    """Inverse of :func:`make_virtual_offset`."""
    return voffset >> 16, voffset & 0xFFFF


def compress_block(data: bytes, level: int = 6) -> bytes:
    """Compress at most :data:`MAX_BLOCK_DATA` bytes into one BGZF block."""
    if len(data) > MAX_BLOCK_DATA:
        raise BgzfError(
            f"block payload {len(data)} exceeds {MAX_BLOCK_DATA} bytes")
    compressor = zlib.compressobj(level, zlib.DEFLATED, -15)
    cdata = compressor.compress(data) + compressor.flush()
    bsize = len(cdata) + 25  # header(18) + cdata + crc(4) + isize(4) - 1
    if bsize >= 1 << 16:
        raise BgzfError("compressed block exceeds 64 KiB")
    header = _MAGIC + struct.pack(
        "<IBBHBBHH",
        0,          # MTIME
        0,          # XFL
        0xFF,       # OS: unknown
        6,          # XLEN
        66, 67,     # SI1='B', SI2='C'
        2,          # SLEN
        bsize,      # BSIZE (total block size minus 1)
    )
    trailer = struct.pack("<II", zlib.crc32(data), len(data) & 0xFFFFFFFF)
    return header + cdata + trailer


def _read_block_size(header: bytes) -> int:
    """Extract BSIZE+1 from an 18-byte block header; raise if malformed."""
    if len(header) < 18:
        raise BgzfError("truncated BGZF block header")
    if header[:4] != _MAGIC:
        raise BgzfError("bad BGZF magic (not a BGZF stream?)")
    xlen = struct.unpack_from("<H", header, 10)[0]
    # The BC subfield is required to be present; samtools always writes it
    # first with XLEN == 6, which is what we emit and require here.
    if xlen != 6 or header[12:14] != b"BC":
        raise BgzfError("missing BC extra subfield in BGZF header")
    bsize = struct.unpack_from("<H", header, 16)[0]
    return bsize + 1


def decompress_block(block: bytes) -> bytes:
    """Decompress one complete BGZF block (header through trailer)."""
    total = _read_block_size(block)
    if len(block) < total:
        raise BgzfError("truncated BGZF block body")
    cdata = block[18:total - 8]
    crc, isize = struct.unpack_from("<II", block, total - 8)
    try:
        data = zlib.decompress(cdata, -15)
    except zlib.error as exc:
        raise BgzfError(f"corrupt BGZF block payload: {exc}") from None
    if len(data) != isize:
        raise BgzfError(f"BGZF ISIZE mismatch: {len(data)} != {isize}")
    if zlib.crc32(data) != crc:
        raise BgzfError("BGZF CRC mismatch")
    return data


class BgzfWriter(io.RawIOBase):
    """File-like object writing a BGZF-compressed stream.

    ``tell()`` returns the *virtual offset* of the next byte, so callers
    (the BAM writer, index builders) can record record positions.
    """

    def __init__(self, target: str | os.PathLike[str] | io.RawIOBase,
                 level: int = 6) -> None:
        if isinstance(target, (str, os.PathLike)):
            self._raw: io.RawIOBase = open(target, "wb")  # noqa: SIM115
            self._owns = True
        else:
            self._raw = target
            self._owns = False
        self._level = level
        self._buffer = bytearray()
        self._coffset = 0  # compressed bytes emitted so far
        self._closed = False

    def writable(self) -> bool:  # noqa: D102 - io.RawIOBase API
        return True

    def write(self, data: bytes) -> int:  # type: ignore[override]
        """Buffer *data*, flushing full 64 KiB blocks as they fill."""
        self._buffer.extend(data)
        while len(self._buffer) >= MAX_BLOCK_DATA:
            self._emit(bytes(self._buffer[:MAX_BLOCK_DATA]))
            del self._buffer[:MAX_BLOCK_DATA]
        return len(data)

    def _emit(self, payload: bytes) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("compress", "bgzf",
                             args={"bytes": len(payload)}):
                block = compress_block(payload, self._level)
        else:
            block = compress_block(payload, self._level)
        self._raw.write(block)
        self._coffset += len(block)

    def flush_block(self) -> None:
        """Force the current partial block out (starts a fresh block)."""
        if self._buffer:
            self._emit(bytes(self._buffer))
            self._buffer.clear()

    def tell(self) -> int:
        """Virtual offset of the next byte to be written."""
        return make_virtual_offset(self._coffset, len(self._buffer))

    def close(self) -> None:
        """Flush remaining data, append the EOF marker, close if owned."""
        if self._closed:
            return
        self._closed = True
        self.flush_block()
        self._raw.write(EOF_MARKER)
        if self._owns:
            self._raw.close()
        else:
            self._raw.flush()
        super().close()


class BgzfReader(io.RawIOBase):
    """File-like object reading a BGZF-compressed stream sequentially,
    with random access via :meth:`seek_virtual`.
    """

    def __init__(self, source: str | os.PathLike[str] | io.RawIOBase) -> None:
        if isinstance(source, (str, os.PathLike)):
            self._raw: io.RawIOBase = open(source, "rb")  # noqa: SIM115
            self._owns = True
        else:
            self._raw = source
            self._owns = False
        self._block_start = 0   # compressed offset of the loaded block
        self._block_data = b""
        self._within = 0        # cursor within the loaded block
        self._next_start = 0    # compressed offset of the next block
        self._eof = False
        self._load_next_block()

    def readable(self) -> bool:  # noqa: D102 - io.RawIOBase API
        return True

    def _load_next_block(self) -> None:
        self._raw.seek(self._next_start)
        header = self._raw.read(18)
        if not header:
            self._eof = True
            self._block_data = b""
            self._within = 0
            return
        total = _read_block_size(header)
        body = self._raw.read(total - 18)
        if len(body) != total - 18:
            raise BgzfError("truncated BGZF block")
        self._block_start = self._next_start
        self._next_start += total
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("decompress", "bgzf",
                             args={"bytes": total}):
                self._block_data = decompress_block(header + body)
        else:
            self._block_data = decompress_block(header + body)
        self._within = 0
        if not self._block_data:
            # An empty block is legal mid-stream and mandatory at EOF;
            # keep reading so read() sees a contiguous byte stream.
            pos = self._raw.tell()
            if not self._raw.read(1):
                self._eof = True
            else:
                self._raw.seek(pos)
                self._load_next_block()

    def read(self, n: int = -1) -> bytes:  # type: ignore[override]
        """Read up to *n* uncompressed bytes (all remaining if n < 0)."""
        if n < 0:
            chunks = []
            while True:
                chunk = self.read(1 << 20)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
        out = bytearray()
        while n > 0 and not (self._eof and self._within >= len(self._block_data)):
            avail = len(self._block_data) - self._within
            if avail == 0:
                self._load_next_block()
                continue
            take = min(n, avail)
            out += self._block_data[self._within:self._within + take]
            self._within += take
            n -= take
        return bytes(out)

    def read_exactly(self, n: int) -> bytes:
        """Read exactly *n* bytes or raise :class:`BgzfError`."""
        data = self.read(n)
        if len(data) != n:
            raise BgzfError(f"unexpected EOF: wanted {n} bytes, got {len(data)}")
        return data

    def tell(self) -> int:
        """Virtual offset of the next byte to be read."""
        return make_virtual_offset(self._block_start, self._within)

    def seek_virtual(self, voffset: int) -> None:
        """Position the cursor at a virtual offset previously obtained
        from a writer's/reader's ``tell()`` or from an index."""
        coffset, uoffset = split_virtual_offset(voffset)
        if coffset != self._block_start or not self._block_data:
            self._next_start = coffset
            self._eof = False
            self._load_next_block()
        if uoffset > len(self._block_data):
            raise BgzfError(
                f"virtual offset {voffset} points beyond block payload")
        self._within = uoffset

    def at_eof(self) -> bool:
        """True once every uncompressed byte has been consumed."""
        return self._eof and self._within >= len(self._block_data)

    def close(self) -> None:  # noqa: D102 - io.RawIOBase API
        if self._owns:
            self._raw.close()
        super().close()


def is_bgzf(path: str | os.PathLike[str]) -> bool:
    """Cheap sniff: does *path* start with a BGZF block header?"""
    with open(path, "rb") as fh:
        header = fh.read(18)
    try:
        _read_block_size(header)
    except BgzfError:
        return False
    return True


def compress_bytes(data: bytes, level: int = 6) -> bytes:
    """Compress an arbitrary byte string into a full BGZF stream
    (blocks + EOF marker).  Convenience for tests and small payloads."""
    out = bytearray()
    for off in range(0, len(data), MAX_BLOCK_DATA):
        out += compress_block(data[off:off + MAX_BLOCK_DATA], level)
    out += EOF_MARKER
    return bytes(out)


def decompress_bytes(stream: bytes) -> bytes:
    """Inverse of :func:`compress_bytes`."""
    out = bytearray()
    off = 0
    while off < len(stream):
        total = _read_block_size(stream[off:off + 18])
        out += decompress_block(stream[off:off + total])
        off += total
    return bytes(out)
