"""BAMX ("BAM eXtended"): the paper's fixed-record-length binary format.

The whole point of BAMX (§III-B of the paper) is that every record
occupies exactly ``layout.record_size`` bytes: variable-length fields
(read name, CIGAR, sequence, qualities, tags) are padded to per-file
capacities recorded in the header.  Record *i* therefore lives at
``data_offset + i * record_size``, giving O(1) random access — which is
what makes equal-record partitioning and partial conversion possible in
the parallel phase.

File layout::

    magic "BAMX\\x01"
    u32  header_length          (bytes of everything before record data)
    u32  name_cap  u32 cigar_cap  u32 seq_cap  u32 tag_cap
    u64  record_count
    u32  sam_header_text_length
    ...  SAM header text (ASCII, carries the reference dictionary)
    ...  records, each exactly record_size bytes

Records are *uncompressed* — the paper defers compression to future
work — so the padding trades disk space for layout regularity.
"""

from __future__ import annotations

import io
import os
import struct
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import BamxFormatError, CapacityError
from .bam import MAGIC as _BAM_MAGIC  # noqa: F401  (kept for format docs)
from .cigar import decode_ops, encode_ops
from .header import SamHeader
from .record import UNMAPPED_POS, AlignmentRecord
from .seq import pack_sequence, qual_bytes_to_text, qual_text_to_bytes, \
    unpack_sequence
from .tags import decode_tags, encode_tags

MAGIC = b"BAMX\x01"

_FIXED = struct.Struct("<iiBBHHiiiiH")
# ref_id, pos, mapq, name_len, flag, n_cigar, l_seq,
# next_ref, next_pos, tlen, tag_len


@dataclass(frozen=True, slots=True)
class BamxLayout:
    """Per-file field capacities defining the fixed record size.

    Attributes
    ----------
    name_cap:
        Maximum read-name length in bytes (without NUL).
    cigar_cap:
        Maximum number of CIGAR operations.
    seq_cap:
        Maximum sequence length in bases.
    tag_cap:
        Maximum encoded tag-block length in bytes.
    """

    name_cap: int
    cigar_cap: int
    seq_cap: int
    tag_cap: int
    #: Size in bytes of every record under this layout (derived).
    record_size: int = field(init=False, compare=False, default=0)

    def __post_init__(self) -> None:
        for label, value in (("name_cap", self.name_cap),
                             ("cigar_cap", self.cigar_cap),
                             ("seq_cap", self.seq_cap),
                             ("tag_cap", self.tag_cap)):
            if value < 0:
                raise BamxFormatError(f"negative {label}: {value}")
        if self.name_cap > 254:
            raise BamxFormatError("name_cap exceeds SAM's 254-byte limit")
        object.__setattr__(
            self, "record_size",
            _FIXED.size + self.name_cap + 4 * self.cigar_cap
            + (self.seq_cap + 1) // 2 + self.seq_cap + self.tag_cap)

    def merge(self, other: "BamxLayout") -> "BamxLayout":
        """Smallest layout accommodating records of both layouts."""
        return BamxLayout(max(self.name_cap, other.name_cap),
                          max(self.cigar_cap, other.cigar_cap),
                          max(self.seq_cap, other.seq_cap),
                          max(self.tag_cap, other.tag_cap))

    # -- record codec ----------------------------------------------------

    def encode(self, record: AlignmentRecord, header: SamHeader) -> bytes:
        """Encode one record to exactly :attr:`record_size` bytes."""
        out = bytearray(self.record_size)
        self.encode_into(record, header, out, 0)
        return bytes(out)

    def encode_into(self, record: AlignmentRecord, header: SamHeader,
                    out: bytearray, offset: int) -> None:
        """Encode one record into *out* at *offset*.

        The destination region must be zero-initialized (padding bytes
        are not written) and at least :attr:`record_size` bytes long —
        the batch encoders preallocate one zeroed buffer for a whole
        batch and pack records side by side.
        """
        name = record.qname.encode("ascii")
        if len(name) > self.name_cap:
            raise CapacityError(
                f"read name of {len(name)} bytes exceeds layout "
                f"capacity {self.name_cap}")
        cigar_words = encode_ops(record.cigar)
        if len(cigar_words) > self.cigar_cap:
            raise CapacityError(
                f"{len(cigar_words)} CIGAR ops exceed layout capacity "
                f"{self.cigar_cap}")
        l_seq = 0 if record.seq == "*" else len(record.seq)
        if l_seq > self.seq_cap:
            raise CapacityError(
                f"sequence of {l_seq} bases exceeds layout capacity "
                f"{self.seq_cap}")
        tag_block = encode_tags(record.tags)
        if len(tag_block) > self.tag_cap:
            raise CapacityError(
                f"tag block of {len(tag_block)} bytes exceeds layout "
                f"capacity {self.tag_cap}")
        ref_id = -1 if record.rname == "*" else header.ref_id(record.rname)
        if record.rnext == "*":
            next_ref = -1
        elif record.rnext == "=":
            next_ref = ref_id
        else:
            next_ref = header.ref_id(record.rnext)
        _FIXED.pack_into(
            out, offset,
            ref_id, record.pos, record.mapq, len(name), record.flag,
            len(cigar_words), l_seq, next_ref, record.pnext, record.tlen,
            len(tag_block))
        off = offset + _FIXED.size
        out[off:off + len(name)] = name
        off += self.name_cap
        struct.pack_into(f"<{len(cigar_words)}I", out, off, *cigar_words)
        off += 4 * self.cigar_cap
        seq_bytes = (self.seq_cap + 1) // 2
        if l_seq:
            packed = pack_sequence(record.seq)
            out[off:off + len(packed)] = packed
        off += seq_bytes
        if l_seq:
            if record.qual == "*":
                out[off:off + l_seq] = b"\xff" * l_seq
            else:
                if len(record.qual) != l_seq:
                    raise BamxFormatError(
                        f"QUAL length {len(record.qual)} != SEQ length "
                        f"{l_seq}")
                out[off:off + l_seq] = qual_text_to_bytes(record.qual)
        off += self.seq_cap
        out[off:off + len(tag_block)] = tag_block

    def decode(self, data: bytes | memoryview, header: SamHeader,
               offset: int = 0) -> AlignmentRecord:
        """Decode one record from *data* starting at *offset*.

        *data* may be any bytes-like object; the batched readers pass a
        :class:`memoryview` over a whole slab so field slices here are
        the only copies made.
        """
        if len(data) - offset < self.record_size:
            raise BamxFormatError("truncated BAMX record")
        (ref_id, pos, mapq, name_len, flag, n_cigar, l_seq,
         next_ref, next_pos, tlen, tag_len) = _FIXED.unpack_from(data, offset)
        off = offset + _FIXED.size
        name = str(data[off:off + name_len], "ascii")
        off += self.name_cap
        cigar_words = struct.unpack_from(f"<{n_cigar}I", data, off)
        off += 4 * self.cigar_cap
        seq = unpack_sequence(data[off:off + (l_seq + 1) // 2], l_seq) \
            if l_seq else "*"
        off += (self.seq_cap + 1) // 2
        qual_raw = bytes(data[off:off + l_seq])
        off += self.seq_cap
        if l_seq == 0 or not qual_raw.strip(b"\xff"):
            qual = "*"
        else:
            qual = qual_bytes_to_text(qual_raw)
        tags = decode_tags(bytes(data[off:off + tag_len]))
        rname = "*" if ref_id < 0 else header.ref_name(ref_id)
        if next_ref < 0:
            rnext = "*"
        elif next_ref == ref_id:
            rnext = "="
        else:
            rnext = header.ref_name(next_ref)
        return AlignmentRecord(
            qname=name, flag=flag, rname=rname,
            pos=pos if pos >= 0 else UNMAPPED_POS,
            mapq=mapq, cigar=decode_ops(list(cigar_words)),
            rnext=rnext,
            pnext=next_pos if next_pos >= 0 else UNMAPPED_POS,
            tlen=tlen, seq=seq, qual=qual, tags=tags)


def plan_layout(records: Iterable[AlignmentRecord]) -> BamxLayout:
    """Scan records and compute the tightest layout that fits them all.

    This is the first pass of the paper's preprocessing phase.
    """
    name_cap = cigar_cap = seq_cap = tag_cap = 0
    for record in records:
        name_cap = max(name_cap, len(record.qname))
        cigar_cap = max(cigar_cap, len(record.cigar))
        if record.seq != "*":
            seq_cap = max(seq_cap, len(record.seq))
        tag_cap = max(tag_cap, len(encode_tags(record.tags)))
    return BamxLayout(name_cap, cigar_cap, seq_cap, tag_cap)


class BamxWriter:
    """Write a BAMX file with a pre-planned :class:`BamxLayout`."""

    def __init__(self, target: str | os.PathLike[str], header: SamHeader,
                 layout: BamxLayout) -> None:
        self._fh: io.BufferedWriter = open(target, "wb")  # noqa: SIM115
        self.header = header
        self.layout = layout
        self.records_written = 0
        text = header.to_text().encode("ascii")
        head = MAGIC + struct.pack(
            "<IIIIIQI",
            0,  # header_length placeholder, fixed up on close
            layout.name_cap, layout.cigar_cap, layout.seq_cap,
            layout.tag_cap, 0, len(text))
        self._header_struct_size = len(head)
        self._fh.write(head)
        self._fh.write(text)
        self._data_offset = self._fh.tell()

    def __enter__(self) -> "BamxWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def write(self, record: AlignmentRecord) -> int:
        """Append one record; return its 0-based record index."""
        self._fh.write(self.layout.encode(record, self.header))
        index = self.records_written
        self.records_written += 1
        return index

    def write_batch(self, records: list[AlignmentRecord]) -> int:
        """Append a batch in one preallocated encode + one write.

        Returns the record index of the first record written; record
        ``records[i]`` gets index ``return_value + i``.
        """
        if not records:
            return self.records_written
        rsize = self.layout.record_size
        out = bytearray(len(records) * rsize)
        off = 0
        for record in records:
            self.layout.encode_into(record, self.header, out, off)
            off += rsize
        self._fh.write(out)
        first = self.records_written
        self.records_written += len(records)
        return first

    def write_all(self, records: Iterable[AlignmentRecord]) -> int:
        """Append every record; return the count written by this call."""
        n = 0
        for record in records:
            self.write(record)
            n += 1
        return n

    def close(self) -> None:
        """Fix up header_length / record_count and close the file."""
        if self._fh.closed:
            return
        self._fh.seek(len(MAGIC))
        self._fh.write(struct.pack("<I", self._data_offset))
        self._fh.seek(len(MAGIC) + 4 + 16)
        self._fh.write(struct.pack("<Q", self.records_written))
        self._fh.close()


class BamxReader:
    """Random-access BAMX reader: ``len()``, ``[i]``, slices, iteration."""

    def __init__(self, source: str | os.PathLike[str]) -> None:
        self.source_name = os.fspath(source)
        self._fh: io.BufferedReader = open(source, "rb")  # noqa: SIM115
        magic = self._fh.read(len(MAGIC))
        if magic != MAGIC:
            raise BamxFormatError("bad BAMX magic", source=self.source_name)
        (self._data_offset, name_cap, cigar_cap, seq_cap, tag_cap,
         self._count, text_len) = struct.unpack(
            "<IIIIIQI", self._fh.read(struct.calcsize("<IIIIIQI")))
        self.layout = BamxLayout(name_cap, cigar_cap, seq_cap, tag_cap)
        text = self._fh.read(text_len).decode("ascii")
        self.header = SamHeader.from_text(text)
        size = os.fstat(self._fh.fileno()).st_size
        expected = self._data_offset + self._count * self.layout.record_size
        if size < expected:
            raise BamxFormatError(
                f"file is {size} bytes but layout implies {expected}",
                source=self.source_name)

    def __enter__(self) -> "BamxReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying file."""
        self._fh.close()

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> AlignmentRecord:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"record index {index} out of range "
                             f"[0, {self._count})")
        self._fh.seek(self._data_offset
                      + index * self.layout.record_size)
        data = self._fh.read(self.layout.record_size)
        return self.layout.decode(data, self.header)

    def read_raw(self, index: int) -> bytes:
        """Read the raw :attr:`record_size` bytes of record *index*."""
        if not 0 <= index < self._count:
            raise BamxFormatError(
                f"record index {index} outside [0, {self._count})",
                source=self.source_name)
        rsize = self.layout.record_size
        self._fh.seek(self._data_offset + index * rsize)
        data = self._fh.read(rsize)
        if len(data) != rsize:
            raise BamxFormatError("truncated BAMX data region",
                                  source=self.source_name)
        return data

    def read_raw_batches(self, start: int, stop: int,
                         batch_size: int = 0,
                         ) -> Iterator[tuple[memoryview, int]]:
        """Yield ``(slab, count)`` raw-record slabs for ``[start, stop)``.

        Each slab is a read-only :class:`memoryview` over ``count``
        consecutive records, so callers can slice fields without
        copying.  ``batch_size`` is records per slab; 0 picks a slab of
        roughly 4 MiB (the historical read_range behaviour).
        """
        if not 0 <= start <= stop <= self._count:
            raise BamxFormatError(
                f"record range [{start}, {stop}) outside [0, {self._count})")
        rsize = self.layout.record_size
        per_slab = batch_size if batch_size > 0 \
            else max(1, (4 << 20) // max(rsize, 1))
        self._fh.seek(self._data_offset + start * rsize)
        remaining = stop - start
        while remaining > 0:
            n = min(per_slab, remaining)
            data = self._fh.read(n * rsize)
            if len(data) != n * rsize:
                raise BamxFormatError("truncated BAMX data region",
                                      source=self.source_name)
            yield memoryview(data), n
            remaining -= n

    def read_range(self, start: int, stop: int,
                   ) -> Iterator[AlignmentRecord]:
        """Yield records ``start <= i < stop`` with one buffered scan."""
        rsize = self.layout.record_size
        for data, n in self.read_raw_batches(start, stop):
            # Full decode touches every field: materializing the slab
            # once makes the per-field slices cheap bytes slices (small
            # memoryview slices are slower than the one big copy).
            data = bytes(data)
            for i in range(n):
                yield self.layout.decode(data, self.header, i * rsize)

    def __iter__(self) -> Iterator[AlignmentRecord]:
        return self.read_range(0, self._count)


def write_bamx(path: str | os.PathLike[str], header: SamHeader,
               records: list[AlignmentRecord],
               layout: BamxLayout | None = None) -> BamxLayout:
    """Write *records* to a BAMX file, planning the layout if not given.

    Returns the layout actually used.
    """
    if layout is None:
        layout = plan_layout(records)
    with BamxWriter(path, header, layout) as writer:
        writer.write_all(records)
    return layout


def read_bamx(path: str | os.PathLike[str],
              ) -> tuple[SamHeader, list[AlignmentRecord]]:
    """Read an entire BAMX file into memory: ``(header, records)``."""
    with BamxReader(path) as reader:
        return reader.header, list(reader)
