"""Minimal YAML emitter/parser and the YAML alignment output target.

The library depends only on numpy, so instead of pulling in PyYAML this
module implements the small YAML subset the converter needs: block
mappings and sequences of scalars (str/int/float/bool/null), with
document separators (``---``) delimiting alignment records.  The subset
round-trips everything :func:`repro.formats.json_fmt.record_to_dict`
produces.
"""

from __future__ import annotations

import os
import re
from collections.abc import Iterable, Iterator

from ..errors import FormatError
from .json_fmt import dict_to_record, record_to_dict
from .record import AlignmentRecord

_PLAIN_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.+\-=*/]*$")
_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


def _emit_scalar(value: object) -> str:
    """Render one scalar with quoting only where the subset demands it."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    text = str(value)
    if (_PLAIN_RE.match(text) and not _INT_RE.match(text)
            and not _FLOAT_RE.match(text)
            and text not in ("true", "false", "null")):
        return text
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _emit(value: object, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    if isinstance(value, dict):
        for key, item in value.items():
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{pad}{key}:")
                _emit(item, indent + 1, lines)
            else:
                if isinstance(item, (dict, list)):  # empty container
                    rendered = "{}" if isinstance(item, dict) else "[]"
                else:
                    rendered = _emit_scalar(item)
                lines.append(f"{pad}{key}: {rendered}")
    elif isinstance(value, list):
        for item in value:
            if isinstance(item, (dict, list)) and item:
                lines.append(f"{pad}-")
                _emit(item, indent + 1, lines)
            else:
                lines.append(f"{pad}- {_emit_scalar(item)}")
    else:
        lines.append(f"{pad}{_emit_scalar(value)}")


def dump(value: object) -> str:
    """Serialize a dict/list/scalar tree to block YAML (no separator)."""
    lines: list[str] = []
    _emit(value, 0, lines)
    return "\n".join(lines) + "\n"


def _parse_scalar(text: str) -> object:
    text = text.strip()
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        body = text[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if text == "null":
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if text == "{}":
        return {}
    if text == "[]":
        return []
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text):
        return float(text)
    return text


def _parse_block(lines: list[str], start: int, indent: int,
                 ) -> tuple[object, int]:
    """Parse the block starting at *start* whose items sit at *indent*."""
    i = start
    # Decide container type from the first item.
    first = lines[i][indent:]
    is_list = first.startswith("- ") or first == "-"
    result: object = [] if is_list else {}
    while i < len(lines):
        raw = lines[i]
        this_indent = len(raw) - len(raw.lstrip(" "))
        if this_indent < indent:
            break
        if this_indent > indent:
            raise FormatError(f"unexpected indentation at line {i + 1}")
        body = raw[indent:]
        if is_list:
            if not (body.startswith("- ") or body == "-"):
                break
            if body == "-":
                child, i = _parse_block(lines, i + 1, indent + 2)
                result.append(child)  # type: ignore[union-attr]
            else:
                result.append(_parse_scalar(body[2:]))  # type: ignore[union-attr]
                i += 1
        else:
            if ":" not in body:
                raise FormatError(f"expected 'key: value' at line {i + 1}")
            key, _, rest = body.partition(":")
            key = key.strip()
            rest = rest.strip()
            if rest:
                result[key] = _parse_scalar(rest)  # type: ignore[index]
                i += 1
            else:
                if (i + 1 < len(lines)
                        and len(lines[i + 1]) - len(lines[i + 1].lstrip(" "))
                        > indent):
                    child_indent = (len(lines[i + 1])
                                    - len(lines[i + 1].lstrip(" ")))
                    child, i = _parse_block(lines, i + 1, child_indent)
                    result[key] = child  # type: ignore[index]
                else:
                    result[key] = None  # type: ignore[index]
                    i += 1
    return result, i


_MAPPING_LINE_RE = re.compile(r'^[^"\s-][^:]*:(\s|$)')


def load(text: str) -> object:
    """Parse one YAML document in the supported subset."""
    lines = [l for l in text.splitlines() if l.strip()
             and not l.lstrip().startswith("#")]
    if not lines:
        return None
    if len(lines) == 1:
        only = lines[0].strip()
        # A single line that is neither a list item nor a plain-key
        # mapping entry is a bare scalar document.
        if not only.startswith("- ") and only != "-" \
                and not _MAPPING_LINE_RE.match(only):
            return _parse_scalar(only)
    value, consumed = _parse_block(lines, 0, 0)
    if consumed != len(lines):
        raise FormatError(f"trailing YAML content at line {consumed + 1}")
    return value


def load_all(text: str) -> Iterator[object]:
    """Parse a multi-document stream separated by ``---`` lines."""
    doc: list[str] = []
    for line in text.splitlines():
        if line.strip() == "---":
            if doc:
                yield load("\n".join(doc))
                doc = []
        else:
            doc.append(line)
    if any(l.strip() for l in doc):
        yield load("\n".join(doc))


def format_record(record: AlignmentRecord) -> str:
    """Render one alignment as a YAML document with leading separator."""
    return "---\n" + dump(record_to_dict(record))


def read_yaml(path: str | os.PathLike[str]) -> list[AlignmentRecord]:
    """Read a multi-document YAML alignment file into memory."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    records = []
    for doc in load_all(text):
        if not isinstance(doc, dict):
            raise FormatError("YAML alignment document is not a mapping")
        records.append(dict_to_record(doc))
    return records


def write_yaml(path: str | os.PathLike[str],
               records: Iterable[AlignmentRecord]) -> int:
    """Write records as a multi-document YAML file; return the count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(format_record(record))
            n += 1
    return n
