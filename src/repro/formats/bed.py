"""BED (Browser Extensible Data) format.

BED lines are tab-delimited with 3 mandatory columns (chrom, 0-based
start, exclusive end) and up to 9 optional columns; this module models
the first six (through *strand*), which is what alignment export uses.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..errors import FormatError


@dataclass(slots=True)
class BedInterval:
    """One BED feature (BED6 subset)."""

    chrom: str
    start: int
    end: int
    name: str = "."
    score: float = 0.0
    strand: str = "."

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise FormatError(
                f"invalid BED interval {self.chrom}:{self.start}-{self.end}")
        if self.strand not in (".", "+", "-"):
            raise FormatError(f"invalid BED strand {self.strand!r}")


def format_interval(iv: BedInterval, columns: int = 6) -> str:
    """Render one interval with the first *columns* fields (3..6)."""
    if not 3 <= columns <= 6:
        raise ValueError("BED column count must be between 3 and 6")
    score = int(iv.score) if float(iv.score).is_integer() else iv.score
    cols = [iv.chrom, str(iv.start), str(iv.end), iv.name, str(score),
            iv.strand]
    return "\t".join(cols[:columns])


def parse_interval(line: str, *, lineno: int | None = None) -> BedInterval:
    """Parse one BED line (3 to 6 columns)."""
    cols = line.rstrip("\n").split("\t")
    if len(cols) < 3:
        raise FormatError(f"BED line has {len(cols)} columns, expected >= 3",
                          lineno=lineno)
    try:
        start, end = int(cols[1]), int(cols[2])
    except ValueError:
        raise FormatError("non-integer BED coordinates", lineno=lineno) \
            from None
    name = cols[3] if len(cols) > 3 else "."
    score = float(cols[4]) if len(cols) > 4 else 0.0
    strand = cols[5] if len(cols) > 5 else "."
    return BedInterval(cols[0], start, end, name, score, strand)


def iter_bed(stream: io.TextIOBase) -> Iterator[BedInterval]:
    """Parse intervals from a stream, skipping track/browser/comment
    lines."""
    for lineno, line in enumerate(stream, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "track", "browser")):
            continue
        yield parse_interval(line, lineno=lineno)


def read_bed(path: str | os.PathLike[str]) -> list[BedInterval]:
    """Read every interval of a BED file into memory."""
    with open(path, "r", encoding="ascii") as fh:
        return list(iter_bed(fh))


def write_bed(path: str | os.PathLike[str], intervals: Iterable[BedInterval],
              columns: int = 6) -> int:
    """Write intervals to *path*; return the count written."""
    n = 0
    with open(path, "w", encoding="ascii") as fh:
        for iv in intervals:
            fh.write(format_interval(iv, columns))
            fh.write("\n")
            n += 1
    return n
