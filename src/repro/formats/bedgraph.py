"""BEDGRAPH format: per-interval numeric scores over the genome.

A BEDGRAPH line is ``chrom<TAB>start<TAB>end<TAB>value`` with 0-based
half-open coordinates; consecutive positions sharing a value are collapsed
into one interval, which is what makes the format compact for coverage
histograms (the paper's §IV input).
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from ..errors import FormatError


@dataclass(slots=True)
class BedGraphInterval:
    """One scored interval."""

    chrom: str
    start: int
    end: int
    value: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise FormatError(
                f"invalid BEDGRAPH interval "
                f"{self.chrom}:{self.start}-{self.end}")


def format_interval(iv: BedGraphInterval) -> str:
    """Render one interval (integers rendered without decimal point)."""
    value = int(iv.value) if float(iv.value).is_integer() else iv.value
    return f"{iv.chrom}\t{iv.start}\t{iv.end}\t{value}"


def parse_interval(line: str, *, lineno: int | None = None,
                   ) -> BedGraphInterval:
    """Parse one BEDGRAPH line."""
    cols = line.rstrip("\n").split("\t")
    if len(cols) != 4:
        raise FormatError(
            f"BEDGRAPH line has {len(cols)} columns, expected 4",
            lineno=lineno)
    try:
        return BedGraphInterval(cols[0], int(cols[1]), int(cols[2]),
                                float(cols[3]))
    except ValueError:
        raise FormatError("non-numeric BEDGRAPH fields", lineno=lineno) \
            from None


def iter_bedgraph(stream: io.TextIOBase) -> Iterator[BedGraphInterval]:
    """Parse intervals, skipping track and comment lines."""
    for lineno, line in enumerate(stream, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "track", "browser")):
            continue
        yield parse_interval(line, lineno=lineno)


def read_bedgraph(path: str | os.PathLike[str]) -> list[BedGraphInterval]:
    """Read every interval of a BEDGRAPH file into memory."""
    with open(path, "r", encoding="ascii") as fh:
        return list(iter_bedgraph(fh))


def write_bedgraph(path: str | os.PathLike[str],
                   intervals: Iterable[BedGraphInterval]) -> int:
    """Write intervals to *path*; return the count written."""
    n = 0
    with open(path, "w", encoding="ascii") as fh:
        for iv in intervals:
            fh.write(format_interval(iv))
            fh.write("\n")
            n += 1
    return n


def compress_runs(chrom: str, values: Iterable[float], start: int = 0,
                  ) -> Iterator[BedGraphInterval]:
    """Run-length-encode a dense per-position value array into intervals.

    Zero-valued runs are emitted too; callers that want sparse output can
    filter them.
    """
    run_start = start
    run_value: float | None = None
    pos = start
    for value in values:
        if run_value is None:
            run_value = value
        elif value != run_value:
            yield BedGraphInterval(chrom, run_start, pos, run_value)
            run_start = pos
            run_value = value
        pos += 1
    if run_value is not None and pos > run_start:
        yield BedGraphInterval(chrom, run_start, pos, run_value)
