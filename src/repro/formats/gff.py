"""GFF3 (Generic/Gene Finding Feature) format.

Listed among the sequence formats in the paper's background section
(§II-B).  A GFF3 line has nine tab-separated columns::

    seqid source type start end score strand phase attributes

with 1-based inclusive coordinates and ``key=value;...`` attributes.
This module implements a faithful reader/writer for the column layout
and common attribute escaping; the converter exposes GFF as a target
via :class:`repro.core.targets.GffTarget`.
"""

from __future__ import annotations

import io
import os
import urllib.parse
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import FormatError

#: Characters that must be percent-escaped inside attribute values.
_ESCAPE = ";=&,\t\n\r%"


def escape_attribute(value: str) -> str:
    """Percent-escape the GFF3 reserved characters in a value."""
    return urllib.parse.quote(value, safe="".join(
        chr(c) for c in range(32, 127) if chr(c) not in _ESCAPE))


def unescape_attribute(value: str) -> str:
    """Inverse of :func:`escape_attribute`."""
    return urllib.parse.unquote(value)


@dataclass(slots=True)
class GffFeature:
    """One GFF3 feature (coordinates stored 0-based half-open)."""

    seqid: str
    source: str
    type: str
    start: int              # 0-based inclusive
    end: int                # 0-based exclusive
    score: float | None = None
    strand: str = "."
    phase: int | None = None
    attributes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise FormatError(
                f"invalid GFF interval {self.seqid}:{self.start}-"
                f"{self.end}")
        if self.strand not in (".", "+", "-", "?"):
            raise FormatError(f"invalid GFF strand {self.strand!r}")
        if self.phase is not None and self.phase not in (0, 1, 2):
            raise FormatError(f"invalid GFF phase {self.phase!r}")


def format_feature(feature: GffFeature) -> str:
    """Render one feature as a GFF3 line (no newline)."""
    score = "." if feature.score is None else (
        str(int(feature.score)) if float(feature.score).is_integer()
        else repr(feature.score))
    phase = "." if feature.phase is None else str(feature.phase)
    attrs = ";".join(
        f"{escape_attribute(k)}={escape_attribute(v)}"
        for k, v in feature.attributes.items()) or "."
    return "\t".join([
        feature.seqid, feature.source or ".", feature.type,
        str(feature.start + 1), str(feature.end), score,
        feature.strand, phase, attrs])


def parse_feature(line: str, *, lineno: int | None = None) -> GffFeature:
    """Parse one GFF3 feature line."""
    cols = line.rstrip("\n").split("\t")
    if len(cols) != 9:
        raise FormatError(
            f"GFF line has {len(cols)} columns, expected 9",
            lineno=lineno)
    try:
        start = int(cols[3]) - 1
        end = int(cols[4])
    except ValueError:
        raise FormatError("non-integer GFF coordinates",
                          lineno=lineno) from None
    score = None if cols[5] == "." else float(cols[5])
    phase = None if cols[7] == "." else int(cols[7])
    attributes: dict[str, str] = {}
    if cols[8] != ".":
        for item in cols[8].split(";"):
            if not item:
                continue
            if "=" not in item:
                raise FormatError(
                    f"GFF attribute {item!r} is not key=value",
                    lineno=lineno)
            key, value = item.split("=", 1)
            attributes[unescape_attribute(key)] = \
                unescape_attribute(value)
    return GffFeature(cols[0], cols[1], cols[2], start, end, score,
                      cols[6], phase, attributes)


def iter_gff(stream: io.TextIOBase) -> Iterator[GffFeature]:
    """Parse features, skipping directives (##...) and comments."""
    for lineno, line in enumerate(stream, 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield parse_feature(line, lineno=lineno)


def read_gff(path: str | os.PathLike[str]) -> list[GffFeature]:
    """Read every feature of a GFF3 file into memory."""
    with open(path, "r", encoding="utf-8") as fh:
        return list(iter_gff(fh))


def write_gff(path: str | os.PathLike[str],
              features: Iterable[GffFeature]) -> int:
    """Write features with the gff-version directive; return count."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("##gff-version 3\n")
        for feature in features:
            fh.write(format_feature(feature))
            fh.write("\n")
            n += 1
    return n
