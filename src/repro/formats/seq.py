"""Nucleotide sequence and base-quality codecs.

Covers the three encodings the toolchain needs:

* plain ASCII nucleotide strings (SAM, FASTA, FASTQ),
* BAM 4-bit packed sequences (two bases per byte, ``=ACMGRSVTWYHKDBN``),
* Phred+33 quality strings <-> raw score arrays.
"""

from __future__ import annotations

from ..errors import FormatError

#: BAM nybble alphabet: index in this string == 4-bit code.
NYBBLE_ALPHABET = "=ACMGRSVTWYHKDBN"

_CODE_OF = {c: i for i, c in enumerate(NYBBLE_ALPHABET)}
# Lowercase input is accepted and normalized to uppercase, as samtools does.
_CODE_OF.update({c.lower(): i for i, c in enumerate(NYBBLE_ALPHABET) if c.isalpha()})

_COMPLEMENT = str.maketrans(
    "ACGTUMRWSYKVHDBNacgtumrwsykvhdbn",
    "TGCAAKYWSRMBDHVNtgcaakywsrmbdhvn",
)

#: Maximum Phred score storable in SAM/FASTQ with the +33 offset.
MAX_PHRED = 93


def reverse_complement(seq: str) -> str:
    """Return the reverse complement, preserving case, IUPAC-aware."""
    return seq.translate(_COMPLEMENT)[::-1]


# The 4-bit nybble codes are exactly hexadecimal digits, so packing is a
# character translation to hex followed by bytes.fromhex (all C-speed),
# and unpacking is bytes.hex() plus the inverse translation.
_BASE_TO_HEX = str.maketrans(
    NYBBLE_ALPHABET + NYBBLE_ALPHABET[1:].lower(),
    "0123456789abcdef" + "123456789abcdef")
_HEX_TO_BASE = str.maketrans("0123456789abcdef", NYBBLE_ALPHABET)
_VALID_BASES = frozenset(NYBBLE_ALPHABET + NYBBLE_ALPHABET.lower())

#: Translation table adding the +33 Phred offset to raw scores.
_RAW_TO_PHRED33 = bytes(min(i + 33, 255) for i in range(256))
#: Translation table removing the +33 offset (slots below 33 map to
#: 0xFF so the range check below catches them).
_PHRED33_TO_RAW = bytes([0xFF] * 33 + list(range(0, 223)))


def pack_sequence(seq: str) -> bytes:
    """Pack an ASCII nucleotide string into BAM 4-bit form.

    Two bases per byte, high nybble first; an odd-length sequence gets a
    zero low nybble in its final byte.  Unknown characters raise
    :class:`~repro.errors.FormatError`.
    """
    if not _VALID_BASES.issuperset(seq):
        bad = next(b for b in seq if b not in _VALID_BASES)
        raise FormatError(f"invalid nucleotide {bad!r}")
    hex_digits = seq.translate(_BASE_TO_HEX)
    if len(hex_digits) & 1:
        hex_digits += "0"
    return bytes.fromhex(hex_digits)


def unpack_sequence(packed: bytes, length: int) -> str:
    """Unpack *length* bases from BAM 4-bit *packed* data."""
    if len(packed) < (length + 1) // 2:
        raise FormatError(
            f"packed sequence too short: {len(packed)} bytes for "
            f"{length} bases")
    return packed.hex().translate(_HEX_TO_BASE)[:length]


def encode_qualities(scores: list[int] | bytes) -> str:
    """Encode raw Phred scores to a Phred+33 ASCII string."""
    # A single range check: bytes() already rejects values outside
    # [0, 255], so only the (0, MAX_PHRED] ceiling needs a second look.
    try:
        raw = bytes(scores)
        if raw and max(raw) > MAX_PHRED:
            raise ValueError
    except ValueError:
        bad = next(q for q in scores if not 0 <= q <= MAX_PHRED)
        raise FormatError(
            f"Phred score {bad} outside [0, {MAX_PHRED}]") from None
    return raw.translate(_RAW_TO_PHRED33).decode("latin-1")


def decode_qualities(text: str) -> list[int]:
    """Decode a Phred+33 ASCII string to raw scores."""
    try:
        raw = text.encode("latin-1").translate(_PHRED33_TO_RAW)
    except UnicodeEncodeError:
        raise FormatError("non-ASCII quality character") from None
    scores = list(raw)
    if scores and (max(scores) > MAX_PHRED or 0xFF in scores):
        bad = next(ch for ch in text
                   if not 0 <= ord(ch) - 33 <= MAX_PHRED)
        raise FormatError(f"invalid quality character {bad!r}")
    return scores


_PHRED33_SUB = bytes(max(i - 33, 0) for i in range(256))


def qual_bytes_to_text(raw: bytes) -> str:
    """Raw Phred score bytes -> Phred+33 string (BAM/BAMX hot path)."""
    return raw.translate(_RAW_TO_PHRED33).decode("latin-1")


def qual_text_to_bytes(text: str) -> bytes:
    """Phred+33 string -> raw Phred score bytes (BAM/BAMX hot path)."""
    return text.encode("latin-1").translate(_PHRED33_SUB)


def unpack_sequence_blob(blob: bytes, lo: list[int], hi: list[int],
                         lengths: list[int]) -> list[str]:
    """Decode many packed sequences out of one blob in a single pass.

    ``blob[lo[i]:hi[i]]`` holds record *i*'s packed bases
    (``(lengths[i] + 1) // 2`` bytes).  The whole covered byte range is
    hex-expanded and translated **once** (both C-speed), then each
    sequence is a string slice — the columnar FASTA/FASTQ kernels'
    per-slab replacement for calling :func:`unpack_sequence` per
    record.  Offsets must be non-decreasing (they are slices of one
    offset table).
    """
    if not lo:
        return []
    base = lo[0]
    text = memoryview(blob)[base:hi[-1]].hex().translate(_HEX_TO_BASE)
    return [text[2 * (a - base):2 * (a - base) + n]
            for a, n in zip(lo, lengths)]


def qual_blob_to_text(blob: bytes, lo: list[int],
                      hi: list[int]) -> list[str]:
    """Decode many raw Phred runs out of one blob in a single pass.

    One translate + decode over the covered range, then string slices;
    the batch counterpart of :func:`qual_bytes_to_text`.  ``0xFF``
    bytes come out as ``"\\xff"`` characters — callers that honour the
    all-``0xFF``-means-absent convention check the first character.
    """
    if not lo:
        return []
    base = lo[0]
    text = blob[base:hi[-1]].translate(_RAW_TO_PHRED33).decode("latin-1")
    return [text[a - base:b - base] for a, b in zip(lo, hi)]


def validate_seq(seq: str) -> str:
    """Validate that *seq* is ``*`` or entirely nybble-alphabet characters.

    Returns the sequence unchanged so it can be used inline.
    """
    if seq == "*":
        return seq
    # Superset check runs at C speed; only the error path scans.
    if not _VALID_BASES.issuperset(seq):
        bad = next(b for b in seq if b not in _VALID_BASES)
        raise FormatError(f"invalid nucleotide {bad!r} in sequence")
    return seq
