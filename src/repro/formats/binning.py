"""UCSC binning scheme (Kent et al. 2002), as used by BAM/BAI.

The genome is covered by a 6-level hierarchy of bins (1 × 512 Mbp,
8 × 64 Mbp, 64 × 8 Mbp, 512 × 1 Mbp, 4096 × 128 kbp, 32768 × 16 kbp).
:func:`reg2bin` returns the smallest bin fully containing an interval;
:func:`reg2bins` lists every bin that may hold records overlapping it.
Both follow the C reference code in the SAM specification appendix.
"""

from __future__ import annotations

#: Largest coordinate the 6-level scheme supports (2^29).
MAX_BIN_COORD = 1 << 29

#: Total number of bins in the hierarchy.
BIN_COUNT = 37450  # ((1<<18) - 1) // 7 + 1 == 4681 + 32768 + 1

#: Window size of the BAI linear index (16 kbp).
LINEAR_SHIFT = 14
LINEAR_WINDOW = 1 << LINEAR_SHIFT

#: First bin number of each level, coarsest to finest.
LEVEL_STARTS = (0, 1, 9, 73, 585, 4681)
#: Right-shift that maps a coordinate to a bin offset at each level.
LEVEL_SHIFTS = (29, 26, 23, 20, 17, 14)


def reg2bin(beg: int, end: int) -> int:
    """Smallest bin containing the 0-based half-open interval [beg, end).

    Mirrors the ``reg2bin`` C routine from the SAM spec.  An empty or
    unmapped interval (``beg < 0``) maps to bin 4680, the samtools
    convention for placed-unmapped reads paired via ``pos``.
    """
    if beg < 0:
        return 4680
    end -= 1
    if end < beg:
        end = beg
    if beg >> 14 == end >> 14:
        return ((1 << 15) - 1) // 7 + (beg >> 14)
    if beg >> 17 == end >> 17:
        return ((1 << 12) - 1) // 7 + (beg >> 17)
    if beg >> 20 == end >> 20:
        return ((1 << 9) - 1) // 7 + (beg >> 20)
    if beg >> 23 == end >> 23:
        return ((1 << 6) - 1) // 7 + (beg >> 23)
    if beg >> 26 == end >> 26:
        return ((1 << 3) - 1) // 7 + (beg >> 26)
    return 0


def reg2bins(beg: int, end: int) -> list[int]:
    """All bins whose records may overlap [beg, end) (0-based half-open).

    Mirrors the ``reg2bins`` C routine from the SAM spec; always includes
    bin 0 and returns bins in increasing order.
    """
    if beg < 0:
        beg = 0
    if end > MAX_BIN_COORD:
        end = MAX_BIN_COORD
    if end <= beg:
        return [0]
    end -= 1
    bins = [0]
    for start, shift in zip(LEVEL_STARTS[1:], LEVEL_SHIFTS[1:]):
        bins.extend(range(start + (beg >> shift), start + (end >> shift) + 1))
    return bins


def bin_level(bin_no: int) -> int:
    """Return the hierarchy level (0 coarsest .. 5 finest) of a bin."""
    if not 0 <= bin_no < BIN_COUNT:
        raise ValueError(f"bin number {bin_no} outside [0, {BIN_COUNT})")
    for level in range(len(LEVEL_STARTS) - 1, -1, -1):
        if bin_no >= LEVEL_STARTS[level]:
            return level
    raise AssertionError("unreachable")


def bin_interval(bin_no: int) -> tuple[int, int]:
    """Return the genomic half-open interval a bin covers."""
    level = bin_level(bin_no)
    shift = LEVEL_SHIFTS[level]
    offset = bin_no - LEVEL_STARTS[level]
    return offset << shift, (offset + 1) << shift


def linear_window(pos: int) -> int:
    """Index of the 16 kbp linear-index window containing *pos*."""
    if pos < 0:
        raise ValueError(f"negative position {pos}")
    return pos >> LINEAR_SHIFT
