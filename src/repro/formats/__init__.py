"""Sequence data format substrate: SAM, BAM, BGZF, BAI, BAMX, BAIX,
BED, BEDGRAPH, FASTA, FASTQ, WIG, JSON, YAML.

Every reader produces the canonical
:class:`~repro.formats.record.AlignmentRecord`; every writer and target
plugin consumes it.
"""

from .bai import BaiIndex
from .baix import BaixIndex
from .bam import BamReader, BamWriter, read_bam, write_bam
from .bamc import BamcReader, BamcWriter, ColumnSlab, read_bamc, \
    write_bamc
from .bamx import BamxLayout, BamxReader, BamxWriter, plan_layout, \
    read_bamx, write_bamx
from .bamz import BamzReader, BamzWriter, read_bamz, write_bamz
from .bed import BedInterval, read_bed, write_bed
from .bedgraph import BedGraphInterval, compress_runs, read_bedgraph, \
    write_bedgraph
from .bgzf import BgzfReader, BgzfWriter
from .bgzf_threads import ThreadedBgzfWriter
from .binning import reg2bin, reg2bins
from .fasta import FastaIndex, FastaRecord, read_fasta, write_fasta
from .fastq import FastqRecord, read_fastq, write_fastq
from .header import HeaderLine, Reference, SamHeader
from .record import UNMAPPED_POS, AlignmentRecord
from .registry import SOURCE_FORMATS, TARGET_FORMATS, detect_format, \
    get_format, list_formats
from .sam import SamReader, SamWriter, format_alignment, parse_alignment, \
    read_sam, write_sam
from .store import open_record_store
from .tags import Tag

__all__ = [
    "AlignmentRecord", "UNMAPPED_POS", "Tag",
    "SamHeader", "HeaderLine", "Reference",
    "SamReader", "SamWriter", "parse_alignment", "format_alignment",
    "read_sam", "write_sam",
    "BamReader", "BamWriter", "read_bam", "write_bam",
    "BgzfReader", "BgzfWriter", "ThreadedBgzfWriter",
    "BaiIndex", "reg2bin", "reg2bins",
    "BamxLayout", "BamxReader", "BamxWriter", "plan_layout",
    "read_bamx", "write_bamx",
    "BamzReader", "BamzWriter", "read_bamz", "write_bamz",
    "BamcReader", "BamcWriter", "ColumnSlab", "read_bamc", "write_bamc",
    "open_record_store",
    "BaixIndex",
    "BedInterval", "read_bed", "write_bed",
    "BedGraphInterval", "compress_runs", "read_bedgraph", "write_bedgraph",
    "FastaRecord", "FastaIndex", "read_fasta", "write_fasta",
    "FastqRecord", "read_fastq", "write_fastq",
    "get_format", "detect_format", "list_formats",
    "SOURCE_FORMATS", "TARGET_FORMATS",
]
