"""The paper's core contribution: the three parallel format-converter
instances, partial (region) conversion, and the target-plugin API."""

from ..formats.record import AlignmentRecord
from .base import EXECUTORS, ConversionResult
from .bam_converter import BamConverter, PreprocArtifacts, \
    convert_bam_direct, preprocess_bam
from .dataset import AlignmentDataset, RecordStoreHandle
from .filters import ACCEPT_ALL, RecordFilter, parse_filter_expr
from .region import GenomicRegion
from .sam_converter import SamConverter, convert_sam, scan_header
from .sort import SortResult, parallel_sort_sam, sort_bam, sort_sam
from .samp_converter import PreprocSamConverter
from .targets import TargetFormat, get_target, register_target, \
    target_names

__all__ = [
    "AlignmentRecord",
    "ConversionResult", "EXECUTORS",
    "SamConverter", "convert_sam", "scan_header",
    "BamConverter", "PreprocArtifacts", "convert_bam_direct",
    "preprocess_bam",
    "PreprocSamConverter",
    "GenomicRegion",
    "AlignmentDataset", "RecordStoreHandle",
    "RecordFilter", "ACCEPT_ALL", "parse_filter_expr",
    "SortResult", "sort_sam", "sort_bam", "parallel_sort_sam",
    "TargetFormat", "get_target", "register_target", "target_names",
]
